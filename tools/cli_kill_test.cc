// Crash-consistency driver of the `cli_kill` ctest: proves that neither
// SnapshotWriter::WriteTo nor a whole `sfpm run` can be killed at a
// moment that leaves a snapshot which later validates with wrong or
// partial content.
//
//   cli_kill_test <path-to-sfpm> <work-dir>
//
// Part A forks a child that rewrites one large snapshot in a tight loop
// and SIGKILLs it at varied delays: after every kill the target path is
// either absent or opens cleanly with exactly the expected bytes — the
// write-temp + fsync + rename discipline never exposes a torn file.
// Part B SIGKILLs the real `sfpm run` (sharded) mid-pipeline: every
// *.sfpm that exists and opens afterwards must be byte-identical to an
// uninterrupted baseline, and a resumed run must complete and converge
// to the baseline bytes.

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "feature/feature.h"
#include "geom/geometry.h"
#include "store/reader.h"
#include "store/writer.h"

namespace {

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "cli_kill_test: FAIL: %s\n", what.c_str());
  std::exit(1);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Die("cannot read " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// A snapshot big enough (a few MB) that a torn direct write would be
/// the common case, not a lucky race.
sfpm::store::SnapshotWriter BigWriter() {
  sfpm::feature::Layer layer("block");
  for (int i = 0; i < 20000; ++i) {
    const double x = (i % 200) * 3.0;
    const double y = (i / 200) * 3.0;
    layer.Add(sfpm::geom::Geometry(sfpm::geom::Polygon(sfpm::geom::LinearRing(
                  {{x, y}, {x + 2, y}, {x + 2, y + 2}, {x, y + 2}}))),
              {{"tag", std::to_string(i)}});
  }
  sfpm::store::SnapshotWriter w;
  w.AddLayer(layer);
  return w;
}

/// Part A: kill a WriteTo loop at `delay_ms`; the path must stay
/// absent-or-exactly-right.
void KillDuringWrite(const std::string& dir,
                     const sfpm::store::SnapshotWriter& writer,
                     const std::string& expected, int delay_ms) {
  const std::string path = dir + "/killed.sfpm";
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".tmp");

  const pid_t child = fork();
  if (child < 0) Die("fork");
  if (child == 0) {
    for (;;) {
      if (!writer.WriteTo(path).ok()) std::_Exit(3);
    }
  }
  SleepMs(delay_ms);
  kill(child, SIGKILL);
  waitpid(child, nullptr, 0);

  if (!std::filesystem::exists(path)) return;  // Killed before any rename.
  auto reader = sfpm::store::SnapshotReader::Open(path);
  if (!reader.ok()) {
    Die("after SIGKILL at " + std::to_string(delay_ms) + "ms, " + path +
        " exists but does not validate: " + reader.status().message());
  }
  if (ReadAll(path) != expected) {
    Die("after SIGKILL at " + std::to_string(delay_ms) + "ms, " + path +
        " validates but differs from the written snapshot");
  }
}

/// Every *.sfpm under `dir` that opens cleanly must equal its baseline
/// counterpart; a file that fails to open is fine only if it is a tile
/// or final output mid-write — but with atomic renames even those must
/// open, so any unreadable .sfpm is a failure.
void CheckSurvivors(const std::string& dir, const std::string& baseline_dir) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string path = entry.path().string();
    if (path.size() < 5 || path.substr(path.size() - 5) != ".sfpm") continue;
    auto reader = sfpm::store::SnapshotReader::Open(path);
    if (!reader.ok()) {
      Die("interrupted run left unreadable snapshot " + path + ": " +
          reader.status().message());
    }
    const std::string counterpart =
        baseline_dir + "/" + entry.path().filename().string();
    if (!std::filesystem::exists(counterpart)) {
      Die("interrupted run left unexpected snapshot " + path);
    }
    if (ReadAll(path) != ReadAll(counterpart)) {
      Die("snapshot " + path + " validates but differs from baseline");
    }
  }
}

pid_t SpawnRun(const std::string& sfpm, const std::string& dir) {
  const pid_t child = fork();
  if (child < 0) Die("fork");
  if (child == 0) {
    if (freopen("/dev/null", "w", stdout) == nullptr) std::_Exit(126);
    execl(sfpm.c_str(), sfpm.c_str(), "run", "--dir", dir.c_str(), "--seed",
          "7", "--minsup", "0.15", "--threads", "2", "--shards", "2",
          static_cast<char*>(nullptr));
    std::_Exit(127);
  }
  return child;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: cli_kill_test <sfpm> <work-dir>\n");
    return 2;
  }
  const std::string sfpm = argv[1];
  const std::string dir = argv[2];
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Part A: SIGKILL inside SnapshotWriter::WriteTo.
  const sfpm::store::SnapshotWriter writer = BigWriter();
  const std::string expected = writer.Serialize();
  for (const int delay_ms : {1, 3, 7, 15, 40, 80}) {
    KillDuringWrite(dir, writer, expected, delay_ms);
  }
  std::printf("cli_kill_test: WriteTo kills survived\n");

  // Part B: SIGKILL the sharded pipeline, then resume.
  const std::string baseline_dir = dir + "/baseline";
  const std::string victim_dir = dir + "/victim";
  std::filesystem::create_directories(baseline_dir);
  {
    const pid_t child = SpawnRun(sfpm, baseline_dir);
    int status = 0;
    if (waitpid(child, &status, 0) != child || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      Die("baseline run failed");
    }
  }
  for (const int delay_ms : {5, 15, 30, 60, 120, 250}) {
    std::filesystem::remove_all(victim_dir);
    std::filesystem::create_directories(victim_dir);
    const pid_t child = SpawnRun(sfpm, victim_dir);
    SleepMs(delay_ms);
    kill(child, SIGKILL);
    waitpid(child, nullptr, 0);
    CheckSurvivors(victim_dir, baseline_dir);

    // Resume: a fresh run over the survivors must finish and converge.
    const pid_t resume = SpawnRun(sfpm, victim_dir);
    int status = 0;
    if (waitpid(resume, &status, 0) != resume || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      Die("resume after kill at " + std::to_string(delay_ms) + "ms failed");
    }
    for (const char* leaf : {"city.sfpm", "txdb.sfpm", "patterns.sfpm"}) {
      if (ReadAll(victim_dir + "/" + std::string(leaf)) !=
          ReadAll(baseline_dir + "/" + std::string(leaf))) {
        Die(std::string(leaf) + " diverged after kill-and-resume at " +
            std::to_string(delay_ms) + "ms");
      }
    }
  }
  std::printf("cli_kill_test: PASS\n");
  return 0;
}
