// Documentation checker behind the `doc_check` ctest: keeps the doc set
// from rotting as the code moves.
//
//   sfpm_doc_check --repo <repo-root> --help-from <path-to-sfpm>
//
// Two families of checks over README.md, EXPERIMENTS.md and docs/*.md:
//
//  1. Intra-repo markdown links. Every `[text](target)` that is not an
//     external URL must name an existing file (relative to the linking
//     document), and when the target carries a `#anchor` into a markdown
//     file, a heading with that GitHub-style slug must exist there.
//  2. CLI flags. Every `--flag` token on a line that invokes `sfpm `
//     (the CLI proper — helper binaries like sfpm_fuzz spell their name
//     without the space) must appear in `sfpm help` output, so the docs
//     can never advertise a flag the binary dropped. This is what keeps
//     deprecated spellings like the old `--stats`-era flags from
//     resurfacing in prose.
//
// Exits 0 when clean; prints every violation as file:line and exits 1.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  size_t line;
  std::string what;
};

std::vector<Violation> g_violations;

void Report(const std::string& file, size_t line, const std::string& what) {
  g_violations.push_back({file, line, what});
}

std::vector<std::string> ReadLines(const fs::path& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// GitHub heading slug: lowercase, keep alphanumerics and hyphens, spaces
/// become hyphens, everything else is dropped.
std::string Slug(const std::string& heading) {
  std::string slug;
  for (char c : heading) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      slug += static_cast<char>(std::tolower(u));
    } else if (c == ' ' || c == '-') {
      slug += '-';
    }
  }
  return slug;
}

/// Every anchor a markdown file defines (its headings, slugged).
std::set<std::string> Anchors(const fs::path& path) {
  std::set<std::string> anchors;
  bool in_code = false;
  for (const std::string& line : ReadLines(path)) {
    if (line.rfind("```", 0) == 0) {
      in_code = !in_code;
      continue;
    }
    if (in_code || line.empty() || line[0] != '#') continue;
    size_t level = 0;
    while (level < line.size() && line[level] == '#') ++level;
    if (level >= line.size() || line[level] != ' ') continue;
    std::string heading = line.substr(level + 1);
    // Strip inline code ticks so `sfpm serve` slugs as sfpm-serve.
    std::string cleaned;
    for (char c : heading) {
      if (c != '`') cleaned += c;
    }
    anchors.insert(Slug(cleaned));
  }
  return anchors;
}

/// Checks one `[text](target)` occurrence.
void CheckLink(const fs::path& doc, size_t line_no,
               const std::string& target) {
  if (target.empty() || target[0] == '#') return;  // Same-file anchor.
  if (target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
      target.rfind("mailto:", 0) == 0) {
    return;  // External; not ours to verify offline.
  }
  const size_t hash = target.find('#');
  const std::string file_part = target.substr(0, hash == std::string::npos
                                                      ? target.size()
                                                      : hash);
  const fs::path resolved = doc.parent_path() / file_part;
  if (!fs::exists(resolved)) {
    Report(doc.string(), line_no, "broken link target: " + target);
    return;
  }
  if (hash != std::string::npos && resolved.extension() == ".md") {
    const std::string anchor = target.substr(hash + 1);
    if (Anchors(resolved).count(anchor) == 0) {
      Report(doc.string(), line_no,
             "missing anchor #" + anchor + " in " + file_part);
    }
  }
}

/// Extracts `[text](target)` links from one line (images included).
std::vector<std::string> LinksIn(const std::string& line) {
  std::vector<std::string> targets;
  for (size_t i = 0; i + 1 < line.size(); ++i) {
    if (line[i] != ']' || line[i + 1] != '(') continue;
    const size_t close = line.find(')', i + 2);
    if (close == std::string::npos) continue;
    targets.push_back(line.substr(i + 2, close - i - 2));
  }
  return targets;
}

/// `--flag` tokens on a line, with `=value` suffixes and punctuation
/// stripped.
std::vector<std::string> FlagsIn(const std::string& line) {
  std::vector<std::string> flags;
  for (size_t i = 0; i + 2 < line.size(); ++i) {
    if (line[i] != '-' || line[i + 1] != '-') continue;
    if (i > 0 && (std::isalnum(static_cast<unsigned char>(line[i - 1])) ||
                  line[i - 1] == '-')) {
      continue;  // Mid-word dashes ("all--or" / an em-dash run).
    }
    size_t end = i + 2;
    while (end < line.size() &&
           (std::isalnum(static_cast<unsigned char>(line[end])) ||
            line[end] == '-')) {
      ++end;
    }
    if (end == i + 2) continue;  // A bare "--" separator.
    flags.push_back(line.substr(i, end - i));
    i = end;
  }
  return flags;
}

/// True when a line is an invocation of the `sfpm` CLI proper (not the
/// helper binaries, build systems, or bench drivers).
bool MentionsSfpmCli(const std::string& line) {
  if (line.find("cmake") != std::string::npos ||
      line.find("ctest") != std::string::npos ||
      line.find("bench_") != std::string::npos) {
    return false;
  }
  // "sfpm " with a space: sfpm_fuzz / sfpm_doc_check / file names like
  // city.sfpm never match.
  for (size_t at = line.find("sfpm "); at != std::string::npos;
       at = line.find("sfpm ", at + 1)) {
    const bool word_start =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(line[at - 1])) &&
                    line[at - 1] != '_' && line[at - 1] != '.');
    if (word_start) return true;
  }
  return false;
}

/// All `--flag` spellings the CLI reference admits to.
std::set<std::string> HelpFlags(const std::string& sfpm_binary) {
  const std::string command = sfpm_binary + " help";
  std::set<std::string> flags;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) {
    std::fprintf(stderr, "sfpm_doc_check: cannot run: %s\n", command.c_str());
    std::exit(2);
  }
  char buf[4096];
  std::string output;
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) output += buf;
  if (pclose(pipe) != 0) {
    std::fprintf(stderr, "sfpm_doc_check: '%s' failed\n", command.c_str());
    std::exit(2);
  }
  std::istringstream lines(output);
  std::string line;
  while (std::getline(lines, line)) {
    for (const std::string& flag : FlagsIn(line)) flags.insert(flag);
  }
  if (flags.empty()) {
    std::fprintf(stderr, "sfpm_doc_check: no flags in '%s' output\n",
                 command.c_str());
    std::exit(2);
  }
  return flags;
}

void CheckDocument(const fs::path& doc, const std::set<std::string>& known) {
  const std::vector<std::string> lines = ReadLines(doc);
  bool in_code = false;
  for (size_t i = 0; i < lines.size(); ++i) {
    const std::string& line = lines[i];
    const bool fence = line.rfind("```", 0) == 0;
    if (fence) in_code = !in_code;
    // Links only count in prose; flags count everywhere (usage examples
    // live in code fences and must stay accurate too).
    if (!in_code && !fence) {
      for (const std::string& target : LinksIn(line)) {
        CheckLink(doc, i + 1, target);
      }
    }
    if (MentionsSfpmCli(line)) {
      for (const std::string& flag : FlagsIn(line)) {
        if (known.count(flag) == 0) {
          Report(doc.string(), i + 1,
                 "flag " + flag + " not in `sfpm help` output");
        }
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string repo;
  std::string sfpm_binary;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    if (arg == "--repo") {
      repo = argv[i + 1];
    } else if (arg == "--help-from") {
      sfpm_binary = argv[i + 1];
    }
  }
  if (repo.empty() || sfpm_binary.empty()) {
    std::fprintf(stderr,
                 "usage: sfpm_doc_check --repo <root> --help-from <sfpm>\n");
    return 2;
  }

  const std::set<std::string> known = HelpFlags(sfpm_binary);

  std::vector<fs::path> documents = {fs::path(repo) / "README.md",
                                     fs::path(repo) / "EXPERIMENTS.md"};
  for (const auto& entry : fs::directory_iterator(fs::path(repo) / "docs")) {
    if (entry.path().extension() == ".md") documents.push_back(entry.path());
  }
  std::sort(documents.begin(), documents.end());

  size_t checked = 0;
  for (const fs::path& doc : documents) {
    if (!fs::exists(doc)) {
      Report(doc.string(), 0, "document missing");
      continue;
    }
    CheckDocument(doc, known);
    ++checked;
  }

  for (const Violation& v : g_violations) {
    std::fprintf(stderr, "%s:%zu: %s\n", v.file.c_str(), v.line, v.what.c_str());
  }
  std::printf("sfpm_doc_check: %zu documents, %zu violations\n", checked,
              g_violations.size());
  return g_violations.empty() ? 0 : 1;
}
