# End-to-end observability artifacts: run extract and mine with --report
# and --trace, then validate every artifact with sfpm_report_check. Also
# checks that --stats still renders (from the registry) and prints its
# one-time deprecation note.
file(MAKE_DIRECTORY ${WORK_DIR})
execute_process(
  COMMAND ${SFPM_CLI} generate-city --seed 7 --out-prefix ${WORK_DIR}/r_
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate-city failed")
endif()

execute_process(
  COMMAND ${SFPM_CLI} extract
    --reference district=${WORK_DIR}/r_district.csv
    --relevant slum=${WORK_DIR}/r_slum.csv
    --relevant school=${WORK_DIR}/r_school.csv
    --out ${WORK_DIR}/r_table.csv
    --stats
    --report ${WORK_DIR}/r_extract.json
    --trace ${WORK_DIR}/r_extract.trace.json
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "extract --report failed: ${err}")
endif()
string(FIND "${err}" "--stats is deprecated" found)
if(found EQUAL -1)
  message(FATAL_ERROR "extract --stats missing deprecation note: ${err}")
endif()

execute_process(
  COMMAND ${SFPM_CLI} mine --table ${WORK_DIR}/r_table.csv
    --minsup 0.15 --filter kc+
    --report ${WORK_DIR}/r_mine.json
    --trace ${WORK_DIR}/r_mine.trace.json
  RESULT_VARIABLE rc ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mine --report failed: ${err}")
endif()

foreach(artifact r_extract.json r_mine.json)
  execute_process(
    COMMAND ${SFPM_CHECK} report ${WORK_DIR}/${artifact}
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${artifact} failed schema validation: ${err}")
  endif()
endforeach()
foreach(artifact r_extract.trace.json r_mine.trace.json)
  execute_process(
    COMMAND ${SFPM_CHECK} trace ${WORK_DIR}/${artifact}
    RESULT_VARIABLE rc ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${artifact} failed schema validation: ${err}")
  endif()
endforeach()
