# Sharded extraction identity gate (docs/SHARDING.md): `sfpm run
# --shards=N` must produce byte-identical txdb/patterns snapshots to the
# single-shard run, at two city scales and several thread counts; a
# sharded rerun must skip every stage; and sharded/unsharded runs must
# resume each other (the merged snapshot carries the plain extract
# manifest).
file(REMOVE_RECURSE ${WORK_DIR})

# Scale 1 and scale 2, shards 1 vs {2, 4}, threads {1, 2, 4}.
foreach(scale 1 2)
  set(base ${WORK_DIR}/s${scale}-shards1)
  file(MAKE_DIRECTORY ${base})
  execute_process(
    COMMAND ${SFPM_CLI} run --dir ${base} --seed 11 --minsup 0.15
      --scale ${scale} --threads 2
    RESULT_VARIABLE rc OUTPUT_VARIABLE out)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "scale ${scale} single-shard run failed: ${out}")
  endif()
  file(READ ${base}/txdb.sfpm txdb_base HEX)
  file(READ ${base}/patterns.sfpm patterns_base HEX)

  foreach(shards 2 4)
    foreach(threads 1 2 4)
      set(dir ${WORK_DIR}/s${scale}-shards${shards}-t${threads})
      file(MAKE_DIRECTORY ${dir})
      execute_process(
        COMMAND ${SFPM_CLI} run --dir ${dir} --seed 11 --minsup 0.15
          --scale ${scale} --shards ${shards} --threads ${threads}
        RESULT_VARIABLE rc OUTPUT_VARIABLE out)
      if(NOT rc EQUAL 0)
        message(FATAL_ERROR
          "scale ${scale} shards ${shards} threads ${threads} failed: ${out}")
      endif()
      file(READ ${dir}/txdb.sfpm txdb HEX)
      file(READ ${dir}/patterns.sfpm patterns HEX)
      if(NOT txdb STREQUAL txdb_base)
        message(FATAL_ERROR "txdb differs: scale ${scale} shards ${shards} "
          "threads ${threads} vs single shard")
      endif()
      if(NOT patterns STREQUAL patterns_base)
        message(FATAL_ERROR "patterns differ: scale ${scale} shards "
          "${shards} threads ${threads} vs single shard")
      endif()
    endforeach()
  endforeach()
endforeach()

# A sharded rerun skips everything: city, every tile, and (via the merged
# output's extract manifest) the merge itself, plus mine.
execute_process(
  COMMAND ${SFPM_CLI} run --dir ${WORK_DIR}/s1-shards4-t2 --seed 11
    --minsup 0.15 --scale 1 --shards 4 --threads 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE rerun)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded rerun failed: ${rerun}")
endif()
string(REGEX MATCHALL "up to date" skips "${rerun}")
list(LENGTH skips num_skips)
if(NOT num_skips EQUAL 3)
  message(FATAL_ERROR "sharded rerun skipped ${num_skips}/3: ${rerun}")
endif()

# Cross-mode resume: an unsharded run over a sharded directory (and the
# reverse) skips the extract phase — the snapshots are byte-identical, so
# each mode trusts the other's manifest.
execute_process(
  COMMAND ${SFPM_CLI} run --dir ${WORK_DIR}/s1-shards4-t2 --seed 11
    --minsup 0.15 --scale 1 --threads 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE cross)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "unsharded-over-sharded rerun failed: ${cross}")
endif()
string(REGEX MATCHALL "up to date" skips "${cross}")
list(LENGTH skips num_skips)
if(NOT num_skips EQUAL 3)
  message(FATAL_ERROR
    "unsharded rerun over sharded dir skipped ${num_skips}/3: ${cross}")
endif()
execute_process(
  COMMAND ${SFPM_CLI} run --dir ${WORK_DIR}/s1-shards1 --seed 11
    --minsup 0.15 --scale 1 --shards 4 --threads 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE cross2)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "sharded-over-unsharded rerun failed: ${cross2}")
endif()
string(REGEX MATCHALL "up to date" skips "${cross2}")
list(LENGTH skips num_skips)
if(NOT num_skips EQUAL 3)
  message(FATAL_ERROR
    "sharded rerun over unsharded dir skipped ${num_skips}/3: ${cross2}")
endif()

# Deleting the merged output and one tile reruns exactly that tile and
# the merge; the rebuilt txdb must be byte-identical.
set(resume_dir ${WORK_DIR}/s1-shards4-t2)
file(REMOVE ${resume_dir}/txdb.sfpm ${resume_dir}/txdb.tile1of4.sfpm)
execute_process(
  COMMAND ${SFPM_CLI} run --dir ${resume_dir} --seed 11 --minsup 0.15
    --scale 1 --shards 4 --threads 2
  RESULT_VARIABLE rc OUTPUT_VARIABLE resume)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tile resume failed: ${resume}")
endif()
string(REGEX MATCHALL "wrote" writes "${resume}")
list(LENGTH writes num_writes)
if(NOT num_writes EQUAL 2)  # tile1of4 + merge; mine stays up to date.
  message(FATAL_ERROR "tile resume rewrote ${num_writes} stages: ${resume}")
endif()
file(READ ${resume_dir}/txdb.sfpm txdb_resumed HEX)
file(READ ${WORK_DIR}/s1-shards1/txdb.sfpm txdb_base HEX)
if(NOT txdb_resumed STREQUAL txdb_base)
  message(FATAL_ERROR "tile-resumed txdb differs from single shard")
endif()

# Flag validation: --shards rejects a zero count.
execute_process(
  COMMAND ${SFPM_CLI} run --dir ${WORK_DIR}/bad --shards 0
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_VARIABLE out)
if(rc EQUAL 0)
  message(FATAL_ERROR "--shards 0 accepted")
endif()
string(FIND "${err}${out}" "shards" found)
if(found EQUAL -1)
  message(FATAL_ERROR "--shards 0 error does not name the flag: ${err}${out}")
endif()
