// Structural validator for the machine-readable run artifacts of the CLI:
//
//   sfpm_report_check report out.json        # --report artifact, schema v1
//   sfpm_report_check trace out.trace.json   # --trace Chrome trace_event
//
// Exits 0 when the file parses as JSON and satisfies the schema described
// in docs/OBSERVABILITY.md; prints every violation to stderr and exits 1
// otherwise. Built on obs/json.h only — no external JSON-schema engine —
// so CI (tools/check.sh and the cli_report ctest) can gate on report
// validity without new dependencies.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/report.h"

namespace sfpm {
namespace {

using obs::json::Value;

/// Collects violations so one run reports every problem, not just the first.
class SchemaCheck {
 public:
  void Fail(const std::string& message) {
    std::fprintf(stderr, "schema violation: %s\n", message.c_str());
    ++failures_;
  }

  /// Finds a member of `parent` and checks its type; null return already
  /// counted as a failure.
  const Value* Member(const Value& parent, const std::string& key,
                      Value::Type type, const std::string& where) {
    const Value* member = parent.Find(key);
    if (member == nullptr) {
      Fail(where + ": missing member \"" + key + "\"");
      return nullptr;
    }
    if (member->type != type) {
      Fail(where + ": member \"" + key + "\" has wrong type");
      return nullptr;
    }
    return member;
  }

  /// Every member of `object` must be a number.
  void AllNumbers(const Value& object, const std::string& where) {
    for (const auto& [key, value] : object.object) {
      if (!value.is_number()) {
        Fail(where + ": member \"" + key + "\" is not a number");
      }
    }
  }

  int failures() const { return failures_; }

 private:
  int failures_ = 0;
};

void CheckHistogram(SchemaCheck* check, const Value& hist,
                    const std::string& where) {
  const Value* bounds =
      check->Member(hist, "bounds", Value::Type::kArray, where);
  const Value* counts =
      check->Member(hist, "counts", Value::Type::kArray, where);
  const Value* count = check->Member(hist, "count", Value::Type::kNumber, where);
  check->Member(hist, "sum", Value::Type::kNumber, where);
  if (bounds == nullptr || counts == nullptr) return;
  for (size_t i = 0; i + 1 < bounds->array.size(); ++i) {
    if (!(bounds->array[i].number < bounds->array[i + 1].number)) {
      check->Fail(where + ": bounds not strictly ascending");
      break;
    }
  }
  if (counts->array.size() != bounds->array.size() + 1) {
    check->Fail(where + ": counts must have bounds.size() + 1 entries");
  }
  double total = 0.0;
  for (const Value& bucket : counts->array) {
    if (!bucket.is_number() || bucket.number < 0) {
      check->Fail(where + ": bucket counts must be non-negative numbers");
      return;
    }
    total += bucket.number;
  }
  if (count != nullptr && count->number != total) {
    check->Fail(where + ": count does not equal the sum of bucket counts");
  }
}

void CheckSpan(SchemaCheck* check, const Value& span, size_t index) {
  const std::string where = "spans[" + std::to_string(index) + "]";
  if (!span.is_object()) {
    check->Fail(where + ": not an object");
    return;
  }
  check->Member(span, "name", Value::Type::kString, where);
  check->Member(span, "thread", Value::Type::kNumber, where);
  const Value* start =
      check->Member(span, "start_ms", Value::Type::kNumber, where);
  const Value* dur = check->Member(span, "dur_ms", Value::Type::kNumber, where);
  if (start != nullptr && start->number < 0) {
    check->Fail(where + ": start_ms is negative");
  }
  if (dur != nullptr && dur->number < 0) {
    check->Fail(where + ": dur_ms is negative");
  }
  const Value* depth = check->Member(span, "depth", Value::Type::kNumber, where);
  const Value* parent = span.Find("parent");
  if (parent == nullptr) {
    check->Fail(where + ": missing member \"parent\"");
  } else if (parent->type == Value::Type::kNull) {
    if (depth != nullptr && depth->number != 0) {
      check->Fail(where + ": root span must have depth 0");
    }
  } else if (!parent->is_number()) {
    check->Fail(where + ": parent must be null or a span index");
  } else if (parent->number < 0 ||
             parent->number >= static_cast<double>(index)) {
    check->Fail(where + ": parent must index an earlier span");
  }
  const Value* attrs = check->Member(span, "attrs", Value::Type::kObject, where);
  if (attrs != nullptr) check->AllNumbers(*attrs, where + ".attrs");
  const Value* counters =
      check->Member(span, "counters", Value::Type::kObject, where);
  if (counters != nullptr) check->AllNumbers(*counters, where + ".counters");
}

/// The repo-wide instrument naming scheme (docs/OBSERVABILITY.md): two or
/// more dot-separated segments, each segment non-empty [a-z0-9_]+. The
/// scheme keeps `PrometheusName` injective, so the lint also flags any
/// name reused across metric kinds (counter vs gauge vs histogram) — the
/// registry keeps those namespaces independent, but an exposition scrape
/// would emit two conflicting TYPE lines for the same sample family.
bool WellFormedInstrumentName(const std::string& name) {
  size_t segment_len = 0;
  size_t segments = 0;
  for (const char c : name) {
    if (c == '.') {
      if (segment_len == 0) return false;  // Empty segment ("a..b", ".a").
      ++segments;
      segment_len = 0;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
    ++segment_len;
  }
  if (segment_len == 0) return false;  // Trailing dot or empty name.
  return segments + 1 >= 2;
}

void CheckInstrumentNames(SchemaCheck* check, const Value& metrics) {
  std::vector<std::pair<std::string, std::string>> seen;  // name -> kind
  const auto lint_kind = [&](const char* kind) {
    const Value* group = metrics.Find(kind);
    if (group == nullptr || !group->is_object()) return;
    for (const auto& [name, value] : group->object) {
      (void)value;
      if (!WellFormedInstrumentName(name)) {
        check->Fail("metrics." + std::string(kind) + ": instrument \"" + name +
                    "\" violates the naming scheme (lowercase dotted "
                    "[a-z0-9_] segments, at least two)");
      }
      for (const auto& [other, other_kind] : seen) {
        if (other == name) {
          check->Fail("metrics: instrument \"" + name + "\" registered as "
                      "both " + other_kind + " and " + kind);
        }
      }
      seen.emplace_back(name, kind);
    }
  };
  lint_kind("counters");
  lint_kind("gauges");
  lint_kind("histograms");
}

int CheckReport(const Value& root) {
  SchemaCheck check;
  if (!root.is_object()) {
    check.Fail("report root is not an object");
    return check.failures();
  }
  const Value* version = check.Member(root, "sfpm_report_version",
                                      Value::Type::kNumber, "report");
  if (version != nullptr &&
      version->number != static_cast<double>(obs::kRunReportVersion)) {
    check.Fail("unsupported sfpm_report_version");
  }
  const Value* sfpm_version =
      check.Member(root, "sfpm_version", Value::Type::kString, "report");
  if (sfpm_version != nullptr && sfpm_version->string.empty()) {
    check.Fail("sfpm_version must be non-empty");
  }
  check.Member(root, "tool", Value::Type::kString, "report");
  check.Member(root, "command", Value::Type::kString, "report");
  const Value* config =
      check.Member(root, "config", Value::Type::kObject, "report");
  if (config != nullptr) {
    for (const auto& [key, value] : config->object) {
      if (!value.is_string()) {
        check.Fail("config member \"" + key + "\" is not a string");
      }
    }
  }
  const Value* spans =
      check.Member(root, "spans", Value::Type::kArray, "report");
  if (spans != nullptr) {
    for (size_t i = 0; i < spans->array.size(); ++i) {
      CheckSpan(&check, spans->array[i], i);
    }
  }
  const Value* metrics =
      check.Member(root, "metrics", Value::Type::kObject, "report");
  if (metrics != nullptr) {
    const Value* counters =
        check.Member(*metrics, "counters", Value::Type::kObject, "metrics");
    if (counters != nullptr) check.AllNumbers(*counters, "metrics.counters");
    const Value* gauges =
        check.Member(*metrics, "gauges", Value::Type::kObject, "metrics");
    if (gauges != nullptr) check.AllNumbers(*gauges, "metrics.gauges");
    const Value* histograms =
        check.Member(*metrics, "histograms", Value::Type::kObject, "metrics");
    if (histograms != nullptr) {
      for (const auto& [name, hist] : histograms->object) {
        if (!hist.is_object()) {
          check.Fail("histogram \"" + name + "\" is not an object");
          continue;
        }
        CheckHistogram(&check, hist, "metrics.histograms." + name);
      }
    }
    CheckInstrumentNames(&check, *metrics);
  }
  return check.failures();
}

int CheckTrace(const Value& root) {
  SchemaCheck check;
  if (!root.is_object()) {
    check.Fail("trace root is not an object");
    return check.failures();
  }
  const Value* unit =
      check.Member(root, "displayTimeUnit", Value::Type::kString, "trace");
  if (unit != nullptr && unit->string != "ms" && unit->string != "ns") {
    check.Fail("displayTimeUnit must be \"ms\" or \"ns\"");
  }
  const Value* events =
      check.Member(root, "traceEvents", Value::Type::kArray, "trace");
  if (events == nullptr) return check.failures();
  for (size_t i = 0; i < events->array.size(); ++i) {
    const std::string where = "traceEvents[" + std::to_string(i) + "]";
    const Value& event = events->array[i];
    if (!event.is_object()) {
      check.Fail(where + ": not an object");
      continue;
    }
    check.Member(event, "name", Value::Type::kString, where);
    const Value* ph = check.Member(event, "ph", Value::Type::kString, where);
    if (ph != nullptr && ph->string != "X") {
      check.Fail(where + ": ph must be \"X\" (complete event)");
    }
    const Value* ts = check.Member(event, "ts", Value::Type::kNumber, where);
    const Value* dur = check.Member(event, "dur", Value::Type::kNumber, where);
    if (ts != nullptr && ts->number < 0) check.Fail(where + ": negative ts");
    if (dur != nullptr && dur->number < 0) check.Fail(where + ": negative dur");
    check.Member(event, "pid", Value::Type::kNumber, where);
    check.Member(event, "tid", Value::Type::kNumber, where);
    const Value* args = check.Member(event, "args", Value::Type::kObject, where);
    if (args != nullptr) check.AllNumbers(*args, where + ".args");
  }
  return check.failures();
}

int Run(int argc, char** argv) {
  if (argc != 3 || (std::string(argv[1]) != "report" &&
                    std::string(argv[1]) != "trace")) {
    std::fprintf(stderr, "usage: %s report|trace <file.json>\n", argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  const std::string path = argv[2];
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::string text;
  char buffer[1 << 16];
  size_t read;
  while ((read = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, read);
  }
  std::fclose(f);

  const auto parsed = obs::json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 1;
  }
  const int failures = mode == "report" ? CheckReport(parsed.value())
                                        : CheckTrace(parsed.value());
  if (failures > 0) {
    std::fprintf(stderr, "%s: %d schema violation(s)\n", path.c_str(),
                 failures);
    return 1;
  }
  std::printf("%s: valid %s\n", path.c_str(), mode.c_str());
  return 0;
}

}  // namespace
}  // namespace sfpm

int main(int argc, char** argv) { return sfpm::Run(argc, argv); }
