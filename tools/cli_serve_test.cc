// End-to-end driver of the `cli_serve` ctest: runs the real `sfpm`
// binary — first `run` to produce city/txdb/patterns snapshots, then
// `serve` on them — and drives the server over a real loopback socket:
// every query type, the telemetry endpoint (/metrics exposition
// validation, /varz, /tracez, one `sfpm top --once` frame), malformed
// and oversized frame rejection, hard client disconnects (close and RST
// with responses unread), a SIGHUP hot swap under an open connection,
// and a graceful `shutdown` drain.
//
//   cli_serve_test <path-to-sfpm> <work-dir>
//
// Exits 0 only when every step behaved; prints the first failure.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/protocol.h"

namespace {

using sfpm::obs::json::Parse;
using sfpm::obs::json::Value;
using sfpm::serve::EncodeFrame;

/// The forked `sfpm serve` child; killed on any failure so it cannot
/// outlive the test holding ctest's output pipe open.
pid_t g_child = -1;

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "cli_serve_test: FAIL: %s\n", what.c_str());
  if (g_child > 0) {
    kill(g_child, SIGKILL);
    waitpid(g_child, nullptr, 0);
  }
  std::exit(1);
}

void Run(const std::string& command) {
  std::printf("cli_serve_test: %s\n", command.c_str());
  std::fflush(stdout);
  if (std::system(command.c_str()) != 0) Die("command failed: " + command);
}

/// Minimal blocking client over one framed-JSON connection.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) Die("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Die("connect to 127.0.0.1:" + std::to_string(port));
    }
  }
  ~Client() {
    if (fd_ >= 0) close(fd_);
  }

  /// Closes immediately, leaving any pending response bytes unread; the
  /// server's next send on this connection fails with EPIPE.
  void CloseNow() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  /// Hard disconnect: SO_LINGER{1,0} turns close() into an RST, so the
  /// server's next send fails with ECONNRESET instead of EPIPE.
  void Reset() {
    if (fd_ < 0) return;
    struct linger hard = {1, 0};
    setsockopt(fd_, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    close(fd_);
    fd_ = -1;
  }

  void SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) Die("send");
      sent += static_cast<size_t>(n);
    }
  }

  /// One complete frame; empty string on EOF.
  std::string RecvFrame() {
    std::string header = RecvExactly(4);
    if (header.empty()) return "";
    uint32_t length = 0;
    std::memcpy(&length, header.data(), 4);
    return RecvExactly(length);
  }

  bool AtEof() { return RecvExactly(1).empty(); }

  /// Sends one request, requires an `ok` response, returns its `result`.
  Value Query(const std::string& request) {
    SendRaw(EncodeFrame(request));
    const std::string response = RecvFrame();
    if (response.empty()) Die("no response to " + request);
    auto parsed = Parse(response);
    if (!parsed.ok()) Die("bad response JSON: " + response);
    const Value* ok = parsed.value().Find("ok");
    if (ok == nullptr || !ok->boolean) {
      Die("error response to " + request + ": " + response);
    }
    const Value* result = parsed.value().Find("result");
    if (result == nullptr) Die("no result in: " + response);
    return *result;
  }

 private:
  std::string RecvExactly(size_t n) {
    std::string out;
    char buf[4096];
    while (out.size() < n) {
      const ssize_t got =
          recv(fd_, buf, std::min(sizeof(buf), n - out.size()), 0);
      if (got <= 0) {
        if (got < 0 && errno == EINTR) continue;
        return std::string();
      }
      out.append(buf, static_cast<size_t>(got));
    }
    return out;
  }

  int fd_ = -1;
};

/// Both bound ports: line 1 is the query port, line 2 the telemetry port
/// (present because the test passes --metrics-port).
struct BoundPorts {
  uint16_t query = 0;
  uint16_t metrics = 0;
};

BoundPorts WaitForPortFile(const std::string& path, pid_t child) {
  for (int i = 0; i < 300; ++i) {  // 30 s budget.
    std::ifstream in(path);
    int port = 0;
    int metrics = 0;
    if (in >> port >> metrics && port > 0 && metrics > 0) {
      return {static_cast<uint16_t>(port), static_cast<uint16_t>(metrics)};
    }
    int status = 0;
    if (waitpid(child, &status, WNOHANG) == child) {
      Die("sfpm serve exited before listening");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  Die("timed out waiting for " + path);
}

/// One plain-HTTP GET against the telemetry port; returns the body, Dies
/// on connection failure or a non-200 status.
std::string HttpGet(uint16_t port, const std::string& path) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) Die("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    Die("connect to telemetry port " + std::to_string(port));
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  if (send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    close(fd);
    Die("send to telemetry port");
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) Die("malformed HTTP from " + path);
  if (response.substr(0, response.find("\r\n")).find(" 200 ") ==
      std::string::npos) {
    Die("non-200 from " + path + ": " + response);
  }
  return response.substr(header_end + 4);
}

/// Minimal Prometheus text-format validator: every line is a # HELP /
/// # TYPE comment or `name[{labels}] value`; samples only appear after
/// their family's TYPE line; histogram `le` buckets are cumulative and
/// end with +Inf == _count. Dies on the first violation.
void ValidateExposition(const std::string& text) {
  std::string declared_family;  // Last # TYPE name seen.
  std::string bucket_family;
  double previous_bucket = -1.0;
  size_t line_start = 0;
  while (line_start < text.size()) {
    size_t line_end = text.find('\n', line_start);
    if (line_end == std::string::npos) Die("exposition missing final newline");
    const std::string line = text.substr(line_start, line_end - line_start);
    line_start = line_end + 1;
    if (line.empty()) Die("empty exposition line");
    if (line[0] == '#') {
      // "# HELP <name> <text>" or "# TYPE <name> counter|gauge|histogram".
      if (line.rfind("# HELP ", 0) != 0 && line.rfind("# TYPE ", 0) != 0) {
        Die("bad comment line: " + line);
      }
      const size_t name_start = 7;
      const size_t name_end = line.find(' ', name_start);
      if (name_end == std::string::npos) Die("truncated comment: " + line);
      if (line.rfind("# TYPE ", 0) == 0) {
        declared_family = line.substr(name_start, name_end - name_start);
        const std::string kind = line.substr(name_end + 1);
        if (kind != "counter" && kind != "gauge" && kind != "histogram") {
          Die("unknown TYPE: " + line);
        }
        bucket_family.clear();
        previous_bucket = -1.0;
      }
      continue;
    }
    const size_t space = line.rfind(' ');
    if (space == std::string::npos) Die("sample without value: " + line);
    const std::string sample = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    char* value_end = nullptr;
    const double parsed = std::strtod(value.c_str(), &value_end);
    if (value_end == value.c_str() || *value_end != '\0') {
      Die("unparsable sample value: " + line);
    }
    std::string name = sample.substr(0, sample.find('{'));
    // A histogram family's samples are <name>_bucket/_sum/_count.
    std::string family = name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s(suffix);
      if (family.size() > s.size() &&
          family.compare(family.size() - s.size(), s.size(), s) == 0 &&
          declared_family == family.substr(0, family.size() - s.size())) {
        family = family.substr(0, family.size() - s.size());
        break;
      }
    }
    if (family != declared_family) {
      Die("sample before its TYPE declaration: " + line);
    }
    if (name == declared_family + "_bucket") {
      if (bucket_family != declared_family) {
        bucket_family = declared_family;
        previous_bucket = -1.0;
      }
      if (parsed < previous_bucket) {
        Die("histogram buckets not cumulative: " + line);
      }
      previous_bucket = parsed;
      if (sample.find("{le=\"") == std::string::npos) {
        Die("bucket without le label: " + line);
      }
    }
  }
}

double NumberField(const Value& value, const char* key) {
  const Value* field = value.Find(key);
  if (field == nullptr) Die(std::string("missing field ") + key);
  return field->number;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: cli_serve_test <sfpm> <work-dir>\n");
    return 2;
  }
  const std::string sfpm = argv[1];
  const std::string dir = argv[2];
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Stage 1: a real pipeline run produces the snapshots to serve.
  Run(sfpm + " run --dir " + dir + " --seed 7 --minsup 0.15 --threads 2");

  // Stage 2: launch the server on an ephemeral port.
  const std::string port_file = dir + "/port";
  const pid_t child = fork();
  if (child < 0) Die("fork");
  g_child = child;
  if (child == 0) {
    execl(sfpm.c_str(), sfpm.c_str(), "serve", "--snapshot",
          (dir + "/city.sfpm").c_str(), "--snapshot",
          (dir + "/txdb.sfpm").c_str(), "--snapshot",
          (dir + "/patterns.sfpm").c_str(), "--port-file", port_file.c_str(),
          "--threads", "2", "--metrics-port", "0", "--slow-query-ms", "0",
          "--trace-sample", "1", static_cast<char*>(nullptr));
    std::perror("execl");
    std::_Exit(127);
  }
  const BoundPorts ports = WaitForPortFile(port_file, child);
  const uint16_t port = ports.query;

  // Stage 3: happy-path queries of every type on one connection.
  Client client(port);
  const Value status = client.Query("{\"q\":\"status\"}");
  if (NumberField(status, "generation") != 1.0) Die("expected generation 1");
  const Value* layers = status.Find("layers");
  if (layers == nullptr || layers->array.empty()) Die("no layers served");
  const std::string layer = layers->array[0].Find("type")->string;

  const Value patterns = client.Query("{\"q\":\"patterns\",\"limit\":5}");
  if (NumberField(patterns, "total") <= 0) Die("no patterns served");
  client.Query("{\"q\":\"rules\",\"min_confidence\":0.5}");
  const Value predicates =
      client.Query("{\"q\":\"predicates\",\"transaction\":0}");
  if (predicates.Find("items") == nullptr) Die("predicates has no items");
  const Value window = client.Query(
      "{\"q\":\"window\",\"layer\":\"" + layer +
      "\",\"bounds\":[-1e9,-1e9,1e9,1e9],\"limit\":3}");
  if (NumberField(window, "total") <= 0) Die("empty window over " + layer);
  const Value relate = client.Query(
      "{\"q\":\"relate\",\"layer_a\":\"" + layer + "\",\"id_a\":0,"
      "\"layer_b\":\"" + layer + "\",\"id_b\":0}");
  if (relate.Find("relation")->string != "equals") {
    Die("self-relate should be equals, got " +
        relate.Find("relation")->string);
  }

  // Stage 4: the telemetry endpoint over real HTTP — health, a valid
  // Prometheus exposition covering the serve instruments, /varz JSON,
  // and one `sfpm top --once` frame.
  if (HttpGet(ports.metrics, "/healthz") != "ok\n") Die("healthz not ok");
  HttpGet(ports.metrics, "/metrics");  // Counts serve.metrics.requests.
  const std::string exposition = HttpGet(ports.metrics, "/metrics");
  ValidateExposition(exposition);
  for (const char* instrument :
       {"sfpm_serve_queries ", "sfpm_serve_queries_status ",
        "sfpm_serve_connections ", "sfpm_serve_workers ",
        "sfpm_serve_inflight ", "sfpm_serve_snapshot_generation ",
        "sfpm_serve_slow_queries ", "sfpm_serve_metrics_requests ",
        "sfpm_serve_latency_ms_status_count ",
        "sfpm_serve_latency_ms_status_sum ",
        "sfpm_serve_latency_ms_status_bucket{le=\"+Inf\"} "}) {
    if (exposition.find(instrument) == std::string::npos) {
      Die("exposition missing " + std::string(instrument) + ":\n" +
          exposition);
    }
  }
  {
    auto varz = Parse(HttpGet(ports.metrics, "/varz"));
    if (!varz.ok() || !varz.value().is_object()) Die("varz not JSON");
    if (NumberField(varz.value(), "generation") != 1.0) {
      Die("varz generation should be 1");
    }
    if (NumberField(varz.value(), "port") != static_cast<double>(port)) {
      Die("varz port mismatch");
    }
    // --slow-query-ms 0 put every request on the books.
    if (NumberField(varz.value(), "slow_query_total") <= 0) {
      Die("no slow queries recorded at threshold 0");
    }
    if (NumberField(varz.value(), "trace_total") <= 0) {
      Die("no traces sampled at --trace-sample 1");
    }
    auto tracez = Parse(HttpGet(ports.metrics, "/tracez"));
    if (!tracez.ok() || tracez.value().Find("traceEvents") == nullptr ||
        tracez.value().Find("traceEvents")->array.empty()) {
      Die("tracez has no events");
    }
  }
  {
    const std::string top_out = dir + "/top.txt";
    Run(sfpm + " top --metrics-port " + std::to_string(ports.metrics) +
        " --once > " + top_out);
    std::ifstream in(top_out);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (text.find("sfpm top") == std::string::npos ||
        text.find("qps") == std::string::npos ||
        text.find("status") == std::string::npos) {
      Die("sfpm top --once frame looks wrong:\n" + text);
    }
  }

  // Stage 5: protocol violations are answered then dropped, and do not
  // disturb the long-lived connection.
  {
    Client bad(port);
    bad.SendRaw(std::string(4, '\0'));  // Zero-length frame.
    auto parsed = Parse(bad.RecvFrame());
    if (!parsed.ok() ||
        parsed.value().Find("error")->Find("code")->string != "bad_frame") {
      Die("zero-length frame not rejected as bad_frame");
    }
    if (!bad.AtEof()) Die("connection should close after bad_frame");
  }
  {
    Client oversized(port);
    // Declared length far beyond the 1 MiB default: rejected on sight.
    const uint32_t huge = 512u << 20;
    std::string prefix(4, '\0');
    std::memcpy(prefix.data(), &huge, 4);
    oversized.SendRaw(prefix);
    auto parsed = Parse(oversized.RecvFrame());
    if (!parsed.ok() ||
        parsed.value().Find("error")->Find("code")->string != "bad_frame") {
      Die("oversized frame not rejected as bad_frame");
    }
    if (!oversized.AtEof()) Die("connection should close after oversized");
  }

  // Stage 5b: hard disconnects on the response path. A peer that sends
  // a query and vanishes without ever reading the reply — both a plain
  // close (server send hits EPIPE) and an RST close (ECONNRESET) — must
  // cost the server nothing but a counted send error: no SIGPIPE death,
  // no wedged worker, and the long-lived connection keeps answering.
  for (int round = 0; round < 3; ++round) {
    Client gone(port);
    gone.SendRaw(EncodeFrame("{\"q\":\"patterns\",\"limit\":100000}"));
    gone.CloseNow();
  }
  for (int round = 0; round < 3; ++round) {
    Client rst(port);
    rst.SendRaw(EncodeFrame("{\"q\":\"patterns\",\"limit\":100000}"));
    rst.Reset();
  }
  if (NumberField(client.Query("{\"q\":\"status\"}"), "generation") != 1.0) {
    Die("server wedged after hard disconnects");
  }

  // Stage 6: SIGHUP hot swap while the first connection stays open.
  if (kill(child, SIGHUP) != 0) Die("kill SIGHUP");
  double generation = 1.0;
  for (int i = 0; i < 100 && generation < 2.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    generation = NumberField(client.Query("{\"q\":\"status\"}"),
                             "generation");
  }
  if (generation != 2.0) Die("SIGHUP reload never reached generation 2");
  // The pre-swap connection keeps answering real queries afterwards.
  if (NumberField(client.Query("{\"q\":\"patterns\",\"limit\":1}"),
                  "total") <= 0) {
    Die("patterns query failed after hot swap");
  }

  // Stage 7: graceful shutdown via the admin query; exit code 0.
  const Value bye = client.Query("{\"q\":\"shutdown\"}");
  if (bye.Find("draining") == nullptr) Die("shutdown did not acknowledge");
  int status_code = 0;
  if (waitpid(child, &status_code, 0) != child) Die("waitpid");
  if (!WIFEXITED(status_code) || WEXITSTATUS(status_code) != 0) {
    Die("sfpm serve exited with status " + std::to_string(status_code));
  }

  std::printf("cli_serve_test: PASS\n");
  return 0;
}
