// End-to-end driver of the `cli_serve` ctest: runs the real `sfpm`
// binary — first `run` to produce city/txdb/patterns snapshots, then
// `serve` on them — and drives the server over a real loopback socket:
// every query type, malformed and oversized frame rejection, a SIGHUP
// hot swap under an open connection, and a graceful `shutdown` drain.
//
//   cli_serve_test <path-to-sfpm> <work-dir>
//
// Exits 0 only when every step behaved; prints the first failure.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/protocol.h"

namespace {

using sfpm::obs::json::Parse;
using sfpm::obs::json::Value;
using sfpm::serve::EncodeFrame;

/// The forked `sfpm serve` child; killed on any failure so it cannot
/// outlive the test holding ctest's output pipe open.
pid_t g_child = -1;

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "cli_serve_test: FAIL: %s\n", what.c_str());
  if (g_child > 0) {
    kill(g_child, SIGKILL);
    waitpid(g_child, nullptr, 0);
  }
  std::exit(1);
}

void Run(const std::string& command) {
  std::printf("cli_serve_test: %s\n", command.c_str());
  std::fflush(stdout);
  if (std::system(command.c_str()) != 0) Die("command failed: " + command);
}

/// Minimal blocking client over one framed-JSON connection.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) Die("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Die("connect to 127.0.0.1:" + std::to_string(port));
    }
  }
  ~Client() {
    if (fd_ >= 0) close(fd_);
  }

  void SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) Die("send");
      sent += static_cast<size_t>(n);
    }
  }

  /// One complete frame; empty string on EOF.
  std::string RecvFrame() {
    std::string header = RecvExactly(4);
    if (header.empty()) return "";
    uint32_t length = 0;
    std::memcpy(&length, header.data(), 4);
    return RecvExactly(length);
  }

  bool AtEof() { return RecvExactly(1).empty(); }

  /// Sends one request, requires an `ok` response, returns its `result`.
  Value Query(const std::string& request) {
    SendRaw(EncodeFrame(request));
    const std::string response = RecvFrame();
    if (response.empty()) Die("no response to " + request);
    auto parsed = Parse(response);
    if (!parsed.ok()) Die("bad response JSON: " + response);
    const Value* ok = parsed.value().Find("ok");
    if (ok == nullptr || !ok->boolean) {
      Die("error response to " + request + ": " + response);
    }
    const Value* result = parsed.value().Find("result");
    if (result == nullptr) Die("no result in: " + response);
    return *result;
  }

 private:
  std::string RecvExactly(size_t n) {
    std::string out;
    char buf[4096];
    while (out.size() < n) {
      const ssize_t got =
          recv(fd_, buf, std::min(sizeof(buf), n - out.size()), 0);
      if (got <= 0) {
        if (got < 0 && errno == EINTR) continue;
        return std::string();
      }
      out.append(buf, static_cast<size_t>(got));
    }
    return out;
  }

  int fd_ = -1;
};

uint16_t WaitForPortFile(const std::string& path, pid_t child) {
  for (int i = 0; i < 300; ++i) {  // 30 s budget.
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return static_cast<uint16_t>(port);
    int status = 0;
    if (waitpid(child, &status, WNOHANG) == child) {
      Die("sfpm serve exited before listening");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  Die("timed out waiting for " + path);
}

double NumberField(const Value& value, const char* key) {
  const Value* field = value.Find(key);
  if (field == nullptr) Die(std::string("missing field ") + key);
  return field->number;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: cli_serve_test <sfpm> <work-dir>\n");
    return 2;
  }
  const std::string sfpm = argv[1];
  const std::string dir = argv[2];
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Stage 1: a real pipeline run produces the snapshots to serve.
  Run(sfpm + " run --dir " + dir + " --seed 7 --minsup 0.15 --threads 2");

  // Stage 2: launch the server on an ephemeral port.
  const std::string port_file = dir + "/port";
  const pid_t child = fork();
  if (child < 0) Die("fork");
  g_child = child;
  if (child == 0) {
    execl(sfpm.c_str(), sfpm.c_str(), "serve", "--snapshot",
          (dir + "/city.sfpm").c_str(), "--snapshot",
          (dir + "/txdb.sfpm").c_str(), "--snapshot",
          (dir + "/patterns.sfpm").c_str(), "--port-file", port_file.c_str(),
          "--threads", "2", static_cast<char*>(nullptr));
    std::perror("execl");
    std::_Exit(127);
  }
  const uint16_t port = WaitForPortFile(port_file, child);

  // Stage 3: happy-path queries of every type on one connection.
  Client client(port);
  const Value status = client.Query("{\"q\":\"status\"}");
  if (NumberField(status, "generation") != 1.0) Die("expected generation 1");
  const Value* layers = status.Find("layers");
  if (layers == nullptr || layers->array.empty()) Die("no layers served");
  const std::string layer = layers->array[0].Find("type")->string;

  const Value patterns = client.Query("{\"q\":\"patterns\",\"limit\":5}");
  if (NumberField(patterns, "total") <= 0) Die("no patterns served");
  client.Query("{\"q\":\"rules\",\"min_confidence\":0.5}");
  const Value predicates =
      client.Query("{\"q\":\"predicates\",\"transaction\":0}");
  if (predicates.Find("items") == nullptr) Die("predicates has no items");
  const Value window = client.Query(
      "{\"q\":\"window\",\"layer\":\"" + layer +
      "\",\"bounds\":[-1e9,-1e9,1e9,1e9],\"limit\":3}");
  if (NumberField(window, "total") <= 0) Die("empty window over " + layer);
  const Value relate = client.Query(
      "{\"q\":\"relate\",\"layer_a\":\"" + layer + "\",\"id_a\":0,"
      "\"layer_b\":\"" + layer + "\",\"id_b\":0}");
  if (relate.Find("relation")->string != "equals") {
    Die("self-relate should be equals, got " +
        relate.Find("relation")->string);
  }

  // Stage 4: protocol violations are answered then dropped, and do not
  // disturb the long-lived connection.
  {
    Client bad(port);
    bad.SendRaw(std::string(4, '\0'));  // Zero-length frame.
    auto parsed = Parse(bad.RecvFrame());
    if (!parsed.ok() ||
        parsed.value().Find("error")->Find("code")->string != "bad_frame") {
      Die("zero-length frame not rejected as bad_frame");
    }
    if (!bad.AtEof()) Die("connection should close after bad_frame");
  }
  {
    Client oversized(port);
    // Declared length far beyond the 1 MiB default: rejected on sight.
    const uint32_t huge = 512u << 20;
    std::string prefix(4, '\0');
    std::memcpy(prefix.data(), &huge, 4);
    oversized.SendRaw(prefix);
    auto parsed = Parse(oversized.RecvFrame());
    if (!parsed.ok() ||
        parsed.value().Find("error")->Find("code")->string != "bad_frame") {
      Die("oversized frame not rejected as bad_frame");
    }
    if (!oversized.AtEof()) Die("connection should close after oversized");
  }

  // Stage 5: SIGHUP hot swap while the first connection stays open.
  if (kill(child, SIGHUP) != 0) Die("kill SIGHUP");
  double generation = 1.0;
  for (int i = 0; i < 100 && generation < 2.0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    generation = NumberField(client.Query("{\"q\":\"status\"}"),
                             "generation");
  }
  if (generation != 2.0) Die("SIGHUP reload never reached generation 2");
  // The pre-swap connection keeps answering real queries afterwards.
  if (NumberField(client.Query("{\"q\":\"patterns\",\"limit\":1}"),
                  "total") <= 0) {
    Die("patterns query failed after hot swap");
  }

  // Stage 6: graceful shutdown via the admin query; exit code 0.
  const Value bye = client.Query("{\"q\":\"shutdown\"}");
  if (bye.Find("draining") == nullptr) Die("shutdown did not acknowledge");
  int status_code = 0;
  if (waitpid(child, &status_code, 0) != child) Die("waitpid");
  if (!WIFEXITED(status_code) || WEXITSTATUS(status_code) != 0) {
    Die("sfpm serve exited with status " + std::to_string(status_code));
  }

  std::printf("cli_serve_test: PASS\n");
  return 0;
}
