#include "sfpm_top.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "util/status.h"

namespace sfpm {
namespace tools {

namespace {

using obs::json::Value;

/// One-shot HTTP GET against the loopback telemetry endpoint. Small on
/// purpose: request, `Connection: close`, read to EOF, demand a 200.
Result<std::string> HttpGet(uint16_t port, const std::string& path,
                            int timeout_ms) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return Status::Internal("connect 127.0.0.1:" + std::to_string(port) +
                            ": " + strerror(errno));
  }

  const std::string request = "GET " + path +
                              " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                              "Connection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = send(fd, request.data() + sent, request.size() - sent,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return Status::Internal("send: " + std::string(strerror(errno)));
    }
    sent += static_cast<size_t>(n);
  }

  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return Status::Internal("recv: " + std::string(strerror(errno)));
    }
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);

  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::Internal("malformed HTTP response");
  }
  const std::string status_line = response.substr(0, response.find("\r\n"));
  if (status_line.find(" 200 ") == std::string::npos) {
    return Status::Internal("HTTP error: " + status_line);
  }
  return response.substr(header_end + 4);
}

double Num(const Value& object, const char* key, double fallback = 0.0) {
  const Value* v = object.Find(key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string Str(const Value& object, const char* key) {
  const Value* v = object.Find(key);
  return v != nullptr && v->is_string() ? v->string : "";
}

/// Renders one dashboard frame from a parsed /varz document.
void RenderFrame(const Value& varz, uint16_t port) {
  const double uptime_s = Num(varz, "uptime_ms") / 1000.0;
  const Value* shutting = varz.Find("shutting_down");
  const bool draining = shutting != nullptr &&
                        shutting->type == Value::Type::kBool &&
                        shutting->boolean;
  std::printf("sfpm top — 127.0.0.1:%u   gen %.0f   workers %.0f   "
              "inflight %.0f   uptime %.1fs%s\n",
              static_cast<unsigned>(port), Num(varz, "generation"),
              Num(varz, "workers"), Num(varz, "inflight"), uptime_s,
              draining ? "   DRAINING" : "");

  const Value* rates = varz.Find("rates");
  const double qps = rates != nullptr ? Num(*rates, "qps") : 0.0;
  const double eps = rates != nullptr ? Num(*rates, "errors_per_sec") : 0.0;
  std::printf("qps %.1f   errors/s %.2f   slow %.0f (>= %.0f ms)   "
              "window %.0fs\n\n",
              qps, eps, Num(varz, "slow_query_total"),
              Num(varz, "slow_query_ms"), Num(varz, "window_ms") / 1000.0);

  std::printf("%-12s %10s %9s %9s %8s %8s  %s\n", "type", "count", "qps",
              "mean_ms", "p50_ms", "p99_ms", "win");
  const Value* latency = varz.Find("latency_ms");
  const Value* per_type =
      rates != nullptr ? rates->Find("per_type") : nullptr;
  if (latency != nullptr && latency->is_object()) {
    for (const auto& [type, stats] : latency->object) {
      const double type_qps =
          per_type != nullptr ? Num(*per_type, type.c_str()) : 0.0;
      const Value* windowed = stats.Find("windowed");
      const bool win = windowed != nullptr &&
                       windowed->type == Value::Type::kBool &&
                       windowed->boolean;
      std::printf("%-12s %10.0f %9.1f %9.3f %8.2f %8.2f  %s\n", type.c_str(),
                  Num(stats, "count"), type_qps, Num(stats, "mean"),
                  Num(stats, "p50"), Num(stats, "p99"), win ? "*" : "-");
    }
  }

  const Value* slow = varz.Find("slow_queries");
  if (slow != nullptr && slow->is_array() && !slow->array.empty()) {
    std::printf("\nrecent slow queries:\n");
    const size_t first = slow->array.size() > 5 ? slow->array.size() - 5 : 0;
    for (size_t i = first; i < slow->array.size(); ++i) {
      const Value& entry = slow->array[i];
      std::printf("  %-8s %-12s %8.1f ms   gen %.0f\n",
                  Str(entry, "rid").c_str(), Str(entry, "type").c_str(),
                  Num(entry, "latency_ms"), Num(entry, "generation"));
    }
  }
  std::fflush(stdout);
}

}  // namespace

int RunTop(const Args& args) {
  if (!args.Has("metrics-port")) {
    std::fprintf(stderr,
                 "error: sfpm top needs --metrics-port (the --metrics-port "
                 "of a running sfpm serve)\n");
    return 1;
  }
  uint16_t port = 0;
  {
    const std::string& value = args.Get("metrics-port");
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos ||
        std::stoul(value) == 0 || std::stoul(value) > 65535) {
      std::fprintf(stderr, "error: bad --metrics-port value\n");
      return 1;
    }
    port = static_cast<uint16_t>(std::stoul(value));
  }
  const bool once = args.Has("once");
  uint64_t interval_ms = 1000;
  if (args.Has("interval-ms")) {
    const std::string& value = args.Get("interval-ms");
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
      std::fprintf(stderr, "error: bad --interval-ms value\n");
      return 1;
    }
    interval_ms = std::stoull(value);
  }
  uint64_t iterations = once ? 1 : 0;  // 0 = until interrupted.
  if (args.Has("iterations")) {
    const std::string& value = args.Get("iterations");
    if (value.empty() ||
        value.find_first_not_of("0123456789") != std::string::npos) {
      std::fprintf(stderr, "error: bad --iterations value\n");
      return 1;
    }
    iterations = std::stoull(value);
  }

  for (uint64_t frame = 0; iterations == 0 || frame < iterations; ++frame) {
    const auto body = HttpGet(port, "/varz", 2000);
    if (!body.ok()) {
      std::fprintf(stderr, "error: %s\n", body.status().ToString().c_str());
      return 1;
    }
    const auto varz = obs::json::Parse(body.value());
    if (!varz.ok() || !varz.value().is_object()) {
      std::fprintf(stderr, "error: /varz did not return a JSON object\n");
      return 1;
    }
    if (!once) std::printf("\x1b[2J\x1b[H");  // Clear + home.
    RenderFrame(varz.value(), port);
    if (iterations != 0 && frame + 1 >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

}  // namespace tools
}  // namespace sfpm
