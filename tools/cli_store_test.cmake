# Staged snapshot pipeline: `sfpm run` must produce byte-identical
# snapshots to the individual generate-city/extract/mine commands, at any
# thread count; reruns must skip up-to-date stages; corrupted inputs must
# fail cleanly; error paths must name the offending token.
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR}/run1 ${WORK_DIR}/run4 ${WORK_DIR}/staged)

# Driver at 1 and 4 threads.
execute_process(
  COMMAND ${SFPM_CLI} run --dir ${WORK_DIR}/run1 --seed 5 --minsup 0.15
    --threads 1
  RESULT_VARIABLE rc OUTPUT_VARIABLE out1)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run --threads 1 failed: ${out1}")
endif()
execute_process(
  COMMAND ${SFPM_CLI} run --dir ${WORK_DIR}/run4 --seed 5 --minsup 0.15
    --threads 4
  RESULT_VARIABLE rc OUTPUT_VARIABLE out4)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run --threads 4 failed: ${out4}")
endif()

# Stage-wise, mixing thread counts.
execute_process(
  COMMAND ${SFPM_CLI} generate-city --seed 5 --out ${WORK_DIR}/staged/city.sfpm
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate-city --out failed")
endif()
execute_process(
  COMMAND ${SFPM_CLI} extract --in ${WORK_DIR}/staged/city.sfpm
    --out ${WORK_DIR}/staged/txdb.sfpm --threads 3
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "extract --in failed")
endif()
execute_process(
  COMMAND ${SFPM_CLI} mine --in ${WORK_DIR}/staged/txdb.sfpm
    --out ${WORK_DIR}/staged/patterns.sfpm --minsup 0.15 --threads 2
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mine --in failed")
endif()

# Byte-for-byte identity across thread counts and process layouts.
foreach(leaf city.sfpm txdb.sfpm patterns.sfpm)
  file(READ ${WORK_DIR}/run1/${leaf} a HEX)
  file(READ ${WORK_DIR}/run4/${leaf} b HEX)
  file(READ ${WORK_DIR}/staged/${leaf} c HEX)
  if(NOT a STREQUAL b)
    message(FATAL_ERROR "${leaf} differs between 1 and 4 threads")
  endif()
  if(NOT a STREQUAL c)
    message(FATAL_ERROR "${leaf} differs between run and staged commands")
  endif()
endforeach()

# A rerun must skip every stage.
execute_process(
  COMMAND ${SFPM_CLI} run --dir ${WORK_DIR}/run1 --seed 5 --minsup 0.15
  RESULT_VARIABLE rc OUTPUT_VARIABLE rerun)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "rerun failed")
endif()
string(REGEX MATCHALL "up to date" skips "${rerun}")
list(LENGTH skips num_skips)
if(NOT num_skips EQUAL 3)
  message(FATAL_ERROR "rerun skipped ${num_skips}/3 stages: ${rerun}")
endif()

# A parameter change reruns only the affected stage.
execute_process(
  COMMAND ${SFPM_CLI} run --dir ${WORK_DIR}/run1 --seed 5 --minsup 0.3
  RESULT_VARIABLE rc OUTPUT_VARIABLE remine)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "minsup rerun failed")
endif()
string(REGEX MATCHALL "up to date" skips "${remine}")
list(LENGTH skips num_skips)
if(NOT num_skips EQUAL 2)
  message(FATAL_ERROR "minsup change skipped ${num_skips}/3: ${remine}")
endif()

# Corrupted input: truncate the txdb (cmake cannot flip raw bytes
# portably, but truncation exercises the same rejection path) and check
# that mine fails with a clear "corrupt" diagnostic.
file(SIZE ${WORK_DIR}/staged/txdb.sfpm full_size)
math(EXPR cut "${full_size} - 7")
find_program(DD_TOOL dd)
if(DD_TOOL)
  execute_process(
    COMMAND ${DD_TOOL} if=${WORK_DIR}/staged/txdb.sfpm
      of=${WORK_DIR}/staged/txdb_trunc.sfpm bs=1 count=${cut}
    RESULT_VARIABLE rc ERROR_QUIET OUTPUT_QUIET)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "dd truncation failed")
  endif()
  execute_process(
    COMMAND ${SFPM_CLI} mine --in ${WORK_DIR}/staged/txdb_trunc.sfpm
      --out ${WORK_DIR}/staged/bad.sfpm --minsup 0.15
    RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_VARIABLE out)
  if(rc EQUAL 0)
    message(FATAL_ERROR "mine accepted a truncated snapshot")
  endif()
  string(FIND "${err}${out}" "corrupt" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "truncation error does not say corrupt: ${err}${out}")
  endif()
endif()

# Error paths: unknown command and unknown flag name the offending token
# and exit non-zero.
execute_process(
  COMMAND ${SFPM_CLI} frobnicate
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_VARIABLE out)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown command exited 0")
endif()
string(FIND "${err}${out}" "frobnicate" found)
if(found EQUAL -1)
  message(FATAL_ERROR "unknown-command error does not name it: ${err}${out}")
endif()
execute_process(
  COMMAND ${SFPM_CLI} run --bogus-flag 1
  RESULT_VARIABLE rc ERROR_VARIABLE err OUTPUT_VARIABLE out)
if(rc EQUAL 0)
  message(FATAL_ERROR "unknown flag exited 0")
endif()
string(FIND "${err}${out}" "bogus-flag" found)
if(found EQUAL -1)
  message(FATAL_ERROR "unknown-flag error does not name it: ${err}${out}")
endif()

# --version prints the snapshot format.
execute_process(
  COMMAND ${SFPM_CLI} --version
  RESULT_VARIABLE rc OUTPUT_VARIABLE ver)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--version failed")
endif()
string(FIND "${ver}" "snapshot format" found)
if(found EQUAL -1)
  message(FATAL_ERROR "--version missing snapshot format: ${ver}")
endif()
