// sfpm_fuzz — seed-driven property/differential fuzzing harness.
//
// Modes:
//   sfpm_fuzz [--oracle NAME ...] [--iterations N] [--seed S]
//             [--corpus-out DIR] [--max-failures N] [--shrink-checks N]
//       Fresh fuzzing. Exit 0 when every invariant held, 1 on failures
//       (minimized repros are written to --corpus-out when given).
//
//   sfpm_fuzz --replay FILE_OR_DIR [...]
//       Replays repro files (or every *.repro in a directory). Exit 0
//       when every recorded case passes — i.e. the bugs stay fixed.
//
//   sfpm_fuzz --smoke [--corpus DIR]
//       CI gate: replays the committed corpus, then runs a short fixed-
//       seed fresh fuzz over every family. Deterministic, a few seconds.
//
//   sfpm_fuzz --list
//       Prints the registered oracle families.
//
// See docs/TESTING.md for the corpus workflow.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "fuzz/fuzzer.h"
#include "fuzz/oracles.h"
#include "util/args.h"

namespace {

using sfpm::fuzz::FuzzOptions;
using sfpm::fuzz::FuzzReport;

int Fail(const FuzzReport& report) {
  std::fprintf(stderr, "%s\n", report.Summary().c_str());
  return report.ok() ? 0 : 1;
}

uint64_t ParseU64(const std::string& s, uint64_t fallback) {
  if (s.empty()) return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  return end == s.c_str() ? fallback : static_cast<uint64_t>(v);
}

int RunReplay(const std::vector<std::string>& targets) {
  size_t cases = 0;
  size_t failures = 0;
  for (const std::string& target : targets) {
    std::error_code ec;
    if (std::filesystem::is_directory(target, ec)) {
      sfpm::Result<FuzzReport> report = sfpm::fuzz::ReplayCorpus(target);
      if (!report.ok()) {
        std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
        return 2;
      }
      cases += report.value().cases_checked;
      failures += report.value().failures.size();
      if (!report.value().ok()) {
        std::fprintf(stderr, "%s\n", report.value().Summary().c_str());
      }
    } else {
      ++cases;
      const sfpm::Status st = sfpm::fuzz::ReplayFile(target);
      if (!st.ok()) {
        ++failures;
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
      }
    }
  }
  std::printf("replayed %zu case(s), %zu failure(s)\n", cases, failures);
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  sfpm::Args args(argc, argv);

  if (args.Has("list")) {
    for (const sfpm::fuzz::Oracle* oracle : sfpm::fuzz::AllOracles()) {
      std::printf("%s\n", oracle->Name().c_str());
    }
    return 0;
  }

  if (args.Has("replay")) {
    return RunReplay(args.All("replay"));
  }

  FuzzOptions options;
  options.seed = ParseU64(args.Get("seed"), options.seed);
  options.iterations =
      static_cast<size_t>(ParseU64(args.Get("iterations"), 0));
  options.max_failures = static_cast<size_t>(
      ParseU64(args.Get("max-failures"), options.max_failures));
  options.shrink_checks = static_cast<size_t>(
      ParseU64(args.Get("shrink-checks"), options.shrink_checks));
  options.corpus_dir = args.Get("corpus-out");
  options.oracle_names = args.All("oracle");

  if (args.Has("smoke")) {
    // CI gate, stage 1: the committed corpus must replay clean.
    const std::string corpus = args.Get("corpus", "tests/fuzz/corpus");
    std::error_code ec;
    if (std::filesystem::is_directory(corpus, ec)) {
      const int rc = RunReplay({corpus});
      if (rc != 0) return rc;
    } else {
      std::printf("no corpus at %s, skipping replay stage\n", corpus.c_str());
    }
    // Stage 2: short fixed-seed fresh fuzz across every family.
    if (options.iterations == 0) options.iterations = 150;
  } else if (options.iterations == 0) {
    options.iterations = 1000;
  }

  sfpm::Result<FuzzReport> report = sfpm::fuzz::RunFuzzer(options);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  std::printf("%s\n", report.value().Summary().c_str());
  return Fail(report.value());
}
