// End-to-end driver of the `cli_coloc` ctest: runs the real `sfpm`
// binary through the co-location pipeline — `run --backend coloc` at
// two thread counts (byte-comparing the mined snapshot), then `serve`
// on the result — and drives the `colocations` query over a real
// loopback socket: the inventory in `status`, the default listing,
// prevalence / size / membership filters, the limit-vs-total split,
// and rejection of an unknown `contains` type. Finishes with a
// graceful `shutdown` drain.
//
//   cli_coloc_test <path-to-sfpm> <work-dir>
//
// Exits 0 only when every step behaved; prints the first failure.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.h"
#include "serve/protocol.h"

namespace {

using sfpm::obs::json::Parse;
using sfpm::obs::json::Value;
using sfpm::serve::EncodeFrame;

/// The forked `sfpm serve` child; killed on any failure so it cannot
/// outlive the test holding ctest's output pipe open.
pid_t g_child = -1;

[[noreturn]] void Die(const std::string& what) {
  std::fprintf(stderr, "cli_coloc_test: FAIL: %s\n", what.c_str());
  if (g_child > 0) {
    kill(g_child, SIGKILL);
    waitpid(g_child, nullptr, 0);
  }
  std::exit(1);
}

void Run(const std::string& command) {
  std::printf("cli_coloc_test: %s\n", command.c_str());
  std::fflush(stdout);
  if (std::system(command.c_str()) != 0) Die("command failed: " + command);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Die("cannot read " + path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Minimal blocking client over one framed-JSON connection.
class Client {
 public:
  explicit Client(uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) Die("socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      Die("connect to 127.0.0.1:" + std::to_string(port));
    }
  }
  ~Client() {
    if (fd_ >= 0) close(fd_);
  }

  void SendRaw(const std::string& bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) Die("send");
      sent += static_cast<size_t>(n);
    }
  }

  /// One complete frame; empty string on EOF.
  std::string RecvFrame() {
    std::string header = RecvExactly(4);
    if (header.empty()) return "";
    uint32_t length = 0;
    std::memcpy(&length, header.data(), 4);
    return RecvExactly(length);
  }

  /// Sends one request, requires an `ok` response, returns its `result`.
  Value Query(const std::string& request) {
    SendRaw(EncodeFrame(request));
    const std::string response = RecvFrame();
    if (response.empty()) Die("no response to " + request);
    auto parsed = Parse(response);
    if (!parsed.ok()) Die("bad response JSON: " + response);
    const Value* ok = parsed.value().Find("ok");
    if (ok == nullptr || !ok->boolean) {
      Die("error response to " + request + ": " + response);
    }
    const Value* result = parsed.value().Find("result");
    if (result == nullptr) Die("no result in: " + response);
    return *result;
  }

  /// Sends one request that must FAIL; returns the error code string.
  std::string QueryError(const std::string& request) {
    SendRaw(EncodeFrame(request));
    const std::string response = RecvFrame();
    if (response.empty()) Die("no response to " + request);
    auto parsed = Parse(response);
    if (!parsed.ok()) Die("bad response JSON: " + response);
    const Value* ok = parsed.value().Find("ok");
    if (ok == nullptr || ok->boolean) {
      Die("expected an error for " + request + ", got: " + response);
    }
    const Value* error = parsed.value().Find("error");
    if (error == nullptr || error->Find("code") == nullptr) {
      Die("error response without code: " + response);
    }
    return error->Find("code")->string;
  }

 private:
  std::string RecvExactly(size_t n) {
    std::string out;
    char buf[4096];
    while (out.size() < n) {
      const ssize_t got =
          recv(fd_, buf, std::min(sizeof(buf), n - out.size()), 0);
      if (got <= 0) {
        if (got < 0 && errno == EINTR) continue;
        return std::string();
      }
      out.append(buf, static_cast<size_t>(got));
    }
    return out;
  }

  int fd_ = -1;
};

uint16_t WaitForPortFile(const std::string& path, pid_t child) {
  for (int i = 0; i < 300; ++i) {  // 30 s budget.
    std::ifstream in(path);
    int port = 0;
    if (in >> port && port > 0) return static_cast<uint16_t>(port);
    int status = 0;
    if (waitpid(child, &status, WNOHANG) == child) {
      Die("sfpm serve exited before listening");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  Die("timed out waiting for " + path);
}

double NumberField(const Value& value, const char* key) {
  const Value* field = value.Find(key);
  if (field == nullptr) Die(std::string("missing field ") + key);
  return field->number;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: cli_coloc_test <sfpm> <work-dir>\n");
    return 2;
  }
  const std::string sfpm = argv[1];
  const std::string dir = argv[2];
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // Stage 1: the co-location pipeline at two thread counts must produce
  // byte-identical snapshots (docs/COLOCATION.md, "Determinism").
  const std::string serial = dir + "/serial";
  const std::string parallel = dir + "/parallel";
  std::filesystem::create_directories(serial);
  std::filesystem::create_directories(parallel);
  const std::string common =
      " --seed 7 --minsup 0.2 --backend coloc --distance 400";
  Run(sfpm + " run --dir " + serial + common + " --threads 1");
  Run(sfpm + " run --dir " + parallel + common + " --threads 4");
  for (const char* name : {"city.sfpm", "txdb.sfpm", "patterns.sfpm"}) {
    if (ReadAll(serial + "/" + name) != ReadAll(parallel + "/" + name)) {
      Die(std::string(name) + " differs between --threads 1 and 4");
    }
  }

  // Stage 2: launch the server on an ephemeral port over the serial run.
  const std::string port_file = dir + "/port";
  const pid_t child = fork();
  if (child < 0) Die("fork");
  g_child = child;
  if (child == 0) {
    execl(sfpm.c_str(), sfpm.c_str(), "serve", "--snapshot",
          (serial + "/city.sfpm").c_str(), "--snapshot",
          (serial + "/txdb.sfpm").c_str(), "--snapshot",
          (serial + "/patterns.sfpm").c_str(), "--port-file",
          port_file.c_str(), "--threads", "2",
          static_cast<char*>(nullptr));
    std::perror("execl");
    std::_Exit(127);
  }
  const uint16_t port = WaitForPortFile(port_file, child);
  Client client(port);

  // Stage 3: `status` advertises the co-location inventory.
  const Value status = client.Query("{\"q\":\"status\"}");
  const Value* inventory = status.Find("colocations");
  if (inventory == nullptr || !inventory->is_object()) {
    Die("status has no colocations inventory");
  }
  const double advertised = NumberField(*inventory, "patterns");
  if (advertised <= 0) Die("status advertises zero co-locations");
  if (NumberField(*inventory, "distance") != 400.0) {
    Die("status inventory distance should be 400");
  }
  if (NumberField(*inventory, "min_prevalence") != 0.2) {
    Die("status inventory min_prevalence should be 0.2");
  }

  // Stage 4: the default listing returns every mined pattern with sane
  // per-row fields, and its header echoes the mining parameters.
  const Value all = client.Query("{\"q\":\"colocations\"}");
  if (NumberField(all, "total") != advertised) {
    Die("colocations total disagrees with the status inventory");
  }
  if (NumberField(all, "distance") != 400.0) Die("wrong header distance");
  if (NumberField(all, "min_prevalence") != 0.2) {
    Die("wrong header min_prevalence");
  }
  const Value* patterns = all.Find("patterns");
  if (patterns == nullptr || patterns->array.empty()) {
    Die("colocations returned no patterns");
  }
  if (static_cast<double>(patterns->array.size()) !=
      NumberField(all, "returned")) {
    Die("returned count disagrees with the patterns array");
  }
  std::string some_type;
  for (const Value& row : patterns->array) {
    const Value* types = row.Find("types");
    if (types == nullptr || types->array.size() < 2) {
      Die("pattern with fewer than two types");
    }
    some_type = types->array[0].string;
    const double pi = NumberField(row, "participation_index");
    const double fuzzy = NumberField(row, "fuzzy_prevalence");
    if (pi < 0.2 || pi > 1.0) Die("participation index out of range");
    if (fuzzy < 0.0 || fuzzy > pi + 1e-12) Die("fuzzy exceeds crisp PI");
    if (NumberField(row, "rows") <= 0) Die("pattern with zero rows");
  }

  // Stage 5: filters. A limit of 1 keeps `total` honest; a prevalence
  // floor of 1.0 only keeps fully-prevalent patterns; `contains` narrows
  // to patterns holding the named type; size bounds select pairs only.
  const Value limited = client.Query("{\"q\":\"colocations\",\"limit\":1}");
  if (NumberField(limited, "returned") != 1.0 ||
      NumberField(limited, "total") != advertised) {
    Die("limit=1 should return 1 of the full total");
  }
  const Value prevalent =
      client.Query("{\"q\":\"colocations\",\"min_prevalence\":1.0}");
  for (const Value& row : prevalent.Find("patterns")->array) {
    if (NumberField(row, "participation_index") < 1.0 - 1e-12) {
      Die("min_prevalence=1 returned a non-prevalent pattern");
    }
  }
  const Value containing = client.Query(
      "{\"q\":\"colocations\",\"contains\":[\"" + some_type + "\"]}");
  if (NumberField(containing, "total") <= 0) {
    Die("contains=[" + some_type + "] matched nothing");
  }
  for (const Value& row : containing.Find("patterns")->array) {
    const Value* types = row.Find("types");
    bool found = false;
    for (const Value& t : types->array) found |= t.string == some_type;
    if (!found) Die("contains filter leaked a pattern without " + some_type);
  }
  const Value pairs = client.Query(
      "{\"q\":\"colocations\",\"min_size\":2,\"max_size\":2}");
  for (const Value& row : pairs.Find("patterns")->array) {
    if (row.Find("types")->array.size() != 2) {
      Die("size bounds returned a non-pair");
    }
  }

  // Stage 6: bad parameters are rejected without dropping the connection.
  if (client.QueryError(
          "{\"q\":\"colocations\",\"contains\":[\"no-such-type\"]}") !=
      "not_found") {
    Die("unknown contains type should be not_found");
  }
  if (client.QueryError(
          "{\"q\":\"colocations\",\"min_prevalence\":2.0}") !=
      "bad_request") {
    Die("min_prevalence=2 should be bad_request");
  }
  if (NumberField(client.Query("{\"q\":\"status\"}"), "generation") != 1.0) {
    Die("connection wedged after rejected queries");
  }

  // Stage 7: graceful shutdown via the admin query; exit code 0.
  const Value bye = client.Query("{\"q\":\"shutdown\"}");
  if (bye.Find("draining") == nullptr) Die("shutdown did not acknowledge");
  int status_code = 0;
  if (waitpid(child, &status_code, 0) != child) Die("waitpid");
  if (!WIFEXITED(status_code) || WEXITSTATUS(status_code) != 0) {
    Die("sfpm serve exited with status " + std::to_string(status_code));
  }

  std::printf("cli_coloc_test: PASS\n");
  return 0;
}
