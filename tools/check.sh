#!/usr/bin/env bash
# CI-style verification: the tier-1 Release build with the full test
# suite, then a ThreadSanitizer build (-DSFPM_TSAN=ON) re-running the
# tests so the parallel extraction/counting paths are race-checked,
# then an Address+UndefinedBehaviorSanitizer build (-DSFPM_ASAN=ON)
# re-running them again for memory and UB errors, then a standalone
# UBSan build (-DSFPM_UBSAN=ON) that replays the fuzz corpus and runs a
# short fixed-seed fresh fuzz budget (sfpm_fuzz --smoke, ~5s).
#
#   tools/check.sh           # Release + TSan + ASan + UBSan/fuzz smoke
#   tools/check.sh --quick   # sanitizer runs restricted to the hot paths
#
# Build trees: build/ (Release, the tier-1 tree), build-tsan/,
# build-asan/ and build-ubsan/.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== Release build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"${jobs}"
ctest --test-dir build --output-on-failure -j"${jobs}"

echo "== ThreadSanitizer build =="
# Benchmarks and examples add nothing to race coverage; skip them for
# build time. O1 keeps TSan's instrumentation fast enough for the suite.
cmake -B build-tsan -S . -DSFPM_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSFPM_BUILD_BENCHMARKS=OFF -DSFPM_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j"${jobs}"

# TSAN_OPTIONS makes any reported race fail the test process.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
if [[ "${1:-}" == "--quick" ]]; then
  # Metrics/Trace/LegacyStats cover the sharded registry and tracer under
  # concurrent writers; Serve covers the query server's worker pool and
  # snapshot hot swap under concurrent clients (docs/SERVE.md);
  # TimeSeries/Logger cover the telemetry sampler thread and the
  # structured logger's concurrent writers (docs/OBSERVABILITY.md).
  # Tiles/Window/Merge cover the sharded-extraction pieces; the sharded
  # pipeline driver runs tile stages concurrently under --threads
  # (docs/SHARDING.md).
  # NeighborGraph/ColocMiner/MiningBackend cover the co-location
  # backend's parallel graph build and its thread-count byte identity
  # (docs/COLOCATION.md).
  ctest --test-dir build-tsan --output-on-failure -j"${jobs}" \
    -R 'ThreadPool|Parallelism|ParallelDeterminism|Extractor|Apriori|Pipeline|Metrics|Trace|LegacyStats|Store|Serve|TimeSeries|Logger|SlowQuery|Expose|Tiles|Window|Merge|NeighborGraph|ColocMiner|MiningBackend'
else
  ctest --test-dir build-tsan --output-on-failure -j"${jobs}"
fi

echo "== Address/UB sanitizer build =="
cmake -B build-asan -S . -DSFPM_ASAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSFPM_BUILD_BENCHMARKS=OFF -DSFPM_BUILD_EXAMPLES=OFF
cmake --build build-asan -j"${jobs}"

# Fail hard on any leak, overflow or UB report.
export ASAN_OPTIONS="halt_on_error=1 detect_leaks=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
if [[ "${1:-}" == "--quick" ]]; then
  # The hot paths this repo optimizes: relate fast path, prepared
  # geometry, extraction, support counting — plus the obs layer (metrics
  # registry, tracer, JSON, report emitter).
  # Store round-trip + corruption tests matter most under ASan/UBSan:
  # they drive the reader through truncated and bit-flipped inputs.
  # Serve matters under ASan for the hot-swap lifetime contract: the old
  # generation's mmap must stay valid until its last reference drains.
  # Tiles/Window/Merge matter under ASan for the windowed decode's
  # two-pass skim-then-materialize reads and the merge's rejection of
  # corrupt/truncated tile files.
  # NeighborGraph/ColocMiner/MiningBackend matter under ASan for the CSR
  # fill's chunked writes and the snapshot section decoders.
  ctest --test-dir build-asan --output-on-failure -j"${jobs}" \
    -R 'Prepared|Relate|Extractor|Apriori|Pipeline|Metrics|Trace|Json|Report|Args|Stopwatch|LegacyStats|Store|ByteStability|Serve|TimeSeries|Logger|SlowQuery|Expose|Tiles|Window|Merge|NeighborGraph|ColocMiner|MiningBackend'
else
  ctest --test-dir build-asan --output-on-failure -j"${jobs}"
fi

echo "== UBSan fuzz smoke =="
# Standalone UBSan is fast enough to drive the fuzzer itself: replay the
# committed corpus, then a short fixed-seed fresh fuzz run, with every
# tolerance predicate and index probe instrumented for UB.
cmake -B build-ubsan -S . -DSFPM_UBSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSFPM_BUILD_BENCHMARKS=OFF -DSFPM_BUILD_EXAMPLES=OFF \
  -DSFPM_BUILD_TESTS=OFF
cmake --build build-ubsan -j"${jobs}" --target sfpm_fuzz_tool
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
build-ubsan/tools/sfpm_fuzz --smoke --corpus tests/fuzz/corpus

echo "== Store round-trip + corruption (UBSan) =="
# The store oracle serializes adversarial payloads, then proves every
# single-byte flip and every truncation is rejected cleanly — under UBSan
# so a rejection can never hide an out-of-bounds decode. Fixed seed keeps
# the stage reproducible.
build-ubsan/tools/sfpm_fuzz --oracle store --iterations 10000 --seed 2007

echo "== Extraction inference differential (UBSan) =="
# The relate_inferred oracle runs the extractor's RCC8 inference tier
# against the engine-only path over containment-biased clusters and
# demands byte-identical predicate tables (serial and 2-thread). Under
# UBSan so a deduction can never be "right" via an out-of-range compose.
build-ubsan/tools/sfpm_fuzz --oracle relate_inferred --iterations 10000 \
  --seed 2007

echo "== Sharded-extraction differential (UBSan) =="
# The shard_merge oracle partitions random geometry clusters into tiles,
# extracts each tile through its halo window, merges, and demands byte
# equality with the unsharded extract — plus rejection of corrupted and
# stale-hash tile files (docs/SHARDING.md). Under UBSan so the windowed
# envelope skim can never agree with the full decode via UB.
build-ubsan/tools/sfpm_fuzz --oracle shard_merge --iterations 10000 \
  --seed 2007

echo "== Co-location differential (UBSan) =="
# The coloc oracle mines adversarial layer sets through the neighbour
# graph and the naive per-pair reference and demands identical patterns,
# plus CSR/symmetry invariants, star==clique, thread identity and PI
# anti-monotonicity (docs/COLOCATION.md). Under UBSan so an ordered-list
# intersection can never agree with the reference via an OOB probe.
build-ubsan/tools/sfpm_fuzz --oracle coloc --iterations 10000 --seed 2007

echo "== Shard identity + crash consistency =="
# The cli_shard ctest (Release tree) pins `sfpm run --shards=N` byte
# identity against single-shard runs across scales x shard counts x
# thread counts plus every resume path; cli_kill SIGKILLs WriteTo loops
# and a real sharded run mid-pipeline and requires surviving snapshots
# to be absent or byte-exact, then resumable to the baseline bytes
# (docs/SHARDING.md "Crash consistency").
ctest --test-dir build --output-on-failure -R '^cli_shard$|^cli_kill$'

echo "== Observability artifacts =="
# The cli_report ctest (Release tree) runs `sfpm extract`/`mine` with
# --report/--trace and validates every artifact with sfpm_report_check.
ctest --test-dir build --output-on-failure -R '^cli_report$'

echo "== Serve telemetry end to end =="
# The cli_serve ctest (Release tree) forks the real `sfpm serve` with
# --metrics-port and validates the Prometheus exposition, /varz, /tracez
# and one `sfpm top --once` frame over real sockets (docs/SERVE.md).
# cli_coloc runs the co-location pipeline at two thread counts (byte
# identity) and the colocations query family (docs/COLOCATION.md).
ctest --test-dir build --output-on-failure -R '^cli_serve$|^cli_coloc$'

echo "== All checks passed =="
