#!/usr/bin/env bash
# CI-style verification: the tier-1 Release build with the full test
# suite, then a ThreadSanitizer build (-DSFPM_TSAN=ON) re-running the
# tests so the parallel extraction/counting paths are race-checked.
#
#   tools/check.sh           # Release + TSan, full ctest on both
#   tools/check.sh --quick   # TSan run restricted to the concurrency tests
#
# Build trees: build/ (Release, the tier-1 tree) and build-tsan/.
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== Release build =="
cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build -j"${jobs}"
ctest --test-dir build --output-on-failure -j"${jobs}"

echo "== ThreadSanitizer build =="
# Benchmarks and examples add nothing to race coverage; skip them for
# build time. O1 keeps TSan's instrumentation fast enough for the suite.
cmake -B build-tsan -S . -DSFPM_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSFPM_BUILD_BENCHMARKS=OFF -DSFPM_BUILD_EXAMPLES=OFF
cmake --build build-tsan -j"${jobs}"

# TSAN_OPTIONS makes any reported race fail the test process.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
if [[ "${1:-}" == "--quick" ]]; then
  ctest --test-dir build-tsan --output-on-failure -j"${jobs}" \
    -R 'ThreadPool|Parallelism|ParallelDeterminism|Extractor|Apriori|Pipeline'
else
  ctest --test-dir build-tsan --output-on-failure -j"${jobs}"
fi

echo "== All checks passed =="
