#ifndef SFPM_TOOLS_SFPM_TOP_H_
#define SFPM_TOOLS_SFPM_TOP_H_

#include "util/args.h"

namespace sfpm {
namespace tools {

/// \brief The `sfpm top` verb: a terminal dashboard over a running
/// `sfpm serve --metrics-port` instance. Polls `GET /varz` every
/// `--interval-ms` and renders QPS, per-type latency quantiles,
/// in-flight connections, snapshot generation, error rates, and the
/// recent slow-query log. `--once` prints a single frame without
/// clearing the screen (scripts and the e2e test); `--iterations N`
/// bounds the loop. Exit status 0, or 1 when the endpoint cannot be
/// reached or answers garbage.
int RunTop(const Args& args);

}  // namespace tools
}  // namespace sfpm

#endif  // SFPM_TOOLS_SFPM_TOP_H_
