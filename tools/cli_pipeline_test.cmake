# End-to-end CLI pipeline: generate a city, extract predicates, mine.
file(MAKE_DIRECTORY ${WORK_DIR})
execute_process(
  COMMAND ${SFPM_CLI} generate-city --seed 5 --out-prefix ${WORK_DIR}/t_
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "generate-city failed")
endif()
execute_process(
  COMMAND ${SFPM_CLI} extract
    --reference district=${WORK_DIR}/t_district.csv
    --relevant slum=${WORK_DIR}/t_slum.csv
    --relevant school=${WORK_DIR}/t_school.csv
    --out ${WORK_DIR}/t_table.csv
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "extract failed")
endif()
execute_process(
  COMMAND ${SFPM_CLI} mine --table ${WORK_DIR}/t_table.csv
    --minsup 0.15 --filter kc+ --rules 0.7
  RESULT_VARIABLE rc OUTPUT_VARIABLE out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "mine failed")
endif()
string(FIND "${out}" "frequent itemsets" found)
if(found EQUAL -1)
  message(FATAL_ERROR "mine output missing itemsets: ${out}")
endif()
