// sfpm — command-line front end for the library.
//
//   sfpm extract  --reference district=d.csv --relevant slum=s.csv ...
//                 [--distance veryClose:500,close:2000,far]
//                 [--distance-types policeCenter] [--directions]
//                 [--threads N] --out table.csv
//   sfpm extract  --in city.sfpm --out txdb.sfpm
//                 [--reference district] [--relevant slum ...] [--directions]
//                 [--threads N]
//   sfpm mine     --table table.csv --minsup 0.1
//                 [--filter none|kc|kc+] [--dependency street:illuminationPoint]
//                 [--algorithm apriori|fpgrowth] [--rules 0.7]
//                 [--closed] [--maximal] [--top lift:10] [--threads N]
//   sfpm mine     --in txdb.sfpm --out patterns.sfpm [--minsup 0.1]
//                 [--filter ...] [--dependency a:b] [--algorithm ...]
//                 [--threads N]
//   sfpm run      [--dir out] [--city p] [--txdb p] [--patterns p]
//                 [--seed N] [--scale N] [--shards N]
//                 [--reference district] [--directions]
//                 [--minsup 0.1] [--filter ...] [--algorithm ...]
//                 [--dependency a:b] [--threads N] [--force]
//
// `run` drives the staged snapshot pipeline generate-city -> extract ->
// mine; stages whose output snapshot already carries a matching content
// hash are skipped, so a rerun after a crash or parameter change redoes
// only the invalidated suffix (--force reruns everything). Stage outputs
// are bit-identical at every --threads setting.
//
// --threads defaults to the hardware concurrency (or SFPM_THREADS when
// set); --threads 0 forces the hardware concurrency; --threads 1 runs the
// original serial code path. Outputs are identical at every thread count.
// --report out.json (extract, mine and run) writes a machine-readable run
// report (config, phase spans, every registry instrument); --trace
// out.trace.json writes the phase spans as Chrome trace_event JSON for
// about:tracing / Perfetto. --stats still prints the legacy run counters
// to stderr (now rendered from the metrics registry) but is deprecated in
// favor of --report. See docs/OBSERVABILITY.md.
//   sfpm serve    --snapshot a.sfpm [--snapshot b.sfpm ...] [--port N]
//                 [--threads N] [--max-inflight N] [--read-timeout-ms N]
//                 [--max-frame-bytes N] [--port-file p]
//   sfpm gain     --t 2,2,2 --n 2
//   sfpm table3
//   sfpm generate-city [--seed N] [--out-prefix dir/city_] [--out city.sfpm]
//   sfpm version  (or --version)
//   sfpm help     (or --help; the full flag reference)
//
// `serve` answers pattern/rule/predicate/window/relate queries over TCP
// (loopback, length-prefixed JSON; protocol in docs/SERVE.md). SIGHUP or
// the `reload` query hot-swaps the snapshots without dropping in-flight
// queries; SIGINT/SIGTERM shut down gracefully.
//
// Unknown commands and flags are errors: the offending token is printed
// and the exit status is 2.
//
// Layers are WKT-CSV files (header: wkt,attr...); predicate tables are 0/1
// CSV matrices (header: row,<predicate labels>). Snapshots (.sfpm) are the
// binary container of docs/STORAGE.md. See io/layer_io.h and io/table_io.h.

#include <csignal>
#include <cstdio>
#include <filesystem>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/closed.h"
#include "core/measures.h"
#include "datagen/city.h"
#include "io/geojson.h"
#include "io/layer_io.h"
#include "io/table_io.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "obs/log.h"
#include "serve/server.h"
#include "sfpm.h"
#include "sfpm_top.h"
#include "store/format.h"
#include "store/pipeline.h"
#include "util/args.h"
#include "util/strings.h"
#include "util/version.h"

namespace {

using namespace sfpm;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: sfpm "
               "<extract|mine|run|serve|top|gain|table3|generate-city|version>"
               " [flags]\n(run 'sfpm help' for the full flag reference)\n");
  return 2;
}

/// The complete command and flag reference, printed by `sfpm help` /
/// `sfpm --help`. tools/sfpm_doc_check checks every `--flag` the docs
/// attribute to sfpm against this text, so a flag missing here fails the
/// doc_check ctest — keep it exhaustive.
int RunHelp() {
  std::printf(
      "sfpm — spatial frequent pattern mining with qualitative spatial "
      "reasoning\n"
      "\n"
      "usage: sfpm <command> [flags]\n"
      "\n"
      "commands:\n"
      "  extract        extract spatial predicates from layers\n"
      "  mine           mine frequent itemsets and association rules\n"
      "  run            staged pipeline: generate-city -> extract -> mine\n"
      "  serve          TCP query server over .sfpm snapshots\n"
      "  top            live dashboard over a serve --metrics-port\n"
      "  gain           minimal-gain calculator (paper Table 3 entries)\n"
      "  table3         print the full minimal-gain table\n"
      "  generate-city  synthetic city generator\n"
      "  version        print version info (also --version)\n"
      "  help           print this reference (also --help)\n"
      "\n"
      "sfpm extract\n"
      "  --reference type=path   reference layer (WKT-CSV); with --in, just "
      "the type name\n"
      "  --relevant type=path    relevant layer, repeatable; with --in, just "
      "the type name\n"
      "  --in city.sfpm          read layers from a snapshot (needs --out)\n"
      "  --out path              predicate table CSV, or txdb.sfpm with "
      "--in\n"
      "  --distance spec         distance bands, e.g. "
      "veryClose:500,close:2000,far\n"
      "  --distance-types a,b    feature types the bands apply to\n"
      "  --directions            also extract direction predicates\n"
      "  --threads N             worker threads (0 = hardware concurrency)\n"
      "  --infer-relate on|off   RCC8 inference tier for topological pairs "
      "(default on;\n"
      "                          output is byte-identical either way)\n"
      "  --report out.json       machine-readable run report\n"
      "  --trace out.trace.json  Chrome trace_event spans\n"
      "  --stats                 legacy counters to stderr (deprecated; use "
      "--report)\n"
      "\n"
      "sfpm mine\n"
      "  --table path            predicate table CSV to mine\n"
      "  --in txdb.sfpm          mine a snapshot (needs --out)\n"
      "  --out patterns.sfpm     pattern-set snapshot output\n"
      "  --minsup F              minimum support ratio (default 0.1)\n"
      "  --filter none|kc|kc+    qualitative reasoning filter (default "
      "kc+)\n"
      "  --dependency a:b        known dependency pair, repeatable\n"
      "  --algorithm apriori|fpgrowth\n"
      "  --backend apriori|fpgrowth|coloc\n"
      "                          mining backend (default: --algorithm).\n"
      "                          coloc mines co-locations from a *city*\n"
      "                          snapshot (--in city.sfpm) via the neighbour\n"
      "                          graph (docs/COLOCATION.md)\n"
      "  --distance R            coloc neighbourhood radius in metres\n"
      "                          (default 500; coloc backend only)\n"
      "  --rules F               also derive rules at min confidence F\n"
      "  --closed                report closed itemsets only\n"
      "  --maximal               report maximal itemsets only\n"
      "  --top measure:K         top-K rules by an interest measure\n"
      "  --threads N             worker threads\n"
      "  --report / --trace / --stats   as in extract\n"
      "\n"
      "sfpm run\n"
      "  --dir path              output directory (default .)\n"
      "  --city / --txdb / --patterns   stage snapshot paths\n"
      "  --seed N                city generator seed\n"
      "  --scale N               grow the city N-fold per axis (~N^2 "
      "features)\n"
      "  --shards N              tile-sharded extract: N tile stages + a "
      "merge\n"
      "                          stage (docs/SHARDING.md); output is "
      "byte-identical\n"
      "                          at every N\n"
      "  --reference type        reference feature type (default district)\n"
      "  --directions            extract direction predicates\n"
      "  --minsup F / --filter f / --algorithm a / --dependency a:b\n"
      "  --backend b / --distance R     as in mine (--backend=coloc mines\n"
      "                          the city snapshot's layers directly)\n"
      "  --threads N             worker threads\n"
      "  --force                 rerun every stage (ignore content hashes)\n"
      "  --report / --trace      run artifacts\n"
      "\n"
      "sfpm serve   (protocol and runbook: docs/SERVE.md)\n"
      "  --snapshot file.sfpm    snapshot to serve, repeatable (later files "
      "win per section)\n"
      "  --port N                TCP port on 127.0.0.1 (default 0 = "
      "ephemeral)\n"
      "  --port-file path        write the bound port here once listening\n"
      "  --threads N             query worker threads (default 4)\n"
      "  --max-inflight N        admission bound on concurrent connections "
      "(default 256)\n"
      "  --read-timeout-ms N     idle connection timeout (default 30000)\n"
      "  --max-frame-bytes N     request/response frame ceiling (default "
      "1048576)\n"
      "  --metrics-port N        plain-HTTP telemetry port (GET /metrics "
      "Prometheus\n"
      "                          exposition, /healthz, /varz, /tracez; 0 = "
      "ephemeral,\n"
      "                          written as the port file's second line; "
      "off when absent)\n"
      "  --slow-query-ms N       log + ring-buffer requests at/over N ms "
      "(default 100)\n"
      "  --trace-sample N        keep every Nth request's span tree for "
      "/tracez\n"
      "                          (default 0 = off)\n"
      "\n"
      "sfpm top   (reads /varz of a running serve --metrics-port)\n"
      "  --metrics-port N        telemetry port to poll (required)\n"
      "  --interval-ms N         refresh period (default 1000)\n"
      "  --iterations N          frames to render (default 0 = until "
      "interrupted)\n"
      "  --once                  one frame, no screen clearing\n"
      "\n"
      "sfpm gain\n"
      "  --t t1,t2,...           dependency group sizes\n"
      "  --n N                   independent item count\n"
      "\n"
      "sfpm generate-city\n"
      "  --seed N                generator seed\n"
      "  --out city.sfpm         write one snapshot with every layer\n"
      "  --out-prefix dir/city_  write one WKT-CSV per layer + GeoJSON\n");
  return 0;
}

/// Rejects flags a command does not understand and stray positional
/// tokens, naming the offending token. Returns 0 when the line is clean.
int RejectUnknownFlags(const Args& args, const char* command,
                       std::initializer_list<const char*> allowed) {
  for (const auto& [flag, values] : args.values()) {
    bool known = false;
    for (const char* candidate : allowed) {
      if (flag == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "error: unknown flag '--%s' for 'sfpm %s'\n",
                   flag.c_str(), command);
      return 2;
    }
  }
  if (!args.positional().empty()) {
    std::fprintf(stderr, "error: unexpected argument '%s' for 'sfpm %s'\n",
                 args.positional().front().c_str(), command);
    return 2;
  }
  return 0;
}

/// Parses the shared --threads flag. Absent = auto (SFPM_THREADS when
/// set, else hardware concurrency); an explicit `--threads 0` means
/// hardware concurrency, bypassing the environment. Only plain
/// non-negative integers are accepted (std::stoul alone would wrap "-3").
Result<size_t> ParseThreads(const Args& args) {
  if (!args.Has("threads")) return size_t{0};
  const std::string& value = args.Get("threads");
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument("bad --threads value");
  }
  try {
    const size_t threads = static_cast<size_t>(std::stoul(value));
    if (threads > kMaxThreads) {
      return Status::InvalidArgument("bad --threads value");
    }
    return threads == 0 ? HardwareConcurrency() : threads;
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad --threads value");
  }
}

/// One-time stderr note steering --stats users to --report.
void WarnStatsDeprecated() {
  static bool warned = false;
  if (warned) return;
  warned = true;
  std::fprintf(stderr,
               "note: --stats is deprecated; use --report out.json (and "
               "--trace out.trace.json) for machine-readable run data\n");
}

/// Observability of one CLI run: enables the global tracer when --report
/// or --trace asks for spans, snapshots the registry up front so the
/// artifacts capture exactly this run's delta, and writes them in Finish.
class RunObservability {
 public:
  RunObservability(std::string tool, std::string command, const Args& args)
      : tool_(std::move(tool)),
        command_(std::move(command)),
        report_path_(args.Get("report")),
        trace_path_(args.Get("trace")) {
    if (!report_path_.empty() || !trace_path_.empty()) {
      obs::Tracer::Global().set_enabled(true);
    }
    for (const auto& [flag, values] : args.values()) {
      for (const std::string& value : values) {
        config_.emplace_back(flag, value);
      }
    }
    begin_ = obs::MetricsRegistry::Global().Snapshot();
  }

  /// The run's registry delta: counters since construction, gauges current.
  obs::MetricsSnapshot Delta() const {
    return obs::MetricsRegistry::Global().Snapshot().DeltaSince(begin_);
  }

  /// Writes the --report / --trace artifacts, when requested.
  Status Finish() const {
    if (report_path_.empty() && trace_path_.empty()) return Status::OK();
    const std::vector<obs::TraceSpan> spans = obs::Tracer::Global().spans();
    if (!report_path_.empty()) {
      obs::RunReport report;
      report.tool = tool_;
      report.command = command_;
      report.config = config_;
      SFPM_RETURN_NOT_OK(obs::WriteTextFile(
          report_path_, obs::RunReportToJson(report, Delta(), spans)));
    }
    if (!trace_path_.empty()) {
      SFPM_RETURN_NOT_OK(
          obs::WriteTextFile(trace_path_, obs::ChromeTraceJson(spans)));
    }
    return Status::OK();
  }

 private:
  std::string tool_;
  std::string command_;
  std::string report_path_;
  std::string trace_path_;
  std::vector<std::pair<std::string, std::string>> config_;
  obs::MetricsSnapshot begin_;
};

/// Parses "type=path" pairs.
Result<std::pair<std::string, std::string>> SplitTypePath(
    const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
    return Status::InvalidArgument("expected type=path, got '" + spec + "'");
  }
  return std::make_pair(spec.substr(0, eq), spec.substr(eq + 1));
}

/// Parses "name:bound,name:bound,...,name" into a quantizer.
Result<qsr::DistanceQuantizer> ParseBands(const std::string& spec) {
  std::vector<std::pair<std::string, double>> bounds;
  std::string beyond;
  for (const std::string& part : Split(spec, ',')) {
    const size_t colon = part.find(':');
    if (colon == std::string::npos) {
      if (!beyond.empty()) {
        return Status::InvalidArgument(
            "only the last distance band may omit a bound");
      }
      beyond = part;
      continue;
    }
    if (!beyond.empty()) {
      return Status::InvalidArgument("bands after the unbounded band");
    }
    try {
      bounds.emplace_back(part.substr(0, colon),
                          std::stod(part.substr(colon + 1)));
    } catch (const std::exception&) {
      return Status::InvalidArgument("bad distance bound in '" + part + "'");
    }
  }
  if (beyond.empty()) {
    return Status::InvalidArgument("distance spec needs a final unbounded band");
  }
  return qsr::DistanceQuantizer::Create(std::move(bounds), beyond);
}

/// Parses repeated --dependency a:b specs.
Result<std::vector<std::pair<std::string, std::string>>> ParseDependencies(
    const Args& args) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const std::string& spec : args.All("dependency")) {
    const auto parts = Split(spec, ':');
    if (parts.size() != 2 || parts[0].empty() || parts[1].empty()) {
      return Status::InvalidArgument("expected --dependency a:b, got '" +
                                     spec + "'");
    }
    out.emplace_back(parts[0], parts[1]);
  }
  return out;
}

/// Snapshot-driven extract: city.sfpm in, txdb.sfpm out.
int RunExtractSnapshot(const Args& args, const std::string& command_line) {
  for (const char* flag : {"distance", "distance-types", "stats",
                           "infer-relate"}) {
    if (args.Has(flag)) {
      return Fail(Status::InvalidArgument(
          std::string("--") + flag + " is not supported with --in snapshots"));
    }
  }
  const std::string out = args.Get("out");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("--in needs --out <txdb.sfpm>"));
  }
  store::ExtractConfig config;
  config.reference = args.Get("reference", "district");
  config.relevant = args.All("relevant");
  config.directions = args.Has("directions");
  const auto threads = ParseThreads(args);
  if (!threads.ok()) return Fail(threads.status());
  config.threads = threads.value();

  const RunObservability observability("extract", command_line, args);
  const Status st = store::RunExtractStage(args.Get("in"), out, config);
  if (!st.ok()) return Fail(st);
  const Status obs_status = observability.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int RunExtract(const Args& args, const std::string& command_line) {
  if (args.Has("in")) return RunExtractSnapshot(args, command_line);

  const auto ref_spec = SplitTypePath(args.Get("reference"));
  if (!ref_spec.ok()) return Fail(ref_spec.status());
  const auto reference =
      io::LoadLayer(ref_spec.value().first, ref_spec.value().second);
  if (!reference.ok()) return Fail(reference.status());

  std::vector<feature::Layer> relevant;
  for (const std::string& spec : args.All("relevant")) {
    const auto parsed = SplitTypePath(spec);
    if (!parsed.ok()) return Fail(parsed.status());
    auto layer = io::LoadLayer(parsed.value().first, parsed.value().second);
    if (!layer.ok()) return Fail(layer.status());
    relevant.push_back(std::move(layer).value());
  }
  if (relevant.empty()) {
    return Fail(Status::InvalidArgument("need at least one --relevant layer"));
  }

  feature::PredicateExtractor extractor(&reference.value());
  for (const feature::Layer& layer : relevant) {
    extractor.AddRelevantLayer(&layer);
  }

  feature::ExtractorOptions options;
  options.directions = args.Has("directions");
  const std::string infer = args.Get("infer-relate", "on");
  if (infer != "on" && infer != "off") {
    return Fail(Status::InvalidArgument(
        "--infer-relate expects 'on' or 'off', got '" + infer + "'"));
  }
  options.infer_relate = infer == "on";
  const auto threads = ParseThreads(args);
  if (!threads.ok()) return Fail(threads.status());
  options.parallelism = threads.value();
  std::optional<qsr::DistanceQuantizer> bands;
  if (args.Has("distance")) {
    auto parsed = ParseBands(args.Get("distance"));
    if (!parsed.ok()) return Fail(parsed.status());
    bands.emplace(std::move(parsed).value());
    options.distance_bands = &*bands;
    for (const std::string& type :
         Split(args.Get("distance-types", ""), ',')) {
      if (!type.empty()) options.distance_types.insert(type);
    }
  }

  const RunObservability observability("extract", command_line, args);
  const auto table = extractor.Extract(options);
  if (!table.ok()) return Fail(table.status());
  if (args.Has("stats")) {
    WarnStatsDeprecated();
    // Rendered from the registry delta — byte-identical to the text the
    // in-run struct produced (the struct is reconstructed field for field).
    const feature::ExtractionStats stats =
        feature::ExtractionStats::FromMetrics(observability.Delta());
    std::fprintf(stderr, "%s\n", stats.ToString().c_str());
  }
  const Status obs_status = observability.Finish();
  if (!obs_status.ok()) return Fail(obs_status);

  const std::string out = args.Get("out");
  if (out.empty()) {
    std::fputs(io::TableToCsv(table.value()).c_str(), stdout);
  } else {
    const Status st = io::SaveTable(table.value(), out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu rows x %zu predicates to %s\n",
                table.value().NumRows(), table.value().NumPredicates(),
                out.c_str());
  }
  return 0;
}

/// Snapshot-driven mine: txdb.sfpm in, patterns.sfpm out.
int RunMineSnapshot(const Args& args, const std::string& command_line) {
  for (const char* flag : {"table", "rules", "closed", "maximal", "top",
                           "stats"}) {
    if (args.Has(flag)) {
      return Fail(Status::InvalidArgument(
          std::string("--") + flag + " is not supported with --in snapshots"));
    }
  }
  const std::string out = args.Get("out");
  if (out.empty()) {
    return Fail(Status::InvalidArgument("--in needs --out <patterns.sfpm>"));
  }
  store::MineConfig config;
  try {
    config.min_support = std::stod(args.Get("minsup", "0.1"));
  } catch (const std::exception&) {
    return Fail(Status::InvalidArgument("bad --minsup"));
  }
  config.algorithm = args.Get("algorithm", "apriori");
  config.backend = args.Get("backend", "");
  config.filter = args.Get("filter", "kc+");
  try {
    config.coloc_distance = std::stod(args.Get("distance", "500"));
  } catch (const std::exception&) {
    return Fail(Status::InvalidArgument("bad --distance"));
  }
  const auto dependencies = ParseDependencies(args);
  if (!dependencies.ok()) return Fail(dependencies.status());
  config.dependencies = dependencies.value();
  const auto threads = ParseThreads(args);
  if (!threads.ok()) return Fail(threads.status());
  config.threads = threads.value();

  const RunObservability observability("mine", command_line, args);
  const Status st = store::RunMineStage(args.Get("in"), out, config);
  if (!st.ok()) return Fail(st);
  const Status obs_status = observability.Finish();
  if (!obs_status.ok()) return Fail(obs_status);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int RunMine(const Args& args, const std::string& command_line) {
  if (args.Has("in")) return RunMineSnapshot(args, command_line);
  for (const char* flag : {"backend", "distance"}) {
    if (args.Has(flag)) {
      return Fail(Status::InvalidArgument(
          std::string("--") + flag + " needs --in snapshots"));
    }
  }

  const auto table = io::LoadTable(args.Get("table"));
  if (!table.ok()) return Fail(table.status());

  feature::DependencyRegistry dependencies;
  const auto dependency_specs = ParseDependencies(args);
  if (!dependency_specs.ok()) return Fail(dependency_specs.status());
  for (const auto& [a, b] : dependency_specs.value()) dependencies.Add(a, b);

  core::AprioriOptions options;
  try {
    options.min_support = std::stod(args.Get("minsup", "0.1"));
  } catch (const std::exception&) {
    return Fail(Status::InvalidArgument("bad --minsup"));
  }
  const auto threads = ParseThreads(args);
  if (!threads.ok()) return Fail(threads.status());
  options.parallelism = threads.value();

  const std::string filter = args.Get("filter", "kc+");
  std::optional<core::PairBlocklistFilter> dependency_filter;
  std::optional<core::SameKeyFilter> same_key;
  if (filter == "kc" || filter == "kc+") {
    dependency_filter.emplace(dependencies.MakeFilter(table.value().db()));
    options.filters.push_back(&*dependency_filter);
  }
  if (filter == "kc+") {
    same_key.emplace(table.value().db());
    options.filters.push_back(&*same_key);
  } else if (filter != "none" && filter != "kc") {
    return Fail(Status::InvalidArgument("--filter must be none|kc|kc+"));
  }

  const std::string algorithm = args.Get("algorithm", "apriori");
  const RunObservability observability("mine", command_line, args);
  Result<core::AprioriResult> mined =
      algorithm == "fpgrowth"
          ? core::MineFpGrowth(table.value().db(), options)
          : core::MineApriori(table.value().db(), options);
  if (!mined.ok()) return Fail(mined.status());
  if (args.Has("stats")) {
    WarnStatsDeprecated();
    // Rendered from the registry delta — byte-identical to
    // mined.value().stats().ToString() (see tests/obs/legacy_stats_test).
    const core::MiningStats stats =
        core::MiningStats::FromMetrics(observability.Delta());
    std::fprintf(stderr, "%s\n", stats.ToString().c_str());
  }
  const Status obs_status = observability.Finish();
  if (!obs_status.ok()) return Fail(obs_status);

  std::vector<core::FrequentItemset> itemsets = mined.value().itemsets();
  const char* family = "frequent";
  if (args.Has("closed")) {
    itemsets = core::ClosedItemsets(mined.value());
    family = "closed";
  } else if (args.Has("maximal")) {
    itemsets = core::MaximalItemsets(mined.value());
    family = "maximal";
  }

  std::printf("# %zu %s itemsets (minsup %.3g, filter %s, %s)\n",
              itemsets.size(), family, options.min_support, filter.c_str(),
              algorithm.c_str());
  for (const core::FrequentItemset& fi : itemsets) {
    std::string labels;
    for (size_t i = 0; i < fi.items.size(); ++i) {
      if (i > 0) labels += ", ";
      labels += table.value().db().Label(fi.items[i]);
    }
    std::printf("%u\t{%s}\n", fi.support, labels.c_str());
  }

  if (args.Has("rules")) {
    core::RuleOptions rule_options;
    try {
      rule_options.min_confidence = std::stod(args.Get("rules", "0.7"));
    } catch (const std::exception&) {
      return Fail(Status::InvalidArgument("bad --rules confidence"));
    }
    auto rules =
        core::GenerateRules(table.value().db(), mined.value(), rule_options);

    if (args.Has("top")) {
      const auto parts = Split(args.Get("top"), ':');
      const std::map<std::string, core::Measure> measures = {
          {"lift", core::Measure::kLift},
          {"leverage", core::Measure::kLeverage},
          {"conviction", core::Measure::kConviction},
          {"jaccard", core::Measure::kJaccard},
          {"cosine", core::Measure::kCosine},
          {"kulczynski", core::Measure::kKulczynski},
          {"certaintyFactor", core::Measure::kCertaintyFactor},
          {"oddsRatio", core::Measure::kOddsRatio},
          {"phi", core::Measure::kPhi},
      };
      const auto it = measures.find(parts.empty() ? "" : parts[0]);
      if (it == measures.end()) {
        return Fail(Status::InvalidArgument("unknown --top measure"));
      }
      size_t k = 10;
      if (parts.size() > 1) k = std::stoul(parts[1]);
      rules = core::TopRulesBy(it->second, rules, mined.value(),
                               table.value().db(), k);
    }

    std::printf("# %zu rules (min confidence %.3g)\n", rules.size(),
                rule_options.min_confidence);
    for (const core::AssociationRule& rule : rules) {
      std::printf("%.3f\t%.3f\t%.3f\t%s\n", rule.support, rule.confidence,
                  rule.lift, rule.ToString(table.value().db()).c_str());
    }
  }
  return 0;
}

Result<uint64_t> ParseCountFlag(const Args& args, const char* name,
                                uint64_t fallback, uint64_t max);

/// The staged pipeline driver: generate-city -> extract -> mine over
/// snapshots, with content-hash skip/resume.
int RunPipelineCommand(const Args& args, const std::string& command_line) {
  store::PipelineOptions options;
  const std::string dir = args.Get("dir", ".");
  options.city_path = args.Get("city", dir + "/city.sfpm");
  options.txdb_path = args.Get("txdb", dir + "/txdb.sfpm");
  options.patterns_path = args.Get("patterns", dir + "/patterns.sfpm");
  for (const std::string* path :
       {&options.city_path, &options.txdb_path, &options.patterns_path}) {
    const std::filesystem::path parent =
        std::filesystem::path(*path).parent_path();
    if (parent.empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    if (ec) {
      return Fail(Status::InvalidArgument("cannot create output directory " +
                                          parent.string() + ": " +
                                          ec.message()));
    }
  }
  if (args.Has("seed")) {
    options.city.seed = std::strtoull(args.Get("seed").c_str(), nullptr, 10);
  }
  const auto scale = ParseCountFlag(args, "scale", 1, 64);
  if (!scale.ok()) return Fail(scale.status());
  if (scale.value() < 1) {
    return Fail(Status::InvalidArgument("--scale must be at least 1"));
  }
  options.city = datagen::ScaledCityConfig(options.city,
                                           static_cast<int>(scale.value()));
  const auto shards = ParseCountFlag(args, "shards", 1, 4096);
  if (!shards.ok()) return Fail(shards.status());
  if (shards.value() < 1) {
    return Fail(Status::InvalidArgument("--shards must be at least 1"));
  }
  options.shards = static_cast<int>(shards.value());
  options.extract.reference = args.Get("reference", "district");
  options.extract.directions = args.Has("directions");
  try {
    options.mine.min_support = std::stod(args.Get("minsup", "0.1"));
  } catch (const std::exception&) {
    return Fail(Status::InvalidArgument("bad --minsup"));
  }
  options.mine.algorithm = args.Get("algorithm", "apriori");
  options.mine.backend = args.Get("backend", "");
  options.mine.filter = args.Get("filter", "kc+");
  try {
    options.mine.coloc_distance = std::stod(args.Get("distance", "500"));
  } catch (const std::exception&) {
    return Fail(Status::InvalidArgument("bad --distance"));
  }
  const auto dependencies = ParseDependencies(args);
  if (!dependencies.ok()) return Fail(dependencies.status());
  options.mine.dependencies = dependencies.value();
  const auto threads = ParseThreads(args);
  if (!threads.ok()) return Fail(threads.status());
  options.extract.threads = threads.value();
  options.mine.threads = threads.value();
  options.force = args.Has("force");

  const RunObservability observability("run", command_line, args);
  const auto result = store::RunPipeline(options);
  if (!result.ok()) return Fail(result.status());
  const Status obs_status = observability.Finish();
  if (!obs_status.ok()) return Fail(obs_status);

  for (const store::StageOutcome& outcome : result.value().stages) {
    if (outcome.skipped) {
      std::printf("%-13s up to date  %s (hash %s)\n", outcome.stage.c_str(),
                  outcome.output.c_str(), outcome.input_hash.c_str());
    } else {
      std::printf("%-13s wrote       %s (hash %s, %.2fs)\n",
                  outcome.stage.c_str(), outcome.output.c_str(),
                  outcome.input_hash.c_str(), outcome.seconds);
    }
  }
  return 0;
}

int RunGain(const Args& args) {
  std::vector<int> t;
  for (const std::string& part : Split(args.Get("t"), ',')) {
    if (part.empty()) continue;
    t.push_back(std::atoi(part.c_str()));
  }
  const int n = std::atoi(args.Get("n", "0").c_str());
  const auto gain = stats::MinimalGain(t, n);
  if (!gain.ok()) return Fail(gain.status());
  int m = n;
  for (int tk : t) m += tk;
  std::printf(
      "m=%d: >=%llu frequent itemsets implied; minimal gain of KC+ = %llu\n",
      m,
      static_cast<unsigned long long>(stats::ItemsetCountLowerBound(m)),
      static_cast<unsigned long long>(gain.value()));
  return 0;
}

int RunTable3() {
  const auto table = stats::MinimalGainTable(8, 10);
  std::printf("      ");
  for (int t1 = 1; t1 <= 8; ++t1) std::printf("%9s%d", "t1=", t1);
  std::printf("\n");
  for (size_t n = 0; n < table.size(); ++n) {
    std::printf("n=%-3zu", n + 1);
    for (uint64_t v : table[n]) {
      std::printf("%10llu", static_cast<unsigned long long>(v));
    }
    std::printf("\n");
  }
  return 0;
}

int RunGenerateCity(const Args& args) {
  datagen::CityConfig config;
  if (args.Has("seed")) {
    config.seed = std::strtoull(args.Get("seed").c_str(), nullptr, 10);
  }

  // Snapshot mode: one .sfpm holding every layer.
  if (args.Has("out")) {
    const std::string out = args.Get("out");
    const Status st = store::RunGenerateCityStage(config, out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s\n", out.c_str());
    if (!args.Has("out-prefix")) return 0;
  }

  const auto city = datagen::GenerateCity(config);
  const std::string prefix = args.Get("out-prefix", "city_");

  const std::vector<const feature::Layer*> layers = {
      &city->districts, &city->slums,   &city->schools,     &city->police,
      &city->streets,   &city->rivers,  &city->illumination};
  for (const feature::Layer* layer : layers) {
    const std::string path = prefix + layer->feature_type() + ".csv";
    const Status st = io::SaveLayer(*layer, path);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %zu %s features to %s\n", layer->Size(),
                layer->feature_type().c_str(), path.c_str());
  }
  const std::string geojson_path = prefix + "all.geojson";
  const Status st = io::WriteFile(geojson_path, io::LayersToGeoJson(layers));
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s\n", geojson_path.c_str());
  return 0;
}

/// Signal fan-in for `sfpm serve`: the handlers only call the Server's
/// async-signal-safe request methods.
serve::Server* g_serve_server = nullptr;

void ServeSignalHandler(int signal_number) {
  if (g_serve_server == nullptr) return;
  if (signal_number == SIGHUP) {
    g_serve_server->RequestReload();
  } else {
    g_serve_server->RequestShutdown();
  }
}

/// Parses one non-negative integer flag in [0, max]; absent = fallback.
Result<uint64_t> ParseCountFlag(const Args& args, const char* name,
                                uint64_t fallback, uint64_t max) {
  if (!args.Has(name)) return fallback;
  const std::string& value = args.Get(name);
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    return Status::InvalidArgument(std::string("bad --") + name + " value");
  }
  try {
    const uint64_t parsed = std::stoull(value);
    if (parsed > max) {
      return Status::InvalidArgument(std::string("--") + name +
                                     " must be at most " +
                                     std::to_string(max));
    }
    return parsed;
  } catch (const std::exception&) {
    return Status::InvalidArgument(std::string("bad --") + name + " value");
  }
}

int RunServe(const Args& args) {
  const std::vector<std::string> snapshots = args.All("snapshot");
  if (snapshots.empty()) {
    return Fail(Status::InvalidArgument(
        "sfpm serve needs at least one --snapshot <file.sfpm>"));
  }

  serve::ServerOptions options;
  const auto port = ParseCountFlag(args, "port", 0, 65535);
  if (!port.ok()) return Fail(port.status());
  options.port = static_cast<uint16_t>(port.value());
  const auto threads = ParseThreads(args);
  if (!threads.ok()) return Fail(threads.status());
  options.workers = threads.value() == 0 ? 4 : threads.value();
  const auto max_inflight =
      ParseCountFlag(args, "max-inflight", options.max_inflight, 1u << 20);
  if (!max_inflight.ok()) return Fail(max_inflight.status());
  options.max_inflight = static_cast<size_t>(max_inflight.value());
  const auto timeout = ParseCountFlag(args, "read-timeout-ms",
                                      options.read_timeout_ms, 86400000);
  if (!timeout.ok()) return Fail(timeout.status());
  options.read_timeout_ms = static_cast<int>(timeout.value());
  const auto frame_bytes =
      ParseCountFlag(args, "max-frame-bytes", serve::kDefaultMaxFrameBytes,
                     serve::kHardMaxFrameBytes);
  if (!frame_bytes.ok()) return Fail(frame_bytes.status());
  if (frame_bytes.value() < 64) {
    return Fail(Status::InvalidArgument(
        "--max-frame-bytes must be at least 64"));
  }
  options.max_frame_bytes = static_cast<size_t>(frame_bytes.value());
  if (args.Has("metrics-port")) {
    const auto metrics_port = ParseCountFlag(args, "metrics-port", 0, 65535);
    if (!metrics_port.ok()) return Fail(metrics_port.status());
    options.metrics_port = static_cast<int>(metrics_port.value());
  }
  const auto slow_ms = ParseCountFlag(args, "slow-query-ms",
                                      static_cast<uint64_t>(
                                          options.slow_query_ms),
                                      86400000);
  if (!slow_ms.ok()) return Fail(slow_ms.status());
  options.slow_query_ms = static_cast<int>(slow_ms.value());
  const auto sample = ParseCountFlag(args, "trace-sample", 0, UINT32_MAX);
  if (!sample.ok()) return Fail(sample.status());
  options.trace_sample = static_cast<uint32_t>(sample.value());

  serve::SnapshotHolder holder;
  const Status loaded = holder.Load(snapshots);
  if (!loaded.ok()) return Fail(loaded);

  serve::Server server(&holder, options);
  const Status started = server.Start();
  if (!started.ok()) return Fail(started);

  g_serve_server = &server;
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  std::signal(SIGHUP, ServeSignalHandler);

  if (args.Has("port-file")) {
    // Written only once the socket listens — the rendezvous the e2e test
    // and bench wait on. Line 1 is the query port; line 2 (only with
    // --metrics-port) is the bound telemetry port.
    std::string content = std::to_string(server.port()) + "\n";
    if (server.metrics_port() != 0) {
      content += std::to_string(server.metrics_port()) + "\n";
    }
    // Atomic: `sfpm top` / the cli_serve poller may already be spinning
    // on this path and must never read a half-written port number.
    const Status written =
        obs::WriteTextFileAtomic(args.Get("port-file"), content);
    if (!written.ok()) {
      server.RequestShutdown();
      server.Wait();
      g_serve_server = nullptr;
      return Fail(written);
    }
  }
  if (server.metrics_port() != 0) {
    std::printf("sfpm serve: listening on 127.0.0.1:%u (generation %llu, %zu "
                "workers, telemetry on 127.0.0.1:%u)\n",
                static_cast<unsigned>(server.port()),
                static_cast<unsigned long long>(holder.generation()),
                options.workers, static_cast<unsigned>(server.metrics_port()));
  } else {
    std::printf("sfpm serve: listening on 127.0.0.1:%u (generation %llu, %zu "
                "workers)\n",
                static_cast<unsigned>(server.port()),
                static_cast<unsigned long long>(holder.generation()),
                options.workers);
  }
  std::fflush(stdout);

  server.Wait();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  std::signal(SIGHUP, SIG_DFL);
  g_serve_server = nullptr;
  std::printf("sfpm serve: shut down\n");
  return 0;
}

int RunVersion() {
  std::printf("sfpm %s (snapshot format %u, report schema %d)\n",
              kSfpmVersion, store::kFormatVersion, obs::kRunReportVersion);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::string command_line = "sfpm";
  for (int i = 1; i < argc; ++i) {
    command_line += ' ';
    command_line += argv[i];
  }
  const Args args(argc - 2, argv + 2);
  if (command == "version" || command == "--version") {
    return RunVersion();
  }
  if (command == "help" || command == "--help") {
    return RunHelp();
  }
  if (command == "serve") {
    const int bad = RejectUnknownFlags(
        args, "serve",
        {"snapshot", "port", "port-file", "threads", "max-inflight",
         "read-timeout-ms", "max-frame-bytes", "metrics-port",
         "slow-query-ms", "trace-sample"});
    return bad != 0 ? bad : RunServe(args);
  }
  if (command == "top") {
    const int bad = RejectUnknownFlags(
        args, "top", {"metrics-port", "interval-ms", "iterations", "once"});
    return bad != 0 ? bad : tools::RunTop(args);
  }
  if (command == "extract") {
    const int bad = RejectUnknownFlags(
        args, "extract",
        {"reference", "relevant", "distance", "distance-types", "directions",
         "threads", "in", "out", "stats", "report", "trace", "infer-relate"});
    return bad != 0 ? bad : RunExtract(args, command_line);
  }
  if (command == "mine") {
    const int bad = RejectUnknownFlags(
        args, "mine",
        {"table", "in", "out", "minsup", "filter", "dependency", "algorithm",
         "backend", "distance", "rules", "closed", "maximal", "top", "threads",
         "stats", "report", "trace"});
    return bad != 0 ? bad : RunMine(args, command_line);
  }
  if (command == "run") {
    const int bad = RejectUnknownFlags(
        args, "run",
        {"dir", "city", "txdb", "patterns", "seed", "scale", "shards",
         "reference", "directions", "minsup", "filter", "algorithm",
         "backend", "distance", "dependency", "threads", "force", "report",
         "trace"});
    return bad != 0 ? bad : RunPipelineCommand(args, command_line);
  }
  if (command == "gain") {
    const int bad = RejectUnknownFlags(args, "gain", {"t", "n"});
    return bad != 0 ? bad : RunGain(args);
  }
  if (command == "table3") {
    const int bad = RejectUnknownFlags(args, "table3", {});
    return bad != 0 ? bad : RunTable3();
  }
  if (command == "generate-city") {
    const int bad = RejectUnknownFlags(args, "generate-city",
                                       {"seed", "out", "out-prefix"});
    return bad != 0 ? bad : RunGenerateCity(args);
  }
  std::fprintf(stderr, "error: unknown command '%s'\n", command.c_str());
  return Usage();
}
