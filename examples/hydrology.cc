// The introduction's hydrology scenario: cities related to rivers, with
// WKT-loaded geometries, distance bands, and the interesting cross-type
// rules the paper contrasts with the meaningless same-type ones
// (contains_River -> WaterPollution=high, not contains_River ->
// touches_River).
//
//   $ ./build/examples/hydrology

#include <cstdio>

#include "sfpm.h"

using namespace sfpm;

namespace {

/// Adds a WKT geometry to a layer, aborting on parse errors (the WKT here
/// is program text, so failing loudly is right).
uint64_t AddWkt(feature::Layer* layer, const char* wkt,
                std::map<std::string, std::string> attributes = {}) {
  auto g = geom::ReadWkt(wkt);
  if (!g.ok()) {
    std::fprintf(stderr, "bad WKT %s: %s\n", wkt,
                 g.status().ToString().c_str());
    std::abort();
  }
  return layer->Add(std::move(g).value(), std::move(attributes));
}

}  // namespace

int main() {
  // Cities along a river valley. The river crosses some, touches others,
  // and a few contain tributary segments. Pollution is high downstream.
  feature::Layer cities("city");
  AddWkt(&cities, "POLYGON ((0 0, 40 0, 40 30, 0 30, 0 0))",
         {{"name", "Fontewald"}, {"waterPollution", "low"},
          {"exportationRate", "low"}});
  AddWkt(&cities, "POLYGON ((40 0, 80 0, 80 30, 40 30, 40 0))",
         {{"name", "Brueckstadt"}, {"waterPollution", "high"},
          {"exportationRate", "high"}});
  AddWkt(&cities, "POLYGON ((80 0, 120 0, 120 30, 80 30, 80 0))",
         {{"name", "Muendigen"}, {"waterPollution", "high"},
          {"exportationRate", "high"}});
  AddWkt(&cities, "POLYGON ((0 30, 40 30, 40 60, 0 60, 0 30))",
         {{"name", "Hochdorf"}, {"waterPollution", "low"},
          {"exportationRate", "low"}});
  AddWkt(&cities, "POLYGON ((40 30, 80 30, 80 60, 40 60, 40 30))",
         {{"name", "Nebenbach"}, {"waterPollution", "high"},
          {"exportationRate", "low"}});

  feature::Layer rivers("river");
  // Main river: crosses the southern row of cities.
  AddWkt(&rivers, "LINESTRING (-5 15, 45 12, 85 18, 125 15)");
  // Tributary: contained in Nebenbach, ends on Brueckstadt's border.
  AddWkt(&rivers, "LINESTRING (50 55, 55 45, 60 30)");
  // Border creek: runs along the Fontewald/Hochdorf boundary.
  AddWkt(&rivers, "LINESTRING (0 30, 40 30)");

  feature::Layer harbors("harbor");
  AddWkt(&harbors, "POINT (60 18)");
  AddWkt(&harbors, "POINT (100 14)");

  // Show the raw qualitative relations the DE-9IM engine derives.
  std::printf("Topological relations (city x river):\n");
  for (const feature::Feature& city : cities.features()) {
    std::printf("  %-12s:", city.Attribute("name").value().c_str());
    for (const feature::Feature& river : rivers.features()) {
      const auto rel =
          qsr::ClassifyTopological(city.geometry(), river.geometry());
      if (rel != qsr::TopologicalRelation::kDisjoint) {
        std::printf(" %s(river%llu)", qsr::TopologicalRelationName(rel),
                    static_cast<unsigned long long>(river.id()));
      }
    }
    std::printf("\n");
  }
  std::printf("\n");

  feature::PredicateExtractor extractor(&cities);
  extractor.AddRelevantLayer(&rivers);
  extractor.AddRelevantLayer(&harbors);

  const auto bands =
      qsr::DistanceQuantizer::Create({{"adjacent", 5.0}, {"near", 25.0}},
                                     "farFrom");
  feature::ExtractorOptions options;
  options.distance_bands = &bands.value();
  const auto table = extractor.Extract(options);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("Predicate table:\n%s\n", table.value().ToString().c_str());

  const auto mined = core::MineAprioriKCPlus(table.value().db(), 0.4);
  core::RuleOptions rule_options;
  rule_options.min_confidence = 0.9;
  rule_options.single_consequent = true;

  std::printf("High-confidence rules (no same-feature-type rules appear):\n");
  for (const core::AssociationRule& rule :
       core::GenerateRules(table.value().db(), mined.value(), rule_options)) {
    if (rule.antecedent.size() > 2) continue;
    std::printf("  %-60s conf=%.2f lift=%.2f\n",
                rule.ToString(table.value().db()).c_str(), rule.confidence,
                rule.lift);
  }
  return 0;
}
