// Qualitative spatial reasoning beyond mining: compute RCC8 relations
// between regions with the DE-9IM engine, feed them into an RCC8
// constraint network, infer unstated relations by path consistency, and
// detect an inconsistent edit — the reasoning layer that gives the
// library the "QSR" in its name.
//
//   $ ./build/examples/qsr_reasoning

#include <cstdio>

#include "sfpm.h"

using namespace sfpm;

namespace {

geom::Geometry Wkt(const char* wkt) {
  auto g = geom::ReadWkt(wkt);
  if (!g.ok()) {
    std::fprintf(stderr, "bad WKT: %s\n", g.status().ToString().c_str());
    std::abort();
  }
  return std::move(g).value();
}

}  // namespace

int main() {
  // Three nested regions plus a detached one.
  const geom::Geometry state =
      Wkt("POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))");
  const geom::Geometry district =
      Wkt("POLYGON ((10 10, 60 10, 60 60, 10 60, 10 10))");
  const geom::Geometry slum = Wkt("POLYGON ((20 20, 30 20, 30 30, 20 30, 20 20))");
  const geom::Geometry island =
      Wkt("POLYGON ((200 200, 210 200, 210 210, 200 210, 200 200))");

  // 1. Ground RCC8 relations from geometry.
  const qsr::Rcc8 district_in_state = qsr::Rcc8Relate(district, state).value();
  const qsr::Rcc8 slum_in_district = qsr::Rcc8Relate(slum, district).value();
  std::printf("district vs state:    %s\n", Rcc8Name(district_in_state));
  std::printf("slum     vs district: %s\n", Rcc8Name(slum_in_district));

  // 2. Composition alone already bounds slum-vs-state.
  const qsr::Rcc8Set composed =
      qsr::Rcc8Compose(slum_in_district, district_in_state);
  std::printf("composition says slum vs state in %s\n",
              composed.ToString().c_str());

  // 3. A constraint network over four variables:
  //    0 = slum, 1 = district, 2 = state, 3 = island.
  qsr::Rcc8Network net(4);
  Status st = net.Constrain(0, 1, qsr::Rcc8Set(slum_in_district));
  st = net.Constrain(1, 2, qsr::Rcc8Set(district_in_state));
  // All we state about the island: disconnected from the district.
  st = net.Constrain(3, 1, qsr::Rcc8Set(qsr::Rcc8::kDC));
  (void)st;

  if (!net.Propagate()) {
    std::printf("unexpected inconsistency!\n");
    return 1;
  }
  std::printf("\nafter path consistency:\n");
  std::printf("  slum   vs state : %s\n", net.At(0, 2).ToString().c_str());
  std::printf("  island vs slum  : %s\n", net.At(3, 0).ToString().c_str());
  std::printf("  island vs state : %s (nothing stated, correctly weak)\n",
              net.At(3, 2).ToString().c_str());

  // 4. Verify the inferred relation against ground truth geometry.
  const qsr::Rcc8 actual = qsr::Rcc8Relate(slum, state).value();
  std::printf("geometry says slum vs state = %s, network allows it: %s\n",
              Rcc8Name(actual), net.At(0, 2).Contains(actual) ? "yes" : "NO");

  // 5. Now an analyst asserts something impossible: the slum is supposed
  //    to be disconnected from the state. Propagation must refuse.
  qsr::Rcc8Network bad = net;
  st = bad.Constrain(0, 2, qsr::Rcc8Set(qsr::Rcc8::kDC));
  std::printf("\nasserting slum DC state... propagation says: %s\n",
              bad.Propagate() ? "consistent (BUG)" : "inconsistent, rejected");

  // 6. The same engine checks extracted mining predicates: a district that
  //    'contains' AND 'touches' the same slum instance is impossible, and
  //    the network proves it.
  qsr::Rcc8Network conflict(2);
  st = conflict.Constrain(
      0, 1, qsr::Rcc8Set(qsr::Rcc8::kNTPPi) & qsr::Rcc8Set(qsr::Rcc8::kEC));
  std::printf(
      "district both contains and touches one slum instance: %s\n",
      conflict.IsInconsistent() ? "inconsistent, as expected" : "BUG");
  return 0;
}
