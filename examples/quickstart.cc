// Quickstart: build the paper's Table 1 dataset by hand, mine it with
// plain Apriori and with Apriori-KC+, and print the association rules that
// survive — a ten-minute tour of the library's mining layer.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "sfpm.h"

using namespace sfpm;

int main() {
  // 1. A predicate table: one row per reference feature (district), one
  //    boolean column per qualitative predicate. Spatial predicates carry
  //    the feature type they mention — that is what KC+ prunes on.
  feature::PredicateTable table;
  struct Row {
    const char* district;
    const char* murder;
    std::vector<std::pair<const char*, const char*>> spatial;
  };
  for (const Row& row : std::vector<Row>{
           {"Teresopolis", "high", {{"contains", "slum"}, {"overlaps", "slum"},
                                    {"contains", "school"}}},
           {"Vila Nova", "low", {{"touches", "slum"}, {"touches", "school"}}},
           {"Cristal", "high", {{"contains", "slum"}, {"overlaps", "slum"},
                                {"contains", "school"}}},
           {"Nonoai", "high", {{"contains", "slum"}, {"touches", "slum"},
                               {"overlaps", "slum"}, {"contains", "school"}}},
           {"Camaqua", "low", {{"contains", "school"}, {"touches", "school"}}},
       }) {
    const size_t r = table.AddRow(row.district);
    Status st = table.SetAttribute(r, "murderRate", row.murder);
    for (const auto& [relation, type] : row.spatial) {
      st = table.SetSpatial(r, relation, type);
    }
    (void)st;
  }
  std::printf("Input dataset:\n%s\n", table.ToString().c_str());

  // 2. Mine with classic Apriori.
  const auto plain = core::MineApriori(table.db(), 0.4);
  if (!plain.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 plain.status().ToString().c_str());
    return 1;
  }
  std::printf("Apriori frequent itemsets (size >= 2): %zu\n",
              plain.value().CountAtLeast(2));

  // 3. Mine with Apriori-KC+: pairs like {contains_slum, touches_slum} are
  //    removed in the second pass, and by anti-monotonicity no superset of
  //    them is ever generated.
  const auto filtered = core::MineAprioriKCPlus(table.db(), 0.4);
  std::printf("Apriori-KC+ frequent itemsets (size >= 2): %zu\n\n",
              filtered.value().CountAtLeast(2));

  // 4. Rules. Note there is no "contains_slum -> overlaps_slum" here.
  core::RuleOptions options;
  options.min_confidence = 0.8;
  options.single_consequent = true;
  std::printf("Rules (confidence >= 0.8) from the KC+ itemsets:\n");
  for (const core::AssociationRule& rule :
       core::GenerateRules(table.db(), filtered.value(), options)) {
    std::printf("  %-55s  sup=%.2f conf=%.2f lift=%.2f\n",
                rule.ToString(table.db()).c_str(), rule.support,
                rule.confidence, rule.lift);
  }
  return 0;
}
