// The paper's related-work contrast, executable: mine the same synthetic
// city with (a) quantitative co-location patterns (Huang, Shekhar & Xiong
// — metric neighbourhoods, no attributes, no qualitative relations) and
// (b) the qualitative Apriori-KC+ pipeline, and compare what each can
// express.
//
//   $ ./build/examples/colocation_comparison

#include <cstdio>

#include "coloc/colocation.h"
#include "sfpm.h"

using namespace sfpm;

int main() {
  datagen::CityConfig config;
  config.seed = 321;
  const auto city = datagen::GenerateCity(config);

  // --- (a) Co-location patterns over the point-like layers ---------
  coloc::ColocationOptions coloc_options;
  coloc_options.neighbor_distance = 600.0;  // Metres.
  coloc_options.min_prevalence = 0.25;
  const auto patterns = coloc::MineColocations(
      {&city->schools, &city->police, &city->illumination}, coloc_options);
  if (!patterns.ok()) {
    std::fprintf(stderr, "%s\n", patterns.status().ToString().c_str());
    return 1;
  }
  std::printf("co-location patterns (R = %.0f m, PI >= %.2f):\n",
              coloc_options.neighbor_distance, coloc_options.min_prevalence);
  for (const coloc::ColocationPattern& p : patterns.value()) {
    std::printf("  %s\n", p.ToString().c_str());
  }
  std::printf(
      "  — purely metric: no contains/touches distinction, no polygons as "
      "first-class members, no crime attributes.\n\n");

  // --- (b) The qualitative pipeline over the full city -------------
  feature::SpatialAssociationPipeline pipeline(&city->districts);
  pipeline.AddRelevantLayer(&city->slums);
  pipeline.AddRelevantLayer(&city->schools);
  pipeline.AddRelevantLayer(&city->police);

  feature::PipelineOptions options;
  options.min_support = 0.08;
  options.rules = core::RuleOptions{};
  options.rules->min_confidence = 0.7;
  options.rules->single_consequent = true;
  const auto result = pipeline.Run(options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("qualitative Apriori-KC+ rules mentioning crime:\n");
  const auto top = core::TopRulesBy(core::Measure::kLift,
                                    result.value().rules,
                                    result.value().mining,
                                    result.value().table.db(), 200);
  int shown = 0;
  for (const core::AssociationRule& rule : top) {
    const std::string text = rule.ToString(result.value().table.db());
    if (text.find("murderRate") == std::string::npos) continue;
    std::printf("  %-68s conf=%.2f lift=%.2f\n", text.c_str(),
                rule.confidence, rule.lift);
    if (++shown == 8) break;
  }
  std::printf(
      "  — qualitative relations over polygons *and* points, attributes in "
      "the same pattern language, meaningless same-type pairs filtered.\n");
  return 0;
}
