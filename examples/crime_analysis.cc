// The paper's motivating scenario end-to-end: generate a synthetic
// Porto-Alegre-like city, extract qualitative spatial predicates with the
// R-tree join (topological + distance bands), register the well-known
// street/illumination dependency as background knowledge, and compare
// Apriori, Apriori-KC and Apriori-KC+ on the resulting table.
//
//   $ ./build/examples/crime_analysis

#include <cstdio>

#include "sfpm.h"

using namespace sfpm;

int main() {
  // 1. A city: 110 districts (11 x 10 jittered grid), clustered slums,
  //    schools, police centers, streets with illumination points.
  datagen::CityConfig config;
  config.seed = 2007;
  const auto city = datagen::GenerateCity(config);
  std::printf(
      "City: %zu districts, %zu slums, %zu schools, %zu police centers, "
      "%zu streets, %zu illumination points\n\n",
      city->districts.Size(), city->slums.Size(), city->schools.Size(),
      city->police.Size(), city->streets.Size(), city->illumination.Size());

  // 2. Predicate extraction: districts are the reference feature; slums,
  //    schools and police centers the relevant types. Topological
  //    relations come from the DE-9IM engine; police proximity is
  //    quantized into veryClose/close/far like the paper's example.
  feature::PredicateExtractor extractor(&city->districts);
  extractor.AddRelevantLayer(&city->slums);
  extractor.AddRelevantLayer(&city->schools);
  extractor.AddRelevantLayer(&city->police);
  extractor.AddRelevantLayer(&city->streets);
  extractor.AddRelevantLayer(&city->illumination);

  const qsr::DistanceQuantizer bands = qsr::DistanceQuantizer::Default();
  feature::ExtractorOptions options;
  options.distance_bands = &bands;
  options.distance_types = {"policeCenter"};  // As in the paper's example.
  const auto extracted = extractor.Extract(options);
  if (!extracted.ok()) {
    std::fprintf(stderr, "extraction failed: %s\n",
                 extracted.status().ToString().c_str());
    return 1;
  }
  const feature::PredicateTable& table = extracted.value();
  std::printf(
      "Extracted %zu predicates over %zu districts "
      "(%zu same-feature-type pairs)\n",
      table.NumPredicates(), table.NumRows(),
      table.CountSameFeatureTypePairs());
  std::printf("Example row — %s: ", table.RowName(0).c_str());
  for (const feature::Predicate& p : table.RowPredicates(0)) {
    std::printf("%s ", p.Label().c_str());
  }
  std::printf("\n\n");

  // 3. Background knowledge phi: streets carry illumination points (the
  //    Figure 1 dependency), so every street/illumination predicate pair
  //    is a well-known pattern Apriori-KC removes.
  feature::DependencyRegistry phi;
  phi.Add("street", "illuminationPoint");
  const core::PairBlocklistFilter dependency_filter =
      phi.MakeFilter(table.db());

  // 4. Compare the three miners.
  const double minsup = 0.08;
  const auto apriori = core::MineApriori(table.db(), minsup).value();
  const auto kc =
      core::MineAprioriKC(table.db(), minsup, dependency_filter).value();
  const auto kcplus =
      core::MineAprioriKCPlus(table.db(), minsup, &dependency_filter).value();
  std::printf("Frequent itemsets (size >= 2) at minsup %.0f%%:\n",
              minsup * 100);
  std::printf("  Apriori     : %5zu  (%.2f ms)\n", apriori.CountAtLeast(2),
              apriori.stats().total_millis);
  std::printf("  Apriori-KC  : %5zu  (%.2f ms)\n", kc.CountAtLeast(2),
              kc.stats().total_millis);
  std::printf("  Apriori-KC+ : %5zu  (%.2f ms)\n\n", kcplus.CountAtLeast(2),
              kcplus.stats().total_millis);

  // 5. The hypothesis from the paper's introduction: high-crime districts
  //    relate to slums; low-crime districts contain schools and police.
  core::RuleOptions rule_options;
  rule_options.min_confidence = 0.6;
  rule_options.single_consequent = true;
  std::printf("Rules about murderRate (confidence >= 0.6, by lift):\n");
  auto rules = core::GenerateRules(table.db(), kcplus, rule_options);
  std::sort(rules.begin(), rules.end(),
            [](const auto& a, const auto& b) { return a.lift > b.lift; });
  int shown = 0;
  for (const core::AssociationRule& rule : rules) {
    if (rule.consequent.size() != 1) continue;
    const std::string label = table.db().Label(rule.consequent[0]);
    if (label.rfind("murderRate=", 0) != 0) continue;
    std::printf("  %-70s conf=%.2f lift=%.2f\n",
                rule.ToString(table.db()).c_str(), rule.confidence,
                rule.lift);
    if (++shown == 10) break;
  }
  return 0;
}
