// The paper's granularity story, executable: extract predicates at
// *instance* granularity (contains_slum159 — where same-feature-type pairs
// barely exist and mining finds nothing general), then generalize to
// feature-type granularity through the taxonomy (contains_slum — where the
// meaningless same-type combinations explode) and watch Apriori-KC+ remove
// exactly those.
//
//   $ ./build/examples/multilevel_granularity

#include <cstdio>

#include "sfpm.h"

using namespace sfpm;

int main() {
  datagen::CityConfig config;
  config.grid_cols = 6;
  config.grid_rows = 5;
  config.num_slums = 90;
  config.num_schools = 80;
  config.num_police = 8;
  config.num_streets = 15;
  config.seed = 4711;
  const auto city = datagen::GenerateCity(config);

  feature::PredicateExtractor extractor(&city->districts);
  extractor.AddRelevantLayer(&city->slums);
  extractor.AddRelevantLayer(&city->schools);

  // --- Level 0: instance granularity -------------------------------
  feature::ExtractorOptions options;
  options.instance_granularity = true;
  const auto instance_table = extractor.Extract(options);
  if (!instance_table.ok()) {
    std::fprintf(stderr, "%s\n", instance_table.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "instance granularity: %zu predicates over %zu districts, "
      "%zu same-feature-type pairs\n",
      instance_table.value().NumPredicates(),
      instance_table.value().NumRows(),
      instance_table.value().CountSameFeatureTypePairs());
  std::printf("  e.g. %s: ", instance_table.value().RowName(7).c_str());
  for (const feature::Predicate& p :
       instance_table.value().RowPredicates(7)) {
    std::printf("%s ", p.Label().c_str());
  }
  std::printf("\n");

  const auto instance_mined =
      core::MineApriori(instance_table.value().db(), 0.1);
  std::printf(
      "  mining at 10%% support: %zu itemsets (size >= 2) — instances are "
      "too specific to be frequent\n\n",
      instance_mined.value().CountAtLeast(2));

  // --- Level 1: feature-type granularity via the taxonomy ----------
  const feature::Taxonomy taxonomy =
      feature::InstanceTaxonomy({&city->slums, &city->schools});
  const feature::PredicateTable type_table =
      feature::GeneralizeTable(instance_table.value(), taxonomy, 1);
  std::printf(
      "type granularity:     %zu predicates, %zu same-feature-type pairs\n",
      type_table.NumPredicates(), type_table.CountSameFeatureTypePairs());

  const auto apriori = core::MineApriori(type_table.db(), 0.1);
  const auto kcplus = core::MineAprioriKCPlus(type_table.db(), 0.1);
  std::printf(
      "  Apriori:     %4zu itemsets (size >= 2)\n"
      "  Apriori-KC+: %4zu itemsets — %.0f%% of the generalized patterns "
      "were same-feature-type noise\n",
      apriori.value().CountAtLeast(2), kcplus.value().CountAtLeast(2),
      100.0 * (1.0 - static_cast<double>(kcplus.value().CountAtLeast(2)) /
                         apriori.value().CountAtLeast(2)));

  // The gain formula, applied to what we just did.
  const auto params =
      stats::AnalyzeLargestItemset(apriori.value(), type_table.db());
  if (params.ok()) {
    const auto gain =
        stats::MinimalGain(params.value().t, params.value().n);
    std::printf(
        "  largest itemset %s -> Formula 1 predicts a gain of at least "
        "%llu (real: %zu)\n",
        params.value().ToString().c_str(),
        static_cast<unsigned long long>(gain.value_or(0)),
        apriori.value().CountAtLeast(2) - kcplus.value().CountAtLeast(2));
  }
  return 0;
}
