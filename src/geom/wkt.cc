#include "geom/wkt.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "util/strings.h"

namespace sfpm {
namespace geom {

namespace {

/// Minimal recursive-descent parser over a character cursor.
class WktParser {
 public:
  explicit WktParser(std::string_view text) : text_(text) {}

  Result<Geometry> Parse() {
    SkipSpace();
    std::string keyword = ReadKeyword();
    Result<Geometry> geometry = ParseTagged(keyword);
    if (!geometry.ok()) return geometry;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing characters after WKT geometry");
    }
    return geometry;
  }

 private:
  Result<Geometry> ParseTagged(const std::string& keyword) {
    if (keyword == "POINT") {
      if (ConsumeEmpty()) {
        return Status::Unsupported("POINT EMPTY has no coordinate");
      }
      Point p;
      SFPM_RETURN_NOT_OK(ParsePointBody(&p));
      return Geometry(p);
    }
    if (keyword == "LINESTRING") {
      if (ConsumeEmpty()) return Geometry(LineString());
      std::vector<Point> pts;
      SFPM_RETURN_NOT_OK(ParseCoordList(&pts));
      if (pts.size() < 2) {
        return Status::ParseError("LINESTRING needs at least 2 points");
      }
      return Geometry(LineString(std::move(pts)));
    }
    if (keyword == "POLYGON") {
      if (ConsumeEmpty()) return Geometry(Polygon());
      Polygon poly;
      SFPM_RETURN_NOT_OK(ParsePolygonBody(&poly));
      return Geometry(std::move(poly));
    }
    if (keyword == "MULTIPOINT") {
      if (ConsumeEmpty()) return Geometry(MultiPoint());
      std::vector<Point> pts;
      SFPM_RETURN_NOT_OK(ParseMultiPointBody(&pts));
      return Geometry(MultiPoint(std::move(pts)));
    }
    if (keyword == "MULTILINESTRING") {
      if (ConsumeEmpty()) return Geometry(MultiLineString());
      std::vector<LineString> lines;
      SFPM_RETURN_NOT_OK(Expect('('));
      do {
        std::vector<Point> pts;
        SFPM_RETURN_NOT_OK(ParseCoordList(&pts));
        lines.emplace_back(std::move(pts));
      } while (ConsumeComma());
      SFPM_RETURN_NOT_OK(Expect(')'));
      return Geometry(MultiLineString(std::move(lines)));
    }
    if (keyword == "MULTIPOLYGON") {
      if (ConsumeEmpty()) return Geometry(MultiPolygon());
      std::vector<Polygon> polys;
      SFPM_RETURN_NOT_OK(Expect('('));
      do {
        Polygon poly;
        SFPM_RETURN_NOT_OK(ParsePolygonBody(&poly));
        polys.push_back(std::move(poly));
      } while (ConsumeComma());
      SFPM_RETURN_NOT_OK(Expect(')'));
      return Geometry(MultiPolygon(std::move(polys)));
    }
    if (keyword == "GEOMETRYCOLLECTION") {
      return Status::Unsupported("GEOMETRYCOLLECTION is not supported");
    }
    return Status::ParseError("unknown WKT keyword '" + keyword + "'");
  }

  Status ParsePointBody(Point* out) {
    SFPM_RETURN_NOT_OK(Expect('('));
    SFPM_RETURN_NOT_OK(ParseCoord(out));
    return Expect(')');
  }

  Status ParseCoordList(std::vector<Point>* out) {
    SFPM_RETURN_NOT_OK(Expect('('));
    do {
      Point p;
      SFPM_RETURN_NOT_OK(ParseCoord(&p));
      out->push_back(p);
    } while (ConsumeComma());
    return Expect(')');
  }

  Status ParsePolygonBody(Polygon* out) {
    SFPM_RETURN_NOT_OK(Expect('('));
    std::vector<LinearRing> rings;
    do {
      std::vector<Point> pts;
      SFPM_RETURN_NOT_OK(ParseCoordList(&pts));
      LinearRing ring(std::move(pts));
      if (!ring.IsValid()) {
        return Status::ParseError("polygon ring needs at least 3 points");
      }
      rings.push_back(std::move(ring));
    } while (ConsumeComma());
    SFPM_RETURN_NOT_OK(Expect(')'));
    LinearRing shell = std::move(rings.front());
    rings.erase(rings.begin());
    *out = Polygon(std::move(shell), std::move(rings));
    return Status::OK();
  }

  Status ParseMultiPointBody(std::vector<Point>* out) {
    SFPM_RETURN_NOT_OK(Expect('('));
    do {
      SkipSpace();
      Point p;
      if (Peek() == '(') {  // ((1 2), (3 4)) form.
        SFPM_RETURN_NOT_OK(Expect('('));
        SFPM_RETURN_NOT_OK(ParseCoord(&p));
        SFPM_RETURN_NOT_OK(Expect(')'));
      } else {  // (1 2, 3 4) form.
        SFPM_RETURN_NOT_OK(ParseCoord(&p));
      }
      out->push_back(p);
    } while (ConsumeComma());
    return Expect(')');
  }

  Status ParseCoord(Point* out) {
    SFPM_RETURN_NOT_OK(ParseNumber(&out->x));
    return ParseNumber(&out->y);
  }

  Status ParseNumber(double* out) {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '+' || text_[pos_] == '-' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::ParseError("expected number at offset " +
                                std::to_string(start));
    }
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, *out);
    if (ec != std::errc() || ptr != text_.data() + pos_) {
      return Status::ParseError("malformed number in WKT");
    }
    return Status::OK();
  }

  std::string ReadKeyword() {
    SkipSpace();
    std::string word;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      word += static_cast<char>(
          std::toupper(static_cast<unsigned char>(text_[pos_])));
      ++pos_;
    }
    return word;
  }

  bool ConsumeEmpty() {
    const size_t saved = pos_;
    const std::string word = ReadKeyword();
    if (word == "EMPTY") return true;
    pos_ = saved;
    return false;
  }

  bool ConsumeComma() {
    SkipSpace();
    if (Peek() == ',') {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    SkipSpace();
    if (Peek() != c) {
      return Status::ParseError(std::string("expected '") + c +
                                "' at offset " + std::to_string(pos_));
    }
    ++pos_;
    return Status::OK();
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// Shortest round-trip formatting (util/strings.h) keeps WKT output
// byte-stable across write -> read -> write cycles.
void AppendCoord(const Point& p, std::string* out) {
  AppendRoundTripDouble(p.x, out);
  *out += ' ';
  AppendRoundTripDouble(p.y, out);
}

void AppendCoordList(const std::vector<Point>& pts, std::string* out) {
  *out += '(';
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendCoord(pts[i], out);
  }
  *out += ')';
}

void AppendPolygonBody(const Polygon& poly, std::string* out) {
  *out += '(';
  AppendCoordList(poly.shell().points(), out);
  for (const LinearRing& hole : poly.holes()) {
    *out += ", ";
    AppendCoordList(hole.points(), out);
  }
  *out += ')';
}

}  // namespace

Result<Geometry> ReadWkt(std::string_view text) {
  return WktParser(text).Parse();
}

std::string WriteWkt(const Geometry& g) {
  std::string out;
  switch (g.type()) {
    case GeometryType::kPoint: {
      out = "POINT (";
      AppendCoord(g.As<Point>(), &out);
      out += ')';
      break;
    }
    case GeometryType::kLineString: {
      const LineString& l = g.As<LineString>();
      if (l.IsEmpty()) return "LINESTRING EMPTY";
      out = "LINESTRING ";
      AppendCoordList(l.points(), &out);
      break;
    }
    case GeometryType::kPolygon: {
      const Polygon& p = g.As<Polygon>();
      if (p.IsEmpty()) return "POLYGON EMPTY";
      out = "POLYGON ";
      AppendPolygonBody(p, &out);
      break;
    }
    case GeometryType::kMultiPoint: {
      const MultiPoint& m = g.As<MultiPoint>();
      if (m.IsEmpty()) return "MULTIPOINT EMPTY";
      out = "MULTIPOINT ";
      AppendCoordList(m.points(), &out);
      break;
    }
    case GeometryType::kMultiLineString: {
      const MultiLineString& m = g.As<MultiLineString>();
      if (m.IsEmpty()) return "MULTILINESTRING EMPTY";
      out = "MULTILINESTRING (";
      for (size_t i = 0; i < m.lines().size(); ++i) {
        if (i > 0) out += ", ";
        AppendCoordList(m.lines()[i].points(), &out);
      }
      out += ')';
      break;
    }
    case GeometryType::kMultiPolygon: {
      const MultiPolygon& m = g.As<MultiPolygon>();
      if (m.IsEmpty()) return "MULTIPOLYGON EMPTY";
      out = "MULTIPOLYGON (";
      for (size_t i = 0; i < m.polygons().size(); ++i) {
        if (i > 0) out += ", ";
        AppendPolygonBody(m.polygons()[i], &out);
      }
      out += ')';
      break;
    }
  }
  return out;
}

}  // namespace geom
}  // namespace sfpm
