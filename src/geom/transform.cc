#include "geom/transform.h"

#include <cmath>

namespace sfpm {
namespace geom {

AffineTransform AffineTransform::Translation(double dx, double dy) {
  return AffineTransform(1, 0, dx, 0, 1, dy);
}

AffineTransform AffineTransform::Scaling(double sx, double sy) {
  return AffineTransform(sx, 0, 0, 0, sy, 0);
}

AffineTransform AffineTransform::Rotation(double radians) {
  const double c = std::cos(radians);
  const double s = std::sin(radians);
  return AffineTransform(c, -s, 0, s, c, 0);
}

AffineTransform AffineTransform::Rotation(double radians,
                                          const Point& center) {
  return Translation(-center.x, -center.y)
      .Then(Rotation(radians))
      .Then(Translation(center.x, center.y));
}

AffineTransform AffineTransform::ReflectionX() {
  return AffineTransform(1, 0, 0, 0, -1, 0);
}

AffineTransform AffineTransform::Then(const AffineTransform& next) const {
  // next(this(p)): compose the 2x3 matrices.
  return AffineTransform(
      next.a_ * a_ + next.b_ * d_, next.a_ * b_ + next.b_ * e_,
      next.a_ * c_ + next.b_ * f_ + next.c_,
      next.d_ * a_ + next.e_ * d_, next.d_ * b_ + next.e_ * e_,
      next.d_ * c_ + next.e_ * f_ + next.f_);
}

namespace {

std::vector<Point> ApplyAll(const AffineTransform& t,
                            const std::vector<Point>& pts) {
  std::vector<Point> out;
  out.reserve(pts.size());
  for (const Point& p : pts) out.push_back(t.Apply(p));
  return out;
}

LinearRing ApplyRing(const AffineTransform& t, const LinearRing& ring) {
  return LinearRing(ApplyAll(t, ring.points()));
}

Polygon ApplyPolygon(const AffineTransform& t, const Polygon& poly) {
  std::vector<LinearRing> holes;
  holes.reserve(poly.holes().size());
  for (const LinearRing& hole : poly.holes()) {
    holes.push_back(ApplyRing(t, hole));
  }
  return Polygon(ApplyRing(t, poly.shell()), std::move(holes));
}

}  // namespace

Geometry AffineTransform::Apply(const Geometry& g) const {
  switch (g.type()) {
    case GeometryType::kPoint:
      return Geometry(Apply(g.As<Point>()));
    case GeometryType::kLineString:
      return Geometry(LineString(ApplyAll(*this, g.As<LineString>().points())));
    case GeometryType::kPolygon:
      return Geometry(ApplyPolygon(*this, g.As<Polygon>()));
    case GeometryType::kMultiPoint:
      return Geometry(MultiPoint(ApplyAll(*this, g.As<MultiPoint>().points())));
    case GeometryType::kMultiLineString: {
      std::vector<LineString> lines;
      for (const LineString& l : g.As<MultiLineString>().lines()) {
        lines.emplace_back(ApplyAll(*this, l.points()));
      }
      return Geometry(MultiLineString(std::move(lines)));
    }
    case GeometryType::kMultiPolygon: {
      std::vector<Polygon> polys;
      for (const Polygon& p : g.As<MultiPolygon>().polygons()) {
        polys.push_back(ApplyPolygon(*this, p));
      }
      return Geometry(MultiPolygon(std::move(polys)));
    }
  }
  return g;
}

Geometry Translate(const Geometry& g, double dx, double dy) {
  return AffineTransform::Translation(dx, dy).Apply(g);
}

Geometry Scale(const Geometry& g, double factor, const Point& center) {
  return AffineTransform::Translation(-center.x, -center.y)
      .Then(AffineTransform::Scaling(factor))
      .Then(AffineTransform::Translation(center.x, center.y))
      .Apply(g);
}

Geometry Rotate(const Geometry& g, double radians, const Point& center) {
  return AffineTransform::Rotation(radians, center).Apply(g);
}

}  // namespace geom
}  // namespace sfpm
