#ifndef SFPM_GEOM_WKT_H_
#define SFPM_GEOM_WKT_H_

#include <string>
#include <string_view>

#include "geom/geometry.h"
#include "util/status.h"

namespace sfpm {
namespace geom {

/// \brief Parses an OGC well-known-text string into a Geometry.
///
/// Supports POINT, LINESTRING, POLYGON, MULTIPOINT (both `(1 2, 3 4)` and
/// `((1 2), (3 4))` forms), MULTILINESTRING, MULTIPOLYGON, and the EMPTY
/// keyword for each. GEOMETRYCOLLECTION is rejected with kUnsupported.
Result<Geometry> ReadWkt(std::string_view text);

/// \brief Renders a geometry as well-known text with shortest round-trip
/// double formatting.
std::string WriteWkt(const Geometry& g);

}  // namespace geom
}  // namespace sfpm

#endif  // SFPM_GEOM_WKT_H_
