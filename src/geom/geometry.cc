#include "geom/geometry.h"

#include <cmath>

#include "geom/wkt.h"
#include "util/strings.h"

namespace sfpm {
namespace geom {

const char* GeometryTypeName(GeometryType type) {
  switch (type) {
    case GeometryType::kPoint:
      return "POINT";
    case GeometryType::kLineString:
      return "LINESTRING";
    case GeometryType::kPolygon:
      return "POLYGON";
    case GeometryType::kMultiPoint:
      return "MULTIPOINT";
    case GeometryType::kMultiLineString:
      return "MULTILINESTRING";
    case GeometryType::kMultiPolygon:
      return "MULTIPOLYGON";
  }
  return "UNKNOWN";
}

std::string Point::ToString() const {
  return StrFormat("(%g, %g)", x, y);
}

std::string Envelope::ToString() const {
  if (IsNull()) return "Env[null]";
  return StrFormat("Env[%g:%g, %g:%g]", min_x(), max_x(), min_y(), max_y());
}

namespace {

double PathLength(const std::vector<Point>& pts) {
  double total = 0.0;
  for (size_t i = 1; i < pts.size(); ++i) {
    total += pts[i - 1].DistanceTo(pts[i]);
  }
  return total;
}

Envelope PathEnvelope(const std::vector<Point>& pts) {
  Envelope env;
  for (const Point& p : pts) env.ExpandToInclude(p);
  return env;
}

}  // namespace

double LineString::Length() const { return PathLength(points_); }

Envelope LineString::GetEnvelope() const { return PathEnvelope(points_); }

LinearRing::LinearRing(std::vector<Point> points) : points_(std::move(points)) {
  if (!points_.empty() && points_.front() != points_.back()) {
    points_.push_back(points_.front());
  }
}

double LinearRing::SignedArea() const {
  // Shoelace formula over the closed vertex list.
  double twice_area = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    const Point& a = points_[i - 1];
    const Point& b = points_[i];
    twice_area += a.x * b.y - b.x * a.y;
  }
  return twice_area / 2.0;
}

double LinearRing::Length() const { return PathLength(points_); }

Envelope LinearRing::GetEnvelope() const { return PathEnvelope(points_); }

double Polygon::Area() const {
  double area = shell_.Area();
  for (const LinearRing& hole : holes_) area -= hole.Area();
  return area;
}

double Polygon::BoundaryLength() const {
  double len = shell_.Length();
  for (const LinearRing& hole : holes_) len += hole.Length();
  return len;
}

Envelope MultiPoint::GetEnvelope() const { return PathEnvelope(points_); }

double MultiLineString::Length() const {
  double total = 0.0;
  for (const LineString& l : lines_) total += l.Length();
  return total;
}

Envelope MultiLineString::GetEnvelope() const {
  Envelope env;
  for (const LineString& l : lines_) env.ExpandToInclude(l.GetEnvelope());
  return env;
}

double MultiPolygon::Area() const {
  double total = 0.0;
  for (const Polygon& p : polygons_) total += p.Area();
  return total;
}

Envelope MultiPolygon::GetEnvelope() const {
  Envelope env;
  for (const Polygon& p : polygons_) env.ExpandToInclude(p.GetEnvelope());
  return env;
}

int Geometry::Dimension() const {
  switch (type()) {
    case GeometryType::kPoint:
    case GeometryType::kMultiPoint:
      return 0;
    case GeometryType::kLineString:
    case GeometryType::kMultiLineString:
      return 1;
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon:
      return 2;
  }
  return -1;
}

bool Geometry::IsEmpty() const {
  return std::visit(
      [](const auto& g) -> bool {
        using T = std::decay_t<decltype(g)>;
        if constexpr (std::is_same_v<T, Point>) {
          return std::isnan(g.x) || std::isnan(g.y);
        } else {
          return g.IsEmpty();
        }
      },
      value_);
}

Envelope Geometry::GetEnvelope() const {
  return std::visit(
      [](const auto& g) -> Envelope {
        using T = std::decay_t<decltype(g)>;
        if constexpr (std::is_same_v<T, Point>) {
          return Envelope(g);
        } else {
          return g.GetEnvelope();
        }
      },
      value_);
}

size_t Geometry::NumParts() const {
  switch (type()) {
    case GeometryType::kMultiPoint:
      return As<MultiPoint>().NumGeometries();
    case GeometryType::kMultiLineString:
      return As<MultiLineString>().NumGeometries();
    case GeometryType::kMultiPolygon:
      return As<MultiPolygon>().NumGeometries();
    default:
      return 1;
  }
}

std::string Geometry::ToWkt() const { return WriteWkt(*this); }

std::vector<Geometry> Decompose(const Geometry& g) {
  std::vector<Geometry> parts;
  switch (g.type()) {
    case GeometryType::kMultiPoint:
      for (const Point& p : g.As<MultiPoint>().points()) parts.emplace_back(p);
      break;
    case GeometryType::kMultiLineString:
      for (const LineString& l : g.As<MultiLineString>().lines()) {
        parts.emplace_back(l);
      }
      break;
    case GeometryType::kMultiPolygon:
      for (const Polygon& p : g.As<MultiPolygon>().polygons()) {
        parts.emplace_back(p);
      }
      break;
    default:
      parts.push_back(g);
      break;
  }
  return parts;
}

}  // namespace geom
}  // namespace sfpm
