#ifndef SFPM_GEOM_GEOMETRY_H_
#define SFPM_GEOM_GEOMETRY_H_

#include <cstddef>
#include <string>
#include <variant>
#include <vector>

#include "geom/point.h"
#include "util/status.h"

namespace sfpm {
namespace geom {

/// \brief OGC simple-feature geometry types supported by the library.
enum class GeometryType {
  kPoint,
  kLineString,
  kPolygon,
  kMultiPoint,
  kMultiLineString,
  kMultiPolygon,
};

/// Returns the canonical WKT keyword ("POINT", "POLYGON", ...).
const char* GeometryTypeName(GeometryType type);

/// \brief An open polyline with at least two vertices (when non-empty).
class LineString {
 public:
  LineString() = default;
  explicit LineString(std::vector<Point> points) : points_(std::move(points)) {}

  const std::vector<Point>& points() const { return points_; }
  std::vector<Point>& mutable_points() { return points_; }

  bool IsEmpty() const { return points_.empty(); }
  size_t NumPoints() const { return points_.size(); }
  const Point& point(size_t i) const { return points_[i]; }

  /// True when first and last vertices coincide.
  bool IsClosed() const {
    return points_.size() >= 3 && points_.front() == points_.back();
  }

  /// Sum of segment lengths.
  double Length() const;

  Envelope GetEnvelope() const;

  bool operator==(const LineString& o) const { return points_ == o.points_; }

 private:
  std::vector<Point> points_;
};

/// \brief A closed ring: first vertex equals last vertex.
///
/// Rings are stored exactly as given; orientation (CW/CCW) is not
/// normalized — use `SignedArea()` to query it.
class LinearRing {
 public:
  LinearRing() = default;

  /// Takes the vertex list; appends a closing vertex when absent.
  explicit LinearRing(std::vector<Point> points);

  const std::vector<Point>& points() const { return points_; }
  bool IsEmpty() const { return points_.empty(); }

  /// Number of vertices including the duplicated closing vertex.
  size_t NumPoints() const { return points_.size(); }
  const Point& point(size_t i) const { return points_[i]; }

  /// Positive for counter-clockwise rings (shoelace formula).
  double SignedArea() const;
  double Area() const { return std::abs(SignedArea()); }
  double Length() const;

  Envelope GetEnvelope() const;

  /// Basic validity: at least 4 vertices (triangle + closure) and closed.
  bool IsValid() const {
    return points_.size() >= 4 && points_.front() == points_.back();
  }

  bool operator==(const LinearRing& o) const { return points_ == o.points_; }

 private:
  std::vector<Point> points_;
};

/// \brief A polygon: one exterior shell plus zero or more interior holes.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(LinearRing shell, std::vector<LinearRing> holes = {})
      : shell_(std::move(shell)), holes_(std::move(holes)) {}

  const LinearRing& shell() const { return shell_; }
  const std::vector<LinearRing>& holes() const { return holes_; }

  bool IsEmpty() const { return shell_.IsEmpty(); }

  /// Shell area minus hole areas.
  double Area() const;

  /// Total boundary length (shell plus holes).
  double BoundaryLength() const;

  Envelope GetEnvelope() const { return shell_.GetEnvelope(); }

  bool operator==(const Polygon& o) const {
    return shell_ == o.shell_ && holes_ == o.holes_;
  }

 private:
  LinearRing shell_;
  std::vector<LinearRing> holes_;
};

/// \brief A collection of points.
class MultiPoint {
 public:
  MultiPoint() = default;
  explicit MultiPoint(std::vector<Point> points) : points_(std::move(points)) {}

  const std::vector<Point>& points() const { return points_; }
  bool IsEmpty() const { return points_.empty(); }
  size_t NumGeometries() const { return points_.size(); }

  Envelope GetEnvelope() const;

  bool operator==(const MultiPoint& o) const { return points_ == o.points_; }

 private:
  std::vector<Point> points_;
};

/// \brief A collection of linestrings.
class MultiLineString {
 public:
  MultiLineString() = default;
  explicit MultiLineString(std::vector<LineString> lines)
      : lines_(std::move(lines)) {}

  const std::vector<LineString>& lines() const { return lines_; }
  bool IsEmpty() const { return lines_.empty(); }
  size_t NumGeometries() const { return lines_.size(); }

  double Length() const;
  Envelope GetEnvelope() const;

  bool operator==(const MultiLineString& o) const { return lines_ == o.lines_; }

 private:
  std::vector<LineString> lines_;
};

/// \brief A collection of polygons.
class MultiPolygon {
 public:
  MultiPolygon() = default;
  explicit MultiPolygon(std::vector<Polygon> polygons)
      : polygons_(std::move(polygons)) {}

  const std::vector<Polygon>& polygons() const { return polygons_; }
  bool IsEmpty() const { return polygons_.empty(); }
  size_t NumGeometries() const { return polygons_.size(); }

  double Area() const;
  Envelope GetEnvelope() const;

  bool operator==(const MultiPolygon& o) const {
    return polygons_ == o.polygons_;
  }

 private:
  std::vector<Polygon> polygons_;
};

/// \brief Type-erased geometry value: the unit the relate engine, spatial
/// index, and feature layer all operate on.
///
/// A `Geometry` is a cheap-to-move value type over a variant of the six
/// concrete simple-feature types. Default-constructed geometry is an empty
/// point.
class Geometry {
 public:
  using Variant = std::variant<Point, LineString, Polygon, MultiPoint,
                               MultiLineString, MultiPolygon>;

  Geometry() : value_(Point{}) {}
  Geometry(Point p) : value_(p) {}                        // NOLINT
  Geometry(LineString l) : value_(std::move(l)) {}        // NOLINT
  Geometry(Polygon p) : value_(std::move(p)) {}           // NOLINT
  Geometry(MultiPoint m) : value_(std::move(m)) {}        // NOLINT
  Geometry(MultiLineString m) : value_(std::move(m)) {}   // NOLINT
  Geometry(MultiPolygon m) : value_(std::move(m)) {}      // NOLINT

  GeometryType type() const {
    return static_cast<GeometryType>(value_.index());
  }

  /// Topological dimension: 0 for points, 1 for lines, 2 for polygons.
  /// Empty geometries report the dimension of their declared type.
  int Dimension() const;

  bool IsEmpty() const;

  Envelope GetEnvelope() const;

  /// Number of atomic parts (1 for simple types, N for multi types).
  size_t NumParts() const;

  template <typename T>
  bool Is() const {
    return std::holds_alternative<T>(value_);
  }

  template <typename T>
  const T& As() const {
    return std::get<T>(value_);
  }

  const Variant& value() const { return value_; }

  bool operator==(const Geometry& o) const { return value_ == o.value_; }

  /// Well-known-text rendering (delegates to wkt.h writer).
  std::string ToWkt() const;

 private:
  Variant value_;
};

/// \brief Decomposes any geometry into its atomic parts.
///
/// MultiX splits into X parts; simple geometries yield themselves. Used by
/// the relate engine and distance computation to reduce multi-geometry cases
/// to simple-pair cases.
std::vector<Geometry> Decompose(const Geometry& g);

}  // namespace geom
}  // namespace sfpm

#endif  // SFPM_GEOM_GEOMETRY_H_
