#ifndef SFPM_GEOM_ALGORITHMS_H_
#define SFPM_GEOM_ALGORITHMS_H_

#include <vector>

#include "geom/geometry.h"
#include "geom/point.h"

namespace sfpm {
namespace geom {

/// \brief Topological position of a point relative to a geometry, following
/// the interior/boundary/exterior decomposition of the 9-intersection model.
enum class Location { kInterior, kBoundary, kExterior };

/// \brief Relative tolerance shared by the collinearity predicates
/// (Orientation, PointOnSegment).
///
/// Exposed so indexed callers can widen envelope queries to cover the
/// tolerance band: a point within slack of a segment may lie outside the
/// segment's envelope, and an exact envelope probe would never surface the
/// segment for the tolerance-aware on-segment test.
inline constexpr double kCollinearityRelEps = 1e-12;

/// \brief Sign of the signed area of triangle (a, b, c).
///
/// Returns +1 when c lies to the left of the directed line a->b (counter-
/// clockwise turn), -1 to the right, and 0 when the points are collinear.
int Orientation(const Point& a, const Point& b, const Point& c);

/// \brief Twice the signed area of triangle (a, b, c); positive when CCW.
double Cross(const Point& a, const Point& b, const Point& c);

/// True when `p` lies on the closed segment [a, b] (endpoints included).
bool PointOnSegment(const Point& p, const Point& a, const Point& b);

/// \brief Classification of how two closed segments meet.
struct SegmentIntersection {
  enum class Kind {
    kNone,     ///< Segments do not intersect.
    kPoint,    ///< Single intersection point (stored in `p`).
    kOverlap,  ///< Collinear overlap along sub-segment [p, q].
  };
  Kind kind = Kind::kNone;
  Point p;  ///< Intersection point, or overlap start.
  Point q;  ///< Overlap end (kind == kOverlap only).
  /// True when the intersection point lies strictly inside both segments
  /// (a "proper" crossing). Meaningful for kind == kPoint only.
  bool proper = false;
};

/// \brief Intersects closed segments [a1, a2] and [b1, b2].
///
/// Degenerate (zero-length) segments are handled as points.
SegmentIntersection IntersectSegments(const Point& a1, const Point& a2,
                                      const Point& b1, const Point& b2);

/// True when the closed segments share at least one point.
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

/// \brief Locates `p` relative to the closed region bounded by `ring`
/// (crossing-number test with exact boundary detection).
Location LocateInRing(const Point& p, const LinearRing& ring);

/// \brief Locates `p` relative to `poly`, honouring holes: a point inside a
/// hole is exterior; a point on a hole boundary is boundary.
Location LocateInPolygon(const Point& p, const Polygon& poly);

/// \brief Locates `p` relative to an arbitrary geometry.
///
/// Conventions of the 9-intersection model:
///  * Point/MultiPoint: every member point is interior (points have an empty
///    boundary); anything else is exterior.
///  * LineString: the two endpoints form the boundary (for closed rings the
///    boundary is empty); other on-line points are interior.
///  * MultiLineString: boundary follows the mod-2 rule — an endpoint shared
///    by an even number of member curves is interior.
///  * Polygon/MultiPolygon: as LocateInPolygon.
Location Locate(const Point& p, const Geometry& g);

/// Distance from `p` to the closed segment [a, b].
double DistancePointSegment(const Point& p, const Point& a, const Point& b);

/// Distance between closed segments [a1, a2] and [b1, b2].
double DistanceSegmentSegment(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2);

/// \brief Minimum Euclidean distance between two geometries (0 when they
/// intersect). Handles every pair of the six geometry types.
double Distance(const Geometry& a, const Geometry& b);

/// \brief A point guaranteed to lie strictly inside the polygon.
///
/// Computed by intersecting a horizontal scanline with the polygon edges and
/// taking the midpoint of the widest interior interval; exact for valid
/// simple polygons with positive area.
Point InteriorPoint(const Polygon& poly);

/// \brief Geometric centroid. Area-weighted for polygons, length-weighted
/// for lines, arithmetic mean for points.
Point Centroid(const Geometry& g);

/// \brief Convex hull of a point set (Andrew's monotone chain), returned as
/// a CCW ring. Collinear input degenerates to a (possibly flat) ring.
LinearRing ConvexHull(std::vector<Point> points);

/// \brief Douglas-Peucker simplification with Euclidean tolerance.
///
/// Endpoints are always kept; interior vertices closer than `tolerance` to
/// the simplified baseline are dropped.
LineString Simplify(const LineString& line, double tolerance);

/// \brief Splits the path `a -> b` at every point where it meets a segment
/// of `cutters`, returning the ordered cut points (excluding a and b).
///
/// This is the workhorse of the relate engine's exact midpoint
/// classification: after splitting, each open sub-segment lies entirely
/// within one of interior/boundary/exterior of the other geometry.
std::vector<Point> SplitPointsOnSegment(
    const Point& a, const Point& b,
    const std::vector<std::pair<Point, Point>>& cutters);

/// \brief Collects every boundary segment of `g` (polylines' segments,
/// polygon shell + hole segments). Points contribute nothing.
std::vector<std::pair<Point, Point>> BoundarySegments(const Geometry& g);

/// \brief One representative vertex per connected component of `g`'s
/// linework: each member point for point types, the first vertex of each
/// polyline part, and the first vertex of every ring (shell *and* each
/// hole) for areal types — holes are their own components because a
/// polygon's boundary rings are pairwise disjoint.
///
/// The relate fast path relies on the defining property: when none of
/// `g`'s segments can intersect another geometry's linework, every
/// component lies entirely on one side of that geometry, so locating the
/// representative locates the whole component.
std::vector<Point> ComponentRepresentatives(const Geometry& g);

/// \brief Collects every vertex of `g` (member points for point types,
/// path vertices for lines, ring vertices for polygons).
std::vector<Point> AllVertices(const Geometry& g);

/// \brief Total area of `g` (0 for points and lines).
double Area(const Geometry& g);

/// \brief Total length of `g`'s linework: curve length for lines,
/// boundary length for polygons, 0 for points.
double Length(const Geometry& g);

/// \brief Discrete Hausdorff distance between two geometries: the maximum
/// over each geometry's sample points of the distance to the other
/// geometry, symmetrized. Sample points are the vertices plus segment
/// subdivisions no longer than `densify_fraction` of each segment (a
/// smaller fraction tightens the approximation to the true Hausdorff
/// distance). Requires densify_fraction in (0, 1].
double HausdorffDistance(const Geometry& a, const Geometry& b,
                         double densify_fraction = 0.25);

}  // namespace geom
}  // namespace sfpm

#endif  // SFPM_GEOM_ALGORITHMS_H_
