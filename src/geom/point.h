#ifndef SFPM_GEOM_POINT_H_
#define SFPM_GEOM_POINT_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace sfpm {
namespace geom {

/// \brief A 2-D coordinate. The basic building block of every geometry.
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Point& o) const { return !(*this == o); }

  /// Lexicographic (x, then y) order; used for canonical forms and hulls.
  bool operator<(const Point& o) const {
    return x < o.x || (x == o.x && y < o.y);
  }

  /// Euclidean distance to `o`.
  double DistanceTo(const Point& o) const {
    return std::hypot(x - o.x, y - o.y);
  }

  std::string ToString() const;
};

/// \brief An axis-aligned bounding rectangle; the unit of R-tree indexing.
///
/// A default-constructed envelope is *null* (empty): it contains nothing and
/// expanding it by a point makes it that point.
class Envelope {
 public:
  /// Constructs a null (empty) envelope.
  Envelope()
      : min_x_(std::numeric_limits<double>::infinity()),
        min_y_(std::numeric_limits<double>::infinity()),
        max_x_(-std::numeric_limits<double>::infinity()),
        max_y_(-std::numeric_limits<double>::infinity()) {}

  /// Constructs from extremes; the pairs may be given in any order.
  Envelope(double x1, double y1, double x2, double y2)
      : min_x_(std::min(x1, x2)),
        min_y_(std::min(y1, y2)),
        max_x_(std::max(x1, x2)),
        max_y_(std::max(y1, y2)) {}

  /// Envelope of a single point.
  explicit Envelope(const Point& p) : Envelope(p.x, p.y, p.x, p.y) {}

  /// Envelope of a segment.
  Envelope(const Point& a, const Point& b) : Envelope(a.x, a.y, b.x, b.y) {}

  bool IsNull() const { return min_x_ > max_x_; }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

  double Width() const { return IsNull() ? 0.0 : max_x_ - min_x_; }
  double Height() const { return IsNull() ? 0.0 : max_y_ - min_y_; }
  double Area() const { return Width() * Height(); }
  double Perimeter() const { return 2.0 * (Width() + Height()); }

  Point Center() const {
    return Point((min_x_ + max_x_) / 2.0, (min_y_ + max_y_) / 2.0);
  }

  /// Grows this envelope to cover `p`.
  void ExpandToInclude(const Point& p) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x_ = std::max(max_x_, p.x);
    max_y_ = std::max(max_y_, p.y);
  }

  /// Grows this envelope to cover `other`.
  void ExpandToInclude(const Envelope& other) {
    if (other.IsNull()) return;
    min_x_ = std::min(min_x_, other.min_x_);
    min_y_ = std::min(min_y_, other.min_y_);
    max_x_ = std::max(max_x_, other.max_x_);
    max_y_ = std::max(max_y_, other.max_y_);
  }

  /// Grows every side by `margin` (a negative margin shrinks).
  Envelope Buffered(double margin) const {
    if (IsNull()) return *this;
    return Envelope(min_x_ - margin, min_y_ - margin, max_x_ + margin,
                    max_y_ + margin);
  }

  /// True when the closed rectangles share at least one point.
  bool Intersects(const Envelope& other) const {
    if (IsNull() || other.IsNull()) return false;
    return min_x_ <= other.max_x_ && max_x_ >= other.min_x_ &&
           min_y_ <= other.max_y_ && max_y_ >= other.min_y_;
  }

  /// True when `p` lies inside or on the border.
  bool Contains(const Point& p) const {
    return !IsNull() && p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ &&
           p.y <= max_y_;
  }

  /// True when `other` is entirely inside or on the border.
  bool Contains(const Envelope& other) const {
    if (IsNull() || other.IsNull()) return false;
    return other.min_x_ >= min_x_ && other.max_x_ <= max_x_ &&
           other.min_y_ >= min_y_ && other.max_y_ <= max_y_;
  }

  /// Smallest separation between the rectangles; 0 when they intersect.
  double Distance(const Envelope& other) const {
    if (Intersects(other)) return 0.0;
    double dx = 0.0;
    if (other.max_x_ < min_x_) {
      dx = min_x_ - other.max_x_;
    } else if (other.min_x_ > max_x_) {
      dx = other.min_x_ - max_x_;
    }
    double dy = 0.0;
    if (other.max_y_ < min_y_) {
      dy = min_y_ - other.max_y_;
    } else if (other.min_y_ > max_y_) {
      dy = other.min_y_ - max_y_;
    }
    return std::hypot(dx, dy);
  }

  /// Rectangle intersection; null when disjoint.
  Envelope Intersection(const Envelope& other) const {
    if (!Intersects(other)) return Envelope();
    return Envelope(std::max(min_x_, other.min_x_),
                    std::max(min_y_, other.min_y_),
                    std::min(max_x_, other.max_x_),
                    std::min(max_y_, other.max_y_));
  }

  /// Area the envelope would gain by expanding to include `other`.
  double EnlargementToInclude(const Envelope& other) const {
    Envelope merged = *this;
    merged.ExpandToInclude(other);
    return merged.Area() - Area();
  }

  bool operator==(const Envelope& o) const {
    if (IsNull() && o.IsNull()) return true;
    return min_x_ == o.min_x_ && min_y_ == o.min_y_ && max_x_ == o.max_x_ &&
           max_y_ == o.max_y_;
  }

  std::string ToString() const;

 private:
  double min_x_, min_y_, max_x_, max_y_;
};

}  // namespace geom
}  // namespace sfpm

#endif  // SFPM_GEOM_POINT_H_
