#include "geom/algorithms.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sfpm {
namespace geom {

namespace {

/// Relative tolerance for the collinearity test (see kCollinearityRelEps in
/// the header). Coordinates of typical datasets are O(1e3); the cross
/// product magnitudes are then O(1e6) and a relative threshold keeps the
/// predicate scale-invariant.
constexpr double kRelEps = kCollinearityRelEps;

double OrientationThreshold(const Point& a, const Point& b, const Point& c) {
  const double m = std::abs((b.x - a.x) * (c.y - a.y)) +
                   std::abs((b.y - a.y) * (c.x - a.x));
  return kRelEps * m;
}

}  // namespace

double Cross(const Point& a, const Point& b, const Point& c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

int Orientation(const Point& a, const Point& b, const Point& c) {
  const double cr = Cross(a, b, c);
  const double eps = OrientationThreshold(a, b, c);
  if (cr > eps) return 1;
  if (cr < -eps) return -1;
  return 0;
}

bool PointOnSegment(const Point& p, const Point& a, const Point& b) {
  if (Orientation(a, b, p) != 0) return false;
  const double adx = std::abs(b.x - a.x);
  const double ady = std::abs(b.y - a.y);
  if (adx == 0.0 && ady == 0.0) return p == a;
  // Clamp along the dominant axis only, with slack matching the
  // collinearity tolerance. The non-dominant extent of a near-axis-aligned
  // segment is thinner than the orientation tolerance, so an exact clamp
  // there rejects points the collinearity test accepts; likewise a point
  // within tolerance of an endpoint can overshoot the exact extent.
  if (adx >= ady) {
    const double slack = kRelEps * adx;
    return p.x >= std::min(a.x, b.x) - slack &&
           p.x <= std::max(a.x, b.x) + slack;
  }
  const double slack = kRelEps * ady;
  return p.y >= std::min(a.y, b.y) - slack &&
         p.y <= std::max(a.y, b.y) + slack;
}

SegmentIntersection IntersectSegments(const Point& a1, const Point& a2,
                                      const Point& b1, const Point& b2) {
  SegmentIntersection out;

  // Degenerate segments reduce to point-on-segment tests.
  const bool a_degenerate = (a1 == a2);
  const bool b_degenerate = (b1 == b2);
  if (a_degenerate && b_degenerate) {
    if (a1 == b1) {
      out.kind = SegmentIntersection::Kind::kPoint;
      out.p = a1;
    }
    return out;
  }
  if (a_degenerate) {
    if (PointOnSegment(a1, b1, b2)) {
      out.kind = SegmentIntersection::Kind::kPoint;
      out.p = a1;
    }
    return out;
  }
  if (b_degenerate) {
    if (PointOnSegment(b1, a1, a2)) {
      out.kind = SegmentIntersection::Kind::kPoint;
      out.p = b1;
    }
    return out;
  }

  const int o1 = Orientation(a1, a2, b1);
  const int o2 = Orientation(a1, a2, b2);
  const int o3 = Orientation(b1, b2, a1);
  const int o4 = Orientation(b1, b2, a2);

  if (o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0) {
    // Proper crossing: solve the 2x2 linear system from both sides. Each
    // parameter is clamped to [0, 1] so cancellation on near-parallel input
    // cannot launch the point off its segment; the midpoint of the two
    // clamped candidates is invariant under operand swap, and the final
    // clamp into the envelope intersection (non-empty whenever the straddle
    // is certified) keeps the result inside both operand envelopes.
    const double dax = a2.x - a1.x;
    const double day = a2.y - a1.y;
    const double dbx = b2.x - b1.x;
    const double dby = b2.y - b1.y;
    const double denom = dax * dby - day * dbx;
    const double t = std::clamp(
        ((b1.x - a1.x) * dby - (b1.y - a1.y) * dbx) / denom, 0.0, 1.0);
    const double s = std::clamp(
        ((b1.x - a1.x) * day - (b1.y - a1.y) * dax) / denom, 0.0, 1.0);
    Point p(0.5 * ((a1.x + t * dax) + (b1.x + s * dbx)),
            0.5 * ((a1.y + t * day) + (b1.y + s * dby)));
    p.x = std::clamp(p.x, std::max(std::min(a1.x, a2.x), std::min(b1.x, b2.x)),
                     std::min(std::max(a1.x, a2.x), std::max(b1.x, b2.x)));
    p.y = std::clamp(p.y, std::max(std::min(a1.y, a2.y), std::min(b1.y, b2.y)),
                     std::min(std::max(a1.y, a2.y), std::max(b1.y, b2.y)));
    out.kind = SegmentIntersection::Kind::kPoint;
    out.p = p;
    out.proper = true;
    return out;
  }

  if (o1 == 0 && o2 == 0 && o3 == 0 && o4 == 0) {
    // Collinear within tolerance, witnessed from both operands' frames:
    // project onto the dominant axis and intersect intervals. Requiring
    // both witnesses keeps the classification invariant under operand
    // swap — a one-frame test reports overlap from one side and an
    // endpoint touch from the other on near-collinear input, because the
    // relative orientation threshold collapses when a query point lies
    // next to the frame's reference endpoint. Pairs with a one-sided
    // witness fall through to the endpoint-touch scan below.
    const bool use_x = std::abs(a2.x - a1.x) + std::abs(b2.x - b1.x) >=
                       std::abs(a2.y - a1.y) + std::abs(b2.y - b1.y);
    auto key = [use_x](const Point& p) { return use_x ? p.x : p.y; };
    auto less = [use_x](const Point& p, const Point& q) {
      const double kp = use_x ? p.x : p.y;
      const double kq = use_x ? q.x : q.y;
      if (kp != kq) return kp < kq;
      return (use_x ? p.y : p.x) < (use_x ? q.y : q.x);
    };
    Point alo = a1, ahi = a2, blo = b1, bhi = b2;
    if (less(ahi, alo)) std::swap(alo, ahi);
    if (less(bhi, blo)) std::swap(blo, bhi);
    const Point lo = less(alo, blo) ? blo : alo;
    const Point hi = less(bhi, ahi) ? bhi : ahi;
    if (key(lo) > key(hi)) return out;  // Disjoint collinear intervals.
    if (lo == hi) {
      out.kind = SegmentIntersection::Kind::kPoint;
      out.p = lo;
      return out;
    }
    out.kind = SegmentIntersection::Kind::kOverlap;
    out.p = lo;
    out.q = hi;
    return out;
  }

  // Non-collinear with an endpoint touching the other segment. More than
  // one endpoint can touch on near-collinear input; returning the
  // lexicographically smallest keeps the result invariant under swap.
  const Point* touch = nullptr;
  auto consider = [&touch](const Point& p) {
    if (touch == nullptr || p.x < touch->x ||
        (p.x == touch->x && p.y < touch->y)) {
      touch = &p;
    }
  };
  if (o1 == 0 && PointOnSegment(b1, a1, a2)) consider(b1);
  if (o2 == 0 && PointOnSegment(b2, a1, a2)) consider(b2);
  if (o3 == 0 && PointOnSegment(a1, b1, b2)) consider(a1);
  if (o4 == 0 && PointOnSegment(a2, b1, b2)) consider(a2);
  if (touch != nullptr) {
    out.kind = SegmentIntersection::Kind::kPoint;
    out.p = *touch;
  }
  return out;
}

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  return IntersectSegments(a1, a2, b1, b2).kind !=
         SegmentIntersection::Kind::kNone;
}

Location LocateInRing(const Point& p, const LinearRing& ring) {
  const std::vector<Point>& pts = ring.points();
  if (pts.size() < 4) return Location::kExterior;

  // Exact boundary test first.
  for (size_t i = 1; i < pts.size(); ++i) {
    if (PointOnSegment(p, pts[i - 1], pts[i])) return Location::kBoundary;
  }

  // Crossing-number test. The half-open edge convention (count an edge when
  // exactly one endpoint is strictly above the ray) handles vertices on the
  // ray without double counting.
  bool inside = false;
  for (size_t i = 1; i < pts.size(); ++i) {
    const Point& a = pts[i - 1];
    const Point& b = pts[i];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_at_y = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_at_y > p.x) inside = !inside;
    }
  }
  return inside ? Location::kInterior : Location::kExterior;
}

Location LocateInPolygon(const Point& p, const Polygon& poly) {
  const Location shell_loc = LocateInRing(p, poly.shell());
  if (shell_loc != Location::kInterior) return shell_loc;
  for (const LinearRing& hole : poly.holes()) {
    const Location hole_loc = LocateInRing(p, hole);
    if (hole_loc == Location::kBoundary) return Location::kBoundary;
    if (hole_loc == Location::kInterior) return Location::kExterior;
  }
  return Location::kInterior;
}

namespace {

Location LocateOnLineString(const Point& p, const LineString& line) {
  const std::vector<Point>& pts = line.points();
  if (pts.empty()) return Location::kExterior;
  if (pts.size() == 1) {
    return p == pts[0] ? Location::kInterior : Location::kExterior;
  }
  bool on_line = false;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (PointOnSegment(p, pts[i - 1], pts[i])) {
      on_line = true;
      break;
    }
  }
  if (!on_line) return Location::kExterior;
  if (line.IsClosed()) return Location::kInterior;  // Rings have no boundary.
  if (p == pts.front() || p == pts.back()) return Location::kBoundary;
  return Location::kInterior;
}

}  // namespace

Location Locate(const Point& p, const Geometry& g) {
  switch (g.type()) {
    case GeometryType::kPoint:
      return p == g.As<Point>() ? Location::kInterior : Location::kExterior;
    case GeometryType::kMultiPoint: {
      for (const Point& q : g.As<MultiPoint>().points()) {
        if (p == q) return Location::kInterior;
      }
      return Location::kExterior;
    }
    case GeometryType::kLineString:
      return LocateOnLineString(p, g.As<LineString>());
    case GeometryType::kMultiLineString: {
      // Mod-2 rule: a point is boundary when it is an endpoint of an odd
      // number of member curves; interior when it is on some curve and not
      // boundary.
      int endpoint_count = 0;
      bool on_any = false;
      for (const LineString& l : g.As<MultiLineString>().lines()) {
        const Location loc = LocateOnLineString(p, l);
        if (loc == Location::kBoundary) ++endpoint_count;
        if (loc != Location::kExterior) on_any = true;
      }
      if (!on_any) return Location::kExterior;
      return (endpoint_count % 2 == 1) ? Location::kBoundary
                                       : Location::kInterior;
    }
    case GeometryType::kPolygon:
      return LocateInPolygon(p, g.As<Polygon>());
    case GeometryType::kMultiPolygon: {
      // Assumes a valid multipolygon (parts with disjoint interiors).
      // A point on the shared edge of two touching parts is boundary,
      // consistent with the parts not overlapping.
      Location result = Location::kExterior;
      for (const Polygon& poly : g.As<MultiPolygon>().polygons()) {
        const Location loc = LocateInPolygon(p, poly);
        if (loc == Location::kInterior) return Location::kInterior;
        if (loc == Location::kBoundary) result = Location::kBoundary;
      }
      return result;
    }
  }
  return Location::kExterior;
}

double DistancePointSegment(const Point& p, const Point& a, const Point& b) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  if (len2 == 0.0) return p.DistanceTo(a);
  double t = ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return p.DistanceTo(Point(a.x + t * dx, a.y + t * dy));
}

double DistanceSegmentSegment(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2) {
  if (SegmentsIntersect(a1, a2, b1, b2)) return 0.0;
  return std::min({DistancePointSegment(a1, b1, b2),
                   DistancePointSegment(a2, b1, b2),
                   DistancePointSegment(b1, a1, a2),
                   DistancePointSegment(b2, a1, a2)});
}

std::vector<std::pair<Point, Point>> BoundarySegments(const Geometry& g) {
  std::vector<std::pair<Point, Point>> segs;
  auto add_path = [&segs](const std::vector<Point>& pts) {
    for (size_t i = 1; i < pts.size(); ++i) {
      segs.emplace_back(pts[i - 1], pts[i]);
    }
  };
  for (const Geometry& part : Decompose(g)) {
    switch (part.type()) {
      case GeometryType::kLineString:
        add_path(part.As<LineString>().points());
        break;
      case GeometryType::kPolygon: {
        const Polygon& poly = part.As<Polygon>();
        add_path(poly.shell().points());
        for (const LinearRing& hole : poly.holes()) add_path(hole.points());
        break;
      }
      default:
        break;  // Points contribute no segments.
    }
  }
  return segs;
}

std::vector<Point> AllVertices(const Geometry& g) {
  std::vector<Point> out;
  for (const Geometry& part : Decompose(g)) {
    switch (part.type()) {
      case GeometryType::kPoint:
        out.push_back(part.As<Point>());
        break;
      case GeometryType::kLineString: {
        const auto& pts = part.As<LineString>().points();
        out.insert(out.end(), pts.begin(), pts.end());
        break;
      }
      case GeometryType::kPolygon: {
        const Polygon& poly = part.As<Polygon>();
        const auto& shell = poly.shell().points();
        out.insert(out.end(), shell.begin(), shell.end());
        for (const LinearRing& hole : poly.holes()) {
          const auto& hp = hole.points();
          out.insert(out.end(), hp.begin(), hp.end());
        }
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::vector<Point> ComponentRepresentatives(const Geometry& g) {
  std::vector<Point> reps;
  for (const Geometry& part : Decompose(g)) {
    switch (part.type()) {
      case GeometryType::kPoint:
        if (!part.IsEmpty()) reps.push_back(part.As<Point>());
        break;
      case GeometryType::kLineString:
        if (!part.As<LineString>().IsEmpty()) {
          reps.push_back(part.As<LineString>().points().front());
        }
        break;
      case GeometryType::kPolygon: {
        const Polygon& poly = part.As<Polygon>();
        if (!poly.shell().IsEmpty()) {
          reps.push_back(poly.shell().points().front());
        }
        for (const LinearRing& hole : poly.holes()) {
          if (!hole.IsEmpty()) reps.push_back(hole.points().front());
        }
        break;
      }
      default:
        break;  // Decompose never yields multi parts.
    }
  }
  return reps;
}

namespace {

double SimplePairDistance(const Geometry& a, const Geometry& b) {
  const GeometryType ta = a.type();
  const GeometryType tb = b.type();

  if (ta == GeometryType::kPoint && tb == GeometryType::kPoint) {
    return a.As<Point>().DistanceTo(b.As<Point>());
  }

  // Normalize so the lower-dimensional operand comes first.
  if (a.Dimension() > b.Dimension()) return SimplePairDistance(b, a);

  if (ta == GeometryType::kPoint) {
    const Point& p = a.As<Point>();
    if (tb == GeometryType::kPolygon &&
        LocateInPolygon(p, b.As<Polygon>()) != Location::kExterior) {
      return 0.0;
    }
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [s1, s2] : BoundarySegments(b)) {
      best = std::min(best, DistancePointSegment(p, s1, s2));
    }
    return best;
  }

  // Line or polygon vs line or polygon: zero when any vertex of one lies
  // inside/on the other or when boundaries intersect; otherwise the minimum
  // over boundary segment pairs.
  if (tb == GeometryType::kPolygon) {
    for (const Point& v : AllVertices(a)) {
      if (LocateInPolygon(v, b.As<Polygon>()) != Location::kExterior) {
        return 0.0;
      }
    }
  }
  if (ta == GeometryType::kPolygon) {
    for (const Point& v : AllVertices(b)) {
      if (LocateInPolygon(v, a.As<Polygon>()) != Location::kExterior) {
        return 0.0;
      }
    }
  }
  double best = std::numeric_limits<double>::infinity();
  const auto segs_a = BoundarySegments(a);
  const auto segs_b = BoundarySegments(b);
  for (const auto& [a1, a2] : segs_a) {
    for (const auto& [b1, b2] : segs_b) {
      best = std::min(best, DistanceSegmentSegment(a1, a2, b1, b2));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

}  // namespace

double Distance(const Geometry& a, const Geometry& b) {
  double best = std::numeric_limits<double>::infinity();
  for (const Geometry& pa : Decompose(a)) {
    for (const Geometry& pb : Decompose(b)) {
      best = std::min(best, SimplePairDistance(pa, pb));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

double Area(const Geometry& g) {
  switch (g.type()) {
    case GeometryType::kPolygon:
      return g.As<Polygon>().Area();
    case GeometryType::kMultiPolygon:
      return g.As<MultiPolygon>().Area();
    default:
      return 0.0;
  }
}

double Length(const Geometry& g) {
  double total = 0.0;
  for (const auto& [a, b] : BoundarySegments(g)) {
    total += a.DistanceTo(b);
  }
  return total;
}

namespace {

/// Vertices plus per-segment subdivisions for Hausdorff sampling.
std::vector<Point> DensifiedSamples(const Geometry& g,
                                    double densify_fraction) {
  std::vector<Point> samples = AllVertices(g);
  for (const auto& [a, b] : BoundarySegments(g)) {
    const int pieces =
        std::max(1, static_cast<int>(std::ceil(1.0 / densify_fraction)));
    for (int i = 1; i < pieces; ++i) {
      const double t = static_cast<double>(i) / pieces;
      samples.emplace_back(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
    }
  }
  return samples;
}

double DirectedHausdorff(const std::vector<Point>& samples,
                         const Geometry& target) {
  double worst = 0.0;
  for (const Point& p : samples) {
    worst = std::max(worst, Distance(Geometry(p), target));
  }
  return worst;
}

}  // namespace

double HausdorffDistance(const Geometry& a, const Geometry& b,
                         double densify_fraction) {
  assert(densify_fraction > 0.0 && densify_fraction <= 1.0);
  return std::max(DirectedHausdorff(DensifiedSamples(a, densify_fraction), b),
                  DirectedHausdorff(DensifiedSamples(b, densify_fraction), a));
}

Point InteriorPoint(const Polygon& poly) {
  assert(!poly.IsEmpty());
  const Envelope env = poly.GetEnvelope();

  // Choose a scanline y that avoids every vertex: take the two distinct
  // vertex ordinates bracketing the envelope centre and bisect them.
  std::vector<double> ys;
  for (const Point& p : poly.shell().points()) ys.push_back(p.y);
  for (const LinearRing& hole : poly.holes()) {
    for (const Point& p : hole.points()) ys.push_back(p.y);
  }
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  const double center_y = (env.min_y() + env.max_y()) / 2.0;
  double below = env.min_y();
  double above = env.max_y();
  for (double y : ys) {
    if (y <= center_y && y > below) below = y;
    if (y > center_y && y < above) {
      above = y;
      break;
    }
  }
  // `ys` spans [min_y, max_y]; when center_y coincides with the single
  // distinct level the polygon is degenerate and we fall back to the centre.
  const double scan_y = (below + above) / 2.0;

  // Gather scanline/edge crossing abscissae over the shell and holes.
  std::vector<double> xs;
  auto scan_ring = [&xs, scan_y](const LinearRing& ring) {
    const auto& pts = ring.points();
    for (size_t i = 1; i < pts.size(); ++i) {
      const Point& a = pts[i - 1];
      const Point& b = pts[i];
      if ((a.y > scan_y) != (b.y > scan_y)) {
        xs.push_back(a.x + (scan_y - a.y) * (b.x - a.x) / (b.y - a.y));
      }
    }
  };
  scan_ring(poly.shell());
  for (const LinearRing& hole : poly.holes()) scan_ring(hole);
  std::sort(xs.begin(), xs.end());

  if (xs.size() < 2) return env.Center();  // Degenerate polygon.

  // Even-odd rule: intervals [xs[0],xs[1]], [xs[2],xs[3]], ... are interior.
  double best_width = -1.0;
  double best_x = env.Center().x;
  for (size_t i = 0; i + 1 < xs.size(); i += 2) {
    const double width = xs[i + 1] - xs[i];
    if (width > best_width) {
      best_width = width;
      best_x = (xs[i] + xs[i + 1]) / 2.0;
    }
  }
  return Point(best_x, scan_y);
}

namespace {

Point RingCentroid(const LinearRing& ring, double* signed_area) {
  const auto& pts = ring.points();
  double a2 = 0.0, cx = 0.0, cy = 0.0;
  for (size_t i = 1; i < pts.size(); ++i) {
    const double w = pts[i - 1].x * pts[i].y - pts[i].x * pts[i - 1].y;
    a2 += w;
    cx += (pts[i - 1].x + pts[i].x) * w;
    cy += (pts[i - 1].y + pts[i].y) * w;
  }
  *signed_area = a2 / 2.0;
  if (a2 == 0.0) {
    // Flat ring: average the vertices.
    Point mean;
    const size_t n = pts.size() > 1 ? pts.size() - 1 : pts.size();
    for (size_t i = 0; i < n; ++i) {
      mean.x += pts[i].x;
      mean.y += pts[i].y;
    }
    mean.x /= static_cast<double>(n);
    mean.y /= static_cast<double>(n);
    return mean;
  }
  return Point(cx / (3.0 * a2), cy / (3.0 * a2));
}

Point PolygonCentroid(const Polygon& poly) {
  double shell_area = 0.0;
  Point c = RingCentroid(poly.shell(), &shell_area);
  double total = std::abs(shell_area);
  double cx = c.x * total;
  double cy = c.y * total;
  for (const LinearRing& hole : poly.holes()) {
    double hole_area = 0.0;
    const Point hc = RingCentroid(hole, &hole_area);
    const double w = std::abs(hole_area);
    cx -= hc.x * w;
    cy -= hc.y * w;
    total -= w;
  }
  if (total == 0.0) return c;
  return Point(cx / total, cy / total);
}

}  // namespace

Point Centroid(const Geometry& g) {
  switch (g.type()) {
    case GeometryType::kPoint:
      return g.As<Point>();
    case GeometryType::kMultiPoint: {
      const auto& pts = g.As<MultiPoint>().points();
      Point mean;
      for (const Point& p : pts) {
        mean.x += p.x;
        mean.y += p.y;
      }
      if (!pts.empty()) {
        mean.x /= static_cast<double>(pts.size());
        mean.y /= static_cast<double>(pts.size());
      }
      return mean;
    }
    case GeometryType::kLineString:
    case GeometryType::kMultiLineString: {
      // Length-weighted mean of segment midpoints.
      double total = 0.0, cx = 0.0, cy = 0.0;
      for (const auto& [a, b] : BoundarySegments(g)) {
        const double len = a.DistanceTo(b);
        total += len;
        cx += (a.x + b.x) / 2.0 * len;
        cy += (a.y + b.y) / 2.0 * len;
      }
      if (total == 0.0) return g.GetEnvelope().Center();
      return Point(cx / total, cy / total);
    }
    case GeometryType::kPolygon:
      return PolygonCentroid(g.As<Polygon>());
    case GeometryType::kMultiPolygon: {
      double total = 0.0, cx = 0.0, cy = 0.0;
      for (const Polygon& p : g.As<MultiPolygon>().polygons()) {
        const double area = p.Area();
        const Point c = PolygonCentroid(p);
        total += area;
        cx += c.x * area;
        cy += c.y * area;
      }
      if (total == 0.0) return g.GetEnvelope().Center();
      return Point(cx / total, cy / total);
    }
  }
  return Point();
}

LinearRing ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const size_t n = points.size();
  if (n == 0) return LinearRing();
  if (n == 1) {
    return LinearRing(std::vector<Point>{points[0], points[0], points[0]});
  }

  std::vector<Point> hull(2 * n);
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {  // Lower hull.
    while (k >= 2 &&
           Cross(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {  // Upper hull.
    while (k >= lower &&
           Cross(hull[k - 2], hull[k - 1], points[i]) <= 0.0) {
      --k;
    }
    hull[k++] = points[i];
  }
  hull.resize(k);
  if (hull.size() < 3) {
    // Collinear input: emit a flat ring over the extremes.
    hull = {points.front(), points.back(), points.front()};
  }
  return LinearRing(std::move(hull));
}

namespace {

void SimplifyRange(const std::vector<Point>& pts, size_t lo, size_t hi,
                   double tolerance, std::vector<bool>* keep) {
  if (hi <= lo + 1) return;
  double max_dist = -1.0;
  size_t max_idx = lo;
  for (size_t i = lo + 1; i < hi; ++i) {
    const double d = DistancePointSegment(pts[i], pts[lo], pts[hi]);
    if (d > max_dist) {
      max_dist = d;
      max_idx = i;
    }
  }
  if (max_dist > tolerance) {
    (*keep)[max_idx] = true;
    SimplifyRange(pts, lo, max_idx, tolerance, keep);
    SimplifyRange(pts, max_idx, hi, tolerance, keep);
  }
}

}  // namespace

LineString Simplify(const LineString& line, double tolerance) {
  const std::vector<Point>& pts = line.points();
  if (pts.size() <= 2) return line;
  std::vector<bool> keep(pts.size(), false);
  keep.front() = keep.back() = true;
  SimplifyRange(pts, 0, pts.size() - 1, tolerance, &keep);
  std::vector<Point> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) out.push_back(pts[i]);
  }
  return LineString(std::move(out));
}

std::vector<Point> SplitPointsOnSegment(
    const Point& a, const Point& b,
    const std::vector<std::pair<Point, Point>>& cutters) {
  std::vector<Point> cuts;
  for (const auto& [c1, c2] : cutters) {
    const SegmentIntersection isect = IntersectSegments(a, b, c1, c2);
    switch (isect.kind) {
      case SegmentIntersection::Kind::kNone:
        break;
      case SegmentIntersection::Kind::kPoint:
        cuts.push_back(isect.p);
        break;
      case SegmentIntersection::Kind::kOverlap:
        cuts.push_back(isect.p);
        cuts.push_back(isect.q);
        break;
    }
  }
  // Order along the segment and drop endpoints/duplicates.
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len2 = dx * dx + dy * dy;
  auto param = [&](const Point& p) {
    return len2 == 0.0 ? 0.0 : ((p.x - a.x) * dx + (p.y - a.y) * dy) / len2;
  };
  std::sort(cuts.begin(), cuts.end(),
            [&](const Point& u, const Point& v) { return param(u) < param(v); });
  std::vector<Point> out;
  constexpr double kTEps = 1e-12;
  for (const Point& p : cuts) {
    const double t = param(p);
    if (t <= kTEps || t >= 1.0 - kTEps) continue;
    if (!out.empty() && std::abs(param(out.back()) - t) <= kTEps) continue;
    out.push_back(p);
  }
  return out;
}

}  // namespace geom
}  // namespace sfpm
