#ifndef SFPM_GEOM_TRANSFORM_H_
#define SFPM_GEOM_TRANSFORM_H_

#include "geom/geometry.h"

namespace sfpm {
namespace geom {

/// \brief A 2-D affine transform  p' = [a b; d e] p + (c, f).
///
/// Built from the usual named constructors and composed with `Then`;
/// applied to any geometry with `Apply`. Used by the data generators and
/// by tests that need congruent copies of geometries.
class AffineTransform {
 public:
  /// Identity transform.
  AffineTransform() = default;

  /// Raw coefficients (row-major 2x3).
  AffineTransform(double a, double b, double c, double d, double e, double f)
      : a_(a), b_(b), c_(c), d_(d), e_(e), f_(f) {}

  static AffineTransform Translation(double dx, double dy);
  static AffineTransform Scaling(double sx, double sy);
  static AffineTransform Scaling(double s) { return Scaling(s, s); }
  /// Counter-clockwise rotation by `radians` about the origin.
  static AffineTransform Rotation(double radians);
  /// Counter-clockwise rotation about an arbitrary center.
  static AffineTransform Rotation(double radians, const Point& center);
  /// Mirror across the x axis (y -> -y).
  static AffineTransform ReflectionX();

  /// The transform applying `this` first, then `next`.
  AffineTransform Then(const AffineTransform& next) const;

  Point Apply(const Point& p) const {
    return Point(a_ * p.x + b_ * p.y + c_, d_ * p.x + e_ * p.y + f_);
  }

  /// Transforms every coordinate of `g`.
  Geometry Apply(const Geometry& g) const;

  /// Determinant of the linear part; negative means orientation flips.
  double Determinant() const { return a_ * e_ - b_ * d_; }

  bool operator==(const AffineTransform& o) const {
    return a_ == o.a_ && b_ == o.b_ && c_ == o.c_ && d_ == o.d_ &&
           e_ == o.e_ && f_ == o.f_;
  }

 private:
  double a_ = 1, b_ = 0, c_ = 0;
  double d_ = 0, e_ = 1, f_ = 0;
};

/// Convenience wrappers.
Geometry Translate(const Geometry& g, double dx, double dy);
Geometry Scale(const Geometry& g, double factor, const Point& center);
Geometry Rotate(const Geometry& g, double radians, const Point& center);

}  // namespace geom
}  // namespace sfpm

#endif  // SFPM_GEOM_TRANSFORM_H_
