#ifndef SFPM_GEOM_VALIDITY_H_
#define SFPM_GEOM_VALIDITY_H_

#include "geom/geometry.h"
#include "util/status.h"

namespace sfpm {
namespace geom {

/// \brief Structural validity checks, OGC-flavoured. The relate engine and
/// the extractor assume valid input; these checks let loaders reject bad
/// data with a precise diagnosis instead of silently misclassifying.
///
/// Checked conditions:
///  * LineString: at least 2 points, no zero-length segments.
///  * LinearRing: closed, at least 4 points, positive area, simple
///    (non-adjacent segments do not intersect; adjacent segments meet only
///    at their shared vertex).
///  * Polygon: valid shell and holes; every hole inside the shell; holes
///    pairwise non-overlapping (interiors disjoint).
///  * MultiPolygon: valid members with pairwise disjoint interiors.
///  * MultiLineString / MultiPoint: valid/any members.
///
/// Returns OK or InvalidArgument with a message naming the failure.
Status Validate(const Geometry& g);

/// Validates a bare ring (shared by shell and hole checks).
Status ValidateRing(const LinearRing& ring);

/// \brief The permissive counterpart to Validate: returns a copy of `g`
/// with the representational degeneracies the relate engine mishandles
/// removed, so loaders can normalize-then-validate instead of rejecting
/// sloppy-but-salvageable input outright.
///
/// Transformations applied:
///  * repeated consecutive vertices collapse to one (paths and rings,
///    including the ring's wrap-around pair);
///  * a linestring left with a single distinct vertex becomes a Point
///    (the only type change; a relate operand must not carry zero-length
///    linework);
///  * rings with fewer than 3 distinct vertices or exactly zero area are
///    dropped — a polygon whose shell is dropped becomes empty;
///  * exact duplicate members of a MultiPoint are dropped;
///  * empty or fully-degenerate members of multi-geometries are dropped
///    (the collection type itself is preserved).
///
/// Self-intersection and hole containment are *not* repaired — run
/// Validate on the normalized geometry for those.
Geometry Normalized(const Geometry& g);

/// True when the path never revisits a point except for ring closure.
bool IsSimple(const LineString& line);

}  // namespace geom
}  // namespace sfpm

#endif  // SFPM_GEOM_VALIDITY_H_
