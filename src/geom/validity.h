#ifndef SFPM_GEOM_VALIDITY_H_
#define SFPM_GEOM_VALIDITY_H_

#include "geom/geometry.h"
#include "util/status.h"

namespace sfpm {
namespace geom {

/// \brief Structural validity checks, OGC-flavoured. The relate engine and
/// the extractor assume valid input; these checks let loaders reject bad
/// data with a precise diagnosis instead of silently misclassifying.
///
/// Checked conditions:
///  * LineString: at least 2 points, no zero-length segments.
///  * LinearRing: closed, at least 4 points, positive area, simple
///    (non-adjacent segments do not intersect; adjacent segments meet only
///    at their shared vertex).
///  * Polygon: valid shell and holes; every hole inside the shell; holes
///    pairwise non-overlapping (interiors disjoint).
///  * MultiPolygon: valid members with pairwise disjoint interiors.
///  * MultiLineString / MultiPoint: valid/any members.
///
/// Returns OK or InvalidArgument with a message naming the failure.
Status Validate(const Geometry& g);

/// Validates a bare ring (shared by shell and hole checks).
Status ValidateRing(const LinearRing& ring);

/// True when the path never revisits a point except for ring closure.
bool IsSimple(const LineString& line);

}  // namespace geom
}  // namespace sfpm

#endif  // SFPM_GEOM_VALIDITY_H_
