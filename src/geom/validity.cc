#include "geom/validity.h"

#include "geom/algorithms.h"

namespace sfpm {
namespace geom {

namespace {

/// Self-intersection test for a closed or open chain of segments.
/// Adjacent segments may share exactly their common vertex; in a closed
/// chain the first and last segments are adjacent too.
Status CheckChainSimple(const std::vector<Point>& pts, bool closed,
                        const char* what) {
  const size_t n_segs = pts.size() - 1;
  for (size_t i = 0; i < n_segs; ++i) {
    for (size_t j = i + 1; j < n_segs; ++j) {
      const SegmentIntersection isect =
          IntersectSegments(pts[i], pts[i + 1], pts[j], pts[j + 1]);
      if (isect.kind == SegmentIntersection::Kind::kNone) continue;

      const bool consecutive = j == i + 1;
      const bool wrapping = closed && i == 0 && j == n_segs - 1;
      if (isect.kind == SegmentIntersection::Kind::kPoint) {
        if (consecutive && isect.p == pts[i + 1]) continue;
        if (wrapping && isect.p == pts[0]) continue;
      }
      return Status::InvalidArgument(
          std::string(what) + ": segments " + std::to_string(i) + " and " +
          std::to_string(j) + " intersect at " + isect.p.ToString());
    }
  }
  return Status::OK();
}

Status ValidateLineString(const LineString& line) {
  if (line.IsEmpty()) return Status::OK();
  const auto& pts = line.points();
  if (pts.size() < 2) {
    return Status::InvalidArgument("linestring needs at least 2 points");
  }
  for (size_t i = 1; i < pts.size(); ++i) {
    if (pts[i] == pts[i - 1]) {
      return Status::InvalidArgument("linestring has a zero-length segment");
    }
  }
  return Status::OK();
}

Status ValidatePolygon(const Polygon& poly) {
  if (poly.IsEmpty()) return Status::OK();
  SFPM_RETURN_NOT_OK(ValidateRing(poly.shell()));
  const Geometry shell_geom{Polygon(poly.shell())};

  for (size_t h = 0; h < poly.holes().size(); ++h) {
    const LinearRing& hole = poly.holes()[h];
    SFPM_RETURN_NOT_OK(ValidateRing(hole));
    // The hole must lie (weakly) inside the shell: its interior point is
    // interior to the shell and its boundary never leaves the closure.
    const Polygon hole_poly(hole);
    const Point probe = InteriorPoint(hole_poly);
    if (LocateInPolygon(probe, shell_geom.As<Polygon>()) !=
        Location::kInterior) {
      return Status::InvalidArgument("hole " + std::to_string(h) +
                                     " lies outside the shell");
    }
    for (const Point& v : hole.points()) {
      if (LocateInPolygon(v, shell_geom.As<Polygon>()) ==
          Location::kExterior) {
        return Status::InvalidArgument("hole " + std::to_string(h) +
                                       " crosses the shell boundary");
      }
    }
  }

  // Holes must have pairwise disjoint interiors.
  for (size_t a = 0; a < poly.holes().size(); ++a) {
    const Polygon pa(poly.holes()[a]);
    for (size_t b = a + 1; b < poly.holes().size(); ++b) {
      const Polygon pb(poly.holes()[b]);
      const Point probe_a = InteriorPoint(pa);
      const Point probe_b = InteriorPoint(pb);
      const bool a_in_b = LocateInPolygon(probe_a, pb) == Location::kInterior;
      const bool b_in_a = LocateInPolygon(probe_b, pa) == Location::kInterior;
      bool boundaries_cross = false;
      for (const auto& [s1, s2] : BoundarySegments(Geometry(pa))) {
        for (const auto& [t1, t2] : BoundarySegments(Geometry(pb))) {
          const SegmentIntersection isect =
              IntersectSegments(s1, s2, t1, t2);
          if (isect.kind == SegmentIntersection::Kind::kPoint &&
              isect.proper) {
            boundaries_cross = true;
          }
        }
      }
      if (a_in_b || b_in_a || boundaries_cross) {
        return Status::InvalidArgument("holes " + std::to_string(a) +
                                       " and " + std::to_string(b) +
                                       " overlap");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateRing(const LinearRing& ring) {
  if (ring.IsEmpty()) return Status::OK();
  const auto& pts = ring.points();
  if (pts.size() < 4) {
    return Status::InvalidArgument("ring needs at least 4 points");
  }
  if (pts.front() != pts.back()) {
    return Status::InvalidArgument("ring is not closed");
  }
  for (size_t i = 1; i < pts.size(); ++i) {
    if (pts[i] == pts[i - 1]) {
      return Status::InvalidArgument("ring has a zero-length segment");
    }
  }
  if (ring.Area() == 0.0) {
    return Status::InvalidArgument("ring has zero area");
  }
  return CheckChainSimple(pts, /*closed=*/true, "ring");
}

bool IsSimple(const LineString& line) {
  if (line.IsEmpty() || line.NumPoints() < 2) return true;
  return CheckChainSimple(line.points(), line.IsClosed(), "line").ok();
}

Status Validate(const Geometry& g) {
  switch (g.type()) {
    case GeometryType::kPoint:
    case GeometryType::kMultiPoint:
      return Status::OK();
    case GeometryType::kLineString:
      return ValidateLineString(g.As<LineString>());
    case GeometryType::kMultiLineString: {
      for (const LineString& l : g.As<MultiLineString>().lines()) {
        SFPM_RETURN_NOT_OK(ValidateLineString(l));
      }
      return Status::OK();
    }
    case GeometryType::kPolygon:
      return ValidatePolygon(g.As<Polygon>());
    case GeometryType::kMultiPolygon: {
      const auto& polys = g.As<MultiPolygon>().polygons();
      for (const Polygon& p : polys) {
        SFPM_RETURN_NOT_OK(ValidatePolygon(p));
      }
      // Member interiors must be pairwise disjoint: no interior probe of
      // one inside another, and no proper boundary crossings.
      for (size_t a = 0; a < polys.size(); ++a) {
        if (polys[a].IsEmpty()) continue;
        const Point probe_a = InteriorPoint(polys[a]);
        for (size_t b = a + 1; b < polys.size(); ++b) {
          if (polys[b].IsEmpty()) continue;
          const Point probe_b = InteriorPoint(polys[b]);
          if (LocateInPolygon(probe_a, polys[b]) == Location::kInterior ||
              LocateInPolygon(probe_b, polys[a]) == Location::kInterior) {
            return Status::InvalidArgument(
                "multipolygon members " + std::to_string(a) + " and " +
                std::to_string(b) + " overlap");
          }
          for (const auto& [s1, s2] :
               BoundarySegments(Geometry(polys[a]))) {
            for (const auto& [t1, t2] :
                 BoundarySegments(Geometry(polys[b]))) {
              const SegmentIntersection isect =
                  IntersectSegments(s1, s2, t1, t2);
              if (isect.kind == SegmentIntersection::Kind::kPoint &&
                  isect.proper) {
                return Status::InvalidArgument(
                    "multipolygon members " + std::to_string(a) + " and " +
                    std::to_string(b) + " overlap");
              }
            }
          }
        }
      }
      return Status::OK();
    }
  }
  return Status::OK();
}

namespace {

/// Collapses exact consecutive duplicates in a vertex path.
std::vector<Point> DedupConsecutive(const std::vector<Point>& pts) {
  std::vector<Point> out;
  out.reserve(pts.size());
  for (const Point& p : pts) {
    if (out.empty() || !(out.back() == p)) out.push_back(p);
  }
  return out;
}

/// Normalizes a ring to its distinct-vertex cycle, or an empty ring when
/// degenerate (under 3 distinct vertices, or exactly zero area).
LinearRing NormalizedRing(const LinearRing& ring) {
  std::vector<Point> pts = DedupConsecutive(ring.points());
  while (pts.size() > 1 && pts.front() == pts.back()) pts.pop_back();
  if (pts.size() < 3) return LinearRing();
  const LinearRing out(std::move(pts));  // Ctor re-appends the closure.
  if (out.Area() == 0.0) return LinearRing();
  return out;
}

Polygon NormalizedPolygon(const Polygon& poly) {
  const LinearRing shell = NormalizedRing(poly.shell());
  if (shell.IsEmpty()) return Polygon();
  std::vector<LinearRing> holes;
  for (const LinearRing& h : poly.holes()) {
    LinearRing nh = NormalizedRing(h);
    if (!nh.IsEmpty()) holes.push_back(std::move(nh));
  }
  return Polygon(shell, std::move(holes));
}

}  // namespace

Geometry Normalized(const Geometry& g) {
  switch (g.type()) {
    case GeometryType::kPoint:
      return g;
    case GeometryType::kLineString: {
      std::vector<Point> pts = DedupConsecutive(g.As<LineString>().points());
      if (pts.size() == 1) return Geometry(pts[0]);
      return Geometry(LineString(std::move(pts)));
    }
    case GeometryType::kPolygon:
      return Geometry(NormalizedPolygon(g.As<Polygon>()));
    case GeometryType::kMultiPoint: {
      std::vector<Point> out;
      for (const Point& p : g.As<MultiPoint>().points()) {
        bool seen = false;
        for (const Point& q : out) {
          if (q == p) {
            seen = true;
            break;
          }
        }
        if (!seen) out.push_back(p);
      }
      return Geometry(MultiPoint(std::move(out)));
    }
    case GeometryType::kMultiLineString: {
      std::vector<LineString> out;
      for (const LineString& l : g.As<MultiLineString>().lines()) {
        std::vector<Point> pts = DedupConsecutive(l.points());
        // Members that degenerate to a single point are dropped rather
        // than type-changed: a MultiLineString member must stay a curve.
        if (pts.size() >= 2) out.emplace_back(std::move(pts));
      }
      return Geometry(MultiLineString(std::move(out)));
    }
    case GeometryType::kMultiPolygon: {
      std::vector<Polygon> out;
      for (const Polygon& p : g.As<MultiPolygon>().polygons()) {
        Polygon np = NormalizedPolygon(p);
        if (!np.IsEmpty()) out.push_back(std::move(np));
      }
      return Geometry(MultiPolygon(std::move(out)));
    }
  }
  return g;
}

}  // namespace geom
}  // namespace sfpm
