#include "fuzz/fuzzer.h"

#include <algorithm>
#include <filesystem>
#include <set>
#include <utility>

#include "fuzz/repro.h"
#include "fuzz/shrink.h"

namespace sfpm {
namespace fuzz {

namespace {

/// SplitMix64 step — decorrelates (base seed, oracle, iteration) into a
/// case seed so families never share generator streams.
uint64_t MixSeed(uint64_t base, uint64_t lane, uint64_t i) {
  uint64_t z = base + 0x9E3779B97F4A7C15ULL * (lane + 1) + i;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The invariant tag is the message prefix up to the first ':' — the
/// deduplication key, so one run records each distinct violated invariant
/// once instead of thousands of copies of the same bug.
std::string InvariantTag(const Status& status) {
  const std::string& msg = status.message();
  const size_t colon = msg.find(':');
  return colon == std::string::npos ? msg : msg.substr(0, colon);
}

}  // namespace

std::string FuzzReport::Summary() const {
  std::string out = std::to_string(cases_checked) + " cases checked, " +
                    std::to_string(failures.size()) + " invariant failure(s)";
  for (const FuzzFailure& f : failures) {
    out += "\n  [" + f.oracle + " seed=" + std::to_string(f.case_seed) +
           "] " + f.violation.message();
    if (!f.path.empty()) out += "\n    repro: " + f.path;
  }
  return out;
}

Result<FuzzReport> RunFuzzer(const FuzzOptions& options) {
  std::vector<const Oracle*> oracles;
  if (options.oracle_names.empty()) {
    oracles = AllOracles();
  } else {
    for (const std::string& name : options.oracle_names) {
      const Oracle* oracle = FindOracle(name);
      if (oracle == nullptr) {
        return Status::InvalidArgument("unknown oracle: " + name);
      }
      oracles.push_back(oracle);
    }
  }

  if (!options.corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.corpus_dir, ec);
    if (ec) {
      return Status::InvalidArgument("cannot create corpus dir " +
                                     options.corpus_dir + ": " + ec.message());
    }
  }

  FuzzReport report;
  for (size_t lane = 0; lane < oracles.size(); ++lane) {
    const Oracle* oracle = oracles[lane];
    std::set<std::string> seen_invariants;
    size_t failures_this_family = 0;
    for (size_t i = 0; i < options.iterations; ++i) {
      if (failures_this_family >= options.max_failures) break;
      const uint64_t case_seed = MixSeed(options.seed, lane, i);
      FuzzCase c = oracle->Generate(case_seed);
      c.oracle = oracle->Name();
      c.seed = case_seed;
      ++report.cases_checked;
      const Status st = oracle->Check(c);
      if (st.ok()) continue;

      FuzzFailure failure;
      failure.oracle = oracle->Name();
      failure.case_seed = case_seed;
      failure.minimized = Shrink(*oracle, c, options.shrink_checks);
      failure.violation = oracle->Check(failure.minimized);
      if (failure.violation.ok()) {
        // Shrinking must preserve the failure; a flip here is itself a
        // finding (a flaky, state-dependent oracle) — record the original.
        failure.minimized = c;
        failure.violation = st;
      }

      // One recorded failure per violated invariant per family.
      if (!seen_invariants.insert(InvariantTag(failure.violation)).second) {
        continue;
      }
      ++failures_this_family;

      if (!options.corpus_dir.empty()) {
        const std::string path = options.corpus_dir + "/" + oracle->Name() +
                                 "-" + std::to_string(case_seed) + ".repro";
        const Status saved = SaveReproFile(
            failure.minimized, path,
            "found by sfpm_fuzz --seed " + std::to_string(options.seed) +
                "\n" + failure.violation.message());
        if (saved.ok()) failure.path = path;
      }
      report.failures.push_back(std::move(failure));
    }
  }
  return report;
}

Status ReplayFile(const std::string& path) {
  Result<FuzzCase> loaded = LoadReproFile(path);
  if (!loaded.ok()) return loaded.status();
  const Oracle* oracle = FindOracle(loaded.value().oracle);
  if (oracle == nullptr) {
    return Status::InvalidArgument(path + ": unknown oracle \"" +
                                   loaded.value().oracle + "\"");
  }
  const Status st = oracle->Check(loaded.value());
  if (!st.ok()) {
    return Status(st.code(), path + ": " + st.message());
  }
  return Status::OK();
}

Result<FuzzReport> ReplayCorpus(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec) || ec) {
    return Status::NotFound("corpus directory not found: " + dir);
  }
  std::vector<std::string> paths;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".repro") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) return Status::NotFound("cannot list corpus: " + ec.message());
  std::sort(paths.begin(), paths.end());

  FuzzReport report;
  for (const std::string& path : paths) {
    ++report.cases_checked;
    Result<FuzzCase> loaded = LoadReproFile(path);
    if (!loaded.ok()) {
      FuzzFailure failure;
      failure.path = path;
      failure.violation = loaded.status();
      report.failures.push_back(std::move(failure));
      continue;
    }
    const Oracle* oracle = FindOracle(loaded.value().oracle);
    if (oracle == nullptr) {
      FuzzFailure failure;
      failure.path = path;
      failure.violation = Status::InvalidArgument("unknown oracle \"" +
                                                  loaded.value().oracle + "\"");
      report.failures.push_back(std::move(failure));
      continue;
    }
    const Status st = oracle->Check(loaded.value());
    if (!st.ok()) {
      FuzzFailure failure;
      failure.oracle = oracle->Name();
      failure.case_seed = loaded.value().seed;
      failure.violation = st;
      failure.minimized = std::move(loaded).value();
      failure.path = path;
      report.failures.push_back(std::move(failure));
    }
  }
  return report;
}

}  // namespace fuzz
}  // namespace sfpm
