#include "fuzz/oracles.h"

#include "fuzz/oracles_internal.h"

namespace sfpm {
namespace fuzz {

const std::vector<const Oracle*>& AllOracles() {
  static const std::vector<const Oracle*> all = {
      internal::SegmentOracle(),        internal::RelatePairOracle(),
      internal::RelateCityOracle(),     internal::Rcc8JepdOracle(),
      internal::Rcc8ComposeOracle(),    internal::RelateInferredOracle(),
      internal::RtreeOracle(),          internal::MiningOracle(),
      internal::StoreOracle(),          internal::ShardMergeOracle(),
      internal::ColocOracle(),
  };
  return all;
}

const Oracle* FindOracle(const std::string& name) {
  for (const Oracle* oracle : AllOracles()) {
    if (oracle->Name() == name) return oracle;
  }
  return nullptr;
}

}  // namespace fuzz
}  // namespace sfpm
