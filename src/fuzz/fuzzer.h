#ifndef SFPM_FUZZ_FUZZER_H_
#define SFPM_FUZZ_FUZZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_case.h"
#include "fuzz/oracles.h"
#include "util/status.h"

namespace sfpm {
namespace fuzz {

/// \brief One fuzzing run's configuration.
struct FuzzOptions {
  /// Base seed. Case seeds are derived per (oracle, iteration), so one
  /// base seed pins the entire run.
  uint64_t seed = 2007;

  /// Iterations per oracle family.
  size_t iterations = 1000;

  /// Stop a family after this many recorded failures (each failure is
  /// shrunk, which costs up to `shrink_checks` extra oracle calls).
  size_t max_failures = 8;

  /// Per-failure shrinking budget in oracle invocations.
  size_t shrink_checks = 2000;

  /// When non-empty, minimized failures are written here as repro files
  /// named `<oracle>-<case seed>.repro`.
  std::string corpus_dir;

  /// Families to run; empty = every registered oracle.
  std::vector<std::string> oracle_names;
};

/// \brief One minimized failure.
struct FuzzFailure {
  std::string oracle;
  uint64_t case_seed = 0;
  Status violation;    ///< Check() status of the minimized case.
  FuzzCase minimized;
  std::string path;    ///< Corpus file written ("" when corpus_dir unset).
};

/// \brief Outcome of a fuzzing run or corpus replay.
struct FuzzReport {
  size_t cases_checked = 0;
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }

  /// Multi-line human-readable summary.
  std::string Summary() const;
};

/// \brief Runs every requested oracle family for `options.iterations`
/// deterministic cases each; failures are shrunk, deduplicated by violated
/// invariant, and (optionally) written to the corpus directory.
///
/// Returns InvalidArgument for an unknown oracle name. A report with
/// failures is still an OK Result — the caller decides the exit code.
Result<FuzzReport> RunFuzzer(const FuzzOptions& options);

/// \brief Replays one repro file: parse, find its oracle, check.
/// The returned status is OK exactly when the recorded invariant holds
/// again (i.e. the bug is fixed).
Status ReplayFile(const std::string& path);

/// \brief Replays every `*.repro` file under `dir` (sorted by name).
/// NotFound when the directory cannot be read; an empty directory is a
/// valid, passing corpus.
Result<FuzzReport> ReplayCorpus(const std::string& dir);

}  // namespace fuzz
}  // namespace sfpm

#endif  // SFPM_FUZZ_FUZZER_H_
