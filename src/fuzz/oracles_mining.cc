#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "core/apriori.h"
#include "core/candidate_filter.h"
#include "core/fpgrowth.h"
#include "core/support_counter.h"
#include "fuzz/generators.h"
#include "fuzz/oracles_internal.h"
#include "util/random.h"
#include "util/strings.h"

namespace sfpm {
namespace fuzz {
namespace internal {

namespace {

using core::ItemId;
using core::Itemset;
using SupportMap = std::map<std::vector<ItemId>, uint32_t>;

SupportMap ToMap(const core::AprioriResult& result) {
  SupportMap map;
  for (const core::FrequentItemset& f : result.itemsets()) {
    map[f.items.items()] = f.support;
  }
  return map;
}

std::string DescribeDiff(const SupportMap& a, const SupportMap& b) {
  for (const auto& [items, support] : a) {
    const auto it = b.find(items);
    if (it == b.end()) {
      return Itemset(items).ToString() + " (support " +
             std::to_string(support) + ") missing from the other side";
    }
    if (it->second != support) {
      return Itemset(items).ToString() + " support " +
             std::to_string(support) + " vs " + std::to_string(it->second);
    }
  }
  for (const auto& [items, support] : b) {
    if (!a.count(items)) {
      return Itemset(items).ToString() + " (support " +
             std::to_string(support) + ") only on the other side";
    }
  }
  return "equal";
}

std::vector<std::pair<ItemId, ItemId>> ParseBlockPairs(const FuzzCase& c) {
  std::vector<std::pair<ItemId, ItemId>> pairs;
  const auto it = c.params.find("block");
  if (it == c.params.end()) return pairs;
  for (const std::string& tok : Split(it->second, ',')) {
    const size_t colon = tok.find(':');
    if (colon == std::string::npos) continue;
    const ItemId a =
        static_cast<ItemId>(std::strtoul(tok.c_str(), nullptr, 10));
    const ItemId b = static_cast<ItemId>(
        std::strtoul(tok.c_str() + colon + 1, nullptr, 10));
    if (a < c.items.size() && b < c.items.size() && a != b) {
      pairs.emplace_back(a, b);
    }
  }
  return pairs;
}

/// --- mining ------------------------------------------------------------
///
/// Runs the same adversarial transaction database through every mining
/// configuration pair that must agree bit-for-bit:
///  * Apriori == FP-Growth, plain and with the KC+ filter stack;
///  * prefix-shared support counting == naive per-transaction counting,
///    both inside the miner (prefix_cache off/on) and directly against
///    PrefixSupportCounter;
///  * serial == 4-thread support counting;
///  * Lemma 1: the KC+ output equals the plain output minus every itemset
///    containing a blocked or same-key pair;
///  * downward closure of the reported sets, and exact supports against
///    TransactionDb::SupportOf.
class MiningOracle final : public Oracle {
 public:
  std::string Name() const override { return "mining"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    RandomMiningCase(&rng, &c);
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    const core::TransactionDb db = c.BuildDb();
    const double min_support = c.ParamDouble("min_support", 0.5);

    core::AprioriOptions plain;
    plain.min_support = min_support;
    plain.parallelism = 1;

    Result<core::AprioriResult> apriori = core::MineApriori(db, plain);
    Result<core::AprioriResult> fpgrowth = core::MineFpGrowth(db, plain);
    if (!apriori.ok() || !fpgrowth.ok()) {
      // Degenerate inputs (empty db after shrinking, out-of-range
      // min_support) must be rejected by BOTH miners.
      if (apriori.ok() != fpgrowth.ok()) {
        return Violation("mining/error-agreement",
                         "one miner rejected the input, the other accepted: "
                         "apriori=" +
                             apriori.status().ToString() + " fpgrowth=" +
                             fpgrowth.status().ToString());
      }
      return Status::OK();
    }

    const SupportMap apriori_map = ToMap(apriori.value());
    const SupportMap fpgrowth_map = ToMap(fpgrowth.value());
    if (apriori_map != fpgrowth_map) {
      return Violation("mining/apriori-vs-fpgrowth",
                       DescribeDiff(apriori_map, fpgrowth_map));
    }

    // Exact supports + downward closure of the reported sets.
    for (const auto& [items, support] : apriori_map) {
      const Itemset set(items);
      if (db.SupportOf(set) != support) {
        return Violation("mining/exact-support",
                         set.ToString() + " reported " +
                             std::to_string(support) + " but SupportOf says " +
                             std::to_string(db.SupportOf(set)));
      }
      uint32_t naive = 0;
      for (size_t row = 0; row < db.NumTransactions(); ++row) {
        bool all = true;
        for (ItemId item : items) {
          if (!db.Test(row, item)) {
            all = false;
            break;
          }
        }
        if (all) ++naive;
      }
      if (naive != support) {
        return Violation("mining/naive-support",
                         set.ToString() + " reported " +
                             std::to_string(support) +
                             " but a transaction scan counts " +
                             std::to_string(naive));
      }
      if (items.size() >= 2) {
        for (const Itemset& sub : set.AllButOneSubsets()) {
          const auto it = apriori_map.find(sub.items());
          if (it == apriori_map.end()) {
            return Violation("mining/downward-closure",
                             sub.ToString() + " missing although superset " +
                                 set.ToString() + " is frequent");
          }
          if (it->second < support) {
            return Violation("mining/anti-monotone",
                             sub.ToString() + " has lower support than its "
                                              "superset " +
                                 set.ToString());
          }
        }
      }
    }

    // Prefix-shared counting: inside the miner (cache off) and directly.
    core::AprioriOptions no_prefix = plain;
    no_prefix.prefix_cache = false;
    Result<core::AprioriResult> no_prefix_run = core::MineApriori(db, no_prefix);
    if (!no_prefix_run.ok() || ToMap(no_prefix_run.value()) != apriori_map) {
      return Violation("mining/prefix-cache",
                       "prefix-shared and chained support counting disagree");
    }
    if (!apriori_map.empty()) {
      std::vector<Itemset> candidates;
      for (const auto& [items, support] : apriori_map) {
        candidates.emplace_back(items);
      }
      std::vector<uint32_t> counts(candidates.size(), 0);
      core::PrefixSupportCounter counter;
      counter.Count(db, candidates, 0, db.NumWords(), counts.data());
      size_t i = 0;
      for (const auto& [items, support] : apriori_map) {
        if (counts[i] != support) {
          return Violation("mining/prefix-counter",
                           Itemset(items).ToString() +
                               " PrefixSupportCounter says " +
                               std::to_string(counts[i]) + " vs " +
                               std::to_string(support));
        }
        ++i;
      }
    }

    // Serial vs parallel support counting.
    core::AprioriOptions par = plain;
    par.parallelism = 4;
    Result<core::AprioriResult> par_run = core::MineApriori(db, par);
    if (!par_run.ok() || ToMap(par_run.value()) != apriori_map) {
      return Violation("mining/parallel",
                       "1-thread and 4-thread mining disagree");
    }

    // KC+ differential + Lemma 1.
    const core::PairBlocklistFilter blocklist(ParseBlockPairs(c));
    const core::SameKeyFilter same_key(db);
    core::AprioriOptions kc = plain;
    kc.filters = {&blocklist, &same_key};
    Result<core::AprioriResult> kc_apriori = core::MineApriori(db, kc);
    Result<core::AprioriResult> kc_fpgrowth = core::MineFpGrowth(db, kc);
    if (!kc_apriori.ok() || !kc_fpgrowth.ok()) {
      return Violation("mining/kc-error",
                       "a filtered mining run failed on accepted input");
    }
    const SupportMap kc_map = ToMap(kc_apriori.value());
    if (kc_map != ToMap(kc_fpgrowth.value())) {
      return Violation("mining/kc-apriori-vs-fpgrowth",
                       DescribeDiff(kc_map, ToMap(kc_fpgrowth.value())));
    }

    SupportMap lemma1;
    for (const auto& [items, support] : apriori_map) {
      bool pruned = false;
      for (size_t x = 0; x < items.size() && !pruned; ++x) {
        for (size_t y = x + 1; y < items.size() && !pruned; ++y) {
          pruned = blocklist.PrunePair(items[x], items[y]) ||
                   same_key.PrunePair(items[x], items[y]);
        }
      }
      if (!pruned) lemma1[items] = support;
    }
    if (kc_map != lemma1) {
      return Violation("mining/lemma1",
                       "KC+ output != plain output minus pruned-pair "
                       "itemsets: " +
                           DescribeDiff(kc_map, lemma1));
    }
    return Status::OK();
  }
};

}  // namespace

const Oracle* MiningOracle() {
  static const class MiningOracle instance;
  return &instance;
}

}  // namespace internal
}  // namespace fuzz
}  // namespace sfpm
