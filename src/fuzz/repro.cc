#include "fuzz/repro.h"

#include <fstream>
#include <sstream>

#include "geom/wkt.h"
#include "util/strings.h"

namespace sfpm {
namespace fuzz {

std::string WriteRepro(const FuzzCase& c, const std::string& comment) {
  std::string out;
  if (!comment.empty()) {
    for (const std::string& line : Split(comment, '\n')) {
      out += "# " + line + "\n";
    }
  }
  out += "oracle: " + c.oracle + "\n";
  out += "seed: " + std::to_string(c.seed) + "\n";
  for (const auto& [key, value] : c.params) {
    out += "param: " + key + "=" + value + "\n";
  }
  for (const geom::Geometry& g : c.geoms) {
    out += "geom: " + geom::WriteWkt(g) + "\n";
  }
  for (const auto& [label, key] : c.items) {
    out += "item: " + label + (key.empty() ? "" : " " + key) + "\n";
  }
  for (const std::vector<core::ItemId>& txn : c.transactions) {
    out += "txn:";
    for (core::ItemId id : txn) out += " " + std::to_string(id);
    out += "\n";
  }
  return out;
}

Result<FuzzCase> ParseRepro(const std::string& text) {
  FuzzCase c;
  size_t line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    const std::string_view line = Trim(raw);
    if (line.empty() || line[0] == '#') continue;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Status::ParseError("repro line " + std::to_string(line_no) +
                                ": missing ':' in \"" + std::string(line) +
                                "\"");
    }
    const std::string key(Trim(line.substr(0, colon)));
    const std::string value(Trim(line.substr(colon + 1)));
    if (key == "oracle") {
      c.oracle = value;
    } else if (key == "seed") {
      c.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "param") {
      const size_t eq = value.find('=');
      if (eq == std::string::npos) {
        return Status::ParseError("repro line " + std::to_string(line_no) +
                                  ": param needs key=value");
      }
      c.params[std::string(Trim(value.substr(0, eq)))] =
          std::string(Trim(value.substr(eq + 1)));
    } else if (key == "geom") {
      Result<geom::Geometry> g = geom::ReadWkt(value);
      if (!g.ok()) {
        return Status::ParseError("repro line " + std::to_string(line_no) +
                                  ": " + g.status().message());
      }
      c.geoms.push_back(std::move(g).value());
    } else if (key == "item") {
      const std::vector<std::string> parts = Split(value, ' ');
      if (parts.empty() || parts[0].empty()) {
        return Status::ParseError("repro line " + std::to_string(line_no) +
                                  ": item needs a label");
      }
      c.items.emplace_back(parts[0], parts.size() > 1 ? parts[1] : "");
    } else if (key == "txn") {
      std::vector<core::ItemId> txn;
      for (const std::string& tok : Split(value, ' ')) {
        if (tok.empty()) continue;
        txn.push_back(
            static_cast<core::ItemId>(std::strtoul(tok.c_str(), nullptr, 10)));
      }
      c.transactions.push_back(std::move(txn));
    } else {
      return Status::ParseError("repro line " + std::to_string(line_no) +
                                ": unknown field \"" + key + "\"");
    }
  }
  if (c.oracle.empty()) {
    return Status::ParseError("repro has no 'oracle:' line");
  }
  // Transactions must reference registered items.
  for (const std::vector<core::ItemId>& txn : c.transactions) {
    for (core::ItemId id : txn) {
      if (id >= c.items.size()) {
        return Status::ParseError("repro txn references item " +
                                  std::to_string(id) + " but only " +
                                  std::to_string(c.items.size()) +
                                  " items are declared");
      }
    }
  }
  return c;
}

Status SaveReproFile(const FuzzCase& c, const std::string& path,
                     const std::string& comment) {
  std::ofstream out(path);
  if (!out) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  out << WriteRepro(c, comment);
  out.close();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<FuzzCase> LoadReproFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  Result<FuzzCase> parsed = ParseRepro(buf.str());
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace fuzz
}  // namespace sfpm
