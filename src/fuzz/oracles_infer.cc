#include <string>
#include <vector>

#include "feature/extractor.h"
#include "feature/feature.h"
#include "fuzz/generators.h"
#include "fuzz/oracles_internal.h"
#include "io/table_io.h"
#include "util/random.h"

namespace sfpm {
namespace fuzz {
namespace internal {

using geom::Geometry;

namespace {

/// --- relate_inferred ----------------------------------------------------
///
/// End-to-end differential for the extraction inference tier: run the
/// predicate extractor over a containment-biased cluster (elements 0-1 as
/// a two-row reference layer — so reference-pair composition has rows to
/// fire between — and the rest as one relevant layer) with RCC8 inference
/// off, on, and on at 2 threads, and demand the three predicate tables be
/// byte-identical as CSV. Instance granularity makes every candidate's
/// relation individually visible, so a single wrongly deduced pair cannot
/// hide behind another candidate emitting the same predicate name.
///
/// Unlike the algebra-level rcc8_compose family this exercises the real
/// production path — pair-store build, admission gating, pivot ordering,
/// deduction, fallback — against the engine-only path as the reference.
class RelateInferredOracle final : public Oracle {
 public:
  std::string Name() const override { return "relate_inferred"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    c.geoms = ArealCluster(&rng);
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    if (c.geoms.size() < 3) {
      return Status::InvalidArgument(
          "relate_inferred case needs two references and >= 1 candidate");
    }
    feature::Layer reference("ref");
    reference.Add(c.geoms[0]);
    reference.Add(c.geoms[1]);
    feature::Layer candidates("cand");
    for (size_t i = 2; i < c.geoms.size(); ++i) {
      candidates.Add(c.geoms[i]);
    }

    feature::PredicateExtractor extractor(&reference);
    extractor.AddRelevantLayer(&candidates);

    feature::ExtractorOptions options;
    options.instance_granularity = true;
    options.parallelism = 1;

    options.infer_relate = false;
    const auto engine_only = extractor.Extract(options);
    if (!engine_only.ok()) {
      return Violation("infer/extract-error",
                       "engine-only extract failed: " +
                           engine_only.status().message());
    }
    const std::string reference_csv = io::TableToCsv(engine_only.value());

    options.infer_relate = true;
    const auto inferred = extractor.Extract(options);
    if (!inferred.ok()) {
      return Violation("infer/extract-error",
                       "inference extract failed: " +
                           inferred.status().message());
    }
    if (io::TableToCsv(inferred.value()) != reference_csv) {
      return Violation(
          "infer/output-identity",
          "inference-on predicate table differs from engine-only table "
          "for reference " +
              c.geoms[0].ToWkt());
    }

    options.parallelism = 2;
    const auto parallel = extractor.Extract(options);
    if (!parallel.ok()) {
      return Violation("infer/extract-error",
                       "2-thread inference extract failed: " +
                           parallel.status().message());
    }
    if (io::TableToCsv(parallel.value()) != reference_csv) {
      return Violation(
          "infer/thread-identity",
          "2-thread inference table differs from the serial table for "
          "reference " +
              c.geoms[0].ToWkt());
    }
    return Status::OK();
  }
};

}  // namespace

const Oracle* RelateInferredOracle() {
  static const class RelateInferredOracle instance;
  return &instance;
}

}  // namespace internal
}  // namespace fuzz
}  // namespace sfpm
