#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "coloc/colocation.h"
#include "coloc/miner.h"
#include "coloc/neighbor_graph.h"
#include "feature/feature.h"
#include "fuzz/generators.h"
#include "fuzz/oracles_internal.h"
#include "qsr/distance.h"
#include "util/random.h"
#include "util/strings.h"

namespace sfpm {
namespace fuzz {
namespace internal {

namespace {

using coloc::ColocMinerOptions;
using coloc::ColocationOptions;
using coloc::ColocationPattern;
using coloc::MinedColocation;
using coloc::NeighborGraph;
using coloc::NeighborGraphOptions;

/// Reassembles the case's layer partition: geometry `i` belongs to layer
/// `i % layers`, feature types "t0".."tN" in layer order. Returns an
/// empty vector when any layer ends up empty (the reducer may have
/// dropped all of a layer's geometries) — the oracle treats that as
/// vacuously OK, since the graph build's contract requires non-empty
/// types.
std::vector<feature::Layer> BuildLayers(const FuzzCase& c) {
  const auto num_layers =
      static_cast<size_t>(c.ParamInt("layers", 2));
  if (num_layers < 2 || c.geoms.size() < num_layers) return {};
  std::vector<feature::Layer> layers;
  for (size_t t = 0; t < num_layers; ++t) {
    layers.emplace_back("t" + std::to_string(t));
  }
  for (size_t i = 0; i < c.geoms.size(); ++i) {
    layers[i % num_layers].Add(c.geoms[i], {});
  }
  for (const feature::Layer& layer : layers) {
    if (layer.IsEmpty()) return {};
  }
  return layers;
}

std::string Describe(const ColocationPattern& p) {
  return p.ToString();
}

/// \brief The co-location subsystem's invariants on small adversarial
/// layer sets:
///  * differential: the graph-backed miner (MineColocations) agrees with
///    the naive per-pair reference (MineColocationsNaive) on the exact
///    pattern list — types, participation index, row-instance counts;
///  * graph structure: the CSR is well-formed (monotone offsets, strictly
///    ascending neighbour lists), strictly cross-type, symmetric with
///    symmetric bands, and bit-identical at 1 vs 3 build threads;
///  * star == clique: both row-instance generation modes of MineGraph
///    return identical results;
///  * PI anti-monotonicity: dropping any member of an emitted pattern
///    yields a pattern with participation index at least as large;
///  * fuzzy_prevalence stays within [0, participation_index].
class ColocOracle final : public Oracle {
 public:
  std::string Name() const override { return "coloc"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    const size_t num_layers = 2 + rng.NextUint64(3);  // 2..4 types.
    // Each layer non-empty: one geometry per layer, then extras.
    const size_t num_geoms = num_layers + rng.NextUint64(13);
    for (size_t i = 0; i < num_geoms; ++i) {
      c.geoms.push_back(GridGeometry(&rng, 6));
    }
    c.params["layers"] = std::to_string(num_layers);
    // Lattice-scaled radius: small enough that disjointness happens,
    // large enough that cliques form.
    c.params["distance"] = std::to_string(1 + rng.NextUint64(9));
    c.params["min_prevalence"] =
        FormatRoundTripDouble(static_cast<double>(rng.NextUint64(8)) / 10.0);
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    const std::vector<feature::Layer> layer_storage = BuildLayers(c);
    if (layer_storage.empty()) return Status::OK();  // Vacuous case.
    const feature::LayerSet layers = feature::LayerSet::Of(layer_storage);

    ColocationOptions options;
    options.neighbor_distance = c.ParamDouble("distance", 2.0);
    options.min_prevalence = c.ParamDouble("min_prevalence", 0.3);

    auto fast = coloc::MineColocations(layers, options);
    if (!fast.ok()) {
      return Violation("coloc/graph_mine", fast.status().message());
    }
    auto naive = coloc::MineColocationsNaive(layers, options);
    if (!naive.ok()) {
      return Violation("coloc/naive_mine", naive.status().message());
    }
    SFPM_RETURN_NOT_OK(CheckDifferential(fast.value(), naive.value()));

    for (const ColocationPattern& p : fast.value()) {
      if (p.fuzzy_prevalence < 0.0 ||
          p.fuzzy_prevalence > p.participation_index) {
        return Violation("coloc/fuzzy_bounds",
                         Describe(p) + " fuzzy=" +
                             FormatRoundTripDouble(p.fuzzy_prevalence));
      }
    }

    SFPM_RETURN_NOT_OK(CheckGraph(layers, options));
    return Status::OK();
  }

 private:
  /// Graph path vs naive reference: identical pattern sequences (both are
  /// sorted by (size, type names); PI ratios divide the same integers, so
  /// exact double equality is the right comparison).
  static Status CheckDifferential(const std::vector<ColocationPattern>& fast,
                                  const std::vector<ColocationPattern>& naive) {
    if (fast.size() != naive.size()) {
      return Violation("coloc/differential",
                       "graph miner found " + std::to_string(fast.size()) +
                           " patterns, naive found " +
                           std::to_string(naive.size()));
    }
    for (size_t i = 0; i < fast.size(); ++i) {
      const ColocationPattern& a = fast[i];
      const ColocationPattern& b = naive[i];
      if (a.types != b.types ||
          a.participation_index != b.participation_index ||
          a.num_row_instances != b.num_row_instances) {
        return Violation("coloc/differential",
                         "pattern " + std::to_string(i) + ": graph " +
                             Describe(a) + " vs naive " + Describe(b));
      }
    }
    return Status::OK();
  }

  /// CSR structure, symmetry, cross-type-only, thread identity, band
  /// symmetry, star == clique, and PI anti-monotonicity over the
  /// unthresholded result.
  static Status CheckGraph(const feature::LayerSet& layers,
                           const ColocationOptions& options) {
    // A lattice-scaled quantizer so the band annotations actually vary
    // (the default 500/2000 m bands would put every lattice edge in band
    // 0).
    auto quantizer = qsr::DistanceQuantizer::Create(
        {{"near", options.neighbor_distance / 2},
         {"mid", options.neighbor_distance}},
        "far");
    if (!quantizer.ok()) {
      return Violation("coloc/quantizer", quantizer.status().message());
    }

    NeighborGraphOptions graph_options;
    graph_options.distance = options.neighbor_distance;
    graph_options.quantizer = &quantizer.value();
    graph_options.threads = 1;
    auto serial = NeighborGraph::Build(layers, graph_options);
    if (!serial.ok()) {
      return Violation("coloc/graph_build", serial.status().message());
    }
    graph_options.threads = 3;
    auto parallel = NeighborGraph::Build(layers, graph_options);
    if (!parallel.ok()) {
      return Violation("coloc/graph_build", parallel.status().message());
    }
    const NeighborGraph& g = serial.value();
    if (g.offsets() != parallel.value().offsets() ||
        g.neighbors() != parallel.value().neighbors() ||
        g.bands() != parallel.value().bands()) {
      return Violation("coloc/thread_identity",
                       "CSR differs between 1 and 3 build threads");
    }

    if (g.offsets().front() != 0 || g.offsets().back() != g.num_edges()) {
      return Violation("coloc/csr", "offset fences broken");
    }
    for (uint32_t u = 0; u < g.num_nodes(); ++u) {
      if (g.offsets()[u] > g.offsets()[u + 1]) {
        return Violation("coloc/csr",
                         "offsets decrease at node " + std::to_string(u));
      }
      for (uint64_t e = g.offsets()[u]; e < g.offsets()[u + 1]; ++e) {
        const uint32_t w = g.neighbors()[e];
        if (e > g.offsets()[u] && g.neighbors()[e - 1] >= w) {
          return Violation("coloc/csr",
                           "neighbour list of node " + std::to_string(u) +
                               " not strictly ascending");
        }
        if (g.TypeOf(w) == g.TypeOf(u)) {
          return Violation("coloc/cross_type",
                           "same-type edge " + std::to_string(u) + "-" +
                               std::to_string(w));
        }
        if (!g.AreNeighbors(w, u)) {
          return Violation("coloc/symmetry",
                           "edge " + std::to_string(u) + "-" +
                               std::to_string(w) + " has no mirror");
        }
        if (g.BandOf(u, w) != g.BandOf(w, u)) {
          return Violation("coloc/band_symmetry",
                           "edge " + std::to_string(u) + "-" +
                               std::to_string(w) + " bands differ by "
                                                   "direction");
        }
      }
    }

    // Star join and clique intersection must produce identical results —
    // and with min_prevalence 0 the full (unthresholded) pattern list
    // supports the anti-monotonicity check.
    ColocMinerOptions miner_options;
    miner_options.min_prevalence = 0.0;
    auto clique = coloc::MineGraph(g, miner_options);
    if (!clique.ok()) {
      return Violation("coloc/mine_graph", clique.status().message());
    }
    miner_options.star_join = true;
    auto star = coloc::MineGraph(g, miner_options);
    if (!star.ok()) {
      return Violation("coloc/mine_graph", star.status().message());
    }
    if (clique.value().size() != star.value().size()) {
      return Violation("coloc/star_clique",
                       "clique mode found " +
                           std::to_string(clique.value().size()) +
                           " patterns, star mode " +
                           std::to_string(star.value().size()));
    }
    for (size_t i = 0; i < clique.value().size(); ++i) {
      const MinedColocation& a = clique.value()[i];
      const MinedColocation& b = star.value()[i];
      if (a.types != b.types ||
          a.participation_index != b.participation_index ||
          a.fuzzy_prevalence != b.fuzzy_prevalence || a.rows != b.rows) {
        return Violation("coloc/star_clique",
                         "pattern " + std::to_string(i) +
                             " differs between join modes");
      }
    }

    // PI anti-monotonicity: every (k-1)-subset of an emitted pattern has
    // at least the pattern's participation index. With threshold 0 every
    // pattern with a row instance is in the list, so the subset must be
    // present.
    std::map<std::vector<uint32_t>, double> pi;
    for (const MinedColocation& m : clique.value()) {
      pi[m.types] = m.participation_index;
    }
    for (const MinedColocation& m : clique.value()) {
      if (m.types.size() < 3) continue;
      for (size_t drop = 0; drop < m.types.size(); ++drop) {
        std::vector<uint32_t> sub;
        for (size_t t = 0; t < m.types.size(); ++t) {
          if (t != drop) sub.push_back(m.types[t]);
        }
        const auto it = pi.find(sub);
        if (it == pi.end()) {
          return Violation("coloc/anti_monotone",
                           "subset of an emitted pattern missing from the "
                           "unthresholded result");
        }
        if (it->second < m.participation_index) {
          return Violation(
              "coloc/anti_monotone",
              "subset PI " + FormatRoundTripDouble(it->second) +
                  " below superset PI " +
                  FormatRoundTripDouble(m.participation_index));
        }
      }
    }
    return Status::OK();
  }
};

}  // namespace

const Oracle* ColocOracle() {
  static const class ColocOracle instance;
  return &instance;
}

}  // namespace internal
}  // namespace fuzz
}  // namespace sfpm
