#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "datagen/tiles.h"
#include "feature/extractor.h"
#include "feature/feature.h"
#include "feature/predicate_table.h"
#include "feature/window.h"
#include "fuzz/generators.h"
#include "fuzz/oracles_internal.h"
#include "store/format.h"
#include "store/merge.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/random.h"
#include "util/strings.h"

namespace sfpm {
namespace fuzz {
namespace internal {

namespace {

using store::SnapshotReader;
using store::SnapshotWriter;

/// Serializes a predicate table the way a comparison wants it: the exact
/// section bytes a pipeline snapshot would carry. Two tables are
/// byte-identical iff these serializations match.
std::string TableBytes(const feature::PredicateTable& table) {
  SnapshotWriter w;
  w.AddTable(table);
  return w.Serialize();
}

/// Renders one tile's snapshot exactly as the sharded pipeline stage
/// does: the table plus the extract-tile manifest (stage, format,
/// input hash, owned global rows).
std::string TileSnapshotBytes(const feature::PredicateTable& table,
                              const datagen::Tile& tile,
                              const std::string& input_hash) {
  SnapshotWriter w;
  w.AddTable(table);
  std::map<std::string, std::string> manifest;
  manifest["stage"] = store::kStageExtractTile;
  manifest["format"] = std::to_string(store::kFormatVersion);
  manifest["input_hash"] = input_hash;
  std::string rows;
  for (const uint64_t id : tile.refs) {
    if (!rows.empty()) rows += ',';
    rows += std::to_string(id);
  }
  manifest["tile_rows"] = rows;
  w.AddManifest(manifest);
  return w.Serialize();
}

/// --- shard_merge --------------------------------------------------------
///
/// The sharded extraction pipeline's two load-bearing guarantees, checked
/// end to end against random little cities:
///  * byte identity: partitioning the reference layer into tiles
///    (datagen::PartitionReference), extracting each tile over its halo
///    sub-layers (feature/window.h), serializing each tile snapshot,
///    reading it back, and merging (store::MergeTileTables) reproduces
///    the single-shard extraction byte for byte — same rows, same
///    first-appearance item ids, same bitmap — at every shard count;
///  * rejection with stage attribution: a tile snapshot that is
///    corrupted, truncated, written by the wrong stage, hashed from
///    different inputs, or inconsistent with its row manifest must be
///    refused, and every merge-side refusal names "extract-tile" so a
///    failed run points at the tile to rerun. Missing and double-owned
///    rows must likewise fail the merge.
class ShardMergeOracle final : public Oracle {
 public:
  std::string Name() const override { return "shard_merge"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    // References first (areal, so the RCC8 inference tier engages), then
    // relevant features of any geometry type, all on the lattice so
    // touching/containment across tile borders is common.
    const size_t num_ref = 3 + rng.NextUint64(10);
    const size_t num_rel = 2 + rng.NextUint64(14);
    for (size_t i = 0; i < num_ref; ++i) {
      c.geoms.push_back(geom::Geometry(GridConvexPolygon(&rng, 12)));
    }
    for (size_t i = 0; i < num_rel; ++i) {
      c.geoms.push_back(GridGeometry(&rng, 12));
    }
    c.params["num_ref"] = std::to_string(num_ref);
    c.params["shards"] = std::to_string(2 + rng.NextUint64(5));  // 2..6.
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    // Clamp against reducer mutations: any params/geoms edit must still
    // describe a checkable instance.
    const size_t num_ref = std::min(
        c.geoms.size(),
        static_cast<size_t>(std::max<int64_t>(
            0, c.ParamInt("num_ref", static_cast<int64_t>(c.geoms.size())))));
    const int shards = static_cast<int>(
        std::min<int64_t>(64, std::max<int64_t>(1, c.ParamInt("shards", 2))));

    feature::Layer reference("district");
    feature::Layer relevant("slum");
    for (size_t i = 0; i < c.geoms.size(); ++i) {
      if (i < num_ref) {
        // Half the references carry an explicit name, the rest exercise
        // the "<type><id>" fallback that SubsetLayer must preserve.
        std::map<std::string, std::string> attrs = {
            {"rate", std::to_string(i % 3)}};
        if (i % 2 == 0) attrs["name"] = "d" + std::to_string(i);
        reference.Add(c.geoms[i], attrs);
      } else {
        relevant.Add(c.geoms[i], {{"tag", std::to_string(i % 2)}});
      }
    }
    if (reference.Size() == 0) return Status::OK();  // Vacuous instance.

    feature::ExtractorOptions options;
    options.parallelism = 1;
    options.canonical_candidate_order = true;  // The pipeline's setting.

    // Ground truth: the single-shard extraction.
    feature::PredicateExtractor full_extractor(&reference);
    full_extractor.AddRelevantLayer(&relevant);
    auto full = full_extractor.Extract(options);
    if (!full.ok()) {
      return Violation("shard/full_extract", full.status().message());
    }

    // Tile path: partition -> extract per tile over halo sub-layers ->
    // serialize -> read back -> merge.
    const std::string input_hash = "fuzz" + std::to_string(c.seed);
    const std::vector<datagen::Tile> tiles =
        datagen::PartitionReference(reference, shards);
    std::vector<store::TileTable> loaded;
    std::vector<std::string> tile_bytes;
    for (const datagen::Tile& tile : tiles) {
      const feature::Layer tile_ref =
          feature::SubsetLayer(reference, tile.refs, true);
      const feature::Layer tile_rel =
          feature::WindowLayer(relevant, tile.window);
      feature::PredicateExtractor tile_extractor(&tile_ref);
      tile_extractor.AddRelevantLayer(&tile_rel);
      auto table = tile_extractor.Extract(options);
      if (!table.ok()) {
        return Violation("shard/tile_extract", table.status().message());
      }
      tile_bytes.push_back(
          TileSnapshotBytes(table.value(), tile, input_hash));
      auto reader = SnapshotReader::FromBytes(tile_bytes.back());
      if (!reader.ok()) {
        return Violation("shard/tile_open", reader.status().message());
      }
      auto tile_table = store::ReadTileTable(reader.value(), input_hash);
      if (!tile_table.ok()) {
        return Violation("shard/tile_read", tile_table.status().message());
      }
      loaded.push_back(std::move(tile_table).value());
    }
    auto merged = store::MergeTileTables(loaded, reference.Size());
    if (!merged.ok()) {
      return Violation("shard/merge", merged.status().message());
    }
    if (TableBytes(merged.value()) != TableBytes(full.value())) {
      return Violation("shard/byte_identity",
                       "merged tiles differ from the single-shard "
                       "extraction at " +
                           std::to_string(shards) + " shards");
    }

    SFPM_RETURN_NOT_OK(CheckRejections(c, tiles, loaded, tile_bytes,
                                       input_hash, reference.Size()));
    return Status::OK();
  }

 private:
  /// Every way a bad tile can reach the merge must fail, and merge-side
  /// failures must carry the "extract-tile" stage attribution.
  static Status CheckRejections(const FuzzCase& c,
                                const std::vector<datagen::Tile>& tiles,
                                const std::vector<store::TileTable>& loaded,
                                const std::vector<std::string>& tile_bytes,
                                const std::string& input_hash,
                                size_t total_rows) {
    Rng rng(c.seed ^ 0x5348415244ULL);  // "SHARD"
    const std::string& victim =
        tile_bytes[rng.NextUint64(tile_bytes.size())];

    // Corruption: seed-chosen single-byte flips must fail the open (the
    // container's checksum domains cover every byte).
    for (int i = 0; i < 8; ++i) {
      std::string corrupted = victim;
      const size_t pos = rng.NextUint64(corrupted.size());
      corrupted[pos] = static_cast<char>(
          corrupted[pos] ^ static_cast<char>(1 + rng.NextUint64(255)));
      if (SnapshotReader::FromBytes(corrupted).ok()) {
        return Violation("shard/corrupt_detected",
                         "tile snapshot with byte " + std::to_string(pos) +
                             " flipped opened cleanly");
      }
    }
    // Truncation: cut anywhere, including just short of the end.
    for (const size_t cut :
         {size_t{0}, victim.size() / 2, victim.size() - 1}) {
      if (SnapshotReader::FromBytes(victim.substr(0, cut)).ok()) {
        return Violation("shard/truncation_detected",
                         "tile snapshot cut to " + std::to_string(cut) +
                             " bytes opened cleanly");
      }
    }

    // Manifest-level rejections, all stage-attributed.
    auto expect_tile_error = [](const Result<store::TileTable>& r,
                                const std::string& what) -> Status {
      if (r.ok()) {
        return Violation("shard/" + what, "accepted a tile it must refuse");
      }
      if (r.status().message().find(store::kStageExtractTile) ==
          std::string::npos) {
        return Violation("shard/" + what + "_attribution",
                         "rejection does not name the tile stage: " +
                             r.status().message());
      }
      return Status::OK();
    };
    auto reader = SnapshotReader::FromBytes(victim);
    if (!reader.ok()) {
      return Violation("shard/reopen", reader.status().message());
    }
    SFPM_RETURN_NOT_OK(expect_tile_error(
        store::ReadTileTable(reader.value(), input_hash + "x"),
        "hash_mismatch"));
    {
      // Same table, wrong stage name: a plain extract snapshot must never
      // merge as a tile.
      SnapshotWriter w;
      w.AddTable(loaded[0].table);
      w.AddManifest({{"stage", "extract"},
                     {"format", std::to_string(store::kFormatVersion)},
                     {"input_hash", input_hash}});
      auto wrong = SnapshotReader::FromBytes(w.Serialize());
      if (!wrong.ok()) {
        return Violation("shard/wrong_stage_open", wrong.status().message());
      }
      SFPM_RETURN_NOT_OK(expect_tile_error(
          store::ReadTileTable(wrong.value(), input_hash), "wrong_stage"));
    }
    {
      // Row manifest inconsistent with the table: one id dropped.
      datagen::Tile lying = tiles[0];
      if (!lying.refs.empty()) lying.refs.pop_back();
      auto short_reader = SnapshotReader::FromBytes(
          TileSnapshotBytes(loaded[0].table, lying, input_hash));
      if (!short_reader.ok()) {
        return Violation("shard/short_rows_open",
                         short_reader.status().message());
      }
      SFPM_RETURN_NOT_OK(expect_tile_error(
          store::ReadTileTable(short_reader.value(), input_hash),
          "row_count_mismatch"));
    }

    // Merge-level coverage failures, also stage-attributed.
    auto expect_merge_error =
        [](const Result<feature::PredicateTable>& r,
           const std::string& what) -> Status {
      if (r.ok()) {
        return Violation("shard/" + what, "merge accepted broken coverage");
      }
      if (r.status().message().find(store::kStageExtractTile) ==
          std::string::npos) {
        return Violation("shard/" + what + "_attribution",
                         "merge rejection does not name the tile stage: " +
                             r.status().message());
      }
      return Status::OK();
    };
    std::vector<store::TileTable> missing(loaded.begin() + 1, loaded.end());
    SFPM_RETURN_NOT_OK(expect_merge_error(
        store::MergeTileTables(missing, total_rows), "missing_tile"));
    if (loaded.size() > 1) {
      std::vector<store::TileTable> doubled = loaded;
      doubled.push_back(loaded[0]);
      SFPM_RETURN_NOT_OK(expect_merge_error(
          store::MergeTileTables(doubled, total_rows), "double_owned"));
    }
    return Status::OK();
  }
};

}  // namespace

const Oracle* ShardMergeOracle() {
  static const class ShardMergeOracle instance;
  return &instance;
}

}  // namespace internal
}  // namespace fuzz
}  // namespace sfpm
