#ifndef SFPM_FUZZ_SHRINK_H_
#define SFPM_FUZZ_SHRINK_H_

#include <cstddef>

#include "fuzz/fuzz_case.h"
#include "fuzz/oracles.h"

namespace sfpm {
namespace fuzz {

/// \brief Greedy structural minimization of a failing case.
///
/// Repeatedly applies single-step reductions — drop a multi-geometry part,
/// drop a vertex, snap every coordinate to fewer decimal digits, drop a
/// transaction, drop an item from a transaction — and keeps a reduction
/// whenever `oracle.Check` STILL fails on the reduced case, restarting the
/// pass list from the top. Terminates at a fixpoint (no reduction
/// preserves the failure) or after `max_checks` oracle invocations,
/// whichever comes first.
///
/// Deterministic: the reduction order is fixed, so the same failing case
/// always shrinks to the same minimized case. The returned case fails
/// `oracle.Check` by construction (the input must already fail it).
FuzzCase Shrink(const Oracle& oracle, const FuzzCase& failing,
                size_t max_checks = 2000);

}  // namespace fuzz
}  // namespace sfpm

#endif  // SFPM_FUZZ_SHRINK_H_
