#ifndef SFPM_FUZZ_ORACLES_H_
#define SFPM_FUZZ_ORACLES_H_

#include <string>
#include <vector>

#include "fuzz/fuzz_case.h"
#include "util/status.h"

namespace sfpm {
namespace fuzz {

/// \brief One invariant family: generates adversarial cases and checks
/// them.
///
/// `Generate` is a pure function of the seed (same seed, same case — the
/// contract the whole harness rests on). `Check` re-derives every checked
/// quantity from the case payload alone, so a case loaded from a corpus
/// file replays bit-identically with no other context. A failing check
/// returns a non-OK Status whose message names the violated invariant and
/// the observed values; the driver shrinks the case and writes it to the
/// corpus.
class Oracle {
 public:
  virtual ~Oracle() = default;

  /// Stable family name ("segment", "relate_pair", ...). Used in repro
  /// files and on the command line.
  virtual std::string Name() const = 0;

  /// Deterministically derives one case from `seed`.
  virtual FuzzCase Generate(uint64_t seed) const = 0;

  /// OK when every invariant of the family holds for `c`.
  virtual Status Check(const FuzzCase& c) const = 0;
};

/// The registered oracle families:
///  * `segment`     — IntersectSegments/PointOnSegment consistency on
///                    adversarial segment quads: swap symmetry,
///                    intersection points within tolerance of both
///                    operands, verbatim (non-proper) intersection points
///                    accepted by PointOnSegment.
///  * `relate_pair` — relate::Relate == PreparedGeometry::RelateFull ==
///                    PreparedGeometry::Relate (certified fast path), all
///                    four prepared forms, plus transpose symmetry and
///                    matrix-level predicate identities on contact-biased
///                    geometry pairs.
///  * `relate_city` — the same differential over feature pairs sampled
///                    from paper-scale sfpm::datagen city layouts.
///  * `rcc8_jepd`   — areal pairs: the DE-9IM matrix's T/F mask equals
///                    exactly one of the 8 canonical RCC8 region masks
///                    (JEPD), Rcc8Relate agrees with that mask and with
///                    its own converse.
///  * `rcc8_compose`— areal triples: the composition table contains the
///                    observed (A,C) relation for every observed
///                    (A,B),(B,C), and the 3-variable constraint network
///                    stays path-consistent.
///  * `relate_inferred` — extraction inference tier differential: the
///                    predicate extractor over a containment-biased
///                    cluster with RCC8 inference off, on, and on at 2
///                    threads produces byte-identical predicate tables
///                    (instance granularity, so every pair is visible).
///  * `rtree`       — R-tree Query / QueryWithinDistance / Nearest against
///                    linear scans over the same envelopes, bulk-loaded
///                    and incrementally built.
///  * `mining`      — Apriori == FP-Growth (plain and KC+), prefix-shared
///                    == naive support counting, serial == parallel, and
///                    Lemma 1: KC+ == Apriori minus itemsets containing a
///                    blocked or same-key pair.
///  * `store`       — `.sfpm` snapshot container: write -> read -> write
///                    byte identity over layers, transaction dbs, pattern
///                    sets and manifests; every single-byte flip and every
///                    truncation rejected with a clean error (eager and
///                    deferred checksum modes).
///  * `shard_merge` — tile-sharded extraction end to end: partition ->
///                    per-tile extract over halo sub-layers -> serialize
///                    -> read back -> merge is byte-identical to the
///                    single-shard extraction at every shard count, and
///                    corrupted, truncated, wrong-stage, wrong-hash, or
///                    coverage-breaking tile snapshots are rejected with
///                    the "extract-tile" stage attribution.
///  * `coloc`       — co-location mining differential: the graph-backed
///                    miner == the naive per-pair reference, the neighbour
///                    graph's CSR is well-formed, symmetric, strictly
///                    cross-type and bit-identical at every build thread
///                    count, star join == clique intersection, PI
///                    anti-monotonicity holds over the unthresholded
///                    result, and fuzzy prevalence stays within
///                    [0, participation index].
const std::vector<const Oracle*>& AllOracles();

/// Looks an oracle up by name; nullptr when unknown.
const Oracle* FindOracle(const std::string& name);

}  // namespace fuzz
}  // namespace sfpm

#endif  // SFPM_FUZZ_ORACLES_H_
