#ifndef SFPM_FUZZ_REPRO_H_
#define SFPM_FUZZ_REPRO_H_

#include <string>

#include "fuzz/fuzz_case.h"
#include "util/status.h"

namespace sfpm {
namespace fuzz {

/// \brief Self-contained text format for failing fuzz cases — the corpus
/// under tests/fuzz/corpus/ is a directory of these files.
///
/// Line-oriented, one field per line, `#` comments ignored:
///
///     # optional free-text comment (the writer records the failure)
///     oracle: relate_diff
///     seed: 123456
///     param: min_support=0.25
///     geom: POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))
///     geom: LINESTRING (1 1, 5 5)
///     item: touches_slum slum
///     txn: 0 2 5
///
/// `geom` lines are WKT and keep their order (oracles are arity- and
/// order-sensitive). `item` lines are "label" or "label key". `txn` lines
/// list item indexes. Doubles are written with shortest round-trip
/// formatting, so a replayed case is bit-identical to the saved one.
std::string WriteRepro(const FuzzCase& c, const std::string& comment = "");

/// Parses the repro format. Returns ParseError with a line diagnosis on
/// malformed input.
Result<FuzzCase> ParseRepro(const std::string& text);

/// File convenience wrappers.
Status SaveReproFile(const FuzzCase& c, const std::string& path,
                     const std::string& comment = "");
Result<FuzzCase> LoadReproFile(const std::string& path);

}  // namespace fuzz
}  // namespace sfpm

#endif  // SFPM_FUZZ_REPRO_H_
