#include "fuzz/shrink.h"

#include <cmath>
#include <optional>
#include <vector>

#include "geom/geometry.h"

namespace sfpm {
namespace fuzz {

namespace {

using geom::Geometry;
using geom::GeometryType;
using geom::LinearRing;
using geom::LineString;
using geom::MultiLineString;
using geom::MultiPoint;
using geom::MultiPolygon;
using geom::Point;
using geom::Polygon;

/// Drops part `i` of a multi geometry; nullopt when not applicable or the
/// result would be empty.
std::optional<Geometry> DropPart(const Geometry& g, size_t i) {
  switch (g.type()) {
    case GeometryType::kMultiPoint: {
      std::vector<Point> pts = g.As<MultiPoint>().points();
      if (i >= pts.size() || pts.size() <= 1) return std::nullopt;
      pts.erase(pts.begin() + i);
      return Geometry(MultiPoint(std::move(pts)));
    }
    case GeometryType::kMultiLineString: {
      std::vector<LineString> lines = g.As<MultiLineString>().lines();
      if (i >= lines.size() || lines.size() <= 1) return std::nullopt;
      lines.erase(lines.begin() + i);
      return Geometry(MultiLineString(std::move(lines)));
    }
    case GeometryType::kMultiPolygon: {
      std::vector<Polygon> polys = g.As<MultiPolygon>().polygons();
      if (i >= polys.size() || polys.size() <= 1) return std::nullopt;
      polys.erase(polys.begin() + i);
      return Geometry(MultiPolygon(std::move(polys)));
    }
    default:
      return std::nullopt;
  }
}

size_t NumDroppableParts(const Geometry& g) {
  switch (g.type()) {
    case GeometryType::kMultiPoint:
      return g.As<MultiPoint>().points().size();
    case GeometryType::kMultiLineString:
      return g.As<MultiLineString>().lines().size();
    case GeometryType::kMultiPolygon:
      return g.As<MultiPolygon>().polygons().size();
    default:
      return 0;
  }
}

/// Drops vertex `i` of a linestring / polygon shell (first part only for
/// multis — part drops handle the rest). Keeps linestrings at >= 2 points
/// and rings at >= 3 distinct points; nullopt otherwise.
std::optional<Geometry> DropVertex(const Geometry& g, size_t i) {
  switch (g.type()) {
    case GeometryType::kLineString: {
      std::vector<Point> pts = g.As<LineString>().points();
      if (i >= pts.size() || pts.size() <= 2) return std::nullopt;
      pts.erase(pts.begin() + i);
      return Geometry(LineString(std::move(pts)));
    }
    case GeometryType::kPolygon: {
      const Polygon& poly = g.As<Polygon>();
      std::vector<Point> pts = poly.shell().points();
      if (pts.size() <= 4) return std::nullopt;  // triangle + closure
      pts.pop_back();                            // open the ring
      if (i >= pts.size()) return std::nullopt;
      pts.erase(pts.begin() + i);
      return Geometry(Polygon(LinearRing(std::move(pts)), poly.holes()));
    }
    default:
      return std::nullopt;
  }
}

size_t NumDroppableVertices(const Geometry& g) {
  switch (g.type()) {
    case GeometryType::kLineString:
      return g.As<LineString>().points().size();
    case GeometryType::kPolygon:
      return g.As<Polygon>().shell().points().size();
    default:
      return 0;
  }
}

Point RoundPoint(const Point& p, double scale) {
  return Point(std::round(p.x * scale) / scale, std::round(p.y * scale) / scale);
}

/// Snaps every coordinate of `g` to `digits` decimal digits.
Geometry RoundGeometry(const Geometry& g, int digits) {
  const double scale = std::pow(10.0, digits);
  auto round_all = [&](const std::vector<Point>& pts) {
    std::vector<Point> out;
    out.reserve(pts.size());
    for (const Point& p : pts) out.push_back(RoundPoint(p, scale));
    return out;
  };
  auto round_poly = [&](const Polygon& poly) {
    std::vector<LinearRing> holes;
    for (const LinearRing& h : poly.holes()) {
      holes.emplace_back(round_all(h.points()));
    }
    return Polygon(LinearRing(round_all(poly.shell().points())),
                   std::move(holes));
  };
  switch (g.type()) {
    case GeometryType::kPoint:
      return Geometry(RoundPoint(g.As<Point>(), scale));
    case GeometryType::kLineString:
      return Geometry(LineString(round_all(g.As<LineString>().points())));
    case GeometryType::kPolygon:
      return Geometry(round_poly(g.As<Polygon>()));
    case GeometryType::kMultiPoint:
      return Geometry(MultiPoint(round_all(g.As<MultiPoint>().points())));
    case GeometryType::kMultiLineString: {
      std::vector<LineString> lines;
      for (const LineString& l : g.As<MultiLineString>().lines()) {
        lines.emplace_back(round_all(l.points()));
      }
      return Geometry(MultiLineString(std::move(lines)));
    }
    case GeometryType::kMultiPolygon: {
      std::vector<Polygon> polys;
      for (const Polygon& p : g.As<MultiPolygon>().polygons()) {
        polys.push_back(round_poly(p));
      }
      return Geometry(MultiPolygon(std::move(polys)));
    }
  }
  return g;
}

/// All single-step reductions of `c`, structural passes before lossy
/// coordinate snapping so minimized cases stay as faithful as possible.
std::vector<FuzzCase> Successors(const FuzzCase& c) {
  std::vector<FuzzCase> out;

  // Transaction payload: drop a transaction, then thin one out.
  for (size_t t = 0; t < c.transactions.size(); ++t) {
    FuzzCase next = c;
    next.transactions.erase(next.transactions.begin() + t);
    out.push_back(std::move(next));
  }
  for (size_t t = 0; t < c.transactions.size(); ++t) {
    for (size_t i = 0; i < c.transactions[t].size(); ++i) {
      FuzzCase next = c;
      next.transactions[t].erase(next.transactions[t].begin() + i);
      out.push_back(std::move(next));
    }
  }

  // Geometry payload: drop parts, then vertices.
  for (size_t gi = 0; gi < c.geoms.size(); ++gi) {
    for (size_t part = 0; part < NumDroppableParts(c.geoms[gi]); ++part) {
      std::optional<Geometry> reduced = DropPart(c.geoms[gi], part);
      if (!reduced) continue;
      FuzzCase next = c;
      next.geoms[gi] = std::move(*reduced);
      out.push_back(std::move(next));
    }
  }
  for (size_t gi = 0; gi < c.geoms.size(); ++gi) {
    for (size_t v = 0; v < NumDroppableVertices(c.geoms[gi]); ++v) {
      std::optional<Geometry> reduced = DropVertex(c.geoms[gi], v);
      if (!reduced) continue;
      FuzzCase next = c;
      next.geoms[gi] = std::move(*reduced);
      out.push_back(std::move(next));
    }
  }

  // Coordinate snapping, coarse digits first.
  if (!c.geoms.empty()) {
    for (const int digits : {0, 3, 6, 9, 12}) {
      FuzzCase next = c;
      bool changed = false;
      for (Geometry& g : next.geoms) {
        Geometry rounded = RoundGeometry(g, digits);
        if (!(rounded == g)) changed = true;
        g = std::move(rounded);
      }
      if (changed) out.push_back(std::move(next));
    }
  }
  return out;
}

}  // namespace

FuzzCase Shrink(const Oracle& oracle, const FuzzCase& failing,
                size_t max_checks) {
  FuzzCase current = failing;
  size_t checks = 0;
  bool reduced = true;
  while (reduced && checks < max_checks) {
    reduced = false;
    for (FuzzCase& next : Successors(current)) {
      if (++checks > max_checks) break;
      if (!oracle.Check(next).ok()) {
        current = std::move(next);
        reduced = true;
        break;  // Restart the pass list from the smaller case.
      }
    }
  }
  return current;
}

}  // namespace fuzz
}  // namespace sfpm
