#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/transaction_db.h"
#include "feature/feature.h"
#include "fuzz/generators.h"
#include "fuzz/oracles_internal.h"
#include "store/format.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/random.h"

namespace sfpm {
namespace fuzz {
namespace internal {

namespace {

using store::SectionInfo;
using store::SectionType;
using store::SnapshotReader;
using store::SnapshotWriter;

/// Deterministic pattern set derived from the database alone: a few
/// singletons plus one pair, with their true supports. The oracle only
/// needs self-describing content that must survive a round trip.
store::PatternSet MakePatterns(const FuzzCase& c,
                               const core::TransactionDb& db) {
  store::PatternSet ps;
  for (size_t i = 0; i < db.NumItems(); ++i) {
    ps.labels.push_back(db.Label(static_cast<core::ItemId>(i)));
    ps.keys.push_back(db.Key(static_cast<core::ItemId>(i)));
  }
  const size_t singletons = db.NumItems() < 4 ? db.NumItems() : 4;
  for (size_t i = 0; i < singletons; ++i) {
    const auto id = static_cast<core::ItemId>(i);
    ps.itemsets.push_back({core::Itemset({id}), db.Support(id)});
  }
  if (db.NumItems() >= 2) {
    const core::Itemset pair(
        {core::ItemId{0}, static_cast<core::ItemId>(db.NumItems() - 1)});
    ps.itemsets.push_back({pair, db.SupportOf(pair)});
  }
  ps.min_support = c.ParamDouble("min_support", 0.1);
  ps.algorithm = "apriori";
  ps.filter = "none";
  return ps;
}

/// Deterministic neighbour graph derived from the database shape alone:
/// two types, a small fixed CSR whose edge count tracks NumItems so the
/// payload varies with the case.
store::NeighborGraphData MakeGraph(const core::TransactionDb& db) {
  store::NeighborGraphData graph;
  graph.distance = 500.0;
  graph.type_names = {"alpha", "beta"};
  const uint32_t alpha = static_cast<uint32_t>(db.NumItems() % 3) + 1;
  graph.type_sizes = {alpha, 1};
  graph.band_names = {"veryClose", "close"};
  // Every alpha node neighbours the single beta node, and vice versa.
  graph.offsets.push_back(0);
  for (uint32_t i = 0; i < alpha; ++i) {
    graph.neighbors.push_back(alpha);
    graph.bands.push_back(static_cast<uint8_t>(i % 2));
    graph.offsets.push_back(graph.neighbors.size());
  }
  for (uint32_t i = 0; i < alpha; ++i) {
    graph.neighbors.push_back(i);
    graph.bands.push_back(static_cast<uint8_t>(i % 2));
  }
  graph.offsets.push_back(graph.neighbors.size());
  return graph;
}

/// Deterministic co-location set: one pair pattern over the graph types.
store::ColocationSet MakeColocations(const FuzzCase& c,
                                     const core::TransactionDb& db) {
  store::ColocationSet cs;
  cs.type_names = {"alpha", "beta"};
  cs.min_prevalence = c.ParamDouble("min_support", 0.1);
  cs.distance = 500.0;
  cs.filter = "none";
  cs.patterns = {{{0, 1},
                  1.0,
                  0.5,
                  static_cast<uint64_t>(db.NumItems() % 3) + 1}};
  return cs;
}

/// Serializes the case payload: optional layer, the transaction db, a
/// derived pattern set, neighbour graph and co-location set, and the
/// params as a manifest.
std::string BuildSnapshot(const FuzzCase& c, const core::TransactionDb& db) {
  SnapshotWriter w;
  if (!c.geoms.empty()) {
    feature::Layer layer("fuzz");
    for (size_t i = 0; i < c.geoms.size(); ++i) {
      layer.Add(c.geoms[i], {{"tag", std::to_string(i % 3)}});
    }
    w.AddLayer(layer);
  }
  w.AddTransactionDb(db);
  w.AddPatternSet(MakePatterns(c, db));
  w.AddNeighborGraph(MakeGraph(db));
  w.AddColocationSet(MakeColocations(c, db));
  std::map<std::string, std::string> manifest(c.params);
  manifest["oracle"] = c.oracle;
  w.AddManifest(manifest);
  return w.Serialize();
}

/// --- store --------------------------------------------------------------
///
/// The snapshot container's three load-bearing guarantees, checked
/// against adversarial payloads:
///  * round trip: a written snapshot opens cleanly and decoding every
///    section then re-serializing reproduces the original byte-for-byte
///    (write -> read -> write identity), and the decoded transaction db
///    matches the case payload bit-for-bit;
///  * full corruption coverage: every byte of the file lives in exactly
///    one checksum domain (header, payload, table) or is validated
///    semantically, so ANY single-byte flip must make Open fail with a
///    clean error — the oracle flips the whole header plus dozens of
///    seed-chosen positions and requires a non-OK status for each;
///  * truncation: cutting the file at any section boundary (or anywhere
///    else) must be rejected by the header's file-size check.
/// Lazily-verified readers must catch payload corruption at section
/// decode time instead of open time.
class StoreOracle final : public Oracle {
 public:
  std::string Name() const override { return "store"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    // 0..3 geometries: the no-layer snapshot is a real case too.
    const size_t num_geoms = rng.NextUint64(4);
    for (size_t i = 0; i < num_geoms; ++i) {
      c.geoms.push_back(GridGeometry(&rng, 8));
    }
    RandomMiningCase(&rng, &c);
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    const core::TransactionDb db = c.BuildDb();
    const std::string bytes = BuildSnapshot(c, db);

    auto reader = SnapshotReader::FromBytes(bytes);
    if (!reader.ok()) {
      return Violation("store/open", reader.status().message());
    }

    // Write -> read -> write byte identity: decode every section and
    // re-serialize in file order.
    SnapshotWriter rewrite;
    for (const SectionInfo& info : reader.value().sections()) {
      switch (info.type) {
        case SectionType::kLayer: {
          auto layer = reader.value().ReadLayer(info);
          if (!layer.ok()) {
            return Violation("store/read_layer", layer.status().message());
          }
          rewrite.AddLayer(layer.value());
          break;
        }
        case SectionType::kTransactionDb: {
          auto decoded = reader.value().ReadTransactionDb(info);
          if (!decoded.ok()) {
            return Violation("store/read_txdb", decoded.status().message());
          }
          SFPM_RETURN_NOT_OK(CheckDbMatchesCase(db, decoded.value()));
          rewrite.AddTransactionDb(decoded.value(), info.name);
          break;
        }
        case SectionType::kPatternSet: {
          auto ps = reader.value().ReadPatternSet(info);
          if (!ps.ok()) {
            return Violation("store/read_patterns", ps.status().message());
          }
          if (!(ps.value() == MakePatterns(c, db))) {
            return Violation("store/pattern_roundtrip",
                             "decoded pattern set differs from the one "
                             "written");
          }
          rewrite.AddPatternSet(ps.value(), info.name);
          break;
        }
        case SectionType::kNeighborGraph: {
          auto graph = reader.value().ReadNeighborGraph(info);
          if (!graph.ok()) {
            return Violation("store/read_graph", graph.status().message());
          }
          if (!(graph.value() == MakeGraph(db))) {
            return Violation("store/graph_roundtrip",
                             "decoded neighbour graph differs from the one "
                             "written");
          }
          rewrite.AddNeighborGraph(graph.value(), info.name);
          break;
        }
        case SectionType::kColocationSet: {
          auto cs = reader.value().ReadColocationSet(info);
          if (!cs.ok()) {
            return Violation("store/read_colocations",
                             cs.status().message());
          }
          if (!(cs.value() == MakeColocations(c, db))) {
            return Violation("store/colocation_roundtrip",
                             "decoded co-location set differs from the one "
                             "written");
          }
          rewrite.AddColocationSet(cs.value(), info.name);
          break;
        }
        case SectionType::kManifest: {
          auto manifest = reader.value().ReadManifest(info);
          if (!manifest.ok()) {
            return Violation("store/read_manifest",
                             manifest.status().message());
          }
          rewrite.AddManifest(manifest.value(), info.name);
          break;
        }
      }
    }
    if (rewrite.Serialize() != bytes) {
      return Violation("store/rewrite_identity",
                       "write -> read -> write produced different bytes");
    }

    SFPM_RETURN_NOT_OK(CheckByteFlips(c, bytes));
    SFPM_RETURN_NOT_OK(CheckTruncations(reader.value(), bytes));
    return Status::OK();
  }

 private:
  /// The decoded database must match the case payload bit-for-bit.
  static Status CheckDbMatchesCase(const core::TransactionDb& db,
                                   const core::TransactionDb& decoded) {
    if (decoded.NumItems() != db.NumItems() ||
        decoded.NumTransactions() != db.NumTransactions()) {
      return Violation(
          "store/db_shape",
          std::to_string(decoded.NumItems()) + " items x " +
              std::to_string(decoded.NumTransactions()) + " rows, expected " +
              std::to_string(db.NumItems()) + " x " +
              std::to_string(db.NumTransactions()));
    }
    for (size_t i = 0; i < db.NumItems(); ++i) {
      const auto id = static_cast<core::ItemId>(i);
      if (decoded.Label(id) != db.Label(id) || decoded.Key(id) != db.Key(id)) {
        return Violation("store/db_items",
                         "item " + std::to_string(i) + " decoded as " +
                             decoded.Label(id) + "/" + decoded.Key(id));
      }
      for (size_t row = 0; row < db.NumTransactions(); ++row) {
        if (decoded.Test(row, id) != db.Test(row, id)) {
          return Violation("store/db_bits",
                           "bit (" + std::to_string(row) + ", " +
                               std::to_string(i) + ") flipped in decode");
        }
      }
    }
    return Status::OK();
  }

  /// Any single-byte flip must be rejected: the whole header region plus
  /// 48 seed-chosen positions, each XORed with a nonzero mask.
  static Status CheckByteFlips(const FuzzCase& c, const std::string& bytes) {
    Rng rng(c.seed ^ 0x53544F5245ULL);  // "STORE"
    std::vector<size_t> positions;
    for (size_t i = 0; i < store::kHeaderFixedSize && i < bytes.size(); ++i) {
      positions.push_back(i);
    }
    for (int i = 0; i < 48; ++i) {
      positions.push_back(static_cast<size_t>(rng.NextUint64(bytes.size())));
    }
    for (const size_t pos : positions) {
      std::string corrupted = bytes;
      const auto mask =
          static_cast<char>(1 + rng.NextUint64(255));  // Never a no-op.
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ mask);
      auto r = SnapshotReader::FromBytes(corrupted);
      if (r.ok()) {
        return Violation("store/flip_detected",
                         "flip of byte " + std::to_string(pos) + " (mask " +
                             std::to_string(static_cast<int>(mask)) +
                             ") opened cleanly");
      }
      // A corrupted payload must also be caught by a lazy reader, at
      // section decode time.
      SnapshotReader::Options lazy;
      lazy.verify_checksums_eagerly = false;
      auto lazy_reader = SnapshotReader::FromBytes(corrupted, lazy);
      if (lazy_reader.ok()) {
        for (const SectionInfo& info : lazy_reader.value().sections()) {
          if (pos < info.offset || pos >= info.offset + info.length) continue;
          if (DecodeSection(lazy_reader.value(), info).ok()) {
            return Violation("store/lazy_flip_detected",
                             "payload flip at byte " + std::to_string(pos) +
                                 " survived a deferred-checksum decode");
          }
        }
      }
    }
    return Status::OK();
  }

  /// Truncating at every boundary (and just short of the end) must fail.
  static Status CheckTruncations(const SnapshotReader& reader,
                                 const std::string& bytes) {
    std::vector<size_t> cuts = {0, store::kHeaderFixedSize - 1,
                                store::kHeaderFixedSize, bytes.size() - 1};
    for (const SectionInfo& info : reader.sections()) {
      cuts.push_back(info.offset);
      cuts.push_back(info.offset + info.length);
    }
    for (const size_t cut : cuts) {
      if (cut >= bytes.size()) continue;
      if (SnapshotReader::FromBytes(bytes.substr(0, cut)).ok()) {
        return Violation("store/truncation_detected",
                         "file cut to " + std::to_string(cut) +
                             " bytes opened cleanly");
      }
    }
    return Status::OK();
  }

  static Status DecodeSection(const SnapshotReader& reader,
                              const SectionInfo& info) {
    switch (info.type) {
      case SectionType::kLayer:
        return reader.ReadLayer(info).status();
      case SectionType::kTransactionDb:
        return reader.ReadTransactionDb(info).status();
      case SectionType::kPatternSet:
        return reader.ReadPatternSet(info).status();
      case SectionType::kNeighborGraph:
        return reader.ReadNeighborGraph(info).status();
      case SectionType::kColocationSet:
        return reader.ReadColocationSet(info).status();
      case SectionType::kManifest:
        return reader.ReadManifest(info).status();
    }
    return Status::OK();
  }
};

}  // namespace

const Oracle* StoreOracle() {
  static const class StoreOracle instance;
  return &instance;
}

}  // namespace internal
}  // namespace fuzz
}  // namespace sfpm
