#include <string>
#include <vector>

#include "fuzz/generators.h"
#include "fuzz/oracles_internal.h"
#include "geom/validity.h"
#include "qsr/rcc8.h"
#include "qsr/topological.h"
#include "relate/relate.h"
#include "util/random.h"

namespace sfpm {
namespace fuzz {
namespace internal {

using geom::Geometry;

namespace {

/// The DE-9IM T/F masks of the eight RCC8 base relations between two
/// simple regions, row-major (A interior/boundary/exterior against B's).
/// Together they are jointly exhaustive and pairwise disjoint over region
/// pairs — the JEPD property the oracle enforces on observed matrices.
struct MaskEntry {
  qsr::Rcc8 rel;
  const char* mask;
};
constexpr MaskEntry kRegionMasks[] = {
    {qsr::Rcc8::kDC, "FFTFFTTTT"},    {qsr::Rcc8::kEC, "FFTFTTTTT"},
    {qsr::Rcc8::kPO, "TTTTTTTTT"},    {qsr::Rcc8::kTPP, "TFFTTFTTT"},
    {qsr::Rcc8::kNTPP, "TFFTFFTTT"},  {qsr::Rcc8::kTPPi, "TTTFTTFFT"},
    {qsr::Rcc8::kNTPPi, "TTTFFTFFT"}, {qsr::Rcc8::kEQ, "TFFFTFFFT"},
};

std::string TfMask(const relate::IntersectionMatrix& m) {
  std::string mask;
  for (int row = 0; row < 3; ++row) {
    for (int col = 0; col < 3; ++col) {
      mask += m.at(static_cast<relate::IntersectionMatrix::Part>(row),
                   static_cast<relate::IntersectionMatrix::Part>(col)) >= 0
                  ? 'T'
                  : 'F';
    }
  }
  return mask;
}

bool BothValidAreal(const Geometry& a, const Geometry& b) {
  return a.Dimension() == 2 && b.Dimension() == 2 && geom::Validate(a).ok() &&
         geom::Validate(b).ok();
}

/// --- rcc8_jepd ---------------------------------------------------------
///
/// For an areal pair: the observed matrix's T/F mask must equal exactly
/// one canonical region mask (jointly exhaustive AND pairwise disjoint),
/// Rcc8Relate must name that very relation, its converse must hold for the
/// swapped pair, and the Rcc8 <-> topological mappings must round-trip
/// through ClassifyMatrix.
class Rcc8JepdOracle final : public Oracle {
 public:
  std::string Name() const override { return "rcc8_jepd"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    std::vector<Geometry> triple = ArealTriple(&rng);
    c.geoms.assign(triple.begin(), triple.begin() + 2);
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    if (c.geoms.size() != 2) {
      return Status::InvalidArgument("rcc8_jepd case needs 2 geoms");
    }
    const Geometry& a = c.geoms[0];
    const Geometry& b = c.geoms[1];
    if (!BothValidAreal(a, b)) return Status::OK();

    const relate::IntersectionMatrix m = relate::Relate(a, b);
    const std::string mask = TfMask(m);

    int matches = 0;
    qsr::Rcc8 from_mask = qsr::Rcc8::kDC;
    for (const MaskEntry& entry : kRegionMasks) {
      if (mask == entry.mask) {
        ++matches;
        from_mask = entry.rel;
      }
    }
    if (matches != 1) {
      return Violation("rcc8/jepd",
                       "matrix " + m.ToString() + " (mask " + mask +
                           ") matches " + std::to_string(matches) +
                           " of the 8 region relations for " + a.ToWkt() +
                           " vs " + b.ToWkt());
    }

    Result<qsr::Rcc8> direct = qsr::Rcc8Relate(a, b);
    if (!direct.ok()) {
      return Violation("rcc8/relate-error",
                       direct.status().message() + " for " + a.ToWkt() +
                           " vs " + b.ToWkt());
    }
    if (direct.value() != from_mask) {
      return Violation("rcc8/relate-vs-mask",
                       std::string("Rcc8Relate says ") +
                           qsr::Rcc8Name(direct.value()) +
                           " but the matrix mask says " +
                           qsr::Rcc8Name(from_mask));
    }

    Result<qsr::Rcc8> reverse = qsr::Rcc8Relate(b, a);
    if (!reverse.ok() ||
        reverse.value() != qsr::Rcc8Converse(direct.value())) {
      return Violation(
          "rcc8/converse",
          std::string("Rcc8Relate(b,a) is not the converse of (a,b)=") +
              qsr::Rcc8Name(direct.value()));
    }

    // Round-trip through the topological classification.
    const qsr::TopologicalRelation topo = qsr::ClassifyMatrix(m, 2, 2);
    Result<qsr::Rcc8> via_topo = qsr::Rcc8FromTopological(topo);
    if (!via_topo.ok() || via_topo.value() != direct.value()) {
      return Violation(
          "rcc8/topological-roundtrip",
          std::string("ClassifyMatrix(") + m.ToString() + ") = " +
              qsr::TopologicalRelationName(topo) +
              " does not map back to " + qsr::Rcc8Name(direct.value()));
    }
    if (qsr::TopologicalFromRcc8(direct.value()) != topo) {
      return Violation("rcc8/topological-inverse",
                       std::string("TopologicalFromRcc8(") +
                           qsr::Rcc8Name(direct.value()) + ") != " +
                           qsr::TopologicalRelationName(topo));
    }
    return Status::OK();
  }
};

/// --- rcc8_compose ------------------------------------------------------
///
/// For an areal triple: the composition table must contain the observed
/// (A,C) relation given the observed (A,B) and (B,C) — the soundness
/// direction of the table — and the induced 3-variable constraint network
/// must stay path-consistent.
class Rcc8ComposeOracle final : public Oracle {
 public:
  std::string Name() const override { return "rcc8_compose"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    c.geoms = ArealTriple(&rng);
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    if (c.geoms.size() != 3) {
      return Status::InvalidArgument("rcc8_compose case needs 3 geoms");
    }
    const Geometry& a = c.geoms[0];
    const Geometry& b = c.geoms[1];
    const Geometry& g_c = c.geoms[2];
    if (!BothValidAreal(a, b) || !BothValidAreal(b, g_c)) return Status::OK();

    Result<qsr::Rcc8> r_ab = qsr::Rcc8Relate(a, b);
    Result<qsr::Rcc8> r_bc = qsr::Rcc8Relate(b, g_c);
    Result<qsr::Rcc8> r_ac = qsr::Rcc8Relate(a, g_c);
    if (!r_ab.ok() || !r_bc.ok() || !r_ac.ok()) {
      return Violation("rcc8/compose-relate-error",
                       "Rcc8Relate failed on a valid areal triple");
    }

    const qsr::Rcc8Set composed =
        qsr::Rcc8Compose(r_ab.value(), r_bc.value());
    if (!composed.Contains(r_ac.value())) {
      return Violation(
          "rcc8/composition-table",
          std::string(qsr::Rcc8Name(r_ab.value())) + " o " +
              qsr::Rcc8Name(r_bc.value()) + " = " + composed.ToString() +
              " does not contain observed " + qsr::Rcc8Name(r_ac.value()) +
              " for " + a.ToWkt() + " / " + b.ToWkt() + " / " + g_c.ToWkt());
    }

    qsr::Rcc8Network net(3);
    SFPM_RETURN_NOT_OK(net.Constrain(0, 1, qsr::Rcc8Set(r_ab.value())));
    SFPM_RETURN_NOT_OK(net.Constrain(1, 2, qsr::Rcc8Set(r_bc.value())));
    SFPM_RETURN_NOT_OK(net.Constrain(0, 2, qsr::Rcc8Set(r_ac.value())));
    if (!net.Propagate()) {
      return Violation("rcc8/network-consistency",
                       "a geometrically realized atomic triple propagated "
                       "to inconsistency");
    }
    if (!qsr::IsSatisfiable(net)) {
      return Violation("rcc8/network-satisfiable",
                       "a geometrically realized atomic triple is reported "
                       "unsatisfiable");
    }
    return Status::OK();
  }
};

}  // namespace

const Oracle* Rcc8JepdOracle() {
  static const class Rcc8JepdOracle instance;
  return &instance;
}

const Oracle* Rcc8ComposeOracle() {
  static const class Rcc8ComposeOracle instance;
  return &instance;
}

}  // namespace internal
}  // namespace fuzz
}  // namespace sfpm
