#include "fuzz/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "geom/algorithms.h"

namespace sfpm {
namespace fuzz {

using geom::Geometry;
using geom::GeometryType;
using geom::LinearRing;
using geom::LineString;
using geom::MultiLineString;
using geom::MultiPoint;
using geom::MultiPolygon;
using geom::Point;
using geom::Polygon;

namespace {

/// Translates every coordinate of `g` by (dx, dy).
Geometry Translated(const Geometry& g, double dx, double dy);

Point Moved(const Point& p, double dx, double dy) {
  return Point(p.x + dx, p.y + dy);
}

std::vector<Point> MovedAll(const std::vector<Point>& pts, double dx,
                            double dy) {
  std::vector<Point> out;
  out.reserve(pts.size());
  for (const Point& p : pts) out.push_back(Moved(p, dx, dy));
  return out;
}

Polygon MovedPolygon(const Polygon& poly, double dx, double dy) {
  std::vector<LinearRing> holes;
  for (const LinearRing& h : poly.holes()) {
    holes.emplace_back(MovedAll(h.points(), dx, dy));
  }
  return Polygon(LinearRing(MovedAll(poly.shell().points(), dx, dy)),
                 std::move(holes));
}

Geometry Translated(const Geometry& g, double dx, double dy) {
  switch (g.type()) {
    case GeometryType::kPoint:
      return Geometry(Moved(g.As<Point>(), dx, dy));
    case GeometryType::kLineString:
      return Geometry(LineString(MovedAll(g.As<LineString>().points(), dx, dy)));
    case GeometryType::kPolygon:
      return Geometry(MovedPolygon(g.As<Polygon>(), dx, dy));
    case GeometryType::kMultiPoint:
      return Geometry(MultiPoint(MovedAll(g.As<MultiPoint>().points(), dx, dy)));
    case GeometryType::kMultiLineString: {
      std::vector<LineString> lines;
      for (const LineString& l : g.As<MultiLineString>().lines()) {
        lines.emplace_back(MovedAll(l.points(), dx, dy));
      }
      return Geometry(MultiLineString(std::move(lines)));
    }
    case GeometryType::kMultiPolygon: {
      std::vector<Polygon> polys;
      for (const Polygon& p : g.As<MultiPolygon>().polygons()) {
        polys.push_back(MovedPolygon(p, dx, dy));
      }
      return Geometry(MultiPolygon(std::move(polys)));
    }
  }
  return g;
}

/// Scales `poly` about `center` by `factor` (factor > 0 keeps validity).
Polygon ScaledPolygon(const Polygon& poly, const Point& center,
                      double factor) {
  auto scale_pts = [&](const std::vector<Point>& pts) {
    std::vector<Point> out;
    out.reserve(pts.size());
    for (const Point& p : pts) {
      out.emplace_back(center.x + (p.x - center.x) * factor,
                       center.y + (p.y - center.y) * factor);
    }
    return out;
  };
  std::vector<LinearRing> holes;
  for (const LinearRing& h : poly.holes()) {
    holes.emplace_back(scale_pts(h.points()));
  }
  return Polygon(LinearRing(scale_pts(poly.shell().points())),
                 std::move(holes));
}

/// Mirrors `g` across the vertical line x = axis_x. Ring orientation flips,
/// which the engine does not normalize — a deliberate stressor.
Geometry MirroredX(const Geometry& g, double axis_x) {
  switch (g.type()) {
    case GeometryType::kPoint: {
      const Point& p = g.As<Point>();
      return Geometry(Point(2 * axis_x - p.x, p.y));
    }
    case GeometryType::kLineString: {
      std::vector<Point> pts;
      for (const Point& p : g.As<LineString>().points()) {
        pts.emplace_back(2 * axis_x - p.x, p.y);
      }
      return Geometry(LineString(std::move(pts)));
    }
    case GeometryType::kPolygon: {
      std::vector<Point> pts;
      for (const Point& p : g.As<Polygon>().shell().points()) {
        pts.emplace_back(2 * axis_x - p.x, p.y);
      }
      return Geometry(Polygon(LinearRing(std::move(pts))));
    }
    default:
      return Translated(g, 1.0, 0.0);  // Multi types: fall back to a shift.
  }
}

}  // namespace

Point GridPoint(Rng* rng, int span) {
  return Point(static_cast<double>(rng->NextInt(-span, span)),
               static_cast<double>(rng->NextInt(-span, span)));
}

Polygon GridConvexPolygon(Rng* rng, int span) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    const size_t n = 3 + rng->NextUint64(8);
    std::vector<Point> pts;
    for (size_t i = 0; i < n; ++i) pts.push_back(GridPoint(rng, span));
    LinearRing hull = geom::ConvexHull(pts);
    if (hull.Area() > 0.0) return Polygon(std::move(hull));
  }
  // Degenerate luck: emit a unit square at a random lattice corner.
  const Point c = GridPoint(rng, span);
  return Polygon(LinearRing(
      {c, Moved(c, 1, 0), Moved(c, 1, 1), Moved(c, 0, 1), c}));
}

Polygon BlobPolygon(Rng* rng, double scale) {
  const Point center(rng->NextDouble(-scale, scale),
                     rng->NextDouble(-scale, scale));
  const int n = 4 + static_cast<int>(rng->NextUint64(9));
  std::vector<Point> ring;
  for (int i = 0; i < n; ++i) {
    const double angle = 2 * M_PI * i / n;
    const double radius = rng->NextDouble(0.3, 1.0) * scale;
    ring.emplace_back(center.x + radius * std::cos(angle),
                      center.y + radius * std::sin(angle));
  }
  return Polygon(LinearRing(std::move(ring)));
}

LineString GridPath(Rng* rng, int span) {
  const size_t n = 2 + rng->NextUint64(5);
  std::vector<Point> pts;
  pts.push_back(GridPoint(rng, span));
  while (pts.size() < n) {
    const Point next = GridPoint(rng, span);
    if (next != pts.back()) pts.push_back(next);
  }
  return LineString(std::move(pts));
}

Geometry GridGeometry(Rng* rng, int span) {
  switch (rng->NextUint64(6)) {
    case 0:
      return Geometry(GridPoint(rng, span));
    case 1: {
      const size_t n = 1 + rng->NextUint64(5);
      std::vector<Point> pts;
      for (size_t i = 0; i < n; ++i) pts.push_back(GridPoint(rng, span));
      return Geometry(MultiPoint(std::move(pts)));
    }
    case 2:
      return Geometry(GridPath(rng, span));
    case 3: {
      // Two paths in horizontally disjoint bands, so the multilinestring
      // honours the engine's non-self-overlap assumption.
      const double shift = 2.0 * span + 2.0;
      LineString a = GridPath(rng, span);
      Geometry b = Translated(Geometry(GridPath(rng, span)), shift, 0.0);
      return Geometry(
          MultiLineString({std::move(a), b.As<LineString>()}));
    }
    case 4:
      return Geometry(GridConvexPolygon(rng, span));
    default: {
      // Two convex parts in disjoint bands; occasionally share the band
      // border so the parts touch along x = span (interiors stay disjoint).
      const bool touching = rng->NextBool(0.3);
      const double shift = touching ? 2.0 * span : 2.0 * span + 2.0;
      Polygon a = GridConvexPolygon(rng, span);
      Geometry b =
          Translated(Geometry(GridConvexPolygon(rng, span)), shift, 0.0);
      return Geometry(MultiPolygon({std::move(a), b.As<Polygon>()}));
    }
  }
}

void JitterGeometry(Rng* rng, double span, geom::Geometry* g) {
  const double mag = span * std::pow(10.0, -rng->NextDouble(7.0, 15.0));
  auto nudge = [&](std::vector<Point>* pts) {
    for (Point& p : *pts) {
      p.x += rng->NextDouble(-mag, mag);
      p.y += rng->NextDouble(-mag, mag);
    }
  };
  switch (g->type()) {
    case GeometryType::kPoint: {
      Point p = g->As<Point>();
      p.x += rng->NextDouble(-mag, mag);
      p.y += rng->NextDouble(-mag, mag);
      *g = Geometry(p);
      return;
    }
    case GeometryType::kLineString: {
      std::vector<Point> pts = g->As<LineString>().points();
      nudge(&pts);
      *g = Geometry(LineString(std::move(pts)));
      return;
    }
    case GeometryType::kPolygon: {
      // Jitter the ring but keep it closed: nudge all but the closing
      // vertex, then re-close.
      std::vector<Point> pts = g->As<Polygon>().shell().points();
      if (pts.size() < 2) return;
      pts.pop_back();
      nudge(&pts);
      pts.push_back(pts.front());
      *g = Geometry(Polygon(LinearRing(std::move(pts))));
      return;
    }
    case GeometryType::kMultiPoint: {
      std::vector<Point> pts = g->As<MultiPoint>().points();
      nudge(&pts);
      *g = Geometry(MultiPoint(std::move(pts)));
      return;
    }
    default:
      return;  // Multi line/polygon: left exact to preserve validity.
  }
}

std::vector<Geometry> RandomGeometryPair(Rng* rng) {
  const int span = 2 + static_cast<int>(rng->NextUint64(5));
  Geometry a = GridGeometry(rng, span);

  Geometry b;
  switch (rng->NextUint64(8)) {
    case 0:  // Independent draw.
    case 1:
      b = GridGeometry(rng, span);
      break;
    case 2:  // Exact copy: equals.
      b = a;
      break;
    case 3: {  // Lattice translation: touching / overlapping / disjoint.
      const double dx = static_cast<double>(rng->NextInt(-span, span));
      const double dy = static_cast<double>(rng->NextInt(-span, span));
      b = Translated(a, dx, dy);
      break;
    }
    case 4:  // Mirror: shared axis vertices, flipped orientation.
      b = MirroredX(a, static_cast<double>(rng->NextInt(-1, 1)));
      break;
    case 5: {  // Vertex reuse: geometry built from a's own vertices.
      std::vector<Point> verts = geom::AllVertices(a);
      if (verts.empty()) {
        b = GridGeometry(rng, span);
        break;
      }
      const Point pick = verts[rng->NextUint64(verts.size())];
      if (rng->NextBool(0.5) || verts.size() < 2) {
        b = Geometry(pick);
      } else {
        const Point pick2 = verts[rng->NextUint64(verts.size())];
        if (pick2 == pick) {
          b = Geometry(pick);
        } else {
          b = Geometry(LineString({pick, pick2}));
        }
      }
      break;
    }
    case 6: {  // Nesting: scaled copy of a polygon about a lattice center.
      if (a.Is<Polygon>()) {
        const double factor = rng->NextBool(0.5) ? 0.5 : 2.0;
        b = Geometry(ScaledPolygon(a.As<Polygon>(),
                                   GridPoint(rng, 1), factor));
      } else {
        b = Geometry(GridConvexPolygon(rng, span));
      }
      break;
    }
    default:  // Blob tier: float polygon against the lattice geometry.
      b = Geometry(BlobPolygon(rng, static_cast<double>(span)));
      break;
  }

  std::vector<Geometry> pair;
  pair.push_back(std::move(a));
  pair.push_back(std::move(b));
  if (rng->NextBool(0.33)) {
    JitterGeometry(rng, static_cast<double>(span), &pair[0]);
  }
  if (rng->NextBool(0.33)) {
    JitterGeometry(rng, static_cast<double>(span), &pair[1]);
  }
  return pair;
}

std::vector<Geometry> ArealTriple(Rng* rng) {
  const int span = 3 + static_cast<int>(rng->NextUint64(4));
  std::vector<Geometry> out;
  out.emplace_back(GridConvexPolygon(rng, span));
  for (int i = 1; i < 3; ++i) {
    switch (rng->NextUint64(4)) {
      case 0:  // Independent region.
        out.emplace_back(GridConvexPolygon(rng, span));
        break;
      case 1: {  // Nested copy of an earlier region.
        const Polygon& base =
            out[rng->NextUint64(out.size())].As<Polygon>();
        const double factor = rng->NextBool(0.7) ? 0.5 : 2.0;
        out.emplace_back(
            ScaledPolygon(base, geom::Centroid(Geometry(base)), factor));
        break;
      }
      case 2: {  // Lattice-translated copy: touch / overlap bias.
        const Geometry& base = out[rng->NextUint64(out.size())];
        out.push_back(Translated(base,
                                 static_cast<double>(rng->NextInt(0, span)),
                                 static_cast<double>(rng->NextInt(0, 1))));
        break;
      }
      default:  // Exact copy: EQ cases.
        out.push_back(out[rng->NextUint64(out.size())]);
        break;
    }
  }
  return out;
}

std::vector<Geometry> ArealCluster(Rng* rng) {
  const int span = 3 + static_cast<int>(rng->NextUint64(4));
  const size_t members = 4 + rng->NextUint64(4);
  std::vector<Geometry> out;
  out.emplace_back(GridConvexPolygon(rng, span));
  while (out.size() < members) {
    switch (rng->NextUint64(5)) {
      case 0:  // Independent region.
        out.emplace_back(GridConvexPolygon(rng, span));
        break;
      case 1: {  // Nested copy of an earlier region: containment chains.
        const Polygon& base =
            out[rng->NextUint64(out.size())].As<Polygon>();
        const double factor = rng->NextBool(0.7) ? 0.5 : 2.0;
        out.emplace_back(
            ScaledPolygon(base, geom::Centroid(Geometry(base)), factor));
        break;
      }
      case 2: {  // Lattice-translated copy: touch / overlap bias.
        const Geometry& base = out[rng->NextUint64(out.size())];
        out.push_back(Translated(base,
                                 static_cast<double>(rng->NextInt(0, span)),
                                 static_cast<double>(rng->NextInt(0, 1))));
        break;
      }
      case 3:  // Blob tier: float coordinates against the lattice.
        out.emplace_back(BlobPolygon(rng, static_cast<double>(span)));
        break;
      default:  // Exact copy: EQ cases.
        out.push_back(out[rng->NextUint64(out.size())]);
        break;
    }
  }
  // Occasionally push one member into the tolerance band, where the
  // inference tier must still agree with the engine bit for bit.
  if (rng->NextBool(0.25)) {
    const size_t victim = rng->NextUint64(out.size());
    JitterGeometry(rng, static_cast<double>(span), &out[victim]);
  }
  return out;
}

std::vector<Point> AdversarialSegmentQuad(Rng* rng) {
  const int span = 4;
  Point a1 = GridPoint(rng, span);
  Point a2 = GridPoint(rng, span);
  while (a2 == a1 && rng->NextBool(0.9)) a2 = GridPoint(rng, span);

  auto lerp = [](const Point& p, const Point& q, double t) {
    return Point(p.x + t * (q.x - p.x), p.y + t * (q.y - p.y));
  };

  Point b1, b2;
  switch (rng->NextUint64(9)) {
    case 0:  // Plain lattice segments.
      b1 = GridPoint(rng, span);
      b2 = GridPoint(rng, span);
      break;
    case 1: {  // Exact collinear overlap via lattice-parameter points.
      const double t1 = static_cast<double>(rng->NextInt(-2, 3));
      const double t2 = static_cast<double>(rng->NextInt(-2, 3));
      b1 = lerp(a1, a2, t1);
      b2 = lerp(a1, a2, t2);
      break;
    }
    case 2:  // Shared endpoint.
      b1 = rng->NextBool(0.5) ? a1 : a2;
      b2 = GridPoint(rng, span);
      break;
    case 3: {  // Proper crossing microscopically close to an endpoint.
      const double t0 = rng->NextBool(0.5)
                            ? std::pow(10.0, -rng->NextDouble(6.0, 14.0))
                            : 1.0 - std::pow(10.0, -rng->NextDouble(6.0, 14.0));
      const Point c = lerp(a1, a2, t0);
      const double len = rng->NextDouble(0.1, 2.0);
      const double angle = rng->NextDouble(0.0, 2 * M_PI);
      b1 = Point(c.x + len * std::cos(angle), c.y + len * std::sin(angle));
      b2 = Point(c.x - len * std::cos(angle), c.y - len * std::sin(angle));
      break;
    }
    case 4: {  // Near-parallel: a jittered copy, crossing at a tiny angle.
      const double eps = std::pow(10.0, -rng->NextDouble(8.0, 15.0));
      b1 = Point(a1.x + rng->NextDouble(-eps, eps),
                 a1.y + rng->NextDouble(-eps, eps));
      b2 = Point(a2.x + rng->NextDouble(-eps, eps),
                 a2.y + rng->NextDouble(-eps, eps));
      if (rng->NextBool(0.5)) std::swap(b1, b2);
      break;
    }
    case 5: {  // Near-vertical A with a crossing probe segment.
      const double eps = std::pow(10.0, -rng->NextDouble(6.0, 13.0));
      const double len = rng->NextDouble(1.0, 1000.0);
      a1 = GridPoint(rng, span);
      a2 = rng->NextBool(0.5) ? Point(a1.x + eps, a1.y + len)   // vertical
                              : Point(a1.x + len, a1.y + eps);  // horizontal
      const Point c = lerp(a1, a2, rng->NextDouble(0.0, 1.0));
      b1 = Point(c.x - rng->NextDouble(0.0, 2.0), c.y - eps);
      b2 = Point(c.x + rng->NextDouble(0.0, 2.0), c.y + eps);
      break;
    }
    case 6: {  // Degenerate B: a point on, near, or off segment A.
      const Point c = lerp(a1, a2, rng->NextDouble(-0.5, 1.5));
      const double off = rng->NextBool(0.5)
                             ? 0.0
                             : std::pow(10.0, -rng->NextDouble(6.0, 15.0));
      b1 = Point(c.x + off, c.y - off);
      b2 = b1;
      break;
    }
    case 7: {  // Tolerance sliver at the tip of a near-vertical segment:
      // probes collinear within OrientationThreshold whose off-axis
      // coordinate lands microscopically beyond the segment's exact
      // bounding box — the corner where a bbox clamp and the tolerance
      // collinearity test can contradict each other.
      const double eps = std::pow(10.0, -rng->NextDouble(4.0, 10.0));
      const double len = rng->NextDouble(1.0, 100.0);
      const int y0 = static_cast<int>(rng->NextInt(-span, span));
      a1 = Point(0.0, static_cast<double>(y0));
      a2 = Point(eps, a1.y + len);
      auto tip_probe = [&]() {
        const double rho = rng->NextDouble(-2e-12, 2e-12);
        const double sigma = rng->NextDouble(-2e-12, 2e-12);
        return Point(eps * (1.0 + rho), a1.y + len * (1.0 - sigma));
      };
      b1 = tip_probe();
      b2 = rng->NextBool(0.5) ? tip_probe()
                              : Point(eps * rng->NextDouble(0.0, 1.0),
                                      a1.y + len * rng->NextDouble(0.0, 1.0));
      if (rng->NextBool(0.5)) {  // Transposed variant: near-horizontal.
        std::swap(a1.x, a1.y);
        std::swap(a2.x, a2.y);
        std::swap(b1.x, b1.y);
        std::swap(b2.x, b2.y);
      }
      break;
    }
    default: {  // Endpoint of B microscopically off A's line.
      const double t = rng->NextDouble(-0.2, 1.2);
      const Point c = lerp(a1, a2, t);
      const double off = std::pow(10.0, -rng->NextDouble(6.0, 15.0));
      b1 = Point(c.x + off * (a2.y - a1.y), c.y - off * (a2.x - a1.x));
      b2 = GridPoint(rng, span);
      break;
    }
  }
  return {a1, a2, b1, b2};
}

std::vector<Geometry> EnvelopeSet(Rng* rng) {
  const size_t n = 4 + rng->NextUint64(60);
  const int span = 8;
  std::vector<Geometry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point c = GridPoint(rng, span);
    const double w = static_cast<double>(rng->NextInt(0, 3));
    const double h = static_cast<double>(rng->NextInt(0, 3));
    if (w == 0.0 || h == 0.0) {
      // Degenerate entry: a point (zero-extent envelope).
      out.emplace_back(c);
    } else {
      out.emplace_back(Polygon(LinearRing({c, Moved(c, w, 0), Moved(c, w, h),
                                           Moved(c, 0, h), c})));
    }
  }
  return out;
}

void RandomMiningCase(Rng* rng, FuzzCase* c) {
  const size_t num_items = 1 + rng->NextUint64(11);
  const size_t group_size = rng->NextUint64(4);  // 0 = keyless items.
  for (size_t i = 0; i < num_items; ++i) {
    const std::string key =
        group_size == 0 ? ""
                        : "g" + std::to_string(i / std::max<size_t>(
                                                       1, group_size));
    c->items.emplace_back("i" + std::to_string(i), key);
  }

  const size_t num_txns = 1 + rng->NextUint64(48);
  const double density = rng->NextDouble(0.05, 0.9);
  for (size_t t = 0; t < num_txns; ++t) {
    std::vector<core::ItemId> txn;
    for (size_t i = 0; i < num_items; ++i) {
      if (rng->NextBool(density)) txn.push_back(static_cast<core::ItemId>(i));
    }
    c->transactions.push_back(std::move(txn));
  }
  // Edge-case injections the paper-scale generator never produces.
  if (rng->NextBool(0.4) && !c->transactions.empty()) {
    c->transactions.push_back(
        c->transactions[rng->NextUint64(c->transactions.size())]);
  }
  if (rng->NextBool(0.3)) {  // A transaction holding every item.
    std::vector<core::ItemId> full;
    for (size_t i = 0; i < num_items; ++i) {
      full.push_back(static_cast<core::ItemId>(i));
    }
    c->transactions.push_back(std::move(full));
  }
  if (rng->NextBool(0.3)) c->transactions.emplace_back();  // Empty txn.

  // min_support: spread over (0, 1] with the extremes over-represented.
  double min_support;
  switch (rng->NextUint64(4)) {
    case 0:
      min_support = 1.0;
      break;
    case 1:
      min_support = 1.0 / static_cast<double>(c->transactions.size());
      break;
    default:
      min_support = rng->NextDouble(0.05, 1.0);
      break;
  }
  c->params["min_support"] = std::to_string(min_support);

  // Random dependency blocklist over the item universe.
  const size_t num_blocked = rng->NextUint64(4);
  std::string block;
  for (size_t i = 0; i < num_blocked; ++i) {
    const core::ItemId a =
        static_cast<core::ItemId>(rng->NextUint64(num_items));
    const core::ItemId b =
        static_cast<core::ItemId>(rng->NextUint64(num_items));
    if (a == b) continue;
    if (!block.empty()) block += ",";
    block += std::to_string(a) + ":" + std::to_string(b);
  }
  if (!block.empty()) c->params["block"] = block;
}

}  // namespace fuzz
}  // namespace sfpm
