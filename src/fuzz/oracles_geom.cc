#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <unordered_map>
#include <vector>

#include "datagen/city.h"
#include "feature/feature.h"
#include "fuzz/generators.h"
#include "fuzz/oracles_internal.h"
#include "geom/algorithms.h"
#include "geom/validity.h"
#include "relate/prepared.h"
#include "relate/relate.h"
#include "util/random.h"

namespace sfpm {
namespace fuzz {
namespace internal {

using geom::Geometry;
using geom::Point;

Status Violation(const std::string& invariant, const std::string& detail) {
  return Status::Internal(invariant + ": " + detail);
}

namespace {

std::string PointStr(const Point& p) { return p.ToString(); }

/// --- segment -----------------------------------------------------------
///
/// Invariants over one adversarial segment quad (a1 a2 b1 b2):
///  * swap symmetry: IntersectSegments(A, B) and (B, A) agree on kind and
///    properness; point results coincide within tolerance, overlap
///    endpoint sets match within tolerance;
///  * containment: a reported intersection point lies within `tol` of both
///    segments and inside both buffered envelopes — the invariant an
///    unclamped crossing parameter breaks on near-parallel input;
///  * verbatim acceptance: non-proper intersection points are copied from
///    the inputs unrounded, so whenever such a point is tolerance-collinear
///    with a segment, PointOnSegment must accept it — the invariant an
///    exact bbox clamp breaks in the tolerance sliver at a segment tip;
///  * endpoint contact: an endpoint of one segment lying on the other
///    forces a non-empty intersection.
class SegmentOracle final : public Oracle {
 public:
  std::string Name() const override { return "segment"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    for (const Point& p : AdversarialSegmentQuad(&rng)) c.geoms.emplace_back(p);
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    if (c.geoms.size() != 4) {
      return Status::InvalidArgument("segment case needs 4 point geoms");
    }
    for (const Geometry& g : c.geoms) {
      if (!g.Is<Point>()) {
        return Status::InvalidArgument("segment case needs POINT geoms");
      }
    }
    const Point a1 = c.geoms[0].As<Point>();
    const Point a2 = c.geoms[1].As<Point>();
    const Point b1 = c.geoms[2].As<Point>();
    const Point b2 = c.geoms[3].As<Point>();

    geom::Envelope all(a1, a2);
    all.ExpandToInclude(b1);
    all.ExpandToInclude(b2);
    const double scale =
        std::max(1.0, std::hypot(all.Width(), all.Height()));
    const double tol = 1e-6 * scale;

    const geom::SegmentIntersection ab =
        geom::IntersectSegments(a1, a2, b1, b2);
    const geom::SegmentIntersection ba =
        geom::IntersectSegments(b1, b2, a1, a2);

    using Kind = geom::SegmentIntersection::Kind;
    if (ab.kind != ba.kind) {
      return Violation("segment/swap-kind",
                       "A-B kind " + std::to_string(static_cast<int>(ab.kind)) +
                           " vs B-A kind " +
                           std::to_string(static_cast<int>(ba.kind)));
    }
    if (ab.kind == Kind::kPoint && ab.proper != ba.proper) {
      return Violation("segment/swap-proper",
                       "proper flags disagree across operand swap");
    }
    if (ab.kind == Kind::kPoint && ab.p.DistanceTo(ba.p) > tol) {
      return Violation("segment/swap-point", "A-B point " + PointStr(ab.p) +
                                                 " vs B-A point " +
                                                 PointStr(ba.p));
    }
    if (ab.kind == Kind::kOverlap) {
      const bool direct = ab.p.DistanceTo(ba.p) <= tol &&
                          ab.q.DistanceTo(ba.q) <= tol;
      const bool swapped = ab.p.DistanceTo(ba.q) <= tol &&
                           ab.q.DistanceTo(ba.p) <= tol;
      if (!direct && !swapped) {
        return Violation("segment/swap-overlap",
                         "overlap endpoints disagree across operand swap");
      }
    }

    // Containment of every reported intersection point. A proper crossing
    // of near-parallel segments is ill-conditioned — the solved parameter
    // carries a relative error of order eps / sin(theta) — so the distance
    // check scales its slack by the condition number. The envelope check
    // stays strict: the implementation clamps into the envelope
    // intersection, and an unclamped crossing parameter escapes it no
    // matter how poor the conditioning.
    double dist_tol = tol;
    if (ab.kind == Kind::kPoint && ab.proper) {
      const double la = a1.DistanceTo(a2);
      const double lb = b1.DistanceTo(b2);
      const double denom = std::abs((a2.x - a1.x) * (b2.y - b1.y) -
                                    (a2.y - a1.y) * (b2.x - b1.x));
      if (denom > 0.0) {
        const double cond = la * lb / denom;
        dist_tol = std::max(
            tol, 1024.0 * std::numeric_limits<double>::epsilon() * cond *
                     std::max(la, lb));
      }
    }
    std::vector<Point> reported;
    if (ab.kind == Kind::kPoint) reported.push_back(ab.p);
    if (ab.kind == Kind::kOverlap) {
      reported.push_back(ab.p);
      reported.push_back(ab.q);
    }
    const geom::Envelope env_a = geom::Envelope(a1, a2).Buffered(tol);
    const geom::Envelope env_b = geom::Envelope(b1, b2).Buffered(tol);
    for (const Point& r : reported) {
      if (geom::DistancePointSegment(r, a1, a2) > dist_tol ||
          geom::DistancePointSegment(r, b1, b2) > dist_tol) {
        return Violation("segment/point-off-segments",
                         "intersection point " + PointStr(r) +
                             " lies off an operand segment");
      }
      if (!env_a.Contains(r) || !env_b.Contains(r)) {
        return Violation("segment/point-outside-envelope",
                         "intersection point " + PointStr(r) +
                             " escapes an operand envelope");
      }
    }

    // Verbatim (unrounded) intersection points: overlap endpoints and
    // non-proper touch points are copied from the inputs, so the
    // tolerance-collinearity test and PointOnSegment must agree on them.
    std::vector<Point> verbatim;
    if (ab.kind == Kind::kPoint && !ab.proper) verbatim.push_back(ab.p);
    if (ab.kind == Kind::kOverlap) {
      verbatim.push_back(ab.p);
      verbatim.push_back(ab.q);
    }
    for (const Point& r : verbatim) {
      if (geom::Orientation(a1, a2, r) == 0 &&
          !geom::PointOnSegment(r, a1, a2)) {
        return Violation("segment/verbatim-on-a",
                         "point " + PointStr(r) +
                             " is tolerance-collinear with segment A " +
                             PointStr(a1) + "-" + PointStr(a2) +
                             " and was reported as an intersection, but "
                             "PointOnSegment rejects it");
      }
      if (geom::Orientation(b1, b2, r) == 0 &&
          !geom::PointOnSegment(r, b1, b2)) {
        return Violation("segment/verbatim-on-b",
                         "point " + PointStr(r) +
                             " is tolerance-collinear with segment B " +
                             PointStr(b1) + "-" + PointStr(b2) +
                             " and was reported as an intersection, but "
                             "PointOnSegment rejects it");
      }
    }

    // Endpoint contact.
    const bool contact = ab.kind != Kind::kNone;
    for (const Point& e : {b1, b2}) {
      if (geom::PointOnSegment(e, a1, a2) && !contact) {
        return Violation("segment/endpoint-contact",
                         "endpoint " + PointStr(e) +
                             " lies on segment A but the intersection is "
                             "reported empty");
      }
    }
    for (const Point& e : {a1, a2}) {
      if (geom::PointOnSegment(e, b1, b2) && !contact) {
        return Violation("segment/endpoint-contact",
                         "endpoint " + PointStr(e) +
                             " lies on segment B but the intersection is "
                             "reported empty");
      }
    }
    return Status::OK();
  }
};

}  // namespace

Status CheckRelateInvariants(const Geometry& a, const Geometry& b) {
  // The engine's contract assumes valid input; shrunk or mirrored cases
  // can leave validity, which makes the case vacuous, not failing.
  if (!geom::Validate(a).ok() || !geom::Validate(b).ok()) return Status::OK();
  if (a.IsEmpty() || b.IsEmpty()) return Status::OK();

  const relate::IntersectionMatrix m_ref = relate::Relate(a, b);

  const relate::PreparedGeometry pa(a);
  const relate::PreparedGeometry pb(b);
  const relate::IntersectionMatrix m_full = pa.RelateFull(b);
  const relate::IntersectionMatrix m_full_p = pa.RelateFull(pb);
  relate::RelateStats stats;
  const relate::IntersectionMatrix m_fast = pa.Relate(b, &stats);
  const relate::IntersectionMatrix m_fast_p = pa.Relate(pb, &stats);

  const std::string want = m_ref.ToString();
  auto mismatch = [&](const char* path, const relate::IntersectionMatrix& m) {
    return Violation(std::string("relate/") + path,
                     "reference " + want + " vs " + path + " " + m.ToString() +
                         " for " + a.ToWkt() + " vs " + b.ToWkt());
  };
  if (!(m_full == m_ref)) return mismatch("prepared-full", m_full);
  if (!(m_full_p == m_ref)) return mismatch("prepared-full-pp", m_full_p);
  if (!(m_fast == m_ref)) return mismatch("fast-path", m_fast);
  if (!(m_fast_p == m_ref)) return mismatch("fast-path-pp", m_fast_p);

  // Transpose symmetry: relate(b, a) is the transposed matrix.
  const relate::IntersectionMatrix m_rev = relate::Relate(b, a);
  if (!(m_rev == m_ref.Transposed())) {
    return Violation("relate/transpose",
                     "relate(a,b) " + want + " but relate(b,a) " +
                         m_rev.ToString() + " for " + a.ToWkt() + " vs " +
                         b.ToWkt());
  }

  // Matrix-level identities (exact, tier-independent).
  if (!m_ref.Matches(want)) {
    return Violation("relate/matches-self",
                     want + " does not match its own pattern");
  }
  if (m_ref.Disjoint() == m_ref.Intersects()) {
    return Violation("relate/disjoint-intersects",
                     "disjoint and intersects agree on " + want);
  }
  if (m_ref.Within() != m_ref.Transposed().Contains() ||
      m_ref.CoveredBy() != m_ref.Transposed().Covers()) {
    return Violation("relate/within-contains",
                     "within/contains transpose identity fails on " + want);
  }
  const int da = a.Dimension();
  const int db = b.Dimension();
  if (m_ref.Equals(da, db) && !(m_ref.Covers() && m_ref.CoveredBy())) {
    return Violation("relate/equals-covers",
                     "equals without covers+coveredBy on " + want);
  }

  // Indexed point location against the linear reference.
  std::vector<Point> probes = geom::AllVertices(b);
  probes.push_back(geom::Centroid(b));
  if (probes.size() > 8) probes.resize(8);
  for (const Point& p : probes) {
    const geom::Location fast = pa.Locate(p);
    const geom::Location ref = geom::Locate(p, a);
    if (fast != ref) {
      return Violation(
          "relate/prepared-locate",
          "prepared locate disagrees with geom::Locate at " + p.ToString() +
              " against " + a.ToWkt());
    }
  }
  return Status::OK();
}

namespace {

/// --- relate_pair -------------------------------------------------------
class RelatePairOracle final : public Oracle {
 public:
  std::string Name() const override { return "relate_pair"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    c.geoms = RandomGeometryPair(&rng);
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    if (c.geoms.size() != 2) {
      return Status::InvalidArgument("relate_pair case needs 2 geoms");
    }
    return CheckRelateInvariants(c.geoms[0], c.geoms[1]);
  }
};

/// --- relate_city -------------------------------------------------------
///
/// Samples feature pairs from a paper-scale synthetic city so the
/// differential also covers realistically dense GIS linework (district
/// grids, clustered slum blobs, street polylines). Cities are expensive to
/// build, so one city serves 256 consecutive seeds; the sampled pair is
/// copied into the case, which keeps corpus replays city-free.
class RelateCityOracle final : public Oracle {
 public:
  std::string Name() const override { return "relate_city"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    const uint64_t city_seed = seed >> 8;
    if (!city_ || city_seed_ != city_seed) {
      datagen::CityConfig cfg;
      cfg.grid_cols = 3;
      cfg.grid_rows = 3;
      cfg.num_slums = 10;
      cfg.num_slum_clusters = 2;
      cfg.num_schools = 15;
      cfg.num_police = 4;
      cfg.num_streets = 12;
      cfg.illumination_per_street = 2;
      cfg.num_rivers = 1;
      cfg.seed = 0xC171ULL ^ city_seed;
      const std::unique_ptr<datagen::City> city = datagen::GenerateCity(cfg);
      pool_.clear();
      for (const feature::Layer* layer :
           {&city->districts, &city->slums, &city->schools, &city->police,
            &city->streets, &city->illumination, &city->rivers}) {
        for (const feature::Feature& f : layer->features()) {
          pool_.push_back(f.geometry());
        }
      }
      city_ = true;
      city_seed_ = city_seed;
    }
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    c.geoms.push_back(pool_[rng.NextUint64(pool_.size())]);
    c.geoms.push_back(pool_[rng.NextUint64(pool_.size())]);
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    if (c.geoms.size() != 2) {
      return Status::InvalidArgument("relate_city case needs 2 geoms");
    }
    return CheckRelateInvariants(c.geoms[0], c.geoms[1]);
  }

 private:
  // Generate-side cache only; Check never touches it. The fuzz driver is
  // single-threaded, as is ctest replay.
  mutable bool city_ = false;
  mutable uint64_t city_seed_ = 0;
  mutable std::vector<Geometry> pool_;
};

}  // namespace

const Oracle* SegmentOracle() {
  static const class SegmentOracle instance;
  return &instance;
}

const Oracle* RelatePairOracle() {
  static const class RelatePairOracle instance;
  return &instance;
}

const Oracle* RelateCityOracle() {
  static const class RelateCityOracle instance;
  return &instance;
}

}  // namespace internal
}  // namespace fuzz
}  // namespace sfpm
