#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "fuzz/generators.h"
#include "fuzz/oracles_internal.h"
#include "index/rtree.h"
#include "util/random.h"

namespace sfpm {
namespace fuzz {
namespace internal {

using geom::Envelope;
using geom::Geometry;

namespace {

std::string IdList(const std::vector<uint64_t>& ids) {
  std::string out = "[";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i) out += " ";
    out += std::to_string(ids[i]);
  }
  return out + "]";
}

/// --- rtree -------------------------------------------------------------
///
/// Builds an R-tree over a lattice envelope set three ways (STR bulk load,
/// pure dynamic insertion, bulk + dynamic tail) and at an adversarially
/// small fan-out, then checks every query kind against a linear scan over
/// the same envelopes:
///  * Query == {i : env_i intersects q};
///  * QueryWithinDistance == {i : dist(env_i, q) <= d} (d chosen off the
///    lattice distance spectrum so the comparison is inequality-agnostic);
///  * Nearest(k) returns the k smallest distances (compared as a distance
///    multiset — ties make id sets ambiguous, distances are not).
/// The query workload is derived from the payload itself, so a replayed
/// corpus file re-runs the identical workload.
class RtreeOracle final : public Oracle {
 public:
  std::string Name() const override { return "rtree"; }

  FuzzCase Generate(uint64_t seed) const override {
    FuzzCase c;
    c.oracle = Name();
    c.seed = seed;
    Rng rng(seed);
    c.geoms = EnvelopeSet(&rng);
    c.params["build"] = std::to_string(rng.NextUint64(3));
    c.params["fanout"] = rng.NextBool(0.5) ? "4" : "16";
    return c;
  }

  Status Check(const FuzzCase& c) const override {
    if (c.geoms.empty()) {
      return Status::InvalidArgument("rtree case needs geoms");
    }
    std::vector<Envelope> envs;
    envs.reserve(c.geoms.size());
    for (const Geometry& g : c.geoms) envs.push_back(g.GetEnvelope());

    const int64_t build = c.ParamInt("build", 0);
    const size_t fanout =
        static_cast<size_t>(std::max<int64_t>(4, c.ParamInt("fanout", 16)));

    index::RTree tree(fanout);
    if (build == 0) {
      std::vector<std::pair<Envelope, uint64_t>> entries;
      for (size_t i = 0; i < envs.size(); ++i) entries.emplace_back(envs[i], i);
      tree.BulkLoad(std::move(entries));
    } else if (build == 1) {
      for (size_t i = 0; i < envs.size(); ++i) tree.Insert(envs[i], i);
    } else {
      const size_t half = envs.size() / 2;
      std::vector<std::pair<Envelope, uint64_t>> entries;
      for (size_t i = 0; i < half; ++i) entries.emplace_back(envs[i], i);
      tree.BulkLoad(std::move(entries));
      for (size_t i = half; i < envs.size(); ++i) tree.Insert(envs[i], i);
    }

    if (tree.Size() != envs.size()) {
      return Violation("rtree/size",
                       "tree holds " + std::to_string(tree.Size()) + " of " +
                           std::to_string(envs.size()) + " entries");
    }

    // Query workload: each entry's envelope, a buffered variant, and its
    // center point, capped to keep a check O(#queries * n).
    std::vector<Envelope> queries;
    for (size_t i = 0; i < envs.size() && queries.size() < 24; ++i) {
      queries.push_back(envs[i]);
      queries.push_back(envs[i].Buffered(0.5));
      queries.push_back(Envelope(envs[i].Center()));
    }

    for (const Envelope& q : queries) {
      std::vector<uint64_t> got;
      tree.Query(q, &got);
      std::sort(got.begin(), got.end());
      std::vector<uint64_t> want;
      for (size_t i = 0; i < envs.size(); ++i) {
        if (envs[i].Intersects(q)) want.push_back(i);
      }
      if (got != want) {
        return Violation("rtree/query", "index " + IdList(got) +
                                            " vs scan " + IdList(want) +
                                            " for query " + q.ToString());
      }

      // Distances between lattice envelopes are hypot(int, int), never
      // 0.75 or 1.75, so <= vs < cannot change the answer.
      for (const double d : {0.75, 1.75}) {
        std::vector<uint64_t> got_d;
        tree.QueryWithinDistance(q, d, &got_d);
        std::sort(got_d.begin(), got_d.end());
        std::vector<uint64_t> want_d;
        for (size_t i = 0; i < envs.size(); ++i) {
          if (envs[i].Distance(q) <= d) want_d.push_back(i);
        }
        if (got_d != want_d) {
          return Violation("rtree/query-within-distance",
                           "index " + IdList(got_d) + " vs scan " +
                               IdList(want_d) + " at distance " +
                               std::to_string(d) + " for query " +
                               q.ToString());
        }
      }
    }

    // Nearest: compare the distance multiset of the k results.
    for (const size_t k : {size_t{1}, size_t{3}, envs.size() + 5}) {
      const geom::Point probe = envs[0].Center();
      const Envelope probe_env(probe);
      const std::vector<uint64_t> got = tree.Nearest(probe, k);
      std::vector<double> got_d;
      for (uint64_t id : got) got_d.push_back(envs[id].Distance(probe_env));
      std::vector<double> want_d;
      for (const Envelope& e : envs) want_d.push_back(e.Distance(probe_env));
      std::sort(want_d.begin(), want_d.end());
      want_d.resize(std::min(k, want_d.size()));
      std::vector<double> got_sorted = got_d;
      std::sort(got_sorted.begin(), got_sorted.end());
      if (got_sorted != want_d) {
        return Violation("rtree/nearest",
                         "nearest-" + std::to_string(k) +
                             " distance multiset disagrees with the scan");
      }
      // And the results must come back ordered by increasing distance.
      if (!std::is_sorted(got_d.begin(), got_d.end())) {
        return Violation("rtree/nearest-order",
                         "nearest results are not distance-ordered");
      }
    }
    return Status::OK();
  }
};

}  // namespace

const Oracle* RtreeOracle() {
  static const class RtreeOracle instance;
  return &instance;
}

}  // namespace internal
}  // namespace fuzz
}  // namespace sfpm
