#include "fuzz/fuzz_case.h"

#include <cstdlib>

namespace sfpm {
namespace fuzz {

core::TransactionDb FuzzCase::BuildDb() const {
  core::TransactionDb db;
  for (const auto& [label, key] : items) db.AddItem(label, key);
  for (const std::vector<core::ItemId>& txn : transactions) {
    db.AddTransaction(txn);
  }
  return db;
}

double FuzzCase::ParamDouble(const std::string& key, double fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  return (end == it->second.c_str()) ? fallback : v;
}

int64_t FuzzCase::ParamInt(const std::string& key, int64_t fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  return (end == it->second.c_str()) ? fallback : static_cast<int64_t>(v);
}

}  // namespace fuzz
}  // namespace sfpm
