#ifndef SFPM_FUZZ_FUZZ_CASE_H_
#define SFPM_FUZZ_FUZZ_CASE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/transaction_db.h"
#include "geom/geometry.h"

namespace sfpm {
namespace fuzz {

/// \brief One fuzzing input: the self-contained payload an oracle checks.
///
/// A case carries either geometries, a transaction database, or both —
/// whatever its oracle family consumes — plus free-form string parameters
/// (mining thresholds, generator tier tags). Cases are value types: the
/// shrinking reducer copies and mutates them freely, and the repro format
/// (repro.h) round-trips every field, which is what makes a corpus file
/// replayable forever with no other context.
struct FuzzCase {
  /// Oracle family that generated (and can re-check) this case.
  std::string oracle;

  /// Seed of the generator invocation that produced the case, recorded for
  /// provenance (replays do not re-generate; they check the payload as-is).
  uint64_t seed = 0;

  /// Geometry payload, in the arity the oracle expects.
  std::vector<geom::Geometry> geoms;

  /// Transaction-db payload: (label, key) per item, then transactions as
  /// item-index lists. Kept in this flat form (rather than a TransactionDb)
  /// so the reducer can edit it structurally and the repro writer can dump
  /// it as text.
  std::vector<std::pair<std::string, std::string>> items;
  std::vector<std::vector<core::ItemId>> transactions;

  /// Free-form parameters (e.g. "min_support" -> "0.25").
  std::map<std::string, std::string> params;

  /// Materializes the item/transaction payload as a TransactionDb.
  core::TransactionDb BuildDb() const;

  /// Typed parameter accessors (fallback on absence or parse failure).
  double ParamDouble(const std::string& key, double fallback) const;
  int64_t ParamInt(const std::string& key, int64_t fallback) const;
};

}  // namespace fuzz
}  // namespace sfpm

#endif  // SFPM_FUZZ_FUZZ_CASE_H_
