#ifndef SFPM_FUZZ_ORACLES_INTERNAL_H_
#define SFPM_FUZZ_ORACLES_INTERNAL_H_

#include <string>

#include "fuzz/oracles.h"
#include "geom/geometry.h"

namespace sfpm {
namespace fuzz {
namespace internal {

/// \name Per-family singletons, one per implementation file. The registry
/// in oracles.cc stitches them together.
/// @{
const Oracle* SegmentOracle();
const Oracle* RelatePairOracle();
const Oracle* RelateCityOracle();
const Oracle* Rcc8JepdOracle();
const Oracle* Rcc8ComposeOracle();
const Oracle* RelateInferredOracle();
const Oracle* RtreeOracle();
const Oracle* MiningOracle();
const Oracle* StoreOracle();
const Oracle* ShardMergeOracle();
const Oracle* ColocOracle();
/// @}

/// Shared failure constructor: "<invariant>: <detail>".
Status Violation(const std::string& invariant, const std::string& detail);

/// The relate differential shared by relate_pair and relate_city: reference
/// engine vs prepared full vs certified fast path (all four prepared
/// forms), transpose symmetry, matrix-level predicate identities, and
/// indexed-vs-linear point location. Geometries the validity checker
/// rejects are vacuously OK (the engine's contract assumes valid input).
Status CheckRelateInvariants(const geom::Geometry& a, const geom::Geometry& b);

}  // namespace internal
}  // namespace fuzz
}  // namespace sfpm

#endif  // SFPM_FUZZ_ORACLES_INTERNAL_H_
