#ifndef SFPM_FUZZ_GENERATORS_H_
#define SFPM_FUZZ_GENERATORS_H_

#include <vector>

#include "fuzz/fuzz_case.h"
#include "geom/geometry.h"
#include "util/random.h"

namespace sfpm {
namespace fuzz {

/// \brief Seed-driven adversarial input generators.
///
/// Two coordinate tiers, chosen per case:
///  * the *grid* tier snaps every coordinate to a small integer lattice, so
///    shared vertices, shared edges, touching rings and exact containment
///    happen constantly and every geometric predicate is exact — failures
///    here are unambiguous bugs, never tolerance judgment calls;
///  * the *jitter* tier perturbs grid coordinates by 1e-15..1e-7 of the
///    span, manufacturing the near-collinear, almost-touching
///    configurations where tolerance-based predicates disagree with exact
///    arithmetic.
///
/// A third source, the paper-scale city layouts of sfpm::datagen, is
/// sampled by the relate oracles directly (see oracles.cc) so fuzzing also
/// covers realistically dense GIS linework.
///
/// All generators are deterministic functions of the Rng state.

/// A lattice point with coordinates in [-span, span].
geom::Point GridPoint(Rng* rng, int span);

/// Convex lattice polygon (hull of random lattice points), never empty,
/// positive area, at most ~10 distinct vertices.
geom::Polygon GridConvexPolygon(Rng* rng, int span);

/// Star-convex polygon with float vertices — the classic random blob.
geom::Polygon BlobPolygon(Rng* rng, double scale);

/// Lattice polyline of 2..6 vertices (consecutive vertices distinct).
geom::LineString GridPath(Rng* rng, int span);

/// A random simple geometry of any of the six types on the lattice.
/// Multi-part members are laid out in disjoint lattice cells so the
/// result satisfies the relate engine's validity assumptions.
geom::Geometry GridGeometry(Rng* rng, int span);

/// Applies the jitter tier in place: each coordinate moves by a uniform
/// offset of magnitude `span * 10^-u`, u drawn from [7, 15]. Relative
/// magnitudes this small keep convex rings simple while putting vertices
/// microscopically off exact lines.
void JitterGeometry(Rng* rng, double span, geom::Geometry* g);

/// \brief A geometry pair with adversarial contact bias: the second
/// operand is derived from the first (lattice translation, reflection,
/// vertex reuse, nesting) often enough that touching, overlap, shared
/// boundary and containment dominate over trivially-disjoint cases.
/// About one case in three gets the jitter tier applied to one or both
/// operands.
std::vector<geom::Geometry> RandomGeometryPair(Rng* rng);

/// \brief Three valid areal geometries with heavy nesting/touching bias —
/// input for the RCC8 composition-table oracle.
std::vector<geom::Geometry> ArealTriple(Rng* rng);

/// \brief A reference region (element 0) plus 3..6 candidate regions with
/// heavy containment-chain bias (nested copies of nested copies, exact
/// copies, lattice translations) — input for the relate_inferred oracle,
/// which runs the extraction inference tier over the cluster and demands
/// byte-identical output against the engine-only path.
std::vector<geom::Geometry> ArealCluster(Rng* rng);

/// \brief Four points encoding two adversarial segments (a1 a2 b1 b2):
/// proper crossings near endpoints, near-parallel and near-collinear
/// pairs, exact collinear overlaps, shared vertices, degenerate
/// (zero-length) segments, and near-vertical/near-horizontal segments with
/// probes microscopically off the line.
std::vector<geom::Point> AdversarialSegmentQuad(Rng* rng);

/// \brief A set of small lattice rectangles (as polygons) for the R-tree
/// oracle; their envelopes are the indexed entries and the query workload
/// is derived from the payload itself during checking.
std::vector<geom::Geometry> EnvelopeSet(Rng* rng);

/// \brief Fills the transaction-db payload of `c` with an adversarial
/// mining instance: small random db (possibly wide, possibly tiny), with
/// duplicate transactions, an all-items transaction and empty transactions
/// injected at random; items carry grouped keys so the same-key filter has
/// structure, and a random dependency blocklist plus min_support land in
/// `c->params` ("block" as "a:b,c:d", "min_support").
void RandomMiningCase(Rng* rng, FuzzCase* c);

}  // namespace fuzz
}  // namespace sfpm

#endif  // SFPM_FUZZ_GENERATORS_H_
