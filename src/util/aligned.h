#ifndef SFPM_UTIL_ALIGNED_H_
#define SFPM_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace sfpm {

/// \brief Minimal over-aligning allocator for contiguous containers.
///
/// The bitmap support-counting kernels stream whole cache lines of column
/// words; 64-byte alignment keeps every 8-word block inside one line and
/// lets the compiler use aligned vector loads.
template <typename T, size_t Alignment = 64>
class AlignedAllocator {
 public:
  using value_type = T;
  static_assert(Alignment >= alignof(T),
                "Alignment must not weaken the type's natural alignment");

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return false;
  }
};

/// A std::vector whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, 64>>;

}  // namespace sfpm

#endif  // SFPM_UTIL_ALIGNED_H_
