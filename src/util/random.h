#ifndef SFPM_UTIL_RANDOM_H_
#define SFPM_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sfpm {

/// \brief Deterministic, seedable xoshiro256++ pseudo-random generator.
///
/// Every synthetic dataset in the library is produced through this generator
/// so experiments are reproducible bit-for-bit across platforms. Satisfies
/// the C++ UniformRandomBitGenerator concept.
class Rng {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit lanes via SplitMix64 from `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit output.
  uint64_t operator()();

  /// Uniform integer in [0, bound), bound > 0. Uses Lemire rejection-free
  /// multiply-shift with correction to avoid modulo bias.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi], inclusive; requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Bernoulli trial with probability `p` of returning true.
  bool NextBool(double p = 0.5);

  /// Standard normal variate (Marsaglia polar method).
  double NextGaussian();

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextUint64(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in increasing order
  /// (Floyd's algorithm followed by a sort). Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

 private:
  uint64_t state_[4];
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace sfpm

#endif  // SFPM_UTIL_RANDOM_H_
