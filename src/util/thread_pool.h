#ifndef SFPM_UTIL_THREAD_POOL_H_
#define SFPM_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sfpm {

/// Upper bound on a parsed thread count; larger (or malformed/negative)
/// `SFPM_THREADS` values fall back to hardware concurrency instead of
/// attempting to spawn an absurd number of workers.
inline constexpr size_t kMaxThreads = 4096;

/// \brief std::thread::hardware_concurrency(), with the unknowable case
/// (0) mapped to 1. The meaning of an explicit "0 threads" request
/// everywhere a thread count can be spelled: CLI `--threads=0`,
/// `SFPM_THREADS=0`, and `parallelism = 0` (via DefaultParallelism) all
/// resolve here.
size_t HardwareConcurrency();

/// \brief The parallelism the environment asks for: `SFPM_THREADS` when it
/// is set to a valid integer — a positive value (at most kMaxThreads) is
/// taken as-is, `0` explicitly requests HardwareConcurrency() — else
/// HardwareConcurrency(). Malformed values fall back to
/// HardwareConcurrency() too.
size_t DefaultParallelism();

/// \brief Maps an options-level `parallelism` knob to a thread count:
/// 0 means DefaultParallelism(), any other value is taken as-is.
size_t ResolveParallelism(size_t requested);

/// \brief Fixed-size thread pool with a blocking ParallelFor — the
/// concurrency primitive behind the predicate-extraction join and
/// Apriori's support counting (see docs/ARCHITECTURE.md, "Threading
/// model").
///
/// Deliberately free of work stealing and external dependencies: a call
/// hands over an index range, the range is cut into at most num_threads()
/// contiguous chunks, and the call blocks until every chunk ran. The
/// calling thread executes chunk 0 itself, so a pool of size 1 spawns no
/// threads at all and runs everything inline — `parallelism = 1` *is* the
/// serial code path, not an emulation of it.
///
/// One pool may serve many ParallelFor calls, but the calls must not
/// overlap: the pool is built for the fork-join pattern (create per
/// extraction/mining run, or reuse from a single orchestrating thread),
/// not for concurrent submitters.
///
/// `Submit` is the second usage mode, added for the query server: fire-
/// and-forget tasks executed by the pool's workers (the serve accept
/// loop submits one task per admitted connection and never joins). The
/// two modes must not be mixed on one pool — a Submit-mode pool runs no
/// ParallelFor and vice versa — because ParallelFor assumes every queued
/// task is one of its own chunks.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller supplies the remaining
  /// thread inside ParallelFor). `num_threads` is clamped to at least 1.
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return num_threads_; }

  /// Runs body(chunk_begin, chunk_end, chunk) over at most num_threads()
  /// contiguous chunks that partition [begin, end); chunk indices are
  /// dense from 0 and the chunking depends only on (begin, end,
  /// num_threads()), never on scheduling. Blocks until every chunk
  /// completed. When bodies throw, the exception of the lowest-indexed
  /// throwing chunk is rethrown here after the barrier (the others are
  /// dropped). An empty range is a no-op.
  void ParallelForChunks(
      size_t begin, size_t end,
      const std::function<void(size_t, size_t, size_t)>& body);

  /// Element-wise convenience over ParallelForChunks: body(i) for every i
  /// in [begin, end), ascending within each chunk.
  void ParallelFor(size_t begin, size_t end,
                   const std::function<void(size_t)>& body);

  /// Enqueues `task` for execution by one of the pool's workers and
  /// returns immediately. Requires num_threads() >= 2 (a pool of size 1
  /// has no workers — the task would never run); the caller thread never
  /// participates. Tasks submitted after destruction begins may be
  /// dropped; the destructor joins workers only after the queue drains of
  /// tasks already started, so a submitter must stop before destroying
  /// the pool. Exceptions must not escape `task` (std::terminate).
  void Submit(std::function<void()> task);

 private:
  void WorkerLoop();

  const size_t num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace sfpm

#endif  // SFPM_UTIL_THREAD_POOL_H_
