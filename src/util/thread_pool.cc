#include "util/thread_pool.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <exception>
#include <latch>

namespace sfpm {

size_t HardwareConcurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

size_t DefaultParallelism() {
  if (const char* env = std::getenv("SFPM_THREADS")) {
    // Digits only: strtoul alone would accept "-3" and wrap it to a huge
    // unsigned, which would then try to reserve billions of worker slots.
    if (env[0] >= '0' && env[0] <= '9') {
      char* end = nullptr;
      errno = 0;
      const unsigned long value = std::strtoul(env, &end, 10);
      if (errno == 0 && *end == '\0' && value <= kMaxThreads) {
        // "0" is a valid, explicit request for the hardware concurrency —
        // not a malformed value.
        return value == 0 ? HardwareConcurrency()
                          : static_cast<size_t>(value);
      }
    }
  }
  return HardwareConcurrency();
}

size_t ResolveParallelism(size_t requested) {
  return requested == 0 ? DefaultParallelism() : requested;
}

ThreadPool::ThreadPool(size_t num_threads)
    : num_threads_(std::max<size_t>(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (size_t i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelForChunks(
    size_t begin, size_t end,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (begin >= end) return;
  const size_t len = end - begin;
  const size_t chunks = std::min(num_threads_, len);
  if (chunks <= 1) {
    body(begin, end, 0);
    return;
  }

  // Each chunk owns one error slot (no lock needed), so the rethrow choice
  // is deterministic regardless of scheduling.
  std::vector<std::exception_ptr> errors(chunks, nullptr);
  std::latch done(static_cast<std::ptrdiff_t>(chunks - 1));

  auto run_chunk = [&](size_t chunk) {
    const size_t chunk_begin = begin + len * chunk / chunks;
    const size_t chunk_end = begin + len * (chunk + 1) / chunks;
    try {
      body(chunk_begin, chunk_end, chunk);
    } catch (...) {
      errors[chunk] = std::current_exception();
    }
  };

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t chunk = 1; chunk < chunks; ++chunk) {
      // Safe to capture locals by reference: this call outlives the tasks
      // (it blocks on the latch below).
      queue_.emplace_back([&done, &run_chunk, chunk] {
        run_chunk(chunk);
        done.count_down();
      });
    }
  }
  cv_.notify_all();

  run_chunk(0);  // The caller is one of the workers.
  done.wait();

  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::ParallelFor(size_t begin, size_t end,
                             const std::function<void(size_t)>& body) {
  ParallelForChunks(begin, end,
                    [&body](size_t chunk_begin, size_t chunk_end, size_t) {
                      for (size_t i = chunk_begin; i < chunk_end; ++i) body(i);
                    });
}

}  // namespace sfpm
