#include "util/strings.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace sfpm {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(input[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(input[end - 1]))) {
    --end;
  }
  return input.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

void AppendRoundTripDouble(double value, std::string* out) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  (void)ec;  // 32 bytes hold every shortest double representation.
  out->append(buf, ptr);
}

std::string FormatRoundTripDouble(double value) {
  std::string out;
  AppendRoundTripDouble(value, &out);
  return out;
}

}  // namespace sfpm
