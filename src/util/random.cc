#include "util/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace sfpm {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(&sm);
}

uint64_t Rng::operator()() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // span == 0 means the full 64-bit range.
  uint64_t r = span == 0 ? (*this)() : NextUint64(span);
  return lo + static_cast<int64_t>(r);
}

double Rng::NextDouble() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

double Rng::NextGaussian() {
  if (has_gaussian_) {
    has_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_gaussian_ = true;
  return u * factor;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm: k iterations, expected O(k) set operations.
  std::unordered_set<size_t> chosen;
  chosen.reserve(k * 2);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(NextUint64(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sfpm
