#ifndef SFPM_UTIL_ARGS_H_
#define SFPM_UTIL_ARGS_H_

#include <map>
#include <string>
#include <vector>

namespace sfpm {

/// \brief Minimal `--flag value` / `--flag=value` command-line parser
/// (the `sfpm` CLI's argument model). Flags may repeat; a flag followed
/// by another flag (or nothing) is boolean-valued ("").
///
/// Numeric tokens are never flags: `--5` (dashes followed by a digit,
/// with or without sign) is a *value*, so `--seed -5` and sweeps like
/// `--offset --5` parse as intended instead of the number being swallowed
/// as the next flag's absence.
class Args {
 public:
  Args(int argc, char** argv);

  bool Has(const std::string& flag) const { return values_.count(flag) > 0; }

  /// First value of the flag, or `fallback` when absent.
  std::string Get(const std::string& flag,
                  const std::string& fallback = "") const {
    const auto it = values_.find(flag);
    return it == values_.end() ? fallback : it->second.front();
  }

  /// Every value of a repeated flag, in command-line order.
  std::vector<std::string> All(const std::string& flag) const {
    const auto it = values_.find(flag);
    return it == values_.end() ? std::vector<std::string>{} : it->second;
  }

  /// Non-flag tokens, in command-line order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Every parsed flag with its values — the raw material of the run
  /// report's `config` object.
  const std::map<std::string, std::vector<std::string>>& values() const {
    return values_;
  }

 private:
  std::map<std::string, std::vector<std::string>> values_;
  std::vector<std::string> positional_;
};

}  // namespace sfpm

#endif  // SFPM_UTIL_ARGS_H_
