#ifndef SFPM_UTIL_VERSION_H_
#define SFPM_UTIL_VERSION_H_

namespace sfpm {

/// \brief Library/CLI version, embedded in snapshot headers (store/format.h)
/// and run reports (obs/report.cc) so every artifact records what produced
/// it. Bump on releases that change any on-disk or on-wire format.
inline constexpr const char* kSfpmVersion = "0.5.0";

}  // namespace sfpm

#endif  // SFPM_UTIL_VERSION_H_
