#include "util/args.h"

#include <cctype>
#include <cstring>

namespace sfpm {

namespace {

/// A token introduces a flag only when "--" is followed by a non-numeric
/// name. "--5" / "---3" / "--2.5" are numeric values (negative sweeps,
/// seeds), not flags named "5".
bool IsFlagToken(const char* token) {
  if (std::strncmp(token, "--", 2) != 0) return false;
  const char* name = token + 2;
  if (*name == '-' || *name == '+') ++name;  // Signed numeric value.
  return !std::isdigit(static_cast<unsigned char>(*name));
}

}  // namespace

Args::Args(int argc, char** argv) {
  for (int i = 0; i < argc; ++i) {
    if (IsFlagToken(argv[i])) {
      const std::string flag = argv[i] + 2;
      const size_t eq = flag.find('=');
      if (eq != std::string::npos) {  // --flag=value
        values_[flag.substr(0, eq)].push_back(flag.substr(eq + 1));
      } else if (i + 1 < argc && !IsFlagToken(argv[i + 1])) {
        values_[flag].push_back(argv[++i]);
      } else {
        values_[flag].push_back("");  // Boolean flag.
      }
    } else {
      positional_.push_back(argv[i]);
    }
  }
}

}  // namespace sfpm
