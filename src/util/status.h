#ifndef SFPM_UTIL_STATUS_H_
#define SFPM_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sfpm {

/// \brief Error category for a failed operation.
///
/// Follows the RocksDB/Arrow idiom: operations that can fail return a
/// `Status` (or a `Result<T>` when they also produce a value) instead of
/// throwing. Exceptions are reserved for programmer errors.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kUnsupported,
  kInternal,
};

/// \brief Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// \brief Success-or-error result of an operation.
///
/// A default-constructed `Status` is OK. Failed statuses carry a code and a
/// message. `Status` is cheap to copy (two words plus the message string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Named constructors, one per error category.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// @}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief A value of type `T`, or the `Status` explaining why there is none.
///
/// Typical use:
/// \code
///   Result<Geometry> g = ReadWkt("POINT (1 2)");
///   if (!g.ok()) return g.status();
///   Use(g.value());
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: failure. Aborts in debug if OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value, or `fallback` when this result holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define SFPM_RETURN_NOT_OK(expr)        \
  do {                                  \
    ::sfpm::Status _st = (expr);        \
    if (!_st.ok()) return _st;          \
  } while (false)

/// Assigns the value of a `Result` expression or propagates its status.
#define SFPM_ASSIGN_OR_RETURN(lhs, rexpr) \
  auto SFPM_CONCAT_(_res, __LINE__) = (rexpr);                          \
  if (!SFPM_CONCAT_(_res, __LINE__).ok())                               \
    return SFPM_CONCAT_(_res, __LINE__).status();                       \
  lhs = std::move(SFPM_CONCAT_(_res, __LINE__)).value()

#define SFPM_CONCAT_IMPL_(a, b) a##b
#define SFPM_CONCAT_(a, b) SFPM_CONCAT_IMPL_(a, b)

}  // namespace sfpm

#endif  // SFPM_UTIL_STATUS_H_
