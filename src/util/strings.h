#ifndef SFPM_UTIL_STRINGS_H_
#define SFPM_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace sfpm {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view input);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Upper-cases ASCII letters.
std::string ToUpper(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Appends the shortest decimal representation of `value` that parses back
/// to the identical bits (std::to_chars). The one double formatter every
/// serializer (WKT, GeoJSON, repro files, the snapshot store's manifests)
/// shares, so text and binary paths agree bit-for-bit and write→read→write
/// is byte-stable.
void AppendRoundTripDouble(double value, std::string* out);

/// AppendRoundTripDouble into a fresh string.
std::string FormatRoundTripDouble(double value);

}  // namespace sfpm

#endif  // SFPM_UTIL_STRINGS_H_
