#ifndef SFPM_UTIL_STOPWATCH_H_
#define SFPM_UTIL_STOPWATCH_H_

#include <chrono>

namespace sfpm {

/// \brief Monotonic wall-clock timer used by the mining statistics and the
/// benchmark harnesses.
class Stopwatch {
 public:
  /// Starts (or restarts) the clock.
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Restart, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in microseconds.
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

  /// Elapsed seconds since construction or the last Restart/Lap, then
  /// restarts the clock — one call replaces the elapsed-read + Restart
  /// pair at phase boundaries, with no gap between the two readings.
  double Lap() {
    const Clock::time_point now = Clock::now();
    const double seconds = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return seconds;
  }

  /// Lap() in milliseconds.
  double LapMillis() { return Lap() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sfpm

#endif  // SFPM_UTIL_STOPWATCH_H_
