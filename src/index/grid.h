#ifndef SFPM_INDEX_GRID_H_
#define SFPM_INDEX_GRID_H_

#include <unordered_map>
#include <vector>

#include "index/spatial_index.h"

namespace sfpm {
namespace index {

/// \brief Uniform hash-grid index.
///
/// Each entry is registered in every cell its envelope overlaps; queries
/// visit the covered cells and deduplicate. Simple and fast when feature
/// sizes are comparable to the cell size; serves as the baseline the R-tree
/// is benchmarked against (`bench_rtree`).
class GridIndex : public SpatialIndex {
 public:
  /// \param cell_size side length of the square cells (> 0).
  explicit GridIndex(double cell_size);

  void Insert(const geom::Envelope& envelope, uint64_t id) override;
  void Query(const geom::Envelope& query,
             std::vector<uint64_t>* out) const override;
  void QueryWithinDistance(const geom::Envelope& query, double distance,
                           std::vector<uint64_t>* out) const override;
  size_t Size() const override { return entries_.size(); }

  /// Number of occupied cells (diagnostics).
  size_t NumCells() const { return cells_.size(); }

 private:
  struct CellKey {
    int64_t x;
    int64_t y;
    bool operator==(const CellKey& o) const { return x == o.x && y == o.y; }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      // 64-bit mix of the two cell ordinates.
      uint64_t h = static_cast<uint64_t>(k.x) * 0x9E3779B97F4A7C15ULL;
      h ^= static_cast<uint64_t>(k.y) + 0x9E3779B97F4A7C15ULL + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  int64_t CellOf(double v) const;
  template <typename Fn>
  void VisitCells(const geom::Envelope& env, Fn fn) const;

  double cell_size_;
  std::vector<std::pair<geom::Envelope, uint64_t>> entries_;
  std::unordered_map<CellKey, std::vector<uint32_t>, CellKeyHash> cells_;
};

}  // namespace index
}  // namespace sfpm

#endif  // SFPM_INDEX_GRID_H_
