#ifndef SFPM_INDEX_SPATIAL_INDEX_H_
#define SFPM_INDEX_SPATIAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace sfpm {
namespace index {

/// \brief Common interface of the R-tree and grid indexes.
///
/// An index stores (envelope, id) entries; `id` is an opaque caller-side
/// handle (typically the position of a feature in its layer). Queries return
/// candidate ids whose envelopes satisfy the filter — callers refine with
/// exact geometry tests (filter-and-refine, the classic spatial join plan).
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Inserts one entry.
  virtual void Insert(const geom::Envelope& envelope, uint64_t id) = 0;

  /// Appends to `out` the ids of entries whose envelope intersects `query`.
  virtual void Query(const geom::Envelope& query,
                     std::vector<uint64_t>* out) const = 0;

  /// Appends ids of entries whose envelope lies within `distance` of
  /// `query` (envelope-to-envelope distance).
  virtual void QueryWithinDistance(const geom::Envelope& query,
                                   double distance,
                                   std::vector<uint64_t>* out) const = 0;

  /// Number of stored entries.
  virtual size_t Size() const = 0;
};

}  // namespace index
}  // namespace sfpm

#endif  // SFPM_INDEX_SPATIAL_INDEX_H_
