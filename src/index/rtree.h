#ifndef SFPM_INDEX_RTREE_H_
#define SFPM_INDEX_RTREE_H_

#include <memory>
#include <vector>

#include "index/spatial_index.h"

namespace sfpm {
namespace index {

/// \brief R-tree over (envelope, id) entries.
///
/// Two construction paths:
///  * `BulkLoad` packs a static entry set with the Sort-Tile-Recursive
///    algorithm (Leutenegger et al.), producing near-100% node utilization;
///  * `Insert` grows the tree dynamically using Guttman's quadratic split.
/// Both paths can be mixed: bulk load first, insert later.
///
/// Queries:
///  * `Query` — envelope intersection;
///  * `QueryWithinDistance` — envelopes within a distance band;
///  * `Nearest` — k nearest entries by envelope distance (branch-and-bound
///    best-first search).
class RTree : public SpatialIndex {
 public:
  /// \param max_entries fan-out M; the minimum fill is M * 2 / 5.
  explicit RTree(size_t max_entries = 16);
  ~RTree() override;

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) noexcept;
  RTree& operator=(RTree&&) noexcept;

  /// Replaces the current content with an STR-packed tree over `entries`.
  void BulkLoad(std::vector<std::pair<geom::Envelope, uint64_t>> entries);

  void Insert(const geom::Envelope& envelope, uint64_t id) override;
  void Query(const geom::Envelope& query,
             std::vector<uint64_t>* out) const override;
  void QueryWithinDistance(const geom::Envelope& query, double distance,
                           std::vector<uint64_t>* out) const override;
  size_t Size() const override { return size_; }

  /// The `k` entries with the smallest envelope distance to `query`,
  /// ordered by increasing distance. Returns fewer when the tree is small.
  std::vector<uint64_t> Nearest(const geom::Point& query, size_t k) const;

  /// Height of the tree (0 for an empty tree, 1 for a single leaf).
  size_t Height() const;

  /// Bounding envelope of everything stored.
  geom::Envelope Bounds() const;

 private:
  struct Node;

  void InsertEntry(const geom::Envelope& envelope, uint64_t id);
  Node* ChooseLeaf(Node* node, const geom::Envelope& envelope,
                   std::vector<Node*>* path);
  void SplitNode(Node* node, std::vector<Node*>* path);

  std::unique_ptr<Node> root_;
  size_t max_entries_;
  size_t min_entries_;
  size_t size_ = 0;
};

}  // namespace index
}  // namespace sfpm

#endif  // SFPM_INDEX_RTREE_H_
