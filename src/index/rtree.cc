#include "index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

#include "obs/metrics.h"

namespace sfpm {
namespace index {

using geom::Envelope;
using geom::Point;

namespace {

/// Query-path instruments, looked up once per process: R-tree queries run
/// inside the extractor's hot loop, so the per-query observability cost is
/// three uncontended sharded adds.
struct QueryMetrics {
  obs::Counter& queries;
  obs::Counter& node_visits;
  obs::Counter& leaf_hits;

  static const QueryMetrics& Get() {
    static QueryMetrics metrics{
        obs::MetricsRegistry::Global().GetCounter("rtree.queries"),
        obs::MetricsRegistry::Global().GetCounter("rtree.query.node_visits"),
        obs::MetricsRegistry::Global().GetCounter("rtree.query.leaf_hits")};
    return metrics;
  }
};

}  // namespace

struct RTree::Node {
  bool leaf = true;
  Envelope envelope;
  // Leaf payload.
  std::vector<std::pair<Envelope, uint64_t>> entries;
  // Internal payload.
  std::vector<std::unique_ptr<Node>> children;

  void RecomputeEnvelope() {
    envelope = Envelope();
    if (leaf) {
      for (const auto& [env, id] : entries) envelope.ExpandToInclude(env);
    } else {
      for (const auto& child : children) {
        envelope.ExpandToInclude(child->envelope);
      }
    }
  }
};

RTree::RTree(size_t max_entries)
    : root_(std::make_unique<Node>()),
      max_entries_(std::max<size_t>(4, max_entries)),
      min_entries_(std::max<size_t>(2, max_entries * 2 / 5)) {}

RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

void RTree::BulkLoad(std::vector<std::pair<Envelope, uint64_t>> entries) {
  size_ = entries.size();
  if (entries.empty()) {
    root_ = std::make_unique<Node>();
    return;
  }

  // Level 0: STR-pack the entries into leaves. Sort by center x, slice into
  // vertical strips of ~sqrt(n/M) leaves each, sort each strip by center y,
  // pack runs of M.
  const size_t cap = max_entries_;
  auto center_x = [](const Envelope& e) { return (e.min_x() + e.max_x()) / 2; };
  auto center_y = [](const Envelope& e) { return (e.min_y() + e.max_y()) / 2; };

  std::sort(entries.begin(), entries.end(),
            [&](const auto& a, const auto& b) {
              return center_x(a.first) < center_x(b.first);
            });

  const size_t leaf_count = (entries.size() + cap - 1) / cap;
  const size_t strip_count =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t strip_size =
      (entries.size() + strip_count - 1) / strip_count;

  std::vector<std::unique_ptr<Node>> level;
  for (size_t s = 0; s < entries.size(); s += strip_size) {
    const size_t strip_end = std::min(s + strip_size, entries.size());
    std::sort(entries.begin() + s, entries.begin() + strip_end,
              [&](const auto& a, const auto& b) {
                return center_y(a.first) < center_y(b.first);
              });
    for (size_t i = s; i < strip_end; i += cap) {
      auto node = std::make_unique<Node>();
      node->leaf = true;
      const size_t end = std::min(i + cap, strip_end);
      node->entries.assign(entries.begin() + i, entries.begin() + end);
      node->RecomputeEnvelope();
      level.push_back(std::move(node));
    }
  }

  // Pack internal levels the same way until one root remains.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(),
              [&](const auto& a, const auto& b) {
                return center_x(a->envelope) < center_x(b->envelope);
              });
    const size_t node_count = (level.size() + cap - 1) / cap;
    const size_t strips = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(node_count))));
    const size_t per_strip = (level.size() + strips - 1) / strips;

    std::vector<std::unique_ptr<Node>> next;
    for (size_t s = 0; s < level.size(); s += per_strip) {
      const size_t strip_end = std::min(s + per_strip, level.size());
      std::sort(level.begin() + s, level.begin() + strip_end,
                [&](const auto& a, const auto& b) {
                  return center_y(a->envelope) < center_y(b->envelope);
                });
      for (size_t i = s; i < strip_end; i += cap) {
        auto node = std::make_unique<Node>();
        node->leaf = false;
        const size_t end = std::min(i + cap, strip_end);
        for (size_t j = i; j < end; ++j) {
          node->children.push_back(std::move(level[j]));
        }
        node->RecomputeEnvelope();
        next.push_back(std::move(node));
      }
    }
    level = std::move(next);
  }
  root_ = std::move(level.front());
}

void RTree::Insert(const Envelope& envelope, uint64_t id) {
  InsertEntry(envelope, id);
  ++size_;
}

RTree::Node* RTree::ChooseLeaf(Node* node, const Envelope& envelope,
                               std::vector<Node*>* path) {
  while (!node->leaf) {
    path->push_back(node);
    // Least enlargement, ties by smallest area (Guttman's ChooseLeaf).
    Node* best = nullptr;
    double best_enlargement = 0.0;
    double best_area = 0.0;
    for (const auto& child : node->children) {
      const double enlargement =
          child->envelope.EnlargementToInclude(envelope);
      const double area = child->envelope.Area();
      if (best == nullptr || enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = child.get();
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = best;
  }
  return node;
}

void RTree::InsertEntry(const Envelope& envelope, uint64_t id) {
  std::vector<Node*> path;
  Node* leaf = ChooseLeaf(root_.get(), envelope, &path);
  leaf->entries.emplace_back(envelope, id);
  leaf->envelope.ExpandToInclude(envelope);
  for (Node* n : path) n->envelope.ExpandToInclude(envelope);

  if (leaf->entries.size() > max_entries_) SplitNode(leaf, &path);
}

namespace {

/// Guttman's quadratic pick-seeds: the pair wasting the most area.
template <typename GetEnv, typename Item>
std::pair<size_t, size_t> PickSeeds(const std::vector<Item>& items,
                                    GetEnv get_env) {
  size_t seed_a = 0, seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      Envelope merged = get_env(items[i]);
      merged.ExpandToInclude(get_env(items[j]));
      const double waste = merged.Area() - get_env(items[i]).Area() -
                           get_env(items[j]).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  return {seed_a, seed_b};
}

/// Distributes items into two groups around the seeds, honouring the
/// minimum fill. Returns group membership flags.
template <typename GetEnv, typename Item>
std::vector<bool> QuadraticDistribute(const std::vector<Item>& items,
                                      GetEnv get_env, size_t min_fill) {
  const auto [sa, sb] = PickSeeds(items, get_env);
  std::vector<bool> in_b(items.size(), false);
  std::vector<bool> assigned(items.size(), false);
  Envelope env_a = get_env(items[sa]);
  Envelope env_b = get_env(items[sb]);
  size_t count_a = 1, count_b = 1;
  assigned[sa] = true;
  assigned[sb] = true;
  in_b[sb] = true;

  size_t remaining = items.size() - 2;
  while (remaining > 0) {
    // Forced assignment when one group must take everything left.
    if (count_a + remaining == min_fill) {
      for (size_t i = 0; i < items.size(); ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          env_a.ExpandToInclude(get_env(items[i]));
          ++count_a;
        }
      }
      remaining = 0;
      break;
    }
    if (count_b + remaining == min_fill) {
      for (size_t i = 0; i < items.size(); ++i) {
        if (!assigned[i]) {
          assigned[i] = true;
          in_b[i] = true;
          env_b.ExpandToInclude(get_env(items[i]));
          ++count_b;
        }
      }
      remaining = 0;
      break;
    }

    // PickNext: the item with the greatest preference between groups.
    size_t best = items.size();
    double best_diff = -1.0;
    for (size_t i = 0; i < items.size(); ++i) {
      if (assigned[i]) continue;
      const double da = env_a.EnlargementToInclude(get_env(items[i]));
      const double db = env_b.EnlargementToInclude(get_env(items[i]));
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
      }
    }
    const double da = env_a.EnlargementToInclude(get_env(items[best]));
    const double db = env_b.EnlargementToInclude(get_env(items[best]));
    assigned[best] = true;
    if (db < da || (db == da && count_b < count_a)) {
      in_b[best] = true;
      env_b.ExpandToInclude(get_env(items[best]));
      ++count_b;
    } else {
      env_a.ExpandToInclude(get_env(items[best]));
      ++count_a;
    }
    --remaining;
  }
  return in_b;
}

}  // namespace

void RTree::SplitNode(Node* node, std::vector<Node*>* path) {
  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  if (node->leaf) {
    auto get_env = [](const std::pair<Envelope, uint64_t>& e) -> const Envelope& {
      return e.first;
    };
    const std::vector<bool> in_b =
        QuadraticDistribute(node->entries, get_env, min_entries_);
    std::vector<std::pair<Envelope, uint64_t>> keep;
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (in_b[i]) {
        sibling->entries.push_back(node->entries[i]);
      } else {
        keep.push_back(node->entries[i]);
      }
    }
    node->entries = std::move(keep);
  } else {
    auto get_env = [](const std::unique_ptr<Node>& n) -> const Envelope& {
      return n->envelope;
    };
    const std::vector<bool> in_b =
        QuadraticDistribute(node->children, get_env, min_entries_);
    std::vector<std::unique_ptr<Node>> keep;
    for (size_t i = 0; i < node->children.size(); ++i) {
      if (in_b[i]) {
        sibling->children.push_back(std::move(node->children[i]));
      } else {
        keep.push_back(std::move(node->children[i]));
      }
    }
    node->children = std::move(keep);
  }
  node->RecomputeEnvelope();
  sibling->RecomputeEnvelope();

  if (path->empty()) {
    // Splitting the root: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    auto old_root = std::move(root_);
    new_root->children.push_back(std::move(old_root));
    new_root->children.push_back(std::move(sibling));
    new_root->RecomputeEnvelope();
    root_ = std::move(new_root);
    return;
  }

  Node* parent = path->back();
  path->pop_back();
  parent->children.push_back(std::move(sibling));
  parent->RecomputeEnvelope();
  if (parent->children.size() > max_entries_) SplitNode(parent, path);
}

void RTree::Query(const Envelope& query, std::vector<uint64_t>* out) const {
  const QueryMetrics& metrics = QueryMetrics::Get();
  metrics.queries.Add(1);
  if (root_->leaf && root_->entries.empty()) return;
  uint64_t visits = 0;
  const size_t out_before = out->size();
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++visits;
    if (!node->envelope.Intersects(query)) continue;
    if (node->leaf) {
      for (const auto& [env, id] : node->entries) {
        if (env.Intersects(query)) out->push_back(id);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  metrics.node_visits.Add(visits);
  metrics.leaf_hits.Add(out->size() - out_before);
}

void RTree::QueryWithinDistance(const Envelope& query, double distance,
                                std::vector<uint64_t>* out) const {
  const QueryMetrics& metrics = QueryMetrics::Get();
  metrics.queries.Add(1);
  if (root_->leaf && root_->entries.empty()) return;
  uint64_t visits = 0;
  const size_t out_before = out->size();
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++visits;
    if (node->envelope.Distance(query) > distance) continue;
    if (node->leaf) {
      for (const auto& [env, id] : node->entries) {
        if (env.Distance(query) <= distance) out->push_back(id);
      }
    } else {
      for (const auto& child : node->children) stack.push_back(child.get());
    }
  }
  metrics.node_visits.Add(visits);
  metrics.leaf_hits.Add(out->size() - out_before);
}

std::vector<uint64_t> RTree::Nearest(const Point& query, size_t k) const {
  std::vector<uint64_t> result;
  if (k == 0 || (root_->leaf && root_->entries.empty())) return result;

  const Envelope qenv(query);
  struct QueueItem {
    double dist;
    const Node* node;   // Non-null for subtree items.
    uint64_t id;        // Valid when node == nullptr.
    bool operator>(const QueueItem& o) const { return dist > o.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({root_->envelope.Distance(qenv), root_.get(), 0});

  while (!pq.empty() && result.size() < k) {
    const QueueItem item = pq.top();
    pq.pop();
    if (item.node == nullptr) {
      result.push_back(item.id);
      continue;
    }
    if (item.node->leaf) {
      for (const auto& [env, id] : item.node->entries) {
        pq.push({env.Distance(qenv), nullptr, id});
      }
    } else {
      for (const auto& child : item.node->children) {
        pq.push({child->envelope.Distance(qenv), child.get(), 0});
      }
    }
  }
  return result;
}

size_t RTree::Height() const {
  if (root_->leaf && root_->entries.empty()) return 0;
  size_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++h;
    node = node->children.front().get();
  }
  return h;
}

Envelope RTree::Bounds() const { return root_->envelope; }

}  // namespace index
}  // namespace sfpm
