#include "index/grid.h"

#include <cassert>
#include <cmath>

namespace sfpm {
namespace index {

using geom::Envelope;

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  assert(cell_size > 0.0);
}

int64_t GridIndex::CellOf(double v) const {
  return static_cast<int64_t>(std::floor(v / cell_size_));
}

template <typename Fn>
void GridIndex::VisitCells(const Envelope& env, Fn fn) const {
  if (env.IsNull()) return;
  const int64_t x0 = CellOf(env.min_x());
  const int64_t x1 = CellOf(env.max_x());
  const int64_t y0 = CellOf(env.min_y());
  const int64_t y1 = CellOf(env.max_y());
  for (int64_t cx = x0; cx <= x1; ++cx) {
    for (int64_t cy = y0; cy <= y1; ++cy) {
      fn(CellKey{cx, cy});
    }
  }
}

void GridIndex::Insert(const Envelope& envelope, uint64_t id) {
  const uint32_t slot = static_cast<uint32_t>(entries_.size());
  entries_.emplace_back(envelope, id);
  VisitCells(envelope,
             [this, slot](const CellKey& key) { cells_[key].push_back(slot); });
}

void GridIndex::Query(const Envelope& query,
                      std::vector<uint64_t>* out) const {
  std::vector<bool> seen(entries_.size(), false);
  VisitCells(query, [&](const CellKey& key) {
    const auto it = cells_.find(key);
    if (it == cells_.end()) return;
    for (uint32_t slot : it->second) {
      if (seen[slot]) continue;
      seen[slot] = true;
      if (entries_[slot].first.Intersects(query)) {
        out->push_back(entries_[slot].second);
      }
    }
  });
}

void GridIndex::QueryWithinDistance(const Envelope& query, double distance,
                                    std::vector<uint64_t>* out) const {
  const Envelope expanded = query.Buffered(distance);
  std::vector<bool> seen(entries_.size(), false);
  VisitCells(expanded, [&](const CellKey& key) {
    const auto it = cells_.find(key);
    if (it == cells_.end()) return;
    for (uint32_t slot : it->second) {
      if (seen[slot]) continue;
      seen[slot] = true;
      if (entries_[slot].first.Distance(query) <= distance) {
        out->push_back(entries_[slot].second);
      }
    }
  });
}

}  // namespace index
}  // namespace sfpm
