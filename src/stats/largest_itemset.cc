#include "stats/largest_itemset.h"

#include <algorithm>
#include <map>

#include "stats/gain.h"
#include "util/strings.h"

namespace sfpm {
namespace stats {

std::string GainParameters::ToString() const {
  std::string ts;
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) ts += ",";
    ts += std::to_string(t[i]);
  }
  return StrFormat("m=%d u=%d t=[%s] n=%d", m, u, ts.c_str(), n);
}

GainParameters AnalyzeItemset(const core::Itemset& itemset,
                              const core::TransactionDb& db) {
  GainParameters params;
  params.m = static_cast<int>(itemset.size());

  std::map<std::string, int> group_sizes;
  int ungrouped = 0;
  for (core::ItemId item : itemset.items()) {
    const std::string& key = db.Key(item);
    if (key.empty()) {
      ++ungrouped;
    } else {
      ++group_sizes[key];
    }
  }
  params.n = ungrouped;
  for (const auto& [key, size] : group_sizes) {
    if (size >= 2) {
      params.t.push_back(size);
    } else {
      ++params.n;  // Single-relation types behave like plain attributes.
    }
  }
  std::sort(params.t.rbegin(), params.t.rend());
  params.u = static_cast<int>(params.t.size());
  return params;
}

Result<GainParameters> AnalyzeLargestItemset(const core::AprioriResult& result,
                                             const core::TransactionDb& db) {
  const size_t max_size = result.MaxItemsetSize();
  if (max_size < 2) {
    return Status::NotFound("no frequent itemset of size >= 2");
  }

  bool found = false;
  GainParameters best;
  uint64_t best_gain = 0;
  for (const core::FrequentItemset& fi : result.itemsets()) {
    if (fi.items.size() != max_size) continue;
    GainParameters params = AnalyzeItemset(fi.items, db);
    const Result<uint64_t> gain = MinimalGain(params.t, params.n);
    const uint64_t g = gain.ok() ? gain.value() : 0;
    if (!found || g > best_gain) {
      best = std::move(params);
      best_gain = g;
      found = true;
    }
  }
  return best;
}

}  // namespace stats
}  // namespace sfpm
