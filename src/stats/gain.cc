#include "stats/gain.h"

#include <numeric>

namespace sfpm {
namespace stats {

uint64_t Binomial(int n, int k) {
  if (k < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  uint64_t result = 1;
  for (int i = 1; i <= k; ++i) {
    // Multiply before dividing; the running value is always integral
    // because result holds C(n-k+i-1, i-1) * ... safe up to n <= 62.
    result = result * static_cast<uint64_t>(n - k + i) /
             static_cast<uint64_t>(i);
  }
  return result;
}

uint64_t ItemsetCountLowerBound(int m) {
  if (m < 2) return 0;
  return (uint64_t{1} << m) - 1 - static_cast<uint64_t>(m);
}

Result<uint64_t> MinimalGain(const std::vector<int>& t, int n) {
  if (n < 0) return Status::InvalidArgument("n must be non-negative");
  int m = n;
  for (int tk : t) {
    if (tk < 1) {
      return Status::InvalidArgument("each t_k must be at least 1");
    }
    m += tk;
  }
  if (m > 62) {
    return Status::InvalidArgument("m too large for exact 64-bit evaluation");
  }
  if (m < 2) return uint64_t{0};

  // Generating function of the itemsets that keep at most one relation per
  // feature type: prod_k (1 + t_k x) * (1 + x)^n.
  std::vector<uint64_t> poly = {1};
  auto multiply = [&poly](uint64_t linear_coeff) {
    std::vector<uint64_t> next(poly.size() + 1, 0);
    for (size_t i = 0; i < poly.size(); ++i) {
      next[i] += poly[i];
      next[i + 1] += poly[i] * linear_coeff;
    }
    poly = std::move(next);
  };
  for (int tk : t) multiply(static_cast<uint64_t>(tk));
  for (int i = 0; i < n; ++i) multiply(1);

  uint64_t kept = 0;  // Surviving itemsets of size >= 2.
  for (size_t i = 2; i < poly.size(); ++i) kept += poly[i];
  return ItemsetCountLowerBound(m) - kept;
}

Result<uint64_t> MinimalGainSingleType(int t1, int n) {
  return MinimalGain({t1}, n);
}

std::vector<std::vector<uint64_t>> MinimalGainTable(int max_t1, int max_n) {
  std::vector<std::vector<uint64_t>> table;
  for (int n = 1; n <= max_n; ++n) {
    std::vector<uint64_t> row;
    for (int t1 = 1; t1 <= max_t1; ++t1) {
      row.push_back(MinimalGainSingleType(t1, n).value());
    }
    table.push_back(std::move(row));
  }
  return table;
}

}  // namespace stats
}  // namespace sfpm
