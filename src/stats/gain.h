#ifndef SFPM_STATS_GAIN_H_
#define SFPM_STATS_GAIN_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace sfpm {
namespace stats {

/// Binomial coefficient C(n, k) in exact 64-bit arithmetic
/// (valid for the n <= 62 range the analysis uses).
uint64_t Binomial(int n, int k);

/// \brief The paper's Section 4.1 lower bound on the number of frequent
/// itemsets of size >= 2 implied by a largest frequent itemset of `m`
/// elements: sum_{i=2..m} C(m, i) = 2^m - 1 - m.
uint64_t ItemsetCountLowerBound(int m);

/// \brief Formula 1: the minimal gain (number of frequent itemsets of size
/// >= 2 that Apriori-KC+ eliminates relative to Apriori) implied by a
/// largest frequent itemset containing `t[k]` qualitative relations of
/// feature type k (each t[k] >= 2 to count as a multi-relation type) and
/// `n` other items.
///
/// Evaluated exactly as: (subsets of size >= 2 of the m = sum t + n items)
/// minus (such subsets using at most one relation per feature type) — the
/// complement form of the paper's sum, computed with the generating
/// function prod_k (1 + t_k x) * (1 + x)^n.
///
/// Returns InvalidArgument when any t[k] < 1, n < 0, or m exceeds 62
/// (64-bit overflow guard).
Result<uint64_t> MinimalGain(const std::vector<int>& t, int n);

/// \brief The u = 1 special case tabulated in the paper's Table 3 and
/// plotted in Figure 3.
Result<uint64_t> MinimalGainSingleType(int t1, int n);

/// \brief Regenerates Table 3: rows n = 1..max_n, columns t1 = 1..max_t1.
/// Entry (n, t1) is MinimalGainSingleType(t1, n).
std::vector<std::vector<uint64_t>> MinimalGainTable(int max_t1, int max_n);

}  // namespace stats
}  // namespace sfpm

#endif  // SFPM_STATS_GAIN_H_
