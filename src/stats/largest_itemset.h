#ifndef SFPM_STATS_LARGEST_ITEMSET_H_
#define SFPM_STATS_LARGEST_ITEMSET_H_

#include <string>
#include <vector>

#include "core/apriori.h"
#include "core/transaction_db.h"
#include "util/status.h"

namespace sfpm {
namespace stats {

/// \brief The Formula 1 parameters extracted from one frequent itemset:
/// m elements total, of which u feature types contribute more than one
/// qualitative relation (t[k] relations each) and n items are "other"
/// (attributes, or feature types appearing once).
struct GainParameters {
  int m = 0;
  int u = 0;
  std::vector<int> t;  ///< Sizes of the multi-relation groups, u entries.
  int n = 0;

  std::string ToString() const;
};

/// \brief Derives the Formula 1 parameters of `itemset` by grouping its
/// items by their TransactionDb key (the feature type). Items with an
/// empty key, and keys contributing a single item, count into `n`.
GainParameters AnalyzeItemset(const core::Itemset& itemset,
                              const core::TransactionDb& db);

/// \brief Analyzes the largest frequent itemsets of an (unfiltered) mining
/// run and returns the parameters that predict the greatest minimal gain —
/// the paper's "one of the largest frequent itemsets" choice.
///
/// Returns NotFound when the result contains no itemset of size >= 2.
Result<GainParameters> AnalyzeLargestItemset(const core::AprioriResult& result,
                                             const core::TransactionDb& db);

}  // namespace stats
}  // namespace sfpm

#endif  // SFPM_STATS_LARGEST_ITEMSET_H_
