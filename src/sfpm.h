#ifndef SFPM_SFPM_H_
#define SFPM_SFPM_H_

/// \file sfpm.h
/// \brief Umbrella header of the sfpm library: spatial frequent pattern
/// mining with qualitative spatial reasoning (Bogorny, Moelans & Alvares,
/// ICDE 2007 — Apriori-KC+).
///
/// Typical pipeline:
///   1. Load or generate feature layers            (feature::Layer)
///   2. Extract qualitative predicates              (feature::PredicateExtractor)
///   3. Declare background knowledge, if any        (feature::DependencyRegistry)
///   4. Mine                                        (core::MineAprioriKCPlus)
///   5. Derive rules                                (core::GenerateRules)

#include "core/apriori.h"         // IWYU pragma: export
#include "core/candidate_filter.h"// IWYU pragma: export
#include "core/closed.h"          // IWYU pragma: export
#include "core/fpgrowth.h"        // IWYU pragma: export
#include "core/itemset.h"         // IWYU pragma: export
#include "core/measures.h"        // IWYU pragma: export
#include "core/rules.h"           // IWYU pragma: export
#include "core/transaction_db.h"  // IWYU pragma: export
#include "coloc/colocation.h"     // IWYU pragma: export
#include "datagen/city.h"         // IWYU pragma: export
#include "datagen/synthetic_predicates.h"  // IWYU pragma: export
#include "datagen/transactional.h"         // IWYU pragma: export
#include "feature/dependency.h"   // IWYU pragma: export
#include "feature/extractor.h"    // IWYU pragma: export
#include "feature/pipeline.h"     // IWYU pragma: export
#include "feature/feature.h"      // IWYU pragma: export
#include "feature/predicate.h"    // IWYU pragma: export
#include "feature/predicate_table.h"  // IWYU pragma: export
#include "feature/taxonomy.h"     // IWYU pragma: export
#include "geom/algorithms.h"      // IWYU pragma: export
#include "geom/geometry.h"        // IWYU pragma: export
#include "geom/point.h"           // IWYU pragma: export
#include "geom/transform.h"       // IWYU pragma: export
#include "geom/validity.h"        // IWYU pragma: export
#include "geom/wkt.h"             // IWYU pragma: export
#include "index/grid.h"           // IWYU pragma: export
#include "io/csv.h"               // IWYU pragma: export
#include "io/geojson.h"           // IWYU pragma: export
#include "io/layer_io.h"          // IWYU pragma: export
#include "io/table_io.h"          // IWYU pragma: export
#include "index/rtree.h"          // IWYU pragma: export
#include "qsr/direction.h"        // IWYU pragma: export
#include "qsr/distance.h"         // IWYU pragma: export
#include "qsr/rcc8.h"             // IWYU pragma: export
#include "qsr/topological.h"      // IWYU pragma: export
#include "relate/prepared.h"      // IWYU pragma: export
#include "relate/relate.h"        // IWYU pragma: export
#include "stats/gain.h"           // IWYU pragma: export
#include "stats/largest_itemset.h"// IWYU pragma: export
#include "util/status.h"          // IWYU pragma: export
#include "util/thread_pool.h"     // IWYU pragma: export

#endif  // SFPM_SFPM_H_
