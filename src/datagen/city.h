#ifndef SFPM_DATAGEN_CITY_H_
#define SFPM_DATAGEN_CITY_H_

#include <cstdint>
#include <memory>

#include "feature/feature.h"

namespace sfpm {
namespace datagen {

/// \brief Parameters of the synthetic city generator — the library's
/// stand-in for the Porto Alegre GIS data used in the paper.
struct CityConfig {
  /// Districts tile a jittered grid; cols * rows districts total.
  /// 11 x 10 = 110 approximates the paper's 109 districts.
  int grid_cols = 11;
  int grid_rows = 10;
  double cell_size = 1000.0;  ///< Metres.
  double jitter = 0.20;       ///< Vertex jitter as a fraction of cell_size.

  size_t num_slums = 70;      ///< Irregular polygons, spatially clustered.
  size_t num_slum_clusters = 6;
  /// Slum blob radius range as a fraction of cell_size. The default is
  /// generous (blobs up to near district size); the Porto Alegre favelas
  /// of the paper's study are small relative to their districts, so
  /// benchmarks aiming for that regime set a tighter range.
  double slum_radius_min = 0.15;
  double slum_radius_max = 0.45;
  /// Extra nested slums as a fraction of num_slums: each is generated
  /// strictly inside a randomly chosen base slum (NTPP by construction),
  /// modelling the favela-inside-favela configurations that give the
  /// extraction inference tier containment chains to compose through.
  /// The default 0.0 consumes no random draws, so existing seeds keep
  /// generating bit-identical cities.
  double slum_nested_fraction = 0.0;
  size_t num_schools = 160;   ///< Points.
  size_t num_police = 24;     ///< Points.
  size_t num_streets = 120;   ///< Random-walk polylines.
  size_t illumination_per_street = 3;  ///< Points adjacent to streets.
  size_t num_rivers = 2;      ///< Long polylines crossing the city.

  /// Collinear vertices per polygon edge / street step. 1 keeps the coarse
  /// generated shapes; higher values subdivide every edge to emulate the
  /// vertex density of digitized GIS boundaries (the paper's district
  /// layer), which is what makes relate cost scale realistically. The
  /// subdivision is pure interpolation — no extra random draws — so every
  /// layer keeps its shape and seed-determinism at any setting.
  int boundary_detail = 1;

  uint64_t seed = 2007;
};

/// \brief A generated city: one layer per feature type. District features
/// carry "name", "murderRate" and "theftRate" attributes; the crime rates
/// are derived from slum proximity (plus noise), so the mining pipeline
/// has real associations to find.
struct City {
  feature::Layer districts{"district"};
  feature::Layer slums{"slum"};
  feature::Layer schools{"school"};
  feature::Layer police{"policeCenter"};
  feature::Layer streets{"street"};
  feature::Layer illumination{"illuminationPoint"};
  feature::Layer rivers{"river"};
};

/// Generates a deterministic synthetic city from `config`.
std::unique_ptr<City> GenerateCity(const CityConfig& config);

/// `base` grown `scale`-fold per axis: grid dimensions scale linearly,
/// feature counts quadratically (the city keeps its density), so
/// scale-k holds ~k^2 times the features of `base`. scale <= 1 returns
/// `base` unchanged. This is the `sfpm run --scale` knob and the scale
/// ladder of the benches and the sharding docs (docs/SHARDING.md).
CityConfig ScaledCityConfig(const CityConfig& base, int scale);

}  // namespace datagen
}  // namespace sfpm

#endif  // SFPM_DATAGEN_CITY_H_
