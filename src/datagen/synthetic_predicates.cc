#include "datagen/synthetic_predicates.h"

#include <algorithm>

#include "util/random.h"

namespace sfpm {
namespace datagen {

feature::PredicateTable GenerateSyntheticPredicates(
    const SyntheticPredicateConfig& config) {
  Rng rng(config.seed);
  feature::PredicateTable table;

  const double clamp_lo = 0.02;
  const double clamp_hi = 0.98;

  for (size_t row_idx = 0; row_idx < config.num_transactions; ++row_idx) {
    const size_t row = table.AddRow("tx" + std::to_string(row_idx));
    const double richness = rng.NextDouble();
    const double p_base = std::clamp(
        config.base_probability + config.correlation * (richness - 0.5),
        clamp_lo, clamp_hi);

    for (const PredicateGroupSpec& group : config.groups) {
      bool group_seen = false;
      for (const std::string& relation : group.relations) {
        double p = p_base;
        if (group_seen) {
          p = std::clamp(p + config.same_type_boost, clamp_lo, clamp_hi);
        }
        if (rng.NextBool(p)) {
          const Status st =
              table.SetSpatial(row, relation, group.feature_type);
          (void)st;
          group_seen = true;
        }
      }
    }

    for (const auto& [name, values] : config.attributes) {
      if (values.empty()) continue;
      // Correlate the attribute with richness so attribute/spatial itemsets
      // become frequent (murderRate=high in feature-rich districts).
      size_t pick;
      if (rng.NextBool(0.75)) {
        pick = std::min(values.size() - 1,
                        static_cast<size_t>(richness *
                                            static_cast<double>(values.size())));
      } else {
        pick = static_cast<size_t>(rng.NextUint64(values.size()));
      }
      const Status st = table.SetAttribute(row, name, values[pick]);
      (void)st;
    }
  }
  return table;
}

feature::PredicateTable GenerateProfiledPredicates(
    const ProfiledPredicateConfig& config) {
  Rng rng(config.seed);
  feature::PredicateTable table;

  // Pin the schema so item ids are stable regardless of which rows end up
  // exhibiting which predicates.
  for (const PredicateGroupSpec& group : config.groups) {
    for (const std::string& relation : group.relations) {
      table.Declare(feature::Predicate::Spatial(relation, group.feature_type));
    }
  }
  for (const auto& [name, values] : config.attributes) {
    for (const std::string& value : values) {
      table.Declare(feature::Predicate::Attribute(name, value));
    }
  }

  // Cumulative profile weights for sampling.
  double total_weight = 0.0;
  for (const PredicateProfile& p : config.profiles) total_weight += p.weight;

  for (size_t row_idx = 0; row_idx < config.num_transactions; ++row_idx) {
    const size_t row = table.AddRow("tx" + std::to_string(row_idx));

    const PredicateProfile* profile = nullptr;
    if (!config.profiles.empty() && total_weight > 0.0) {
      double pick = rng.NextDouble() * total_weight;
      for (const PredicateProfile& p : config.profiles) {
        pick -= p.weight;
        if (pick <= 0.0) {
          profile = &p;
          break;
        }
      }
      if (profile == nullptr) profile = &config.profiles.back();
    }

    for (const PredicateGroupSpec& group : config.groups) {
      for (const std::string& relation : group.relations) {
        const std::string label = relation + "_" + group.feature_type;
        double p = config.noise_probability;
        if (profile != nullptr) {
          const auto it = profile->spatial_probs.find(label);
          if (it != profile->spatial_probs.end()) p = it->second;
        }
        if (rng.NextBool(p)) {
          const Status st =
              table.SetSpatial(row, relation, group.feature_type);
          (void)st;
        }
      }
    }

    for (const auto& [name, values] : config.attributes) {
      if (values.empty()) continue;
      const std::map<std::string, double>* weights = nullptr;
      if (profile != nullptr) {
        const auto it = profile->attribute_weights.find(name);
        if (it != profile->attribute_weights.end()) weights = &it->second;
      }
      double sum = 0.0;
      for (const std::string& value : values) {
        sum += weights == nullptr ? 1.0
                                  : (weights->count(value) ? weights->at(value)
                                                           : 0.0);
      }
      std::string chosen = values.back();
      if (sum > 0.0) {
        double pick = rng.NextDouble() * sum;
        for (const std::string& value : values) {
          pick -= weights == nullptr
                      ? 1.0
                      : (weights->count(value) ? weights->at(value) : 0.0);
          if (pick <= 0.0) {
            chosen = value;
            break;
          }
        }
      }
      const Status st = table.SetAttribute(row, name, chosen);
      (void)st;
    }
  }
  return table;
}

PaperDataset1 MakePaperDataset1(size_t num_transactions, uint64_t seed) {
  // 6 feature types, 13 spatial predicates; same-feature-type pairs:
  // C(3,2) slum + C(2,2) street + C(2,2) school + C(3,2) policeCenter +
  // C(2,2) illuminationPoint + C(1,2) river = 3+1+1+3+1+0 = 9.
  ProfiledPredicateConfig config;
  config.num_transactions = num_transactions;
  config.seed = seed;
  config.groups = {
      {"slum", {"contains", "touches", "overlaps"}},
      {"street", {"contains", "crosses"}},
      {"school", {"contains", "touches"}},
      {"policeCenter", {"veryClose", "close", "far"}},
      {"illuminationPoint", {"contains", "close"}},
      {"river", {"crosses"}},
  };
  config.attributes = {{"murderRate", {"low", "high"}}};
  config.noise_probability = 0.05;

  // Feature-rich districts: the 6-predicate core (2 slum + 2 school +
  // 1 street + 1 illumination) plus murderRate=high co-occur strongly,
  // pinning the Figure 4 reduction shape: the core lattice contains one
  // slum pair, one school pair, and one street/illumination dependency
  // pair, giving KC ~27% and KC+ ~62% at every tested minimum support.
  PredicateProfile rich;
  rich.weight = 0.35;
  rich.spatial_probs = {
      {"contains_slum", 0.92},  {"touches_slum", 0.92},
      {"contains_school", 0.92}, {"touches_school", 0.92},
      {"contains_street", 0.92}, {"contains_illuminationPoint", 0.92},
      // Medium tier: frequent at 10% but not 15% minsup in combination
      // with core predicates, so the Figure 4 series decreases across the
      // published 5/10/15% sweep.
      {"overlaps_slum", 0.40},   {"far_policeCenter", 0.40},
      // Low tier: joins the lattice only at 5% minsup.
      {"crosses_street", 0.25},
      {"veryClose_policeCenter", 0.25}, {"close_policeCenter", 0.25},
      {"close_illuminationPoint", 0.25},
      {"crosses_river", 0.25},
  };
  rich.attribute_weights = {{"murderRate", {{"high", 0.9}, {"low", 0.1}}}};

  PredicateProfile sparse;
  sparse.weight = 0.65;
  sparse.spatial_probs = {
      {"contains_slum", 0.10},  {"touches_slum", 0.10},
      {"contains_school", 0.10}, {"touches_school", 0.10},
      {"contains_street", 0.10}, {"contains_illuminationPoint", 0.10},
      {"overlaps_slum", 0.08},   {"crosses_street", 0.08},
      {"veryClose_policeCenter", 0.08}, {"close_policeCenter", 0.08},
      {"far_policeCenter", 0.08}, {"close_illuminationPoint", 0.08},
      {"crosses_river", 0.08},
  };
  sparse.attribute_weights = {{"murderRate", {{"high", 0.3}, {"low", 0.7}}}};

  config.profiles = {rich, sparse};

  PaperDataset1 out;
  out.table = GenerateProfiledPredicates(config);
  // Background knowledge phi: streets carry illumination points. With 2
  // street and 2 illumination predicates this blocks exactly the 4
  // dependency pairs the paper reports.
  out.dependencies.Add("street", "illuminationPoint");
  return out;
}

feature::PredicateTable MakePaperDataset2(size_t num_transactions,
                                          uint64_t seed) {
  // 10 spatial predicates over 6 types; same-feature-type pairs:
  // C(3,2) slum + C(2,2) school + C(2,2) policeCenter = 3+1+1 = 5.
  // No dependencies, no attributes.
  ProfiledPredicateConfig config;
  config.num_transactions = num_transactions;
  config.seed = seed;
  config.groups = {
      {"slum", {"contains", "touches", "overlaps"}},
      {"school", {"contains", "touches"}},
      {"policeCenter", {"veryClose", "far"}},
      {"street", {"crosses"}},
      {"river", {"crosses"}},
      {"park", {"contains"}},
  };
  config.noise_probability = 0.04;

  // The rich profile pins the paper's Formula 1 checks: the 7-predicate
  // common core (2 slum + 2 school + 2 police + street) stays frequent up
  // to ~20% support (m=7, u=3, t=(2,2,2), n=1 at 17%), and adding the
  // medium-probability river predicate yields the m=8, n=2 largest itemset
  // at 5% support.
  PredicateProfile rich;
  rich.weight = 0.45;
  rich.spatial_probs = {
      {"contains_slum", 0.93},  {"touches_slum", 0.93},
      {"contains_school", 0.93}, {"touches_school", 0.93},
      {"veryClose_policeCenter", 0.93}, {"far_policeCenter", 0.93},
      {"crosses_street", 0.93},
      {"crosses_river", 0.35},
      {"overlaps_slum", 0.12}, {"contains_park", 0.12},
  };

  PredicateProfile sparse;
  sparse.weight = 0.55;
  for (const auto& [label, p] : rich.spatial_probs) {
    (void)p;
    sparse.spatial_probs[label] = 0.08;
  }

  config.profiles = {rich, sparse};
  return GenerateProfiledPredicates(config);
}

}  // namespace datagen
}  // namespace sfpm
