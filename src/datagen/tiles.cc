#include "datagen/tiles.h"

#include <algorithm>
#include <cmath>

#include "relate/prepared.h"

namespace sfpm {
namespace datagen {

TileGrid TileGridFor(int shards) {
  TileGrid grid;
  if (shards <= 1) return grid;
  // Largest divisor r <= sqrt(N) gives the squarest cols x rows split.
  const int root = static_cast<int>(std::sqrt(static_cast<double>(shards)));
  for (int r = root; r >= 1; --r) {
    if (shards % r == 0) {
      grid.rows = r;
      grid.cols = shards / r;
      break;
    }
  }
  return grid;
}

std::vector<Tile> PartitionReference(const feature::Layer& reference,
                                     int shards) {
  const TileGrid grid = TileGridFor(shards);
  const int cells = grid.cols * grid.rows;
  const geom::Envelope bounds = reference.Bounds();

  // Bin each reference by envelope center. A degenerate axis (all
  // centers collinear) maps everything to bin 0 on that axis.
  const auto bin = [](double v, double lo, double extent, int n) {
    if (extent <= 0.0 || n <= 1) return 0;
    const int b = static_cast<int>((v - lo) / extent * static_cast<double>(n));
    return std::clamp(b, 0, n - 1);
  };
  std::vector<Tile> tiles(static_cast<size_t>(cells));
  for (int slot = 0; slot < cells; ++slot) {
    tiles[static_cast<size_t>(slot)].slot = slot;
  }
  for (const feature::Feature& f : reference.features()) {
    const geom::Envelope env = f.geometry().GetEnvelope();
    const geom::Point center = env.Center();
    const int col = bin(center.x, bounds.min_x(), bounds.Width(), grid.cols);
    const int row = bin(center.y, bounds.min_y(), bounds.Height(), grid.rows);
    Tile& tile = tiles[static_cast<size_t>(row * grid.cols + col)];
    tile.refs.push_back(f.id());
    tile.window.ExpandToInclude(env);
  }

  std::vector<Tile> out;
  out.reserve(tiles.size());
  for (Tile& tile : tiles) {
    if (tile.refs.empty()) continue;
    // The envelope join is exact on the unbuffered union window already;
    // the band slack covers the relate/QSR tier's coordinate tolerance so
    // a halo feature admitted by a slack-widened probe can never be
    // missing from the tile. Over-inclusion is harmless: each row's
    // R-tree query re-filters candidates against its own envelope.
    tile.window =
        tile.window.Buffered(relate::CollinearityBandSlack(tile.window));
    out.push_back(std::move(tile));
  }
  return out;
}

}  // namespace datagen
}  // namespace sfpm
