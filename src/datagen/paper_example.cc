#include "datagen/paper_example.h"

#include <vector>

namespace sfpm {
namespace datagen {

feature::PredicateTable MakePaperTable1() {
  feature::PredicateTable table;

  struct Row {
    const char* district;
    const char* murder;
    const char* theft;
    std::vector<std::pair<const char*, const char*>> spatial;
  };
  const std::vector<Row> rows = {
      {"Teresopolis", "high", "low",
       {{"contains", "slum"}, {"overlaps", "slum"},
        {"contains", "school"}, {"touches", "school"}}},
      {"Vila Nova", "low", "low",
       {{"contains", "slum"}, {"touches", "slum"}, {"touches", "school"}}},
      {"Cavalhada", "low", "high",
       {{"contains", "slum"}, {"touches", "slum"}, {"overlaps", "slum"},
        {"contains", "school"}, {"touches", "school"},
        {"contains", "policeCenter"}}},
      // Cristal's theftRate is "low" here although the published Table 1
      // prints "high": with "high" the published Table 2 is impossible
      // (its size-6 itemset {murderRate=high, theftRate=low, contains_slum,
      // overlaps_slum, contains_school, touches_school} would only reach
      // support 2). With "low", mining reproduces Table 2's 60 itemsets
      // exactly, so we treat the printed value as a typo.
      {"Cristal", "high", "low",
       {{"contains", "slum"}, {"overlaps", "slum"}, {"covers", "slum"},
        {"contains", "school"}, {"touches", "school"},
        {"contains", "policeCenter"}}},
      {"Nonoai", "high", "high",
       {{"contains", "slum"}, {"touches", "slum"}, {"overlaps", "slum"},
        {"covers", "slum"}, {"contains", "school"}, {"touches", "school"}}},
      {"Camaqua", "high", "low",
       {{"contains", "slum"}, {"overlaps", "slum"}, {"contains", "school"},
        {"touches", "school"}}},
  };

  for (const Row& r : rows) {
    const size_t row = table.AddRow(r.district);
    Status st = table.SetAttribute(row, "murderRate", r.murder);
    st = table.SetAttribute(row, "theftRate", r.theft);
    for (const auto& [relation, type] : r.spatial) {
      st = table.SetSpatial(row, relation, type);
    }
    (void)st;
  }
  return table;
}

}  // namespace datagen
}  // namespace sfpm
