#include "datagen/transactional.h"

#include <algorithm>
#include <vector>

#include "util/random.h"

namespace sfpm {
namespace datagen {

core::TransactionDb GenerateTransactional(const TransactionalConfig& config) {
  Rng rng(config.seed);
  core::TransactionDb db;

  for (size_t i = 0; i < config.num_items; ++i) {
    std::string key;
    if (config.key_group_size > 0) {
      key = "type" + std::to_string(i / config.key_group_size);
    }
    db.AddItem("item" + std::to_string(i), key);
  }

  // Maximal potential patterns: geometric-ish sizes around the average.
  std::vector<std::vector<core::ItemId>> patterns;
  for (size_t p = 0; p < config.num_patterns; ++p) {
    const size_t size = std::max<size_t>(
        2, static_cast<size_t>(
               rng.NextInt(1, static_cast<int64_t>(
                                  config.avg_pattern_size * 2 - 1))));
    std::vector<core::ItemId> pattern;
    for (size_t idx :
         rng.SampleWithoutReplacement(config.num_items,
                                      std::min(size, config.num_items))) {
      pattern.push_back(static_cast<core::ItemId>(idx));
    }
    patterns.push_back(std::move(pattern));
  }

  for (size_t t = 0; t < config.num_transactions; ++t) {
    std::vector<core::ItemId> items;
    const size_t target = std::max<size_t>(
        1, static_cast<size_t>(rng.NextInt(
               1, static_cast<int64_t>(config.avg_transaction_size * 2 - 1))));
    while (items.size() < target) {
      const auto& pattern = patterns[rng.NextUint64(patterns.size())];
      for (core::ItemId item : pattern) {
        if (rng.NextBool(config.pattern_keep_probability)) {
          items.push_back(item);
        }
      }
      // Noise item to break up the patterns occasionally.
      if (rng.NextBool(0.1)) {
        items.push_back(
            static_cast<core::ItemId>(rng.NextUint64(config.num_items)));
      }
    }
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    db.AddTransaction(items);
  }
  return db;
}

}  // namespace datagen
}  // namespace sfpm
