#ifndef SFPM_DATAGEN_TRANSACTIONAL_H_
#define SFPM_DATAGEN_TRANSACTIONAL_H_

#include <cstdint>

#include "core/transaction_db.h"

namespace sfpm {
namespace datagen {

/// \brief Quest-style transactional data generator (Agrawal & Srikant) used
/// by the mining scale benchmarks: transactions are unions of fragments of
/// maximal potential patterns plus noise items.
struct TransactionalConfig {
  size_t num_transactions = 10000;
  size_t num_items = 100;
  size_t avg_transaction_size = 10;
  size_t num_patterns = 20;
  size_t avg_pattern_size = 4;
  /// Probability an item of a chosen pattern is kept (corruption model).
  double pattern_keep_probability = 0.85;
  /// Items grouped into "feature types" of this size via the item key, so
  /// the SameKeyFilter has structure to prune (0 = no keys).
  size_t key_group_size = 0;
  uint64_t seed = 1234;
};

/// Generates a database with items "item0".."itemN-1"; when
/// `key_group_size > 0`, item i gets key "type<i / key_group_size>".
core::TransactionDb GenerateTransactional(const TransactionalConfig& config);

}  // namespace datagen
}  // namespace sfpm

#endif  // SFPM_DATAGEN_TRANSACTIONAL_H_
