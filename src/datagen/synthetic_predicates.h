#ifndef SFPM_DATAGEN_SYNTHETIC_PREDICATES_H_
#define SFPM_DATAGEN_SYNTHETIC_PREDICATES_H_

#include <map>
#include <string>
#include <vector>

#include "feature/dependency.h"
#include "feature/predicate_table.h"

namespace sfpm {
namespace datagen {

/// \brief One geographic feature type and the qualitative relations it
/// exhibits in the synthetic dataset. A group with r relations contributes
/// r spatial predicates and C(r, 2) same-feature-type pairs.
struct PredicateGroupSpec {
  std::string feature_type;
  std::vector<std::string> relations;
};

/// \brief Configuration of the predicate-level synthetic generator.
///
/// Transactions are drawn from a "richness" mixture: each row samples a
/// latent richness `r ~ U[0,1]`, and each predicate is present with
/// probability `base_probability + correlation * (r - 0.5)` (clamped).
/// The shared latent variable makes predicates positively correlated, so
/// large frequent itemsets appear at realistic support levels — the same
/// qualitative behaviour as real spatial datasets, where feature-rich
/// districts exhibit many predicates at once. Same-feature-type relations
/// get an extra `same_type_boost` when another relation of their group is
/// already present, mirroring reality (a district covering one slum very
/// often also touches another).
struct SyntheticPredicateConfig {
  size_t num_transactions = 1000;
  std::vector<PredicateGroupSpec> groups;
  /// Non-spatial attributes: each row receives exactly one value per
  /// attribute, drawn uniformly.
  std::vector<std::pair<std::string, std::vector<std::string>>> attributes;
  double base_probability = 0.30;
  double correlation = 0.55;
  double same_type_boost = 0.25;
  uint64_t seed = 42;
};

/// Generates the table; row names are "tx<i>".
feature::PredicateTable GenerateSyntheticPredicates(
    const SyntheticPredicateConfig& config);

/// \brief One latent transaction profile of the profiled generator: rows of
/// this profile include each spatial predicate independently with the
/// probability listed for its label (or `noise_probability` when absent),
/// and pick attribute values by the listed weights (uniform when absent).
struct PredicateProfile {
  double weight = 1.0;  ///< Relative frequency of the profile.
  std::map<std::string, double> spatial_probs;  ///< "contains_slum" -> p.
  /// attribute name -> value -> weight.
  std::map<std::string, std::map<std::string, double>> attribute_weights;
};

/// \brief Mixture-of-profiles generator, used for the paper's experimental
/// datasets: a small number of profiles (e.g. feature-rich vs sparse
/// districts) pins the support of chosen predicate co-occurrences, which
/// is what determines the Figure 4-7 reduction percentages and the largest
/// frequent itemsets checked against Formula 1.
struct ProfiledPredicateConfig {
  size_t num_transactions = 5000;
  uint64_t seed = 42;
  std::vector<PredicateGroupSpec> groups;
  std::vector<std::pair<std::string, std::vector<std::string>>> attributes;
  std::vector<PredicateProfile> profiles;
  double noise_probability = 0.05;
};

feature::PredicateTable GenerateProfiledPredicates(
    const ProfiledPredicateConfig& config);

/// \brief The paper's first experimental dataset (Figures 4 and 5): one
/// non-spatial attribute, 6 geographic feature types yielding 13 spatial
/// predicates, 9 same-feature-type pairs, and a dependency set phi
/// blocking exactly 4 predicate pairs.
struct PaperDataset1 {
  feature::PredicateTable table;
  feature::DependencyRegistry dependencies;
};
PaperDataset1 MakePaperDataset1(size_t num_transactions = 5000,
                                uint64_t seed = 7);

/// \brief The paper's second experimental dataset (Figures 6 and 7): 10
/// spatial predicates over 6 feature types, 5 same-feature-type pairs, no
/// dependencies. The single-relation types provide the n "other" items of
/// the published Formula 1 check (m = 8, u = 3, t1 = t2 = t3 = 2, n = 2 at
/// 5% support).
feature::PredicateTable MakePaperDataset2(size_t num_transactions = 5000,
                                          uint64_t seed = 11);

}  // namespace datagen
}  // namespace sfpm

#endif  // SFPM_DATAGEN_SYNTHETIC_PREDICATES_H_
