#ifndef SFPM_DATAGEN_PAPER_EXAMPLE_H_
#define SFPM_DATAGEN_PAPER_EXAMPLE_H_

#include "feature/predicate_table.h"

namespace sfpm {
namespace datagen {

/// \brief The paper's Table 1: six Porto Alegre districts with their
/// spatial and non-spatial predicates, exactly as published. Mining it at
/// 50% minimum support reproduces Table 2.
feature::PredicateTable MakePaperTable1();

}  // namespace datagen
}  // namespace sfpm

#endif  // SFPM_DATAGEN_PAPER_EXAMPLE_H_
