#ifndef SFPM_DATAGEN_TILES_H_
#define SFPM_DATAGEN_TILES_H_

#include <cstdint>
#include <vector>

#include "feature/feature.h"
#include "geom/point.h"

namespace sfpm {
namespace datagen {

/// \brief Tile partitioner for sharded extraction (docs/SHARDING.md).
///
/// A shard count N is laid out as a cols x rows grid over the reference
/// layer's bounding envelope, and every reference feature is *owned* by
/// exactly one tile — the one whose grid cell holds its envelope center.
/// Ownership is the sharding invariant: a tile computes every
/// reference->candidate pair of the rows it owns, so each cross-border
/// pair is related exactly once and never double-emitted, no matter how
/// many tiles the candidate's geometry overlaps.
///
/// The partition is a pure function of (reference layer, shards): the
/// pipeline driver and every tile-extract stage recompute it and always
/// agree, which is what lets tile stages resume independently under the
/// content-hash manifests.

/// Grid shape for a shard count: cols * rows == shards, as close to
/// square as the factorization allows (cols >= rows; a prime N degrades
/// to an N x 1 strip).
struct TileGrid {
  int cols = 1;
  int rows = 1;
};
TileGrid TileGridFor(int shards);

/// One non-empty tile of the partition.
struct Tile {
  /// Row-major slot in the full cols x rows grid. Slots of empty tiles
  /// are skipped, so `slot` — not the position in the returned vector —
  /// names the tile in snapshot paths and manifests.
  int slot = 0;
  /// Owned reference feature ids, ascending. Non-empty.
  std::vector<uint64_t> refs;
  /// Union envelope of the owned reference features' envelopes, buffered
  /// by the relate tier's collinearity band slack. Every feature whose
  /// envelope intersects this window is a potential row candidate of this
  /// tile (the halo); features outside it can never appear in an owned
  /// row's envelope join.
  geom::Envelope window;
};

/// Partitions `reference` into the non-empty tiles of the `shards`-way
/// grid, in slot order. `shards` <= 1 yields a single tile owning every
/// feature. The union of all `refs` is exactly {0, ..., Size()-1}.
std::vector<Tile> PartitionReference(const feature::Layer& reference,
                                     int shards);

}  // namespace datagen
}  // namespace sfpm

#endif  // SFPM_DATAGEN_TILES_H_
