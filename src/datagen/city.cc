#include "datagen/city.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>
#include <vector>

#include "geom/algorithms.h"
#include "relate/relate.h"
#include "util/random.h"
#include "util/strings.h"

namespace sfpm {
namespace datagen {

using geom::Geometry;
using geom::LinearRing;
using geom::LineString;
using geom::Point;
using geom::Polygon;

namespace {

/// Grid vertices jittered once and shared between neighbouring cells, so
/// districts tile the plane exactly (adjacent districts *touch*, as real
/// administrative boundaries do).
std::vector<std::vector<Point>> JitteredGrid(const CityConfig& config,
                                             Rng* rng) {
  std::vector<std::vector<Point>> grid(
      config.grid_rows + 1, std::vector<Point>(config.grid_cols + 1));
  const double amplitude = config.cell_size * config.jitter;
  for (int r = 0; r <= config.grid_rows; ++r) {
    for (int c = 0; c <= config.grid_cols; ++c) {
      // Border vertices stay on the hull so the city stays rectangular-ish.
      const bool edge_r = (r == 0 || r == config.grid_rows);
      const bool edge_c = (c == 0 || c == config.grid_cols);
      const double dx =
          edge_c ? 0.0 : rng->NextDouble(-amplitude, amplitude);
      const double dy =
          edge_r ? 0.0 : rng->NextDouble(-amplitude, amplitude);
      grid[r][c] =
          Point(c * config.cell_size + dx, r * config.cell_size + dy);
    }
  }
  return grid;
}

/// Subdivides every edge into `detail` collinear pieces — GIS-like vertex
/// density with the exact same shapes. Pure interpolation, no random
/// draws, so detail=1 is the identity and any setting keeps the layer
/// deterministic. `closed` also subdivides the wrap-around edge.
std::vector<Point> Densify(std::vector<Point> pts, int detail, bool closed) {
  if (detail <= 1 || pts.size() < 2) return pts;
  std::vector<Point> out;
  const size_t edges = pts.size() - (closed ? 0 : 1);
  out.reserve(edges * static_cast<size_t>(detail) + 1);
  for (size_t i = 0; i < edges; ++i) {
    const Point& a = pts[i];
    const Point& b = pts[(i + 1) % pts.size()];
    for (int s = 0; s < detail; ++s) {
      const double t = static_cast<double>(s) / detail;
      out.emplace_back(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
    }
  }
  if (!closed) out.push_back(pts.back());
  return out;
}

/// An irregular star-convex blob around `center`.
Polygon Blob(const Point& center, double mean_radius, int vertices, Rng* rng) {
  std::vector<Point> ring;
  ring.reserve(vertices + 1);
  for (int i = 0; i < vertices; ++i) {
    const double angle = 2.0 * M_PI * i / vertices;
    const double radius = mean_radius * rng->NextDouble(0.6, 1.4);
    ring.emplace_back(center.x + radius * std::cos(angle),
                      center.y + radius * std::sin(angle));
  }
  return Polygon(LinearRing(std::move(ring)));
}

LineString RandomWalk(const Point& start, int segments, double step,
                      Rng* rng) {
  std::vector<Point> pts = {start};
  double heading = rng->NextDouble(0.0, 2.0 * M_PI);
  for (int i = 0; i < segments; ++i) {
    heading += rng->NextDouble(-0.6, 0.6);
    const Point& last = pts.back();
    pts.emplace_back(last.x + step * std::cos(heading),
                     last.y + step * std::sin(heading));
  }
  return LineString(std::move(pts));
}

}  // namespace

std::unique_ptr<City> GenerateCity(const CityConfig& config) {
  auto city = std::make_unique<City>();
  Rng rng(config.seed);

  const double width = config.grid_cols * config.cell_size;
  const double height = config.grid_rows * config.cell_size;

  // Districts: one polygon per grid cell over the shared jittered vertices.
  const auto grid = JitteredGrid(config, &rng);
  std::vector<Polygon> district_polys;
  for (int r = 0; r < config.grid_rows; ++r) {
    for (int c = 0; c < config.grid_cols; ++c) {
      district_polys.push_back(Polygon(LinearRing(Densify(
          {grid[r][c], grid[r][c + 1], grid[r + 1][c + 1], grid[r + 1][c]},
          config.boundary_detail, /*closed=*/true))));
    }
  }

  // Slums: clustered blobs. Clusters concentrate poverty in a few zones,
  // which is what ties crime attributes to slum predicates below.
  std::vector<Point> cluster_centers;
  for (size_t i = 0; i < config.num_slum_clusters; ++i) {
    cluster_centers.emplace_back(rng.NextDouble(0.1 * width, 0.9 * width),
                                 rng.NextDouble(0.1 * height, 0.9 * height));
  }
  // Center and smallest center-to-vertex distance of each base slum,
  // recorded for the nesting pass below. Derived from the realized
  // geometry after the fact — not from extra or reordered random draws —
  // so the base layer is bit-identical whether or not nesting is on.
  std::vector<std::pair<Point, double>> slum_shapes;
  slum_shapes.reserve(config.num_slums);
  for (size_t i = 0; i < config.num_slums; ++i) {
    const Point& cluster =
        cluster_centers[rng.NextUint64(cluster_centers.size())];
    const Point center(cluster.x + rng.NextGaussian() * config.cell_size,
                       cluster.y + rng.NextGaussian() * config.cell_size);
    Polygon blob =
        Blob(center,
             rng.NextDouble(config.slum_radius_min, config.slum_radius_max) *
                 config.cell_size,
             static_cast<int>(rng.NextInt(6, 10)), &rng);
    double min_radius = std::numeric_limits<double>::max();
    for (const Point& p : blob.shell().points()) {
      min_radius = std::min(min_radius, std::hypot(p.x - center.x,
                                                   p.y - center.y));
    }
    slum_shapes.emplace_back(center, min_radius);
    if (config.boundary_detail > 1) {
      // The shell is already explicitly closed, so its edge list is that
      // of an open polyline — no wrap-around edge to add.
      blob = Polygon(LinearRing(Densify(blob.shell().points(),
                                        config.boundary_detail,
                                        /*closed=*/false)));
    }
    city->slums.Add(std::move(blob));
  }

  // Nested slums: children strictly inside randomly chosen parents. A
  // star-convex blob with v >= 6 vertices at distance >= r from its
  // center covers the disk of radius r * cos(pi / v) >= 0.86 r; a child
  // blob reaches at most offset + 1.4 * mean <= (0.1 + 1.4 * 0.4) r =
  // 0.66 r from the parent center, so every child is NTPP its parent by
  // construction. Guarded so the 0.0 default draws nothing.
  if (config.slum_nested_fraction > 0.0 && !slum_shapes.empty()) {
    const size_t num_nested = static_cast<size_t>(
        config.slum_nested_fraction * static_cast<double>(config.num_slums));
    for (size_t i = 0; i < num_nested; ++i) {
      const auto& [parent_center, parent_radius] =
          slum_shapes[rng.NextUint64(slum_shapes.size())];
      const double angle = rng.NextDouble(0.0, 2.0 * M_PI);
      const double offset = rng.NextDouble(0.0, 0.1) * parent_radius;
      const double mean = rng.NextDouble(0.25, 0.40) * parent_radius;
      const Point center(parent_center.x + offset * std::cos(angle),
                         parent_center.y + offset * std::sin(angle));
      Polygon blob =
          Blob(center, mean, static_cast<int>(rng.NextInt(6, 10)), &rng);
      if (config.boundary_detail > 1) {
        blob = Polygon(LinearRing(Densify(blob.shell().points(),
                                          config.boundary_detail,
                                          /*closed=*/false)));
      }
      city->slums.Add(std::move(blob));
    }
  }

  // Schools and police centers: uniform points.
  for (size_t i = 0; i < config.num_schools; ++i) {
    city->schools.Add(Point(rng.NextDouble(0.0, width),
                            rng.NextDouble(0.0, height)));
  }
  for (size_t i = 0; i < config.num_police; ++i) {
    city->police.Add(Point(rng.NextDouble(0.0, width),
                           rng.NextDouble(0.0, height)));
  }

  // Streets, with illumination points placed on them (the well-known
  // dependency of the paper's Figure 1).
  for (size_t i = 0; i < config.num_streets; ++i) {
    const Point start(rng.NextDouble(0.0, width),
                      rng.NextDouble(0.0, height));
    LineString street =
        RandomWalk(start, static_cast<int>(rng.NextInt(3, 8)),
                   config.cell_size * 0.6, &rng);
    if (config.boundary_detail > 1) {
      street = LineString(
          Densify(street.points(), config.boundary_detail, /*closed=*/false));
    }
    for (size_t j = 0; j < config.illumination_per_street; ++j) {
      const auto& pts = street.points();
      const size_t seg = rng.NextUint64(pts.size() - 1);
      const double t = rng.NextDouble();
      city->illumination.Add(
          Point(pts[seg].x + t * (pts[seg + 1].x - pts[seg].x),
                pts[seg].y + t * (pts[seg + 1].y - pts[seg].y)));
    }
    city->streets.Add(std::move(street));
  }

  // Rivers: long horizontal-ish walks spanning the city.
  for (size_t i = 0; i < config.num_rivers; ++i) {
    std::vector<Point> pts;
    double y = rng.NextDouble(0.2 * height, 0.8 * height);
    const int steps = config.grid_cols * 2;
    for (int s = 0; s <= steps; ++s) {
      y += rng.NextGaussian() * config.cell_size * 0.2;
      pts.emplace_back(width * s / steps, y);
    }
    city->rivers.Add(LineString(
        Densify(std::move(pts), config.boundary_detail, /*closed=*/false)));
  }

  // District attributes: crime follows slum presence (with noise).
  for (size_t i = 0; i < district_polys.size(); ++i) {
    const Geometry district_geom(district_polys[i]);
    int slum_contact = 0;
    for (const feature::Feature& slum : city->slums.features()) {
      if (district_geom.GetEnvelope().Intersects(
              slum.geometry().GetEnvelope()) &&
          relate::Intersects(district_geom, slum.geometry())) {
        ++slum_contact;
      }
    }
    const bool murder_high = slum_contact >= 2 ? rng.NextBool(0.85)
                                               : rng.NextBool(0.15);
    const bool theft_high = slum_contact >= 1 ? rng.NextBool(0.7)
                                              : rng.NextBool(0.25);
    city->districts.Add(
        district_polys[i],
        {{"name", StrFormat("district%zu", i)},
         {"murderRate", murder_high ? "high" : "low"},
         {"theftRate", theft_high ? "high" : "low"}});
  }

  return city;
}

CityConfig ScaledCityConfig(const CityConfig& base, int scale) {
  if (scale <= 1) return base;
  CityConfig config = base;
  const size_t s = static_cast<size_t>(scale);
  config.grid_cols = base.grid_cols * scale;
  config.grid_rows = base.grid_rows * scale;
  config.num_slums = base.num_slums * s * s;
  config.num_slum_clusters = base.num_slum_clusters * s;
  config.num_schools = base.num_schools * s * s;
  config.num_police = base.num_police * s * s;
  config.num_streets = base.num_streets * s * s;
  config.num_rivers = base.num_rivers * s;
  return config;
}

}  // namespace datagen
}  // namespace sfpm
