#include "coloc/backend.h"

#include <algorithm>
#include <optional>

#include "coloc/miner.h"

namespace sfpm {
namespace coloc {

namespace {

class GraphBackendImpl final : public core::MiningBackend {
 public:
  const char* name() const override { return "coloc"; }

  core::MiningSource::Kind source_kind() const override {
    return core::MiningSource::Kind::kLayers;
  }

  Result<core::MinedPatternSet> Mine(
      const core::MiningSource& source,
      const core::BackendOptions& options) const override {
    if (source.kind() != core::MiningSource::Kind::kLayers) {
      return Status::InvalidArgument("backend 'coloc' needs a layer source");
    }
    const LayerSource& layers = static_cast<const LayerSource&>(source);

    const qsr::DistanceQuantizer quantizer =
        qsr::DistanceQuantizer::Default();
    std::optional<NeighborGraph> owned;
    const NeighborGraph* graph = layers.graph();
    if (graph == nullptr) {
      NeighborGraphOptions graph_options;
      graph_options.distance = options.neighbor_distance;
      graph_options.quantizer = &quantizer;
      graph_options.threads = options.parallelism;
      Result<NeighborGraph> built =
          NeighborGraph::Build(layers.layers(), graph_options);
      if (!built.ok()) return built.status();
      owned.emplace(std::move(built).value());
      graph = &*owned;
    }

    ColocMinerOptions miner_options;
    miner_options.min_prevalence = options.min_support;
    miner_options.max_size = options.max_size;
    miner_options.filters = options.filters;
    Result<std::vector<MinedColocation>> mined =
        MineGraph(*graph, miner_options);
    if (!mined.ok()) return mined.status();

    core::MinedPatternSet out;
    out.labels = graph->type_names();
    // A type is its own grouping key: the same-feature-type filter is a
    // structural no-op here (co-locations never repeat a type), applied
    // anyway so the KC+ stack is uniform across backends.
    out.keys = graph->type_names();
    out.patterns.reserve(mined.value().size());
    for (const MinedColocation& m : mined.value()) {
      core::MinedPattern p;
      p.items = m.types;
      p.rows = m.rows;
      p.support = static_cast<uint32_t>(
          std::min<uint64_t>(m.rows, UINT32_MAX));
      p.score = m.participation_index;
      p.fuzzy = m.fuzzy_prevalence;
      out.patterns.push_back(std::move(p));
    }
    return out;
  }
};

}  // namespace

const core::MiningBackend& GraphBackend() {
  static const GraphBackendImpl* backend = new GraphBackendImpl();
  return *backend;
}

}  // namespace coloc
}  // namespace sfpm
