#ifndef SFPM_COLOC_NEIGHBOR_GRAPH_H_
#define SFPM_COLOC_NEIGHBOR_GRAPH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "feature/feature.h"
#include "qsr/distance.h"
#include "util/status.h"

namespace sfpm {
namespace coloc {

/// \brief Parameters of one neighbour-graph materialization.
struct NeighborGraphOptions {
  /// Neighbourhood radius R: two instances of *different* types are
  /// neighbours when their geometries lie within this distance.
  double distance = 500.0;

  /// Optional distance quantizer: when set, every edge is annotated with
  /// the band index of its exact distance (the fuzzy-prevalence grades);
  /// when null, every edge carries band 0 and no band names are recorded.
  const qsr::DistanceQuantizer* quantizer = nullptr;

  /// Worker threads for the distance join (0 = auto, 1 = serial). The
  /// graph is bit-identical at every setting: each node's neighbour list
  /// is an independent pure function of the input, and assembly into CSR
  /// happens in node order on the calling thread.
  size_t threads = 0;
};

/// \brief The materialized neighbour relation of a co-location run: one
/// R-tree distance join over the feature layers, stored as a compact CSR
/// adjacency keyed by (type, instance).
///
/// Node ids are global and deterministic: types in layer order, instances
/// in feature order, so node `TypeBegin(t) + i` is instance `i` of type
/// `t`. Because ids are grouped by type, each node's (ascending) neighbour
/// list keeps every type's neighbours in one contiguous subrange —
/// `Neighbors(node, t)` is a pair of binary searches, and the miner's
/// ordered clique intersections never materialize per-type lists.
///
/// Only cross-type edges exist (a co-location never pairs a type with
/// itself), and the relation is symmetric by construction: edges are
/// found once, from the lower-typed endpoint, then mirrored.
class NeighborGraph {
 public:
  /// Builds the graph. Requires at least two layers with distinct,
  /// non-empty feature types and a positive distance.
  static Result<NeighborGraph> Build(const feature::LayerSet& layers,
                                     const NeighborGraphOptions& options);

  double distance() const { return distance_; }

  size_t num_types() const { return type_names_.size(); }
  const std::vector<std::string>& type_names() const { return type_names_; }
  const std::string& type_name(size_t t) const { return type_names_[t]; }

  /// Number of instances of type `t`.
  uint32_t TypeSize(size_t t) const {
    return type_begin_[t + 1] - type_begin_[t];
  }
  /// First global node id of type `t`; ids run to `TypeBegin(t + 1)`.
  uint32_t TypeBegin(size_t t) const { return type_begin_[t]; }
  /// Type of a global node id.
  size_t TypeOf(uint32_t node) const;
  /// Instance index of a global node id within its type.
  uint32_t InstanceOf(uint32_t node) const {
    return node - type_begin_[TypeOf(node)];
  }

  size_t num_nodes() const { return offsets_.size() - 1; }
  /// Directed edge slots; every undirected neighbour pair counts twice.
  size_t num_edges() const { return neighbors_.size(); }

  /// CSR arrays (exposed for serialization and invariants testing).
  /// `offsets()[v] .. offsets()[v+1]` indexes `neighbors()`/`bands()`.
  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<uint32_t>& neighbors() const { return neighbors_; }
  const std::vector<uint8_t>& bands() const { return bands_; }

  /// Band names of the quantizer the edges were graded with (empty when
  /// the graph was built without one).
  const std::vector<std::string>& band_names() const { return band_names_; }

  /// Ascending neighbours of `node` restricted to type `t`, as a
  /// [first, last) subrange of the neighbour array.
  std::pair<const uint32_t*, const uint32_t*> Neighbors(uint32_t node,
                                                        size_t t) const;

  /// True when `a` and `b` are neighbours (binary search on a's list).
  bool AreNeighbors(uint32_t a, uint32_t b) const;

  /// Band index of edge (a, b); requires AreNeighbors(a, b).
  uint8_t BandOf(uint32_t a, uint32_t b) const;

 private:
  NeighborGraph() = default;

  double distance_ = 0.0;
  std::vector<std::string> type_names_;
  std::vector<uint32_t> type_begin_;  ///< num_types + 1 node-id fences.
  std::vector<std::string> band_names_;
  std::vector<uint64_t> offsets_;     ///< num_nodes + 1.
  std::vector<uint32_t> neighbors_;   ///< Ascending within each node.
  std::vector<uint8_t> bands_;        ///< Parallel to neighbors_.
};

}  // namespace coloc
}  // namespace sfpm

#endif  // SFPM_COLOC_NEIGHBOR_GRAPH_H_
