#include "coloc/colocation.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "coloc/miner.h"
#include "coloc/neighbor_graph.h"
#include "geom/algorithms.h"
#include "util/strings.h"

namespace sfpm {
namespace coloc {

namespace {

Status ValidateOptions(const feature::LayerSet& layers,
                       const ColocationOptions& options) {
  if (layers.size() < 2) {
    return Status::InvalidArgument("co-location needs at least two layers");
  }
  if (!(options.neighbor_distance > 0.0)) {
    return Status::InvalidArgument("neighbor_distance must be positive");
  }
  if (options.min_prevalence < 0.0 || options.min_prevalence > 1.0) {
    return Status::InvalidArgument("min_prevalence must be in [0, 1]");
  }
  std::set<std::string> seen;
  for (const feature::Layer* layer : layers) {
    if (!seen.insert(layer->feature_type()).second) {
      return Status::InvalidArgument("duplicate feature type '" +
                                     layer->feature_type() + "'");
    }
  }
  return Status::OK();
}

/// A row instance: one instance id per member type, aligned with the
/// pattern's (sorted) type list.
using RowInstance = std::vector<uint32_t>;

struct PatternData {
  std::vector<size_t> type_idx;  ///< Indices into the layer list, sorted.
  std::vector<RowInstance> rows;
};

/// Pairwise neighbour test with an R-tree prefilter per layer.
class NeighborOracle {
 public:
  NeighborOracle(const feature::LayerSet& layers, double distance)
      : layers_(layers), distance_(distance) {}

  /// Instances of layer `b` within R of instance `ia` of layer `a`.
  std::vector<uint32_t> NeighborsOf(size_t a, uint32_t ia, size_t b) const {
    std::vector<uint64_t> candidates;
    const geom::Geometry& g = layers_[a].at(ia).geometry();
    layers_[b].Index().QueryWithinDistance(g.GetEnvelope(), distance_,
                                           &candidates);
    std::vector<uint32_t> out;
    for (uint64_t id : candidates) {
      if (geom::Distance(g, layers_[b].at(id).geometry()) <= distance_) {
        out.push_back(static_cast<uint32_t>(id));
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Exact neighbour test (memoized).
  bool AreNeighbors(size_t a, uint32_t ia, size_t b, uint32_t ib) const {
    if (a > b || (a == b && ia > ib)) {
      std::swap(a, b);
      std::swap(ia, ib);
    }
    // Collision-free for < 256 layers and < 2^24 instances per layer.
    const uint64_t key = (static_cast<uint64_t>(a) << 56) |
                         (static_cast<uint64_t>(b) << 48) |
                         (static_cast<uint64_t>(ia) << 24) | ib;
    const auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    const bool near =
        geom::Distance(layers_[a].at(ia).geometry(),
                       layers_[b].at(ib).geometry()) <= distance_;
    cache_.emplace(key, near);
    return near;
  }

 private:
  feature::LayerSet layers_;
  double distance_;
  mutable std::unordered_map<uint64_t, bool> cache_;
};

double ParticipationIndex(const PatternData& pattern,
                          const feature::LayerSet& layers) {
  double pi = 1.0;
  for (size_t pos = 0; pos < pattern.type_idx.size(); ++pos) {
    std::unordered_set<uint32_t> participating;
    for (const RowInstance& row : pattern.rows) {
      participating.insert(row[pos]);
    }
    const size_t total = layers[pattern.type_idx[pos]].Size();
    const double ratio =
        total == 0 ? 0.0
                   : static_cast<double>(participating.size()) /
                         static_cast<double>(total);
    pi = std::min(pi, ratio);
  }
  return pattern.rows.empty() ? 0.0 : pi;
}

}  // namespace

std::string ColocationPattern::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < types.size(); ++i) {
    if (i > 0) out += ", ";
    out += types[i];
  }
  out += "} PI=";
  AppendRoundTripDouble(participation_index, &out);
  out += StrFormat(" (%zu rows)", num_row_instances);
  return out;
}

Result<std::vector<ColocationPattern>> MineColocations(
    const feature::LayerSet& layers, const ColocationOptions& options) {
  if (Status s = ValidateOptions(layers, options); !s.ok()) return s;

  const qsr::DistanceQuantizer quantizer = qsr::DistanceQuantizer::Default();
  NeighborGraphOptions graph_options;
  graph_options.distance = options.neighbor_distance;
  graph_options.quantizer = &quantizer;
  graph_options.threads = options.threads;
  Result<NeighborGraph> built = NeighborGraph::Build(layers, graph_options);
  if (!built.ok()) return built.status();
  const NeighborGraph& graph = built.value();

  ColocMinerOptions miner_options;
  miner_options.min_prevalence = options.min_prevalence;
  miner_options.max_size = options.max_pattern_size;
  Result<std::vector<MinedColocation>> mined =
      MineGraph(graph, miner_options);
  if (!mined.ok()) return mined.status();

  std::vector<ColocationPattern> result;
  result.reserve(mined.value().size());
  for (const MinedColocation& m : mined.value()) {
    ColocationPattern out;
    for (const uint32_t t : m.types) {
      out.types.push_back(graph.type_name(t));
    }
    std::sort(out.types.begin(), out.types.end());
    out.participation_index = m.participation_index;
    out.fuzzy_prevalence = m.fuzzy_prevalence;
    out.num_row_instances = static_cast<size_t>(m.rows);
    result.push_back(std::move(out));
  }
  std::sort(result.begin(), result.end(),
            [](const ColocationPattern& a, const ColocationPattern& b) {
              if (a.types.size() != b.types.size()) {
                return a.types.size() < b.types.size();
              }
              return a.types < b.types;
            });
  return result;
}

Result<std::vector<ColocationPattern>> MineColocationsNaive(
    const feature::LayerSet& layers, const ColocationOptions& options) {
  if (Status s = ValidateOptions(layers, options); !s.ok()) return s;

  const NeighborOracle oracle(layers, options.neighbor_distance);
  std::vector<ColocationPattern> result;

  // Size-2 patterns: row instances are the neighbour pairs.
  std::vector<PatternData> current;
  for (size_t a = 0; a < layers.size(); ++a) {
    if (layers[a].IsEmpty()) continue;
    for (size_t b = a + 1; b < layers.size(); ++b) {
      if (layers[b].IsEmpty()) continue;
      PatternData pattern;
      pattern.type_idx = {a, b};
      for (uint32_t ia = 0; ia < layers[a].Size(); ++ia) {
        for (uint32_t ib : oracle.NeighborsOf(a, ia, b)) {
          pattern.rows.push_back({ia, ib});
        }
      }
      const double pi = ParticipationIndex(pattern, layers);
      if (pi >= options.min_prevalence && !pattern.rows.empty()) {
        current.push_back(std::move(pattern));
      }
    }
  }

  auto emit = [&](const PatternData& pattern) {
    ColocationPattern out;
    for (size_t idx : pattern.type_idx) {
      out.types.push_back(layers[idx].feature_type());
    }
    std::sort(out.types.begin(), out.types.end());
    out.participation_index = ParticipationIndex(pattern, layers);
    out.fuzzy_prevalence = out.participation_index;
    out.num_row_instances = pattern.rows.size();
    result.push_back(std::move(out));
  };
  for (const PatternData& p : current) emit(p);

  // Grow Apriori-style: join patterns sharing a (k-1)-prefix, extend each
  // row instance with instances of the new type neighbouring every member.
  size_t k = 2;
  while (!current.empty()) {
    ++k;
    if (options.max_pattern_size != 0 && k > options.max_pattern_size) break;
    // Index current patterns for the subset prune.
    std::set<std::vector<size_t>> prevalent;
    for (const PatternData& p : current) prevalent.insert(p.type_idx);

    std::vector<PatternData> next;
    for (size_t i = 0; i < current.size(); ++i) {
      for (size_t j = i + 1; j < current.size(); ++j) {
        const auto& a = current[i].type_idx;
        const auto& b = current[j].type_idx;
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
          continue;
        }
        if (a.back() >= b.back()) continue;

        std::vector<size_t> joined = a;
        joined.push_back(b.back());
        // Subset prune: every (k-1)-subset must be prevalent.
        bool all_subsets = true;
        for (size_t drop = 0; drop + 2 < joined.size() && all_subsets;
             ++drop) {
          std::vector<size_t> sub;
          for (size_t t = 0; t < joined.size(); ++t) {
            if (t != drop) sub.push_back(joined[t]);
          }
          all_subsets = prevalent.count(sub) > 0;
        }
        if (!all_subsets) continue;

        PatternData candidate;
        candidate.type_idx = joined;
        const size_t new_type = joined.back();
        for (const RowInstance& row : current[i].rows) {
          // Instances of the new type neighbouring the row's last member,
          // then checked against every other member (clique condition).
          for (uint32_t cand : oracle.NeighborsOf(
                   joined[joined.size() - 2], row.back(), new_type)) {
            bool clique = true;
            for (size_t pos = 0; pos + 1 < joined.size() && clique; ++pos) {
              clique = oracle.AreNeighbors(joined[pos], row[pos], new_type,
                                           cand);
            }
            if (clique) {
              RowInstance extended = row;
              extended.push_back(cand);
              candidate.rows.push_back(std::move(extended));
            }
          }
        }
        if (ParticipationIndex(candidate, layers) >= options.min_prevalence &&
            !candidate.rows.empty()) {
          next.push_back(std::move(candidate));
        }
      }
    }
    for (const PatternData& p : next) emit(p);
    current = std::move(next);
  }

  std::sort(result.begin(), result.end(),
            [](const ColocationPattern& a, const ColocationPattern& b) {
              if (a.types.size() != b.types.size()) {
                return a.types.size() < b.types.size();
              }
              return a.types < b.types;
            });
  return result;
}

}  // namespace coloc
}  // namespace sfpm
