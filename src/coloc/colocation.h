#ifndef SFPM_COLOC_COLOCATION_H_
#define SFPM_COLOC_COLOCATION_H_

#include <string>
#include <vector>

#include "feature/feature.h"
#include "util/status.h"

namespace sfpm {
namespace coloc {

/// \brief Co-location pattern mining (Huang, Shekhar & Xiong, TKDE 2004) —
/// the quantitative baseline the paper contrasts Apriori-KC+ against.
///
/// A co-location is a set of feature types whose instances frequently lie
/// within a neighbourhood distance R of each other. Prevalence is the
/// *participation index*: for pattern c, PI(c) = min over member types f
/// of the fraction of f's instances that appear in at least one row
/// instance (clique of pairwise neighbours, one instance per type) of c.
/// PI is anti-monotone, so the miner proceeds Apriori-style over type
/// sets.
///
/// Note the contrast the paper draws: co-location input is effectively
/// point-like and the neighbour relation is purely metric, while
/// Apriori-KC+ works on arbitrary geometries with qualitative relations —
/// and co-location patterns never pair a type with itself, which is the
/// very degeneracy KC+ removes from the qualitative setting.
struct ColocationOptions {
  /// Neighbourhood radius R: two instances are neighbours when their
  /// geometries lie within this distance.
  double neighbor_distance = 1.0;

  /// Minimum participation index in [0, 1].
  double min_prevalence = 0.3;

  /// Stop after patterns of this many types (0 = unlimited).
  size_t max_pattern_size = 0;

  /// Worker threads for the neighbour-graph build (0 = auto). The output
  /// is bit-identical at every setting.
  size_t threads = 0;
};

/// \brief One prevalent co-location.
struct ColocationPattern {
  std::vector<std::string> types;  ///< Member feature types, sorted.
  double participation_index = 0.0;
  /// Prevalence graded by the qualitative distance bands: row instances
  /// whose worst edge sits in a nearer band count for more (see
  /// docs/COLOCATION.md). Always >= 0 and <= participation_index.
  double fuzzy_prevalence = 0.0;
  size_t num_row_instances = 0;    ///< Cliques realizing the pattern.

  /// "{school, slum} PI=0.42 (17 rows)".
  std::string ToString() const;
};

/// \brief Mines all prevalent co-locations among the given layers.
///
/// Every layer contributes one feature type; layers must have distinct
/// types. Returns InvalidArgument for bad thresholds, duplicate types, or
/// fewer than two layers.
///
/// Materializes the neighbour relation once (an R-tree distance join into
/// a CSR adjacency, see NeighborGraph) and mines over the graph; edges are
/// graded with the default qualitative distance bands, which feed each
/// pattern's fuzzy_prevalence.
Result<std::vector<ColocationPattern>> MineColocations(
    const feature::LayerSet& layers, const ColocationOptions& options);

/// \brief Reference implementation: recomputes neighbourhoods per pair with
/// an R-tree prefilter and memoized exact tests instead of materializing
/// the graph. Kept as the differential oracle for fuzzing and the baseline
/// for bench_coloc; does not grade fuzzy_prevalence (reports it equal to
/// participation_index).
Result<std::vector<ColocationPattern>> MineColocationsNaive(
    const feature::LayerSet& layers, const ColocationOptions& options);

}  // namespace coloc
}  // namespace sfpm

#endif  // SFPM_COLOC_COLOCATION_H_
