#include "coloc/miner.h"

#include <algorithm>
#include <set>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sfpm {
namespace coloc {

namespace {

/// One candidate pattern: member types plus its row instances, flattened
/// (`types.size()` global node ids per row) with each row's worst edge
/// band alongside.
struct Candidate {
  std::vector<uint32_t> types;    ///< Ascending type ids.
  std::vector<uint32_t> rows;     ///< Flattened, types.size() nodes per row.
  std::vector<uint8_t> maxband;   ///< Per row: max band over its edges.
};

/// Crisp and fuzzy prevalence of a candidate. The fuzzy sum is kept in
/// integers (memberships are multiples of 1/B) so it is exact and
/// independent of accumulation order.
struct Prevalence {
  double pi = 0.0;
  double fuzzy = 0.0;
};

Prevalence ComputePrevalence(const NeighborGraph& graph,
                             const Candidate& cand) {
  const size_t k = cand.types.size();
  const size_t num_rows = cand.maxband.size();
  if (num_rows == 0) return {};
  const size_t num_bands = graph.band_names().size();

  Prevalence out{1.0, 1.0};
  std::vector<std::pair<uint32_t, uint8_t>> members;
  for (size_t pos = 0; pos < k; ++pos) {
    members.clear();
    for (size_t r = 0; r < num_rows; ++r) {
      members.emplace_back(cand.rows[r * k + pos], cand.maxband[r]);
    }
    // An instance participates with its best (nearest-graded) row, i.e.
    // the minimum worst-band over its rows.
    std::sort(members.begin(), members.end());
    size_t participating = 0;
    uint64_t band_sum = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (i > 0 && members[i].first == members[i - 1].first) continue;
      ++participating;
      band_sum += members[i].second;
    }
    const double total = static_cast<double>(graph.TypeSize(cand.types[pos]));
    out.pi = std::min(out.pi, static_cast<double>(participating) / total);
    const double fuzzy_ratio =
        num_bands == 0
            ? static_cast<double>(participating) / total
            : static_cast<double>(participating * num_bands - band_sum) /
                  (static_cast<double>(num_bands) * total);
    out.fuzzy = std::min(out.fuzzy, fuzzy_ratio);
  }
  return out;
}

/// Row instances of `parent` extended by type `extra` (greater than every
/// member type). Clique mode intersects every member's neighbour subrange;
/// star mode scans the first member's star and verifies the remaining
/// edges by binary search. Both emit the same rows in the same order.
void ExtendRows(const NeighborGraph& graph, const Candidate& parent,
                uint32_t extra, bool star_join, Candidate* out) {
  const size_t k = parent.types.size();
  const size_t num_rows = parent.maxband.size();
  std::vector<uint32_t> targets;
  for (size_t r = 0; r < num_rows; ++r) {
    const uint32_t* row = parent.rows.data() + r * k;
    targets.clear();
    if (star_join) {
      const auto [lo, hi] = graph.Neighbors(row[0], extra);
      for (const uint32_t* p = lo; p != hi; ++p) {
        bool clique = true;
        for (size_t pos = 1; pos < k && clique; ++pos) {
          clique = graph.AreNeighbors(row[pos], *p);
        }
        if (clique) targets.push_back(*p);
      }
    } else {
      const auto [lo, hi] = graph.Neighbors(row[0], extra);
      targets.assign(lo, hi);
      std::vector<uint32_t> narrowed;
      for (size_t pos = 1; pos < k && !targets.empty(); ++pos) {
        const auto [plo, phi] = graph.Neighbors(row[pos], extra);
        narrowed.clear();
        std::set_intersection(targets.begin(), targets.end(), plo, phi,
                              std::back_inserter(narrowed));
        targets.swap(narrowed);
      }
    }
    for (const uint32_t w : targets) {
      uint8_t band = parent.maxband[r];
      for (size_t pos = 0; pos < k; ++pos) {
        band = std::max(band, graph.BandOf(row[pos], w));
      }
      out->rows.insert(out->rows.end(), row, row + k);
      out->rows.push_back(w);
      out->maxband.push_back(band);
    }
  }
}

}  // namespace

Result<std::vector<MinedColocation>> MineGraph(
    const NeighborGraph& graph, const ColocMinerOptions& options) {
  if (options.min_prevalence < 0.0 || options.min_prevalence > 1.0) {
    return Status::InvalidArgument("min_prevalence must be in [0, 1]");
  }

  auto span = obs::Tracer::Global().StartSpan("coloc/mine");
  std::vector<MinedColocation> result;
  uint64_t candidates_generated = 0;

  // Size-2 candidates straight off the CSR edge lists: a node's
  // neighbours of a higher type are one contiguous ascending subrange.
  std::vector<Candidate> current;
  const size_t num_types = graph.num_types();
  for (uint32_t a = 0; a < num_types; ++a) {
    if (graph.TypeSize(a) == 0) continue;
    for (uint32_t b = a + 1; b < num_types; ++b) {
      if (graph.TypeSize(b) == 0) continue;
      bool pruned = false;
      for (const core::CandidateFilter* filter : options.filters) {
        if (filter != nullptr && filter->PrunePair(a, b)) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      ++candidates_generated;
      Candidate cand;
      cand.types = {a, b};
      const uint32_t begin = graph.TypeBegin(a);
      const uint32_t end = begin + graph.TypeSize(a);
      for (uint32_t u = begin; u < end; ++u) {
        const auto [lo, hi] = graph.Neighbors(u, b);
        for (const uint32_t* p = lo; p != hi; ++p) {
          cand.rows.push_back(u);
          cand.rows.push_back(*p);
          cand.maxband.push_back(
              graph.bands()[static_cast<size_t>(p - graph.neighbors().data())]);
        }
      }
      const Prevalence prev = ComputePrevalence(graph, cand);
      if (prev.pi >= options.min_prevalence && !cand.maxband.empty()) {
        current.push_back(std::move(cand));
      }
    }
  }

  auto emit = [&](const Candidate& cand) {
    const Prevalence prev = ComputePrevalence(graph, cand);
    MinedColocation out;
    out.types = cand.types;
    out.participation_index = prev.pi;
    out.fuzzy_prevalence = prev.fuzzy;
    out.rows = cand.maxband.size();
    result.push_back(std::move(out));
  };
  for (const Candidate& cand : current) emit(cand);

  // Apriori growth: join candidates sharing a (k-1)-prefix, prune by the
  // anti-monotone PI (every k-subset must be prevalent), then realize row
  // instances by neighbour intersection.
  size_t k = 2;
  while (!current.empty()) {
    ++k;
    if (options.max_size != 0 && k > options.max_size) break;
    std::set<std::vector<uint32_t>> prevalent;
    for (const Candidate& cand : current) prevalent.insert(cand.types);

    std::vector<Candidate> next;
    for (size_t i = 0; i < current.size(); ++i) {
      for (size_t j = i + 1; j < current.size(); ++j) {
        const std::vector<uint32_t>& a = current[i].types;
        const std::vector<uint32_t>& b = current[j].types;
        if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) {
          continue;
        }
        if (a.back() >= b.back()) continue;

        std::vector<uint32_t> joined = a;
        joined.push_back(b.back());
        // The two parents cover dropping the last two positions; check
        // the rest.
        bool all_subsets = true;
        for (size_t drop = 0; drop + 2 < joined.size() && all_subsets;
             ++drop) {
          std::vector<uint32_t> sub;
          for (size_t t = 0; t < joined.size(); ++t) {
            if (t != drop) sub.push_back(joined[t]);
          }
          all_subsets = prevalent.count(sub) > 0;
        }
        if (!all_subsets) continue;

        ++candidates_generated;
        Candidate cand;
        cand.types = std::move(joined);
        ExtendRows(graph, current[i], b.back(), options.star_join, &cand);
        const Prevalence prev = ComputePrevalence(graph, cand);
        if (prev.pi >= options.min_prevalence && !cand.maxband.empty()) {
          next.push_back(std::move(cand));
        }
      }
    }
    for (const Candidate& cand : next) emit(cand);
    current = std::move(next);
  }

  std::sort(result.begin(), result.end(),
            [](const MinedColocation& a, const MinedColocation& b) {
              if (a.types.size() != b.types.size()) {
                return a.types.size() < b.types.size();
              }
              return a.types < b.types;
            });

  uint64_t total_rows = 0;
  for (const MinedColocation& p : result) total_rows += p.rows;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("coloc.mine.candidates").Add(candidates_generated);
  registry.GetCounter("coloc.mine.patterns").Add(result.size());
  registry.GetCounter("coloc.mine.rows").Add(total_rows);
  span.SetAttr("candidates", static_cast<double>(candidates_generated));
  span.SetAttr("patterns", static_cast<double>(result.size()));
  return result;
}

}  // namespace coloc
}  // namespace sfpm
