#ifndef SFPM_COLOC_BACKEND_H_
#define SFPM_COLOC_BACKEND_H_

#include "coloc/neighbor_graph.h"
#include "core/mining_backend.h"
#include "feature/feature.h"

namespace sfpm {
namespace coloc {

/// \brief Feature layers as a mining source (not owned). When a pre-built
/// neighbour graph is supplied the backend mines it directly (the layers
/// are then only documentation); otherwise it materializes one per Mine
/// call with the options' neighbor_distance and the default qualitative
/// distance bands.
class LayerSource final : public core::MiningSource {
 public:
  explicit LayerSource(const feature::LayerSet& layers,
                       const NeighborGraph* graph = nullptr)
      : layers_(layers), graph_(graph) {}

  Kind kind() const override { return Kind::kLayers; }
  const feature::LayerSet& layers() const { return layers_; }
  const NeighborGraph* graph() const { return graph_; }

 private:
  feature::LayerSet layers_;
  const NeighborGraph* graph_;
};

/// \brief The co-location backend ("coloc"): neighbour-graph
/// materialization plus participation-index mining behind the uniform
/// core::MiningBackend interface. Pattern item ids index the graph's type
/// universe; `score` is the participation index, `fuzzy` the band-graded
/// prevalence, `rows`/`support` the row-instance count.
const core::MiningBackend& GraphBackend();

}  // namespace coloc
}  // namespace sfpm

#endif  // SFPM_COLOC_BACKEND_H_
