#ifndef SFPM_COLOC_MINER_H_
#define SFPM_COLOC_MINER_H_

#include <cstdint>
#include <vector>

#include "coloc/neighbor_graph.h"
#include "core/candidate_filter.h"
#include "util/status.h"

namespace sfpm {
namespace coloc {

/// \brief Parameters of one graph-based mining run.
struct ColocMinerOptions {
  /// Minimum participation index in [0, 1].
  double min_prevalence = 0.3;

  /// Stop after patterns of this many types (0 = unlimited).
  size_t max_size = 0;

  /// Row-instance generation mode. Clique mode (default) intersects the
  /// ordered neighbour lists of *every* member; star/partial-join mode
  /// takes the first member's star as the candidate set and verifies
  /// cliqueness per candidate with binary-searched edge probes. Both
  /// produce identical patterns; star join trades intersection work for
  /// probes and wins when stars are small.
  bool star_join = false;

  /// Candidate-pair constraints over *type ids* (the graph's type order),
  /// applied at pattern size 2 exactly like the itemset miners apply them
  /// at k == 2 — the uniform KC/KC+ filter stack. Anti-monotonicity then
  /// bars every superset of a pruned pair. Not owned.
  std::vector<const core::CandidateFilter*> filters;
};

/// \brief One prevalent co-location over a neighbour graph, in type ids.
struct MinedColocation {
  std::vector<uint32_t> types;  ///< Ascending ids into graph.type_names().
  double participation_index = 0.0;
  /// Graded prevalence: each row instance's membership is graded by its
  /// worst (farthest) edge band — with B bands, an edge in band b has
  /// membership (B - b) / B — and each instance participates with its
  /// best row's grade. Equals the crisp participation index when the
  /// graph was built without a quantizer.
  double fuzzy_prevalence = 0.0;
  uint64_t rows = 0;            ///< Row instances (cliques) realizing it.
};

/// \brief Apriori-style participation-index mining over a materialized
/// neighbour graph: size-2 patterns from the CSR edge lists, then
/// prefix-join candidate generation with subset pruning, row instances by
/// ordered neighbour intersection, and PI's anti-monotonicity pruning the
/// lattice. Results are sorted by (size, type ids) and deterministic.
Result<std::vector<MinedColocation>> MineGraph(const NeighborGraph& graph,
                                               const ColocMinerOptions& options);

}  // namespace coloc
}  // namespace sfpm

#endif  // SFPM_COLOC_MINER_H_
