#include "coloc/neighbor_graph.h"

#include <algorithm>
#include <set>

#include "geom/algorithms.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace sfpm {
namespace coloc {

namespace {

/// One forward edge found by the distance join, before mirroring.
struct ForwardEdge {
  uint32_t target;
  uint8_t band;
};

}  // namespace

size_t NeighborGraph::TypeOf(uint32_t node) const {
  // First fence strictly greater than `node`, minus one.
  const auto it =
      std::upper_bound(type_begin_.begin(), type_begin_.end(), node);
  return static_cast<size_t>(it - type_begin_.begin()) - 1;
}

std::pair<const uint32_t*, const uint32_t*> NeighborGraph::Neighbors(
    uint32_t node, size_t t) const {
  const uint32_t* begin = neighbors_.data() + offsets_[node];
  const uint32_t* end = neighbors_.data() + offsets_[node + 1];
  const uint32_t* lo = std::lower_bound(begin, end, type_begin_[t]);
  const uint32_t* hi = std::lower_bound(lo, end, type_begin_[t + 1]);
  return {lo, hi};
}

bool NeighborGraph::AreNeighbors(uint32_t a, uint32_t b) const {
  const uint32_t* begin = neighbors_.data() + offsets_[a];
  const uint32_t* end = neighbors_.data() + offsets_[a + 1];
  return std::binary_search(begin, end, b);
}

uint8_t NeighborGraph::BandOf(uint32_t a, uint32_t b) const {
  const uint32_t* begin = neighbors_.data() + offsets_[a];
  const uint32_t* end = neighbors_.data() + offsets_[a + 1];
  const uint32_t* it = std::lower_bound(begin, end, b);
  return bands_[offsets_[a] + static_cast<uint64_t>(it - begin)];
}

Result<NeighborGraph> NeighborGraph::Build(const feature::LayerSet& layers,
                                           const NeighborGraphOptions& options) {
  if (layers.size() < 2) {
    return Status::InvalidArgument(
        "neighbour graph needs at least two layers");
  }
  if (!(options.distance > 0.0)) {
    return Status::InvalidArgument("neighbour distance must be positive");
  }
  {
    std::set<std::string> seen;
    for (const feature::Layer* layer : layers) {
      if (layer->feature_type().empty()) {
        return Status::InvalidArgument("layer has an empty feature type");
      }
      if (!seen.insert(layer->feature_type()).second) {
        return Status::InvalidArgument("duplicate feature type '" +
                                       layer->feature_type() + "'");
      }
    }
  }

  auto span = obs::Tracer::Global().StartSpan("coloc/graph");

  NeighborGraph graph;
  graph.distance_ = options.distance;
  if (options.quantizer != nullptr) {
    for (const qsr::DistanceQuantizer::Band& band :
         options.quantizer->bands()) {
      graph.band_names_.push_back(band.name);
    }
  }

  graph.type_begin_.push_back(0);
  uint64_t total = 0;
  for (const feature::Layer* layer : layers) {
    graph.type_names_.push_back(layer->feature_type());
    total += layer->Size();
    if (total > (uint64_t{1} << 32) - 1) {
      return Status::InvalidArgument(
          "neighbour graph exceeds the 32-bit node-id space");
    }
    graph.type_begin_.push_back(static_cast<uint32_t>(total));
  }
  const size_t num_nodes = static_cast<size_t>(total);

  // Warm every layer's lazy R-tree before the parallel region: the first
  // Index() call is not safe to race.
  for (const feature::Layer* layer : layers) layer->Index();

  // Distance join, from the lower-typed endpoint only: node u of type t
  // probes the R-trees of types s > t with its envelope inflated by R,
  // then keeps candidates whose exact distance is within R. Each node's
  // forward list is an independent pure function of the input, so the
  // parallel fill is deterministic at every thread count.
  std::vector<std::vector<ForwardEdge>> forward(num_nodes);
  ThreadPool pool(ResolveParallelism(options.threads));
  std::vector<uint64_t> distance_calls(pool.num_threads(), 0);
  pool.ParallelForChunks(
      0, num_nodes, [&](size_t begin, size_t end, size_t chunk) {
        std::vector<uint64_t> candidates;
        uint64_t calls = 0;
        for (size_t u = begin; u < end; ++u) {
          const auto node = static_cast<uint32_t>(u);
          const size_t t = graph.TypeOf(node);
          const geom::Geometry& g =
              layers[t].at(graph.InstanceOf(node)).geometry();
          const geom::Envelope env = g.GetEnvelope();
          std::vector<ForwardEdge>& out = forward[u];
          for (size_t s = t + 1; s < layers.size(); ++s) {
            candidates.clear();
            layers[s].Index().QueryWithinDistance(env, options.distance,
                                                  &candidates);
            calls += candidates.size();
            for (const uint64_t id : candidates) {
              const double d =
                  geom::Distance(g, layers[s].at(id).geometry());
              if (d <= options.distance) {
                const uint8_t band =
                    options.quantizer == nullptr
                        ? 0
                        : static_cast<uint8_t>(std::min<size_t>(
                              options.quantizer->BandIndex(d), 255));
                out.push_back({graph.type_begin_[s] +
                                   static_cast<uint32_t>(id),
                               band});
              }
            }
          }
          // R-tree hits arrive in tree order; the CSR contract is
          // ascending node ids.
          std::sort(out.begin(), out.end(),
                    [](const ForwardEdge& a, const ForwardEdge& b) {
                      return a.target < b.target;
                    });
        }
        distance_calls[chunk] += calls;
      });

  // Degrees: every forward edge contributes one slot at each endpoint.
  graph.offsets_.assign(num_nodes + 1, 0);
  for (size_t u = 0; u < num_nodes; ++u) {
    graph.offsets_[u + 1] += forward[u].size();
    for (const ForwardEdge& e : forward[u]) {
      graph.offsets_[e.target + 1] += 1;
    }
  }
  for (size_t u = 0; u < num_nodes; ++u) {
    graph.offsets_[u + 1] += graph.offsets_[u];
  }
  const size_t num_edges = static_cast<size_t>(graph.offsets_[num_nodes]);
  graph.neighbors_.resize(num_edges);
  graph.bands_.resize(num_edges);

  // Fill. A node's neighbours of lower types are the mirrored sources,
  // which arrive ascending because the mirror pass scans u ascending; its
  // neighbours of higher types are its own (sorted) forward list. Lower
  // types mean smaller node ids, so mirror-then-forward is fully sorted.
  std::vector<uint64_t> cursor(graph.offsets_.begin(),
                               graph.offsets_.end() - 1);
  for (size_t u = 0; u < num_nodes; ++u) {
    for (const ForwardEdge& e : forward[u]) {
      graph.neighbors_[cursor[e.target]] = static_cast<uint32_t>(u);
      graph.bands_[cursor[e.target]] = e.band;
      ++cursor[e.target];
    }
  }
  for (size_t u = 0; u < num_nodes; ++u) {
    for (const ForwardEdge& e : forward[u]) {
      graph.neighbors_[cursor[u]] = e.target;
      graph.bands_[cursor[u]] = e.band;
      ++cursor[u];
    }
  }

  uint64_t calls = 0;
  for (const uint64_t c : distance_calls) calls += c;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("coloc.graph.nodes").Add(num_nodes);
  registry.GetCounter("coloc.graph.edges").Add(num_edges / 2);
  registry.GetCounter("coloc.graph.distance_calls").Add(calls);
  span.SetAttr("nodes", static_cast<double>(num_nodes));
  span.SetAttr("edges", static_cast<double>(num_edges / 2));
  return graph;
}

}  // namespace coloc
}  // namespace sfpm
