#ifndef SFPM_RELATE_PREPARED_H_
#define SFPM_RELATE_PREPARED_H_

#include <vector>

#include "geom/algorithms.h"
#include "geom/geometry.h"
#include "index/rtree.h"
#include "relate/intersection_matrix.h"

namespace sfpm {
namespace relate {

/// \brief A geometry preprocessed for repeated relate calls — the JTS
/// "prepared geometry" idea, used by the predicate extractor's hot loop
/// where one reference district is related against many candidates.
///
/// Caches the linework, vertices and interior probe points, and builds an
/// R-tree over the segments. Repeated `Relate` calls then (a) skip the
/// per-call derivation of those quantities and (b) restrict segment
/// intersection tests to index-reported candidate pairs, turning the
/// quadratic segment pairing into an output-sensitive one. Point location
/// against large polygons is also index-accelerated.
class PreparedGeometry {
 public:
  explicit PreparedGeometry(geom::Geometry g);

  PreparedGeometry(const PreparedGeometry&) = delete;
  PreparedGeometry& operator=(const PreparedGeometry&) = delete;
  PreparedGeometry(PreparedGeometry&&) = default;
  PreparedGeometry& operator=(PreparedGeometry&&) = default;

  const geom::Geometry& geometry() const { return geometry_; }

  /// DE-9IM matrix of (this, other); identical to
  /// relate::Relate(geometry(), other).
  IntersectionMatrix Relate(const geom::Geometry& other) const;

  /// Index-accelerated point location, equal to geom::Locate(p, geometry()).
  geom::Location Locate(const geom::Point& p) const;

  /// \name Predicate conveniences over Relate().
  /// @{
  bool Intersects(const geom::Geometry& other) const;
  bool Disjoint(const geom::Geometry& other) const;
  bool Contains(const geom::Geometry& other) const;
  bool Covers(const geom::Geometry& other) const;
  bool Within(const geom::Geometry& other) const;
  bool Touches(const geom::Geometry& other) const;
  /// @}

 private:
  geom::Geometry geometry_;
  int dim_ = 0;
  geom::Envelope envelope_;
  std::vector<std::pair<geom::Point, geom::Point>> segments_;
  std::vector<geom::Point> vertices_;
  std::vector<geom::Point> interior_points_;
  index::RTree segment_index_;
  /// True when the geometry is a single polygon/line type whose Locate can
  /// use the generic crossing count over indexed segments.
  bool fast_locate_ = false;
};

}  // namespace relate
}  // namespace sfpm

#endif  // SFPM_RELATE_PREPARED_H_
