#ifndef SFPM_RELATE_PREPARED_H_
#define SFPM_RELATE_PREPARED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/algorithms.h"
#include "geom/geometry.h"
#include "index/rtree.h"
#include "relate/intersection_matrix.h"

namespace sfpm {
namespace relate {

/// \brief Widest distance a point accepted by the engine's tolerance
/// collinearity predicates can sit outside a segment's envelope, for
/// segments drawn from a geometry with envelope `envelope` (the band-slack
/// bound derived in prepared.cc). Envelope-level certificates — "these
/// geometries cannot interact" — must widen their envelopes by this much
/// per operand to stay conservative against the tolerance band.
double CollinearityBandSlack(const geom::Envelope& envelope);

/// \brief Observability counters of the certified relate fast path
/// (see PreparedGeometry::Relate). Purely additive: summing two
/// RelateStats of disjoint call sets gives the stats of the union, which
/// is how the extractor merges per-worker counters deterministically.
struct RelateStats {
  uint64_t calls = 0;           ///< Relate invocations (any outcome).
  uint64_t fast_disjoint = 0;   ///< Certified disjoint, engine skipped.
  uint64_t fast_contains = 0;   ///< Certified B in interior(A).
  uint64_t fast_within = 0;     ///< Certified A in interior(B).
  /// Fast path declined: a candidate segment pair makes actual contact,
  /// the full engine must split linework.
  uint64_t miss_boundary = 0;
  /// Fast path declined: no candidate pairs but the component locations
  /// were inconclusive (mixed sides, or a point exactly on a boundary).
  uint64_t miss_inconclusive = 0;
  /// \name Extraction inference tier (see docs/ARCHITECTURE.md)
  /// Pairs the RCC8 composition algebra decided without any Relate call —
  /// these never reach the engine, so they are disjoint from `calls`.
  /// @{
  uint64_t inferred = 0;          ///< Deduced non-DC, predicate emitted.
  uint64_t inferred_skipped = 0;  ///< Deduced DC, pair skipped outright.
  /// Deduction edges consumed in the converse orientation (the free half
  /// of a pivot pair, via Rcc8Converse), counted for deciding deductions.
  uint64_t converse_hits = 0;
  /// @}

  uint64_t fast_hits() const {
    return fast_disjoint + fast_contains + fast_within;
  }
  uint64_t misses() const { return miss_boundary + miss_inconclusive; }

  void Add(const RelateStats& o) {
    calls += o.calls;
    fast_disjoint += o.fast_disjoint;
    fast_contains += o.fast_contains;
    fast_within += o.fast_within;
    miss_boundary += o.miss_boundary;
    miss_inconclusive += o.miss_inconclusive;
    inferred += o.inferred;
    inferred_skipped += o.inferred_skipped;
    converse_hits += o.converse_hits;
  }

  std::string ToString() const;
};

/// \brief A geometry preprocessed for repeated relate calls — the JTS
/// "prepared geometry" idea, used by the predicate extractor's hot loop
/// where one reference district is related against many candidates.
///
/// Caches the linework, vertices and interior probe points, and builds an
/// R-tree over the segments. Repeated `Relate` calls then (a) skip the
/// per-call derivation of those quantities and (b) restrict segment
/// intersection tests to index-reported candidate pairs, turning the
/// quadratic segment pairing into an output-sensitive one. Point location
/// against large polygons is also index-accelerated.
///
/// On top of that, `Relate` has a *certified fast path*: when the segment
/// index proves the two lineworks cannot intersect, a handful of
/// point-location probes (one per connected component) decide between
/// disjoint / contains / within, and the DE-9IM matrix is emitted in
/// closed form — identical, cell for cell, to what the full engine would
/// derive — without building cutter lists, splitting segments, or
/// classifying vertices. Inconclusive evidence falls back to the full
/// engine, so the fast path never changes a result, only its cost.
class PreparedGeometry {
 public:
  explicit PreparedGeometry(geom::Geometry g);

  PreparedGeometry(const PreparedGeometry&) = delete;
  PreparedGeometry& operator=(const PreparedGeometry&) = delete;
  PreparedGeometry(PreparedGeometry&&) = default;
  PreparedGeometry& operator=(PreparedGeometry&&) = default;

  const geom::Geometry& geometry() const { return geometry_; }

  /// The geometry's cached envelope.
  const geom::Envelope& envelope() const { return envelope_; }

  /// DE-9IM matrix of (this, other); identical to
  /// relate::Relate(geometry(), other). Uses the certified fast path when
  /// it applies; `stats`, when non-null, records the outcome.
  IntersectionMatrix Relate(const geom::Geometry& other,
                            RelateStats* stats = nullptr) const;

  /// Prepared-vs-prepared relate: same result as Relate(other.geometry()),
  /// but side B's cached linework, probe points and segment index are
  /// reused instead of being rederived (and its index rebuilt) inside the
  /// call. This is the extractor's hot form: every candidate feature is
  /// prepared once per run and then related against many references.
  IntersectionMatrix Relate(const PreparedGeometry& other,
                            RelateStats* stats = nullptr) const;

  /// `Relate` with the fast path disabled: always runs the full engine.
  /// Reference path for differential tests and A/B benchmarks.
  IntersectionMatrix RelateFull(const geom::Geometry& other) const;

  /// Prepared-vs-prepared form of RelateFull.
  IntersectionMatrix RelateFull(const PreparedGeometry& other) const;

  /// Index-accelerated point location, equal to geom::Locate(p, geometry()).
  geom::Location Locate(const geom::Point& p) const;

  /// \name Predicate conveniences over Relate().
  /// @{
  bool Intersects(const geom::Geometry& other) const;
  bool Disjoint(const geom::Geometry& other) const;
  bool Contains(const geom::Geometry& other) const;
  bool Covers(const geom::Geometry& other) const;
  bool Within(const geom::Geometry& other) const;
  bool Touches(const geom::Geometry& other) const;
  /// @}

 private:
  /// Shared implementation of both Relate overloads. `other_prepared`,
  /// when non-null, is the prepared form of `other` and supplies every
  /// side-B derived quantity (segments, envelope, component reps, indexed
  /// locate); when null they are computed on the fly.
  IntersectionMatrix RelateImpl(const geom::Geometry& other,
                                const PreparedGeometry* other_prepared,
                                RelateStats* stats) const;

  /// The envelope-overlapping (this segment, other segment) index pairs —
  /// the superset of intersecting pairs the engine's cutter pass refines.
  /// `envelope_b` is the operand's envelope (the single index probe).
  std::vector<std::pair<size_t, size_t>> CandidatePairs(
      const geom::Envelope& envelope_b,
      const std::vector<std::pair<geom::Point, geom::Point>>& segs_b) const;

  /// The fast path's linework certificate: true when some envelope-
  /// overlapping segment pair makes actual contact (the engine must run),
  /// false when no pair does (the lineworks certifiably do not meet).
  /// Walks the same pair superset as CandidatePairs without materializing
  /// it, and exits on the first contact.
  bool LineworkContact(
      const geom::Envelope& envelope_b,
      const std::vector<std::pair<geom::Point, geom::Point>>& segs_b) const;

  /// Runs the full relate engine over the precomputed candidate pairs.
  /// `other_prepared` as in RelateImpl; when null, a transient prepared
  /// geometry is built for large operands whose locate it accelerates.
  IntersectionMatrix RelateEngine(
      const geom::Geometry& other, const PreparedGeometry* other_prepared,
      const std::vector<std::pair<geom::Point, geom::Point>>& segs_b,
      const std::vector<std::pair<size_t, size_t>>& candidate_pairs) const;

  geom::Geometry geometry_;
  int dim_ = 0;
  int bdim_ = 0;
  geom::Envelope envelope_;
  std::vector<std::pair<geom::Point, geom::Point>> segments_;
  /// Envelope of each entry of segments_, for the candidate-pair filter.
  std::vector<geom::Envelope> seg_envelopes_;
  std::vector<geom::Point> vertices_;
  std::vector<geom::Point> interior_points_;
  /// One vertex per connected linework component (per ring for areas),
  /// the probes the fast path locates against `other`.
  std::vector<geom::Point> component_reps_;
  index::RTree segment_index_;
  /// Width of the collinearity tolerance band at this geometry's scale
  /// (see BandSlack in prepared.cc for the bound's derivation). Locate's
  /// index probes and the candidate-pair envelope filters are widened by
  /// this much: a point within tolerance of a segment can lie outside the
  /// segment's envelope, so an exact probe would miss the contact.
  double locate_slack_ = 0.0;
  /// True when the geometry is a single polygon/line type whose Locate can
  /// use the generic crossing count over indexed segments.
  bool fast_locate_ = false;
  /// True for a single linestring: Locate runs the indexed on-line test
  /// plus the two-endpoint boundary rule instead of the linear scan.
  bool line_locate_ = false;
};

}  // namespace relate
}  // namespace sfpm

#endif  // SFPM_RELATE_PREPARED_H_
