#ifndef SFPM_RELATE_INTERSECTION_MATRIX_H_
#define SFPM_RELATE_INTERSECTION_MATRIX_H_

#include <array>
#include <string>
#include <string_view>

namespace sfpm {
namespace relate {

/// \brief Dimension value of one DE-9IM cell: F (empty), 0, 1 or 2.
///
/// Stored as an int with F == -1 so `std::max` accumulates evidence
/// naturally as the relate engine discovers intersections.
constexpr int kDimFalse = -1;

/// \brief The dimensionally-extended 9-intersection matrix of Egenhofer &
/// Franzosa / Clementini: for two geometries A and B, the dimension of the
/// intersection of each pair drawn from {interior, boundary, exterior}.
///
/// Rows index A's interior/boundary/exterior; columns index B's.
class IntersectionMatrix {
 public:
  enum Part { kInterior = 0, kBoundary = 1, kExterior = 2 };

  /// All cells start at F.
  IntersectionMatrix() { cells_.fill(kDimFalse); }

  /// Parses a 9-character pattern like "212101212" ('F' for empty cells).
  /// Asserts on malformed input; intended for literals.
  static IntersectionMatrix FromString(std::string_view pattern);

  int at(Part row, Part col) const { return cells_[row * 3 + col]; }

  void set(Part row, Part col, int dim) { cells_[row * 3 + col] = dim; }

  /// Raises the cell to `dim` when `dim` exceeds the current value.
  void UpgradeTo(Part row, Part col, int dim) {
    const size_t i = row * 3 + col;
    if (dim > cells_[i]) cells_[i] = dim;
  }

  /// \brief Matches against a DE-9IM pattern string.
  ///
  /// Pattern characters: 'T' (any non-empty, dim >= 0), 'F' (empty),
  /// '*' (anything), '0' / '1' / '2' (exact dimension).
  bool Matches(std::string_view pattern) const;

  /// Transposed matrix: the matrix of (B, A) given this is of (A, B).
  IntersectionMatrix Transposed() const;

  /// Canonical 9-character form, e.g. "212101212" or "FF2FF1212".
  std::string ToString() const;

  bool operator==(const IntersectionMatrix& o) const {
    return cells_ == o.cells_;
  }

  /// \name Named spatial predicates (OGC semantics).
  ///
  /// `dim_a` / `dim_b` are the topological dimensions of the two operand
  /// geometries; crosses/touches/overlaps are dimension-sensitive.
  /// @{
  bool Disjoint() const;
  bool Intersects() const { return !Disjoint(); }
  bool Equals(int dim_a, int dim_b) const;
  bool Within() const;
  bool Contains() const;
  bool Covers() const;
  bool CoveredBy() const;
  bool Touches(int dim_a, int dim_b) const;
  bool Crosses(int dim_a, int dim_b) const;
  bool Overlaps(int dim_a, int dim_b) const;
  /// @}

 private:
  std::array<int, 9> cells_;
};

}  // namespace relate
}  // namespace sfpm

#endif  // SFPM_RELATE_INTERSECTION_MATRIX_H_
