#ifndef SFPM_RELATE_RELATE_H_
#define SFPM_RELATE_RELATE_H_

#include "geom/geometry.h"
#include "relate/intersection_matrix.h"

namespace sfpm {
namespace relate {

/// \brief Computes the DE-9IM intersection matrix of two geometries.
///
/// The engine is exact for valid, non-degenerate piecewise-linear input:
/// every segment of one geometry is split at each point where it meets the
/// other geometry's linework, after which each open sub-segment lies
/// entirely in one of the other geometry's interior/boundary/exterior and a
/// midpoint probe classifies it. Isolated (dimension-0) intersections come
/// from classifying the union of both vertex sets and all pairwise segment
/// intersection points; the three area cells of polygon/polygon pairs are
/// inferred from boundary evidence plus interior-point probes.
///
/// Assumptions (checked only loosely): rings are closed and simple,
/// multipolygon parts have disjoint interiors, multilinestrings are
/// non-self-overlapping. GEOMETRYCOLLECTION is not supported.
IntersectionMatrix Relate(const geom::Geometry& a, const geom::Geometry& b);

/// Dimension of the boundary of `g`: 1 for areas, 0 for open curves,
/// kDimFalse for points and closed curves (mod-2 rule for multicurves).
int BoundaryDimension(const geom::Geometry& g);

/// \name Named predicate conveniences over Relate().
/// @{
bool Intersects(const geom::Geometry& a, const geom::Geometry& b);
bool Disjoint(const geom::Geometry& a, const geom::Geometry& b);
bool Equals(const geom::Geometry& a, const geom::Geometry& b);
bool Within(const geom::Geometry& a, const geom::Geometry& b);
bool Contains(const geom::Geometry& a, const geom::Geometry& b);
bool Covers(const geom::Geometry& a, const geom::Geometry& b);
bool CoveredBy(const geom::Geometry& a, const geom::Geometry& b);
bool Touches(const geom::Geometry& a, const geom::Geometry& b);
bool Crosses(const geom::Geometry& a, const geom::Geometry& b);
bool Overlaps(const geom::Geometry& a, const geom::Geometry& b);
/// @}

}  // namespace relate
}  // namespace sfpm

#endif  // SFPM_RELATE_RELATE_H_
