#ifndef SFPM_RELATE_RELATE_INTERNAL_H_
#define SFPM_RELATE_RELATE_INTERNAL_H_

#include <functional>
#include <vector>

#include "geom/algorithms.h"
#include "geom/geometry.h"
#include "relate/intersection_matrix.h"

namespace sfpm {
namespace relate {
namespace internal {

/// \brief One operand of the relate engine, with every derived quantity
/// the engine consumes. PreparedGeometry caches these across calls; the
/// plain Relate() entry point computes them per call.
struct RelateSide {
  const geom::Geometry* geometry = nullptr;
  int dim = 0;
  geom::Envelope envelope;
  const std::vector<std::pair<geom::Point, geom::Point>>* segments = nullptr;
  const std::vector<geom::Point>* vertices = nullptr;
  /// Interior probe points, one per polygon part; empty unless dim == 2.
  const std::vector<geom::Point>* interior_points = nullptr;
  /// Point-location against this operand (may be index-accelerated).
  std::function<geom::Location(const geom::Point&)> locate;
};

/// \brief The relate engine over two prepared sides.
///
/// `candidate_pairs`, when non-null, lists the (a-segment, b-segment)
/// index pairs whose envelopes may intersect; pairs not listed are assumed
/// disjoint. Null means all-pairs.
IntersectionMatrix RelateSides(
    const RelateSide& a, const RelateSide& b,
    const std::vector<std::pair<size_t, size_t>>* candidate_pairs);

/// Computes the per-part interior probe points of an areal geometry.
std::vector<geom::Point> InteriorPointsOf(const geom::Geometry& g);

/// \name Closed-form matrices for the certified fast-path outcomes.
///
/// Each reproduces, cell for cell, what RelateSides derives for the
/// corresponding configuration, so a caller that has *proved* the
/// configuration (see PreparedGeometry::Relate) can skip the engine
/// entirely. `dim_*` are geometry dimensions, `bdim_*` boundary
/// dimensions (relate::BoundaryDimension).
/// @{

/// A and B share no points at all.
IntersectionMatrix DisjointMatrix(int dim_a, int bdim_a, int dim_b,
                                  int bdim_b);

/// closure(B) lies strictly inside interior(A); requires dim_a == 2.
IntersectionMatrix ContainsMatrix(int bdim_a, int dim_b, int bdim_b);

/// closure(A) lies strictly inside interior(B); requires dim_b == 2.
IntersectionMatrix WithinMatrix(int dim_a, int bdim_a, int bdim_b);
/// @}

}  // namespace internal
}  // namespace relate
}  // namespace sfpm

#endif  // SFPM_RELATE_RELATE_INTERNAL_H_
