#include "relate/prepared.h"

#include <algorithm>
#include <optional>

#include "relate/relate.h"
#include "relate/relate_internal.h"
#include "util/strings.h"

namespace sfpm {
namespace relate {

using geom::Envelope;
using geom::Geometry;
using geom::GeometryType;
using geom::Location;
using geom::Point;

std::string RelateStats::ToString() const {
  const uint64_t hits = fast_hits();
  const double rate =
      calls == 0 ? 0.0
                 : 100.0 * static_cast<double>(hits) /
                       static_cast<double>(calls);
  return StrFormat(
      "relate calls=%llu fast=%llu (%.1f%%: disjoint=%llu contains=%llu "
      "within=%llu) full=%llu (boundary=%llu inconclusive=%llu) "
      "inferred=%llu skipped=%llu converse=%llu",
      static_cast<unsigned long long>(calls),
      static_cast<unsigned long long>(hits), rate,
      static_cast<unsigned long long>(fast_disjoint),
      static_cast<unsigned long long>(fast_contains),
      static_cast<unsigned long long>(fast_within),
      static_cast<unsigned long long>(misses()),
      static_cast<unsigned long long>(miss_boundary),
      static_cast<unsigned long long>(miss_inconclusive),
      static_cast<unsigned long long>(inferred),
      static_cast<unsigned long long>(inferred_skipped),
      static_cast<unsigned long long>(converse_hits));
}

namespace {

/// Widest distance a point accepted by the tolerance collinearity
/// predicates can sit outside a segment's envelope, for segments drawn
/// from a geometry with envelope `e`.
///
/// PointOnSegment accepts points (a) whose dominant-axis coordinate
/// overshoots the segment by up to kCollinearityRelEps * extent (the
/// endpoint clamp slack), (b) within the Orientation threshold band of
/// the carrier line, whose perpendicular half-width is bounded by
/// 2 * kCollinearityRelEps * min(extent_x, extent_y), and (c) the
/// non-dominant-axis image of the clamp overshoot, at most another
/// kCollinearityRelEps * extent. 4x the relative epsilon at the
/// geometry's scale covers the sum with margin.
double BandSlack(const Envelope& e) {
  return 4.0 * geom::kCollinearityRelEps *
         std::max({1.0, e.Width(), e.Height()});
}

}  // namespace

double CollinearityBandSlack(const Envelope& envelope) {
  return BandSlack(envelope);
}

PreparedGeometry::PreparedGeometry(Geometry g) : geometry_(std::move(g)) {
  dim_ = geometry_.Dimension();
  bdim_ = BoundaryDimension(geometry_);
  envelope_ = geometry_.GetEnvelope();
  segments_ = geom::BoundarySegments(geometry_);
  vertices_ = geom::AllVertices(geometry_);
  interior_points_ = internal::InteriorPointsOf(geometry_);
  component_reps_ = geom::ComponentRepresentatives(geometry_);

  seg_envelopes_.reserve(segments_.size());
  std::vector<std::pair<Envelope, uint64_t>> entries;
  entries.reserve(segments_.size());
  for (size_t i = 0; i < segments_.size(); ++i) {
    seg_envelopes_.emplace_back(segments_[i].first, segments_[i].second);
    entries.emplace_back(seg_envelopes_.back(), i);
  }
  segment_index_.BulkLoad(std::move(entries));

  // The collinearity predicates accept points within a relative tolerance
  // band of a segment, and such a point can sit strictly outside the
  // segment's envelope. Locate's index probes are widened by the band's
  // width at this geometry's scale so tolerance-band boundary hits are
  // never filtered out before PointOnSegment sees them.
  locate_slack_ = BandSlack(envelope_);

  // Even-odd parity over the cached ring segments reproduces
  // LocateInPolygon for valid (multi)polygons. A single linestring gets an
  // indexed on-line test plus its two-endpoint boundary rule; other curve
  // and point types keep the exact generic path (multi-line boundaries
  // need endpoint-degree bookkeeping).
  fast_locate_ = dim_ == 2;
  line_locate_ = geometry_.type() == GeometryType::kLineString &&
                 geometry_.As<geom::LineString>().NumPoints() >= 2;
}

Location PreparedGeometry::Locate(const Point& p) const {
  // The relate engine calls Locate once per midpoint and vertex of the
  // operand — millions of times per extraction run — so this path avoids
  // per-call allocation with a thread-local candidate buffer (Locate stays
  // safe to call concurrently on a shared instance).
  static thread_local std::vector<uint64_t> candidates;

  if (line_locate_) {
    if (!envelope_.Buffered(locate_slack_).Contains(p)) {
      return Location::kExterior;
    }
    candidates.clear();
    segment_index_.Query(Envelope(p).Buffered(locate_slack_), &candidates);
    bool on_line = false;
    for (uint64_t i : candidates) {
      if (geom::PointOnSegment(p, segments_[i].first, segments_[i].second)) {
        on_line = true;
        break;
      }
    }
    if (!on_line) return Location::kExterior;
    const auto& line = geometry_.As<geom::LineString>();
    if (line.IsClosed()) return Location::kInterior;  // No boundary.
    if (p == line.point(0) || p == line.point(line.NumPoints() - 1)) {
      return Location::kBoundary;
    }
    return Location::kInterior;
  }
  if (!fast_locate_) return geom::Locate(p, geometry_);
  if (!envelope_.Buffered(locate_slack_).Contains(p)) {
    return Location::kExterior;
  }

  // One rightward ray-strip query serves both tests: a segment within the
  // tolerance band of p has an envelope within locate_slack_ of p, and p
  // lies in the widened strip, so every boundary-test candidate is among
  // the strip candidates. Each candidate gets the on-segment test
  // (boundary) and contributes to the crossing parity (interior/exterior)
  // in the same pass; the extra slack candidates cannot change parity
  // because a segment straddling y == p.y with its crossing right of p.x
  // already intersects the exact strip.
  candidates.clear();
  segment_index_.Query(Envelope(p.x - locate_slack_, p.y - locate_slack_,
                                envelope_.max_x() + 1.0, p.y + locate_slack_),
                       &candidates);
  bool inside = false;
  for (uint64_t i : candidates) {
    const Point& a = segments_[i].first;
    const Point& b = segments_[i].second;
    if (geom::PointOnSegment(p, a, b)) return Location::kBoundary;
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_at_y = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_at_y > p.x) inside = !inside;
    }
  }
  return inside ? Location::kInterior : Location::kExterior;
}

IntersectionMatrix PreparedGeometry::Relate(const Geometry& other,
                                            RelateStats* stats) const {
  return RelateImpl(other, nullptr, stats);
}

IntersectionMatrix PreparedGeometry::Relate(const PreparedGeometry& other,
                                            RelateStats* stats) const {
  return RelateImpl(other.geometry_, &other, stats);
}

IntersectionMatrix PreparedGeometry::RelateImpl(
    const Geometry& other, const PreparedGeometry* other_prepared,
    RelateStats* stats) const {
  if (stats != nullptr) ++stats->calls;
  if (geometry_.IsEmpty() || other.IsEmpty()) {
    return relate::Relate(geometry_, other);
  }

  const PreparedGeometry* pb = other_prepared;
  const int dim_b = pb != nullptr ? pb->dim_ : other.Dimension();
  const int bdim_b = pb != nullptr ? pb->bdim_ : BoundaryDimension(other);
  const Envelope envelope_b =
      pb != nullptr ? pb->envelope_ : other.GetEnvelope();

  // Certified fast path, step 0: envelopes disjoint by more than the
  // combined tolerance band cannot share a point (the predicates accept
  // near-misses up to each side's band width), and the disjoint matrix is
  // fully determined by the dimensions.
  if (!envelope_.Buffered(locate_slack_ + BandSlack(envelope_b))
           .Intersects(envelope_b)) {
    if (stats != nullptr) ++stats->fast_disjoint;
    return internal::DisjointMatrix(dim_, bdim_, dim_b, bdim_b);
  }

  // The fast path's linework certificate: no envelope-overlapping segment
  // pair makes contact — established with the same IntersectSegments
  // primitive the engine's cutter pass uses, so "no contact" is exactly
  // "the engine would compute no intersection events". The candidate pair
  // list itself is only materialized when the engine actually runs; a
  // certified call never allocates it.
  std::vector<std::pair<Point, Point>> segs_storage;
  if (pb == nullptr) segs_storage = geom::BoundarySegments(other);
  const auto& segs_b = pb != nullptr ? pb->segments_ : segs_storage;
  if (LineworkContact(envelope_b, segs_b)) {
    if (stats != nullptr) ++stats->miss_boundary;
    return RelateEngine(other, pb, segs_b,
                        CandidatePairs(envelope_b, segs_b));
  }

  // No linework intersection is possible, so every connected component of
  // either geometry lies wholly on one side of the other; locating one
  // representative per component classifies the configuration. Boundary
  // hits (an isolated point exactly on the other's linework) and mixed
  // sides are inconclusive — hand those to the full engine.
  std::vector<Point> reps_storage;
  if (pb == nullptr) reps_storage = geom::ComponentRepresentatives(other);
  const auto& reps_b =
      pb != nullptr ? pb->component_reps_ : reps_storage;
  bool b_int = false, b_bnd = false, b_ext = false;
  for (const Point& rep : reps_b) {
    switch (Locate(rep)) {
      case Location::kInterior: b_int = true; break;
      case Location::kBoundary: b_bnd = true; break;
      case Location::kExterior: b_ext = true; break;
    }
  }
  bool a_int = false, a_bnd = false, a_ext = false;
  for (const Point& rep : component_reps_) {
    switch (pb != nullptr ? pb->Locate(rep) : geom::Locate(rep, other)) {
      case Location::kInterior: a_int = true; break;
      case Location::kBoundary: a_bnd = true; break;
      case Location::kExterior: a_ext = true; break;
    }
  }

  if (!b_bnd && !a_bnd) {
    const bool a_all_ext = !a_int;
    const bool b_all_ext = !b_int;
    if (a_all_ext && b_all_ext) {
      if (stats != nullptr) ++stats->fast_disjoint;
      return internal::DisjointMatrix(dim_, bdim_, dim_b, bdim_b);
    }
    if (dim_ == 2 && !b_ext && b_int && a_all_ext) {
      if (stats != nullptr) ++stats->fast_contains;
      return internal::ContainsMatrix(bdim_, dim_b, bdim_b);
    }
    if (dim_b == 2 && !a_ext && a_int && b_all_ext) {
      if (stats != nullptr) ++stats->fast_within;
      return internal::WithinMatrix(dim_, bdim_, bdim_b);
    }
  }

  if (stats != nullptr) ++stats->miss_inconclusive;
  return RelateEngine(other, pb, segs_b, CandidatePairs(envelope_b, segs_b));
}

IntersectionMatrix PreparedGeometry::RelateFull(const Geometry& other) const {
  if (geometry_.IsEmpty() || other.IsEmpty()) {
    return relate::Relate(geometry_, other);
  }
  const auto segs_b = geom::BoundarySegments(other);
  return RelateEngine(other, nullptr, segs_b,
                      CandidatePairs(other.GetEnvelope(), segs_b));
}

IntersectionMatrix PreparedGeometry::RelateFull(
    const PreparedGeometry& other) const {
  if (geometry_.IsEmpty() || other.geometry_.IsEmpty()) {
    return relate::Relate(geometry_, other.geometry_);
  }
  return RelateEngine(other.geometry_, &other, other.segments_,
                      CandidatePairs(other.envelope_, other.segments_));
}

std::vector<std::pair<size_t, size_t>> PreparedGeometry::CandidatePairs(
    const Envelope& envelope_b,
    const std::vector<std::pair<Point, Point>>& segs_b) const {
  // One index probe with the operand's whole envelope yields the short
  // list of this geometry's segments that could pair at all; an operand
  // whose envelope clears the linework entirely (deep inside a district,
  // say) settles for that single probe. The pair filter then runs in two
  // levels: operand segments are walked in runs of consecutive segments —
  // linework is spatially coherent, so a run's envelope stays tight — and
  // the near list is filtered against the run envelope first, so each
  // near segment is tested once per run, not once per operand segment.
  // The emitted pair order (operand index ascending, near order within)
  // is exactly the single-level order.
  //
  // Every envelope test is slack-buffered: two segments can make contact
  // under the tolerance predicates while their exact envelopes are
  // disjoint by up to the combined band width (one near-miss band per
  // operand). Buffering only the b-side boxes by the sum is equivalent to
  // buffering each side by its own share.
  std::vector<std::pair<size_t, size_t>> pairs;
  if (segs_b.empty() || segments_.empty()) return pairs;
  const double slack = locate_slack_ + BandSlack(envelope_b);
  static thread_local std::vector<uint64_t> near;
  static thread_local std::vector<uint64_t> run_near;
  near.clear();
  segment_index_.Query(envelope_b.Buffered(slack), &near);
  if (near.empty()) return pairs;
  constexpr size_t kRun = 8;
  for (size_t j0 = 0; j0 < segs_b.size(); j0 += kRun) {
    const size_t j1 = std::min(j0 + kRun, segs_b.size());
    Envelope run_env(segs_b[j0].first, segs_b[j0].second);
    for (size_t j = j0 + 1; j < j1; ++j) {
      run_env.ExpandToInclude(Envelope(segs_b[j].first, segs_b[j].second));
    }
    run_env = run_env.Buffered(slack);
    run_near.clear();
    for (uint64_t ia : near) {
      if (run_env.Intersects(seg_envelopes_[ia])) run_near.push_back(ia);
    }
    if (run_near.empty()) continue;
    for (size_t j = j0; j < j1; ++j) {
      const Envelope eb =
          Envelope(segs_b[j].first, segs_b[j].second).Buffered(slack);
      for (uint64_t ia : run_near) {
        if (eb.Intersects(seg_envelopes_[ia])) {
          pairs.emplace_back(static_cast<size_t>(ia), j);
        }
      }
    }
  }
  return pairs;
}

bool PreparedGeometry::LineworkContact(
    const Envelope& envelope_b,
    const std::vector<std::pair<Point, Point>>& segs_b) const {
  // Mirrors CandidatePairs' two-level filter, but tests each surviving
  // pair for actual contact immediately instead of collecting it, and
  // returns on the first contact found — misses pay for a prefix of the
  // sweep, certified calls never allocate a pair list. Envelope tests are
  // slack-buffered for the same reason as in CandidatePairs.
  if (segs_b.empty() || segments_.empty()) return false;
  const double slack = locate_slack_ + BandSlack(envelope_b);
  static thread_local std::vector<uint64_t> near;
  static thread_local std::vector<uint64_t> run_near;
  near.clear();
  segment_index_.Query(envelope_b.Buffered(slack), &near);
  if (near.empty()) return false;
  constexpr size_t kRun = 8;
  for (size_t j0 = 0; j0 < segs_b.size(); j0 += kRun) {
    const size_t j1 = std::min(j0 + kRun, segs_b.size());
    Envelope run_env(segs_b[j0].first, segs_b[j0].second);
    for (size_t j = j0 + 1; j < j1; ++j) {
      run_env.ExpandToInclude(Envelope(segs_b[j].first, segs_b[j].second));
    }
    run_env = run_env.Buffered(slack);
    run_near.clear();
    for (uint64_t ia : near) {
      if (run_env.Intersects(seg_envelopes_[ia])) run_near.push_back(ia);
    }
    if (run_near.empty()) continue;
    for (size_t j = j0; j < j1; ++j) {
      const Envelope eb =
          Envelope(segs_b[j].first, segs_b[j].second).Buffered(slack);
      for (uint64_t ia : run_near) {
        if (eb.Intersects(seg_envelopes_[ia]) &&
            geom::SegmentsIntersect(segments_[ia].first, segments_[ia].second,
                                    segs_b[j].first, segs_b[j].second)) {
          return true;
        }
      }
    }
  }
  return false;
}

IntersectionMatrix PreparedGeometry::RelateEngine(
    const Geometry& other, const PreparedGeometry* other_prepared,
    const std::vector<std::pair<Point, Point>>& segs_b,
    const std::vector<std::pair<size_t, size_t>>& candidate_pairs) const {
  // The engine locates every midpoint and vertex of this geometry inside
  // `other`; geom::Locate is linear in the operand's segments, so for
  // linework-heavy operands that term is O(|A| * |B|) and dominates.
  // When the caller did not hand us a prepared operand, build a transient
  // one to buy an indexed locate (plus its vertex and probe lists) for one
  // O(|B| log |B|) build — but only when preparation actually accelerates
  // locate (areas and single linestrings) and the operand is big enough
  // for the build to pay off.
  constexpr size_t kPrepareOtherThreshold = 24;
  std::optional<PreparedGeometry> transient_b;
  const PreparedGeometry* pb = other_prepared;
  if (pb == nullptr && segs_b.size() >= kPrepareOtherThreshold &&
      (other.Dimension() == 2 ||
       other.type() == geom::GeometryType::kLineString)) {
    transient_b.emplace(other);
    pb = &*transient_b;
  }

  std::vector<Point> verts_storage, probes_storage;
  if (pb == nullptr) {
    verts_storage = geom::AllVertices(other);
    probes_storage = internal::InteriorPointsOf(other);
  }
  const std::vector<Point>& verts_b =
      pb != nullptr ? pb->vertices_ : verts_storage;
  const std::vector<Point>& probes_b =
      pb != nullptr ? pb->interior_points_ : probes_storage;

  internal::RelateSide side_a;
  side_a.geometry = &geometry_;
  side_a.dim = dim_;
  side_a.envelope = envelope_;
  side_a.segments = &segments_;
  side_a.vertices = &vertices_;
  side_a.interior_points = &interior_points_;
  side_a.locate = [this](const Point& p) { return Locate(p); };

  internal::RelateSide side_b;
  side_b.geometry = &other;
  side_b.dim = other.Dimension();
  side_b.envelope = pb != nullptr ? pb->envelope_ : other.GetEnvelope();
  side_b.segments = &segs_b;
  side_b.vertices = &verts_b;
  side_b.interior_points = &probes_b;
  if (pb != nullptr) {
    side_b.locate = [pb](const Point& p) { return pb->Locate(p); };
  } else {
    side_b.locate = [&other](const Point& p) {
      return geom::Locate(p, other);
    };
  }

  return internal::RelateSides(side_a, side_b, &candidate_pairs);
}

// The envelope short-circuits below are slack-buffered so they can never
// contradict Relate: the tolerance predicates accept contacts between
// geometries whose exact envelopes are disjoint (or not nested) by up to
// the combined band width.

bool PreparedGeometry::Intersects(const Geometry& other) const {
  const Envelope env_b = other.GetEnvelope();
  if (!envelope_.Buffered(locate_slack_ + BandSlack(env_b))
           .Intersects(env_b)) {
    return false;
  }
  return Relate(other).Intersects();
}

bool PreparedGeometry::Disjoint(const Geometry& other) const {
  return !Intersects(other);
}

bool PreparedGeometry::Contains(const Geometry& other) const {
  const Envelope env_b = other.GetEnvelope();
  if (!envelope_.Buffered(locate_slack_ + BandSlack(env_b)).Contains(env_b)) {
    return false;
  }
  return Relate(other).Contains();
}

bool PreparedGeometry::Covers(const Geometry& other) const {
  const Envelope env_b = other.GetEnvelope();
  if (!envelope_.Buffered(locate_slack_ + BandSlack(env_b)).Contains(env_b)) {
    return false;
  }
  return Relate(other).Covers();
}

bool PreparedGeometry::Within(const Geometry& other) const {
  const Envelope env_b = other.GetEnvelope();
  if (!env_b.Buffered(locate_slack_ + BandSlack(env_b)).Contains(envelope_)) {
    return false;
  }
  return Relate(other).Within();
}

bool PreparedGeometry::Touches(const Geometry& other) const {
  const Envelope env_b = other.GetEnvelope();
  if (!envelope_.Buffered(locate_slack_ + BandSlack(env_b))
           .Intersects(env_b)) {
    return false;
  }
  return Relate(other).Touches(dim_, other.Dimension());
}

}  // namespace relate
}  // namespace sfpm
