#include "relate/prepared.h"

#include "relate/relate.h"
#include "relate/relate_internal.h"

namespace sfpm {
namespace relate {

using geom::Envelope;
using geom::Geometry;
using geom::GeometryType;
using geom::Location;
using geom::Point;

PreparedGeometry::PreparedGeometry(Geometry g) : geometry_(std::move(g)) {
  dim_ = geometry_.Dimension();
  envelope_ = geometry_.GetEnvelope();
  segments_ = geom::BoundarySegments(geometry_);
  vertices_ = geom::AllVertices(geometry_);
  interior_points_ = internal::InteriorPointsOf(geometry_);

  std::vector<std::pair<Envelope, uint64_t>> entries;
  entries.reserve(segments_.size());
  for (size_t i = 0; i < segments_.size(); ++i) {
    entries.emplace_back(Envelope(segments_[i].first, segments_[i].second),
                         i);
  }
  segment_index_.BulkLoad(std::move(entries));

  // Even-odd parity over the cached ring segments reproduces
  // LocateInPolygon for valid (multi)polygons; curves and points keep the
  // exact generic path (their boundary needs endpoint-degree bookkeeping).
  fast_locate_ = dim_ == 2;
}

Location PreparedGeometry::Locate(const Point& p) const {
  if (!fast_locate_) return geom::Locate(p, geometry_);
  if (!envelope_.Contains(p)) return Location::kExterior;

  // Boundary test over segments whose envelope contains the point.
  std::vector<uint64_t> candidates;
  segment_index_.Query(Envelope(p), &candidates);
  for (uint64_t i : candidates) {
    if (geom::PointOnSegment(p, segments_[i].first, segments_[i].second)) {
      return Location::kBoundary;
    }
  }

  // Crossing-number test along the rightward ray, restricted to segments
  // whose envelope meets the ray strip.
  candidates.clear();
  segment_index_.Query(Envelope(p.x, p.y, envelope_.max_x() + 1.0, p.y),
                       &candidates);
  bool inside = false;
  for (uint64_t i : candidates) {
    const Point& a = segments_[i].first;
    const Point& b = segments_[i].second;
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_at_y = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_at_y > p.x) inside = !inside;
    }
  }
  return inside ? Location::kInterior : Location::kExterior;
}

IntersectionMatrix PreparedGeometry::Relate(const Geometry& other) const {
  if (geometry_.IsEmpty() || other.IsEmpty()) {
    return relate::Relate(geometry_, other);
  }

  const auto segs_b = geom::BoundarySegments(other);
  const auto verts_b = geom::AllVertices(other);
  const auto probes_b = internal::InteriorPointsOf(other);

  // Candidate segment pairs from the prepared index.
  std::vector<std::pair<size_t, size_t>> candidate_pairs;
  std::vector<uint64_t> hits;
  for (size_t j = 0; j < segs_b.size(); ++j) {
    hits.clear();
    segment_index_.Query(Envelope(segs_b[j].first, segs_b[j].second), &hits);
    for (uint64_t ia : hits) {
      candidate_pairs.emplace_back(static_cast<size_t>(ia), j);
    }
  }

  internal::RelateSide side_a;
  side_a.geometry = &geometry_;
  side_a.dim = dim_;
  side_a.envelope = envelope_;
  side_a.segments = &segments_;
  side_a.vertices = &vertices_;
  side_a.interior_points = &interior_points_;
  side_a.locate = [this](const Point& p) { return Locate(p); };

  internal::RelateSide side_b;
  side_b.geometry = &other;
  side_b.dim = other.Dimension();
  side_b.envelope = other.GetEnvelope();
  side_b.segments = &segs_b;
  side_b.vertices = &verts_b;
  side_b.interior_points = &probes_b;
  side_b.locate = [&other](const Point& p) { return geom::Locate(p, other); };

  return internal::RelateSides(side_a, side_b, &candidate_pairs);
}

bool PreparedGeometry::Intersects(const Geometry& other) const {
  // Envelope short-circuit: disjoint envelopes cannot intersect.
  if (!envelope_.Intersects(other.GetEnvelope())) return false;
  return Relate(other).Intersects();
}

bool PreparedGeometry::Disjoint(const Geometry& other) const {
  return !Intersects(other);
}

bool PreparedGeometry::Contains(const Geometry& other) const {
  if (!envelope_.Contains(other.GetEnvelope())) return false;
  return Relate(other).Contains();
}

bool PreparedGeometry::Covers(const Geometry& other) const {
  if (!envelope_.Contains(other.GetEnvelope())) return false;
  return Relate(other).Covers();
}

bool PreparedGeometry::Within(const Geometry& other) const {
  if (!other.GetEnvelope().Contains(envelope_)) return false;
  return Relate(other).Within();
}

bool PreparedGeometry::Touches(const Geometry& other) const {
  if (!envelope_.Intersects(other.GetEnvelope())) return false;
  return Relate(other).Touches(dim_, other.Dimension());
}

}  // namespace relate
}  // namespace sfpm
