#include "relate/relate.h"

#include <map>
#include <vector>

#include "geom/algorithms.h"
#include "relate/relate_internal.h"

namespace sfpm {
namespace relate {

using geom::Decompose;
using geom::Geometry;
using geom::GeometryType;
using geom::LineString;
using geom::Location;
using geom::Point;
using geom::Polygon;

namespace internal {

namespace {

IntersectionMatrix::Part PartOf(Location loc) {
  switch (loc) {
    case Location::kInterior:
      return IntersectionMatrix::kInterior;
    case Location::kBoundary:
      return IntersectionMatrix::kBoundary;
    case Location::kExterior:
      return IntersectionMatrix::kExterior;
  }
  return IntersectionMatrix::kExterior;
}

/// Per-segment cutter lists derived from the candidate pair set (or the
/// full cross product when no candidate set is supplied).
struct CutterLists {
  // cutters_for_a[i] = indices of B segments possibly meeting A segment i.
  std::vector<std::vector<size_t>> for_a;
  std::vector<std::vector<size_t>> for_b;
};

CutterLists BuildCutterLists(
    size_t num_a, size_t num_b,
    const std::vector<std::pair<size_t, size_t>>* candidate_pairs) {
  CutterLists lists;
  lists.for_a.resize(num_a);
  lists.for_b.resize(num_b);
  if (candidate_pairs != nullptr) {
    for (const auto& [ia, ib] : *candidate_pairs) {
      lists.for_a[ia].push_back(ib);
      lists.for_b[ib].push_back(ia);
    }
  } else {
    std::vector<size_t> all_b(num_b);
    for (size_t i = 0; i < num_b; ++i) all_b[i] = i;
    std::vector<size_t> all_a(num_a);
    for (size_t i = 0; i < num_a; ++i) all_a[i] = i;
    for (auto& v : lists.for_a) v = all_b;
    for (auto& v : lists.for_b) v = all_a;
  }
  return lists;
}

/// Classifies the linework of one side against the other geometry,
/// recording dimension-1 evidence. `row` is the DE-9IM part the linework
/// belongs to (boundary for areas, interior for curves); with `transpose`
/// the evidence lands with rows and columns swapped so one function serves
/// both passes.
void ClassifyLinework(const RelateSide& subject, const RelateSide& other,
                      const std::vector<std::vector<size_t>>& cutters_for,
                      IntersectionMatrix::Part row, bool transpose,
                      IntersectionMatrix* mat) {
  const auto& segs = *subject.segments;
  const auto& other_segs = *other.segments;
  std::vector<std::pair<Point, Point>> cutters;
  for (size_t i = 0; i < segs.size(); ++i) {
    const auto& [s, t] = segs[i];
    if (s == t) continue;  // Degenerate segment carries no 1-dim evidence.
    // Envelope short-circuit: a segment that cannot reach the other
    // geometry's envelope lies entirely in its exterior.
    if (!other.envelope.Intersects(geom::Envelope(s, t))) {
      if (transpose) {
        mat->UpgradeTo(IntersectionMatrix::kExterior, row, 1);
      } else {
        mat->UpgradeTo(row, IntersectionMatrix::kExterior, 1);
      }
      continue;
    }
    cutters.clear();
    for (size_t j : cutters_for[i]) cutters.push_back(other_segs[j]);

    std::vector<Point> waypoints;
    waypoints.push_back(s);
    for (const Point& cut : geom::SplitPointsOnSegment(s, t, cutters)) {
      waypoints.push_back(cut);
    }
    waypoints.push_back(t);
    for (size_t w = 1; w < waypoints.size(); ++w) {
      const Point mid((waypoints[w - 1].x + waypoints[w].x) / 2.0,
                      (waypoints[w - 1].y + waypoints[w].y) / 2.0);
      // A 1-dimensional piece minus finitely many points stays
      // 1-dimensional, and a point set cannot contain a whole piece: the
      // generic location relative to a 0-dim geometry is exterior.
      const Location loc =
          other.dim == 0 ? Location::kExterior : other.locate(mid);
      const IntersectionMatrix::Part col = PartOf(loc);
      if (transpose) {
        mat->UpgradeTo(col, row, 1);
      } else {
        mat->UpgradeTo(row, col, 1);
      }
    }
  }
}

}  // namespace

std::vector<Point> InteriorPointsOf(const Geometry& g) {
  std::vector<Point> points;
  if (g.Dimension() != 2) return points;
  for (const Geometry& part : Decompose(g)) {
    if (!part.IsEmpty()) {
      points.push_back(geom::InteriorPoint(part.As<Polygon>()));
    }
  }
  return points;
}

IntersectionMatrix RelateSides(
    const RelateSide& a, const RelateSide& b,
    const std::vector<std::pair<size_t, size_t>>* candidate_pairs) {
  IntersectionMatrix mat;
  mat.set(IntersectionMatrix::kExterior, IntersectionMatrix::kExterior, 2);

  const IntersectionMatrix::Part linework_a =
      a.dim == 2 ? IntersectionMatrix::kBoundary : IntersectionMatrix::kInterior;
  const IntersectionMatrix::Part linework_b =
      b.dim == 2 ? IntersectionMatrix::kBoundary : IntersectionMatrix::kInterior;

  const CutterLists cutters =
      BuildCutterLists(a.segments->size(), b.segments->size(),
                       candidate_pairs);

  // Passes 1 & 2: 1-dimensional evidence from split linework.
  ClassifyLinework(a, b, cutters.for_a, linework_a, /*transpose=*/false,
                   &mat);
  ClassifyLinework(b, a, cutters.for_b, linework_b, /*transpose=*/true,
                   &mat);

  // Pass 3: 0-dimensional evidence from event points — every vertex of
  // both geometries plus every pairwise segment intersection point.
  std::vector<Point> events = *a.vertices;
  events.insert(events.end(), b.vertices->begin(), b.vertices->end());
  for (size_t ia = 0; ia < a.segments->size(); ++ia) {
    const auto& [a1, a2] = (*a.segments)[ia];
    for (size_t ib : cutters.for_a[ia]) {
      const auto& [b1, b2] = (*b.segments)[ib];
      const geom::SegmentIntersection isect =
          geom::IntersectSegments(a1, a2, b1, b2);
      switch (isect.kind) {
        case geom::SegmentIntersection::Kind::kNone:
          break;
        case geom::SegmentIntersection::Kind::kPoint:
          events.push_back(isect.p);
          break;
        case geom::SegmentIntersection::Kind::kOverlap:
          events.push_back(isect.p);
          events.push_back(isect.q);
          break;
      }
    }
  }
  for (const Point& v : events) {
    const Location loc_a =
        a.envelope.Contains(v) ? a.locate(v) : Location::kExterior;
    const Location loc_b =
        b.envelope.Contains(v) ? b.locate(v) : Location::kExterior;
    mat.UpgradeTo(PartOf(loc_a), PartOf(loc_b), 0);
  }

  // Pass 4: area inference. An interior of positive area minus a
  // lower-dimensional set keeps dimension 2.
  if (a.dim == 2 && b.dim <= 1) {
    mat.UpgradeTo(IntersectionMatrix::kInterior, IntersectionMatrix::kExterior,
                  2);
  }
  if (b.dim == 2 && a.dim <= 1) {
    mat.UpgradeTo(IntersectionMatrix::kExterior, IntersectionMatrix::kInterior,
                  2);
  }

  if (a.dim == 2 && b.dim == 2) {
    // Boundary-derived flags. A boundary point of a valid polygon is a
    // limit of both its interior and exterior, so boundary evidence inside
    // the other polygon's interior implies area-area overlap on both sides.
    const bool a_bnd_in_b_int =
        mat.at(IntersectionMatrix::kBoundary, IntersectionMatrix::kInterior) >=
        0;
    const bool b_bnd_in_a_int =
        mat.at(IntersectionMatrix::kInterior, IntersectionMatrix::kBoundary) >=
        0;
    const bool a_bnd_in_b_ext =
        mat.at(IntersectionMatrix::kBoundary, IntersectionMatrix::kExterior) >=
        0;
    const bool b_bnd_in_a_ext =
        mat.at(IntersectionMatrix::kExterior, IntersectionMatrix::kBoundary) >=
        0;

    // Interior-point probes, one per polygon part of each operand.
    bool ip_a_int = false, ip_a_bnd = false, ip_a_ext = false;
    bool ip_b_int = false, ip_b_bnd = false, ip_b_ext = false;
    for (const Point& probe : *a.interior_points) {
      const Location loc = b.locate(probe);
      ip_a_int |= loc == Location::kInterior;
      ip_a_bnd |= loc == Location::kBoundary;
      ip_a_ext |= loc == Location::kExterior;
    }
    for (const Point& probe : *b.interior_points) {
      const Location loc = a.locate(probe);
      ip_b_int |= loc == Location::kInterior;
      ip_b_bnd |= loc == Location::kBoundary;
      ip_b_ext |= loc == Location::kExterior;
    }

    if (a_bnd_in_b_int || b_bnd_in_a_int || ip_a_int || ip_b_int || ip_a_bnd ||
        ip_b_bnd) {
      mat.UpgradeTo(IntersectionMatrix::kInterior,
                    IntersectionMatrix::kInterior, 2);
    }
    if (a_bnd_in_b_ext || b_bnd_in_a_int || ip_a_ext || ip_a_bnd) {
      mat.UpgradeTo(IntersectionMatrix::kInterior,
                    IntersectionMatrix::kExterior, 2);
    }
    if (b_bnd_in_a_ext || a_bnd_in_b_int || ip_b_ext || ip_b_bnd) {
      mat.UpgradeTo(IntersectionMatrix::kExterior,
                    IntersectionMatrix::kInterior, 2);
    }
  }

  return mat;
}

IntersectionMatrix DisjointMatrix(int dim_a, int bdim_a, int dim_b,
                                  int bdim_b) {
  IntersectionMatrix mat;
  mat.set(IntersectionMatrix::kInterior, IntersectionMatrix::kExterior, dim_a);
  mat.set(IntersectionMatrix::kBoundary, IntersectionMatrix::kExterior,
          bdim_a);
  mat.set(IntersectionMatrix::kExterior, IntersectionMatrix::kInterior, dim_b);
  mat.set(IntersectionMatrix::kExterior, IntersectionMatrix::kBoundary,
          bdim_b);
  mat.set(IntersectionMatrix::kExterior, IntersectionMatrix::kExterior, 2);
  return mat;
}

IntersectionMatrix ContainsMatrix(int bdim_a, int dim_b, int bdim_b) {
  // With closure(B) inside interior(A): B's interior and boundary fall in
  // A's interior at their own dimensions; A keeps its full boundary and
  // interior in B's exterior (interior at dimension 2 because removing the
  // lower-dimensional B cannot reduce an area's dimension).
  IntersectionMatrix mat;
  mat.set(IntersectionMatrix::kInterior, IntersectionMatrix::kInterior,
          dim_b);
  mat.set(IntersectionMatrix::kInterior, IntersectionMatrix::kBoundary,
          bdim_b);
  mat.set(IntersectionMatrix::kInterior, IntersectionMatrix::kExterior, 2);
  mat.set(IntersectionMatrix::kBoundary, IntersectionMatrix::kExterior,
          bdim_a);
  mat.set(IntersectionMatrix::kExterior, IntersectionMatrix::kExterior, 2);
  return mat;
}

IntersectionMatrix WithinMatrix(int dim_a, int bdim_a, int bdim_b) {
  return ContainsMatrix(bdim_b, dim_a, bdim_a).Transposed();
}

}  // namespace internal

int BoundaryDimension(const Geometry& g) {
  switch (g.type()) {
    case GeometryType::kPoint:
    case GeometryType::kMultiPoint:
      return kDimFalse;
    case GeometryType::kLineString:
      return g.As<LineString>().IsClosed() ? kDimFalse : 0;
    case GeometryType::kMultiLineString: {
      // Mod-2 rule: the boundary is the set of points that are endpoints of
      // an odd number of member curves.
      std::map<std::pair<double, double>, int> endpoint_count;
      for (const LineString& l : g.As<geom::MultiLineString>().lines()) {
        if (l.IsEmpty() || l.IsClosed()) continue;
        ++endpoint_count[{l.points().front().x, l.points().front().y}];
        ++endpoint_count[{l.points().back().x, l.points().back().y}];
      }
      for (const auto& [pt, count] : endpoint_count) {
        if (count % 2 == 1) return 0;
      }
      return kDimFalse;
    }
    case GeometryType::kPolygon:
    case GeometryType::kMultiPolygon:
      return 1;
  }
  return kDimFalse;
}

IntersectionMatrix Relate(const Geometry& a, const Geometry& b) {
  IntersectionMatrix mat;
  mat.set(IntersectionMatrix::kExterior, IntersectionMatrix::kExterior, 2);

  const bool a_empty = a.IsEmpty();
  const bool b_empty = b.IsEmpty();
  if (a_empty && b_empty) return mat;
  if (a_empty) {
    mat.set(IntersectionMatrix::kExterior, IntersectionMatrix::kInterior,
            b.Dimension());
    mat.set(IntersectionMatrix::kExterior, IntersectionMatrix::kBoundary,
            BoundaryDimension(b));
    return mat;
  }
  if (b_empty) {
    mat.set(IntersectionMatrix::kInterior, IntersectionMatrix::kExterior,
            a.Dimension());
    mat.set(IntersectionMatrix::kBoundary, IntersectionMatrix::kExterior,
            BoundaryDimension(a));
    return mat;
  }

  const auto segs_a = geom::BoundarySegments(a);
  const auto segs_b = geom::BoundarySegments(b);
  const auto verts_a = geom::AllVertices(a);
  const auto verts_b = geom::AllVertices(b);
  const auto probes_a = internal::InteriorPointsOf(a);
  const auto probes_b = internal::InteriorPointsOf(b);

  internal::RelateSide side_a;
  side_a.geometry = &a;
  side_a.dim = a.Dimension();
  side_a.envelope = a.GetEnvelope();
  side_a.segments = &segs_a;
  side_a.vertices = &verts_a;
  side_a.interior_points = &probes_a;
  side_a.locate = [&a](const Point& p) { return geom::Locate(p, a); };

  internal::RelateSide side_b;
  side_b.geometry = &b;
  side_b.dim = b.Dimension();
  side_b.envelope = b.GetEnvelope();
  side_b.segments = &segs_b;
  side_b.vertices = &verts_b;
  side_b.interior_points = &probes_b;
  side_b.locate = [&b](const Point& p) { return geom::Locate(p, b); };

  return internal::RelateSides(side_a, side_b, nullptr);
}

bool Intersects(const Geometry& a, const Geometry& b) {
  return Relate(a, b).Intersects();
}

bool Disjoint(const Geometry& a, const Geometry& b) {
  return Relate(a, b).Disjoint();
}

bool Equals(const Geometry& a, const Geometry& b) {
  return Relate(a, b).Equals(a.Dimension(), b.Dimension());
}

bool Within(const Geometry& a, const Geometry& b) {
  return Relate(a, b).Within();
}

bool Contains(const Geometry& a, const Geometry& b) {
  return Relate(a, b).Contains();
}

bool Covers(const Geometry& a, const Geometry& b) {
  return Relate(a, b).Covers();
}

bool CoveredBy(const Geometry& a, const Geometry& b) {
  return Relate(a, b).CoveredBy();
}

bool Touches(const Geometry& a, const Geometry& b) {
  return Relate(a, b).Touches(a.Dimension(), b.Dimension());
}

bool Crosses(const Geometry& a, const Geometry& b) {
  return Relate(a, b).Crosses(a.Dimension(), b.Dimension());
}

bool Overlaps(const Geometry& a, const Geometry& b) {
  return Relate(a, b).Overlaps(a.Dimension(), b.Dimension());
}

}  // namespace relate
}  // namespace sfpm
