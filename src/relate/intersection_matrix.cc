#include "relate/intersection_matrix.h"

#include <cassert>

namespace sfpm {
namespace relate {

namespace {

int CellFromChar(char c) {
  switch (c) {
    case 'F':
    case 'f':
      return kDimFalse;
    case '0':
      return 0;
    case '1':
      return 1;
    case '2':
      return 2;
  }
  assert(false && "invalid DE-9IM cell character");
  return kDimFalse;
}

bool CellMatches(int dim, char pattern) {
  switch (pattern) {
    case '*':
      return true;
    case 'T':
    case 't':
      return dim >= 0;
    case 'F':
    case 'f':
      return dim == kDimFalse;
    case '0':
      return dim == 0;
    case '1':
      return dim == 1;
    case '2':
      return dim == 2;
  }
  assert(false && "invalid DE-9IM pattern character");
  return false;
}

}  // namespace

IntersectionMatrix IntersectionMatrix::FromString(std::string_view pattern) {
  assert(pattern.size() == 9);
  IntersectionMatrix m;
  for (size_t i = 0; i < 9; ++i) {
    m.cells_[i] = CellFromChar(pattern[i]);
  }
  return m;
}

bool IntersectionMatrix::Matches(std::string_view pattern) const {
  assert(pattern.size() == 9);
  for (size_t i = 0; i < 9; ++i) {
    if (!CellMatches(cells_[i], pattern[i])) return false;
  }
  return true;
}

IntersectionMatrix IntersectionMatrix::Transposed() const {
  IntersectionMatrix t;
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      t.cells_[c * 3 + r] = cells_[r * 3 + c];
    }
  }
  return t;
}

std::string IntersectionMatrix::ToString() const {
  std::string out(9, 'F');
  for (size_t i = 0; i < 9; ++i) {
    if (cells_[i] >= 0) out[i] = static_cast<char>('0' + cells_[i]);
  }
  return out;
}

bool IntersectionMatrix::Disjoint() const { return Matches("FF*FF****"); }

bool IntersectionMatrix::Equals(int dim_a, int dim_b) const {
  return dim_a == dim_b && Matches("T*F**FFF*");
}

bool IntersectionMatrix::Within() const { return Matches("T*F**F***"); }

bool IntersectionMatrix::Contains() const { return Matches("T*****FF*"); }

bool IntersectionMatrix::Covers() const {
  return Matches("T*****FF*") || Matches("*T****FF*") ||
         Matches("***T**FF*") || Matches("****T*FF*");
}

bool IntersectionMatrix::CoveredBy() const {
  return Matches("T*F**F***") || Matches("*TF**F***") ||
         Matches("**FT*F***") || Matches("**F*TF***");
}

bool IntersectionMatrix::Touches(int dim_a, int dim_b) const {
  // Touching is defined only when not both operands are points.
  if (dim_a == 0 && dim_b == 0) return false;
  return Matches("FT*******") || Matches("F**T*****") || Matches("F***T****");
}

bool IntersectionMatrix::Crosses(int dim_a, int dim_b) const {
  if (dim_a < dim_b) return Matches("T*T******");
  if (dim_a > dim_b) return Matches("T*****T**");
  if (dim_a == 1 && dim_b == 1) return Matches("0********");
  return false;
}

bool IntersectionMatrix::Overlaps(int dim_a, int dim_b) const {
  if (dim_a != dim_b) return false;
  if (dim_a == 1) return Matches("1*T***T**");
  return Matches("T*T***T**");  // Points and areas.
}

}  // namespace relate
}  // namespace sfpm
