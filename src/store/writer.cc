#include "store/writer.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/bytes.h"
#include "store/crc32.h"
#include "store/geometry_codec.h"
#include "util/version.h"

namespace sfpm {
namespace store {

namespace {

void EncodeItems(const core::TransactionDb& db, ByteWriter* w) {
  for (size_t i = 0; i < db.NumItems(); ++i) {
    const auto id = static_cast<core::ItemId>(i);
    w->Str(db.Label(id));
    w->Str(db.Key(id));
  }
}

std::string EncodeDbPayload(const core::TransactionDb& db,
                            const feature::PredicateTable* table) {
  ByteWriter w;
  w.U32(kSectionCodecVersion);
  w.U64(db.NumTransactions());
  w.U64(db.NumItems());
  w.U64(db.NumWords());
  EncodeItems(db, &w);
  w.U8(table != nullptr ? 1 : 0);
  if (table != nullptr) {
    for (size_t row = 0; row < table->NumRows(); ++row) {
      w.Str(table->RowName(row));
    }
  }
  // The bitmap columns are 8-aligned within the payload (and payloads are
  // 8-aligned in the file), so a reader can hand out zero-copy word
  // pointers straight into the mapping.
  w.AlignTo8();
  for (size_t i = 0; i < db.NumItems(); ++i) {
    w.Words(db.ColumnWords(static_cast<core::ItemId>(i)), db.NumWords());
  }
  w.AlignTo8();
  return w.TakeBytes();
}

}  // namespace

PatternSet PatternSet::FromResult(const core::TransactionDb& db,
                                  const core::AprioriResult& result,
                                  double min_support, std::string algorithm,
                                  std::string filter) {
  PatternSet out;
  out.labels.reserve(db.NumItems());
  out.keys.reserve(db.NumItems());
  for (size_t i = 0; i < db.NumItems(); ++i) {
    const auto id = static_cast<core::ItemId>(i);
    out.labels.push_back(db.Label(id));
    out.keys.push_back(db.Key(id));
  }
  out.itemsets = result.itemsets();
  out.min_support = min_support;
  out.algorithm = std::move(algorithm);
  out.filter = std::move(filter);
  return out;
}

bool PatternSet::operator==(const PatternSet& o) const {
  if (labels != o.labels || keys != o.keys ||
      itemsets.size() != o.itemsets.size() ||
      min_support != o.min_support || algorithm != o.algorithm ||
      filter != o.filter) {
    return false;
  }
  for (size_t i = 0; i < itemsets.size(); ++i) {
    if (itemsets[i].support != o.itemsets[i].support ||
        itemsets[i].items.items() != o.itemsets[i].items.items()) {
      return false;
    }
  }
  return true;
}

void SnapshotWriter::AddLayer(const feature::Layer& layer) {
  ByteWriter w;
  w.U32(kSectionCodecVersion);
  w.Str(layer.feature_type());
  w.Str(layer.name());
  w.U64(layer.Size());
  for (const feature::Feature& f : layer.features()) {
    w.U64(f.id());
    EncodeGeometry(f.geometry(), &w);
    w.U32(static_cast<uint32_t>(f.attributes().size()));
    for (const auto& [key, value] : f.attributes()) {  // std::map: sorted.
      w.Str(key);
      w.Str(value);
    }
  }
  w.AlignTo8();
  Add(SectionType::kLayer, layer.feature_type(), w.TakeBytes());
}

void SnapshotWriter::AddTable(const feature::PredicateTable& table,
                              const std::string& name) {
  Add(SectionType::kTransactionDb, name, EncodeDbPayload(table.db(), &table));
}

void SnapshotWriter::AddTransactionDb(const core::TransactionDb& db,
                                      const std::string& name) {
  Add(SectionType::kTransactionDb, name, EncodeDbPayload(db, nullptr));
}

void SnapshotWriter::AddPatternSet(const PatternSet& patterns,
                                   const std::string& name) {
  ByteWriter w;
  w.U32(kSectionCodecVersion);
  w.F64(patterns.min_support);
  w.Str(patterns.algorithm);
  w.Str(patterns.filter);
  w.U64(patterns.labels.size());
  for (size_t i = 0; i < patterns.labels.size(); ++i) {
    w.Str(patterns.labels[i]);
    w.Str(i < patterns.keys.size() ? patterns.keys[i] : std::string());
  }
  w.U64(patterns.itemsets.size());
  for (const core::FrequentItemset& fi : patterns.itemsets) {
    w.U32(fi.support);
    w.U32(static_cast<uint32_t>(fi.items.size()));
    for (core::ItemId item : fi.items.items()) w.U32(item);
  }
  w.AlignTo8();
  Add(SectionType::kPatternSet, name, w.TakeBytes());
}

void SnapshotWriter::AddNeighborGraph(const NeighborGraphData& graph,
                                      const std::string& name) {
  ByteWriter w;
  w.U32(kSectionCodecVersion);
  w.F64(graph.distance);
  w.U64(graph.type_names.size());
  for (size_t t = 0; t < graph.type_names.size(); ++t) {
    w.Str(graph.type_names[t]);
    w.U32(t < graph.type_sizes.size() ? graph.type_sizes[t] : 0);
  }
  w.U64(graph.band_names.size());
  for (const std::string& band : graph.band_names) w.Str(band);
  w.U64(graph.offsets.empty() ? 0 : graph.offsets.size() - 1);  // num_nodes
  w.U64(graph.neighbors.size());                                // num_edges
  // CSR arrays 8-aligned within the payload (payloads are 8-aligned in
  // the file), mirroring the txdb column block.
  w.AlignTo8();
  w.Words(graph.offsets.data(), graph.offsets.size());
  for (const uint32_t neighbor : graph.neighbors) w.U32(neighbor);
  for (const uint8_t band : graph.bands) w.U8(band);
  w.AlignTo8();
  Add(SectionType::kNeighborGraph, name, w.TakeBytes());
}

void SnapshotWriter::AddColocationSet(const ColocationSet& colocations,
                                      const std::string& name) {
  ByteWriter w;
  w.U32(kSectionCodecVersion);
  w.F64(colocations.min_prevalence);
  w.F64(colocations.distance);
  w.Str(colocations.filter);
  w.U64(colocations.type_names.size());
  for (const std::string& type : colocations.type_names) w.Str(type);
  w.U64(colocations.patterns.size());
  for (const ColocationSet::Pattern& p : colocations.patterns) {
    w.U32(static_cast<uint32_t>(p.types.size()));
    for (const uint32_t type : p.types) w.U32(type);
    w.F64(p.participation_index);
    w.F64(p.fuzzy_prevalence);
    w.U64(p.rows);
  }
  w.AlignTo8();
  Add(SectionType::kColocationSet, name, w.TakeBytes());
}

void SnapshotWriter::AddManifest(
    const std::map<std::string, std::string>& entries,
    const std::string& name) {
  ByteWriter w;
  w.U32(kSectionCodecVersion);
  w.U64(entries.size());
  for (const auto& [key, value] : entries) {  // std::map: sorted.
    w.Str(key);
    w.Str(value);
  }
  w.AlignTo8();
  Add(SectionType::kManifest, name, w.TakeBytes());
}

void SnapshotWriter::Add(SectionType type, std::string name,
                         std::string payload) {
  sections_.push_back({type, std::move(name), std::move(payload)});
}

std::string SnapshotWriter::Serialize() const {
  obs::Tracer::Span span = obs::Tracer::Global().StartSpan("store/write");

  const std::string tool_version = kSfpmVersion;
  ByteWriter w;
  // Fixed header; file_size, table_offset and header_crc32 are patched in
  // once the payload/table geometry is known.
  w.U32(kMagic);
  w.U16(kFormatVersion);
  w.U16(0);   // flags
  w.U64(0);   // file_size (patched)
  w.U64(0);   // table_offset (patched)
  w.U32(static_cast<uint32_t>(sections_.size()));
  w.U32(static_cast<uint32_t>(tool_version.size()));
  w.U32(0);   // header_crc32 (patched)
  w.U32(0);   // reserved
  for (char c : tool_version) w.U8(static_cast<uint8_t>(c));
  w.AlignTo8();
  const size_t header_end = w.size();

  // Payloads, each already 8-padded by its encoder.
  std::vector<SectionInfo> infos;
  infos.reserve(sections_.size());
  for (const PendingSection& section : sections_) {
    SectionInfo info;
    info.type = section.type;
    info.name = section.name;
    info.offset = w.size();
    info.length = section.payload.size();
    info.crc32 = Crc32(section.payload.data(), section.payload.size());
    infos.push_back(info);
    for (char c : section.payload) w.U8(static_cast<uint8_t>(c));
  }

  // Section table: crc32 + reserved, then the entries.
  const size_t table_offset = w.size();
  w.U32(0);  // table_crc32 (patched)
  w.U32(0);  // reserved
  const size_t entries_begin = w.size();
  for (const SectionInfo& info : infos) {
    w.U32(static_cast<uint32_t>(info.type));
    w.U32(static_cast<uint32_t>(info.name.size()));
    w.U64(info.offset);
    w.U64(info.length);
    w.U32(info.crc32);
    w.U32(0);  // reserved
    for (char c : info.name) w.U8(static_cast<uint8_t>(c));
  }

  w.PatchU64(8, w.size());           // file_size
  w.PatchU64(16, table_offset);      // table_offset
  std::string bytes = w.TakeBytes();
  const uint32_t table_crc = Crc32(bytes.data() + entries_begin,
                                   bytes.size() - entries_begin);
  const uint32_t header_crc =
      Crc32(bytes.data() + kHeaderFixedSize, header_end - kHeaderFixedSize,
            Crc32(bytes.data(), 32));
  auto patch_u32 = [&bytes](size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes[offset + static_cast<size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xFF);
    }
  };
  patch_u32(table_offset, table_crc);
  patch_u32(32, header_crc);

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("store.write.bytes").Add(bytes.size());
  registry.GetCounter("store.write.sections").Add(sections_.size());
  span.SetAttr("bytes", static_cast<double>(bytes.size()));
  span.SetAttr("sections", static_cast<double>(sections_.size()));
  return bytes;
}

Status SnapshotWriter::WriteTo(const std::string& path) const {
  // Crash-consistent: the bytes land in `<path>.tmp`, are fsynced, and
  // only then renamed over `path`. A crash or ENOSPC at any point leaves
  // either the old snapshot or no snapshot at the final path — never a
  // truncated file that a manifest check could mistake for a completed
  // stage. A stale `.tmp` from a killed run is harmless: the next write
  // truncates and replaces it. Concurrent writers of *different* paths
  // (the sharded pipeline's tile stages) never collide because each path
  // has its own temp name.
  const std::string bytes = Serialize();
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::InvalidArgument("cannot open " + tmp + " for writing: " +
                                   std::strerror(errno));
  }
  const auto fail = [&](const std::string& what) {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal(what + " " + tmp + ": " + std::strerror(errno));
  };
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("short write to");
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) return fail("cannot fsync");
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("cannot close " + tmp + ": " +
                            std::strerror(errno));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path + ": " +
                            std::strerror(errno));
  }
  // Make the rename itself durable (the directory entry), best effort:
  // some filesystems reject O_DIRECTORY fsync, and the atomicity claim
  // above holds either way.
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

}  // namespace store
}  // namespace sfpm
