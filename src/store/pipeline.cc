#include "store/pipeline.h"

#include <algorithm>
#include <map>
#include <optional>

#include "coloc/backend.h"
#include "coloc/neighbor_graph.h"
#include "core/apriori.h"
#include "core/fpgrowth.h"
#include "core/mining_backend.h"
#include "datagen/tiles.h"
#include "feature/dependency.h"
#include "qsr/distance.h"
#include "feature/extractor.h"
#include "feature/window.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/merge.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/version.h"

namespace sfpm {
namespace store {

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HashHex(uint64_t hash) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

uint64_t SnapshotContentHash(const SnapshotReader& reader) {
  std::string canon = "sections;";
  for (const SectionInfo& info : reader.sections()) {
    canon += std::to_string(static_cast<uint32_t>(info.type));
    canon += ':';
    canon += info.name;
    canon += ':';
    canon += std::to_string(info.length);
    canon += ':';
    canon += std::to_string(info.crc32);
    canon += ';';
  }
  return Fnv1a64(canon);
}

Result<uint64_t> SnapshotContentHash(const std::string& path) {
  SFPM_ASSIGN_OR_RETURN(const SnapshotReader reader,
                        SnapshotReader::Open(path));
  return SnapshotContentHash(reader);
}

std::string CanonicalCityConfig(const datagen::CityConfig& c) {
  std::string out;
  out += "grid_cols=" + std::to_string(c.grid_cols);
  out += ";grid_rows=" + std::to_string(c.grid_rows);
  out += ";cell_size=" + FormatRoundTripDouble(c.cell_size);
  out += ";jitter=" + FormatRoundTripDouble(c.jitter);
  out += ";num_slums=" + std::to_string(c.num_slums);
  out += ";num_slum_clusters=" + std::to_string(c.num_slum_clusters);
  out += ";slum_radius_min=" + FormatRoundTripDouble(c.slum_radius_min);
  out += ";slum_radius_max=" + FormatRoundTripDouble(c.slum_radius_max);
  out += ";num_schools=" + std::to_string(c.num_schools);
  out += ";num_police=" + std::to_string(c.num_police);
  out += ";num_streets=" + std::to_string(c.num_streets);
  out += ";illumination_per_street=" +
         std::to_string(c.illumination_per_street);
  out += ";num_rivers=" + std::to_string(c.num_rivers);
  out += ";boundary_detail=" + std::to_string(c.boundary_detail);
  out += ";seed=" + std::to_string(c.seed);
  return out;
}

std::string CanonicalExtractConfig(const ExtractConfig& c) {
  std::string out = "reference=" + c.reference + ";relevant=";
  for (size_t i = 0; i < c.relevant.size(); ++i) {
    if (i > 0) out += ',';
    out += c.relevant[i];
  }
  out += ";directions=";
  out += c.directions ? '1' : '0';
  return out;
}

std::string ResolvedMineBackend(const MineConfig& config) {
  return config.backend.empty() ? config.algorithm : config.backend;
}

std::string CanonicalMineConfig(const MineConfig& c) {
  // The resolved backend fills the `algorithm=` term, so `--backend=X`
  // and `--algorithm=X` hash (and resume) identically for the itemset
  // backends; only the coloc backend appends its extra parameter.
  const std::string backend = ResolvedMineBackend(c);
  std::string out = "min_support=" + FormatRoundTripDouble(c.min_support);
  out += ";algorithm=" + backend;
  out += ";filter=" + c.filter;
  // Dependencies are an unordered set of unordered pairs: normalize each
  // pair, then sort and dedupe, so declaration order never changes the
  // hash.
  std::vector<std::pair<std::string, std::string>> deps = c.dependencies;
  for (auto& [a, b] : deps) {
    if (b < a) std::swap(a, b);
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  out += ";dependencies=";
  for (size_t i = 0; i < deps.size(); ++i) {
    if (i > 0) out += ',';
    out += deps[i].first + ":" + deps[i].second;
  }
  if (backend == "coloc") {
    out += ";distance=" + FormatRoundTripDouble(c.coloc_distance);
  }
  return out;
}

namespace {

constexpr char kStageGenerateCity[] = "generate-city";
constexpr char kStageExtract[] = "extract";
constexpr char kStageMine[] = "mine";

std::string GenerateCityInputHash(const datagen::CityConfig& config) {
  return HashHex(Fnv1a64("stage=generate-city;format=1;" +
                         CanonicalCityConfig(config)));
}

std::string ExtractInputHash(const ExtractConfig& config,
                             uint64_t in_file_hash) {
  return HashHex(Fnv1a64("stage=extract;format=1;" +
                         CanonicalExtractConfig(config) +
                         ";input=" + HashHex(in_file_hash)));
}

std::string MineInputHash(const MineConfig& config, uint64_t in_file_hash) {
  return HashHex(Fnv1a64("stage=mine;format=1;" +
                         CanonicalMineConfig(config) +
                         ";input=" + HashHex(in_file_hash)));
}

/// The reference layer an extract joins from.
Result<feature::Layer> LoadReferenceLayer(const SnapshotReader& reader,
                                          const ExtractConfig& config) {
  SFPM_ASSIGN_OR_RETURN(
      const SectionInfo ref_info,
      reader.Find(SectionType::kLayer, config.reference));
  return reader.ReadLayer(ref_info);
}

/// The relevant layers an extract joins against. `window`, when set,
/// drops features whose envelope misses it during decode — the tile
/// halo; identical to reading whole layers and feature::WindowLayer-ing
/// them, without materializing or indexing the skipped features.
Result<std::vector<feature::Layer>> LoadRelevantLayers(
    const SnapshotReader& reader, const std::string& in_path,
    const ExtractConfig& config, const geom::Envelope* window) {
  std::vector<feature::Layer> out;
  const auto read = [&](const SectionInfo& info) -> Status {
    SFPM_ASSIGN_OR_RETURN(feature::Layer layer,
                          window == nullptr
                              ? reader.ReadLayer(info)
                              : reader.ReadLayer(info, *window));
    out.push_back(std::move(layer));
    return Status::OK();
  };
  if (config.relevant.empty()) {
    for (const SectionInfo& info : reader.sections()) {
      if (info.type != SectionType::kLayer || info.name == config.reference) {
        continue;
      }
      SFPM_RETURN_NOT_OK(read(info));
    }
  } else {
    for (const std::string& name : config.relevant) {
      SFPM_ASSIGN_OR_RETURN(const SectionInfo info,
                            reader.Find(SectionType::kLayer, name));
      SFPM_RETURN_NOT_OK(read(info));
    }
  }
  if (out.empty()) {
    return Status::InvalidArgument(in_path +
                                   ": no relevant layers to extract against");
  }
  return out;
}

Result<feature::PredicateTable> ExtractTable(
    const feature::Layer& reference,
    const std::vector<feature::Layer>& relevant,
    const ExtractConfig& config) {
  feature::PredicateExtractor extractor(&reference);
  for (const feature::Layer& layer : relevant) {
    extractor.AddRelevantLayer(&layer);
  }
  feature::ExtractorOptions options;
  options.directions = config.directions;
  options.parallelism = config.threads;
  // The pipeline always extracts in canonical candidate order: it makes
  // each row a pure function of its candidate set, so tile-sharded runs
  // (sub-layers, rebuilt R-trees) byte-match single-shard runs.
  options.canonical_candidate_order = true;
  return extractor.Extract(options);
}

std::map<std::string, std::string> StageManifest(const std::string& stage,
                                                 const std::string& input_hash,
                                                 const std::string& params) {
  return {
      {"format", std::to_string(kFormatVersion)},
      {"input_hash", input_hash},
      {"params", params},
      {"stage", stage},
      {"tool_version", kSfpmVersion},
  };
}

/// True when `path` is a valid snapshot whose manifest says it was
/// produced by `stage` from exactly this `input_hash`. Any failure —
/// missing file, corruption, older format, different parameters — means
/// "rerun", never an error.
bool OutputUpToDate(const std::string& path, const std::string& stage,
                    const std::string& input_hash) {
  auto reader = SnapshotReader::Open(path);
  if (!reader.ok()) return false;
  const auto info = reader.value().Find(SectionType::kManifest);
  if (!info.ok()) return false;
  const auto manifest = reader.value().ReadManifest(info.value());
  if (!manifest.ok()) return false;
  const auto get = [&](const char* key) {
    const auto it = manifest.value().find(key);
    return it == manifest.value().end() ? std::string() : it->second;
  };
  return get("stage") == stage && get("input_hash") == input_hash &&
         get("format") == std::to_string(kFormatVersion);
}

}  // namespace

Status RunGenerateCityStage(const datagen::CityConfig& config,
                            const std::string& out_path) {
  obs::Tracer::Span span =
      obs::Tracer::Global().StartSpan("stage/generate-city");
  const std::unique_ptr<datagen::City> city = datagen::GenerateCity(config);
  SnapshotWriter writer;
  writer.AddLayer(city->districts);
  writer.AddLayer(city->slums);
  writer.AddLayer(city->schools);
  writer.AddLayer(city->police);
  writer.AddLayer(city->streets);
  writer.AddLayer(city->illumination);
  writer.AddLayer(city->rivers);
  writer.AddManifest(StageManifest(kStageGenerateCity,
                                   GenerateCityInputHash(config),
                                   CanonicalCityConfig(config)));
  return writer.WriteTo(out_path);
}

Status RunExtractStage(const std::string& in_path,
                       const std::string& out_path,
                       const ExtractConfig& config) {
  obs::Tracer::Span span = obs::Tracer::Global().StartSpan("stage/extract");
  SFPM_ASSIGN_OR_RETURN(const SnapshotReader reader,
                        SnapshotReader::Open(in_path));
  const uint64_t in_hash = SnapshotContentHash(reader);
  SFPM_ASSIGN_OR_RETURN(const feature::Layer reference,
                        LoadReferenceLayer(reader, config));
  SFPM_ASSIGN_OR_RETURN(
      const std::vector<feature::Layer> relevant,
      LoadRelevantLayers(reader, in_path, config, /*window=*/nullptr));
  SFPM_ASSIGN_OR_RETURN(const feature::PredicateTable table,
                        ExtractTable(reference, relevant, config));

  SnapshotWriter writer;
  writer.AddTable(table);
  writer.AddManifest(StageManifest(kStageExtract,
                                   ExtractInputHash(config, in_hash),
                                   CanonicalExtractConfig(config)));
  return writer.WriteTo(out_path);
}

std::string TileSnapshotPath(const std::string& txdb_path,
                             const TileSpec& tile) {
  const std::string suffix = ".tile" + std::to_string(tile.slot) + "of" +
                             std::to_string(tile.shards);
  const size_t dot = txdb_path.rfind('.');
  const size_t slash = txdb_path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return txdb_path + suffix;
  }
  return txdb_path.substr(0, dot) + suffix + txdb_path.substr(dot);
}

std::string ExtractTileInputHash(const ExtractConfig& config,
                                 uint64_t in_file_hash,
                                 const TileSpec& tile) {
  return HashHex(Fnv1a64(std::string("stage=") + kStageExtractTile +
                         ";format=1;" + CanonicalExtractConfig(config) +
                         ";input=" + HashHex(in_file_hash) +
                         ";tile=" + std::to_string(tile.slot) + "of" +
                         std::to_string(tile.shards)));
}

Status RunExtractTileStage(const std::string& in_path,
                           const std::string& out_path,
                           const ExtractConfig& config,
                           const TileSpec& tile) {
  obs::Tracer::Span span =
      obs::Tracer::Global().StartSpan("stage/extract-tile");
  span.SetAttr("tile", static_cast<double>(tile.slot));
  span.SetAttr("shards", static_cast<double>(tile.shards));
  SFPM_ASSIGN_OR_RETURN(const SnapshotReader reader,
                        SnapshotReader::Open(in_path));
  const uint64_t in_hash = SnapshotContentHash(reader);
  SFPM_ASSIGN_OR_RETURN(const feature::Layer full_reference,
                        LoadReferenceLayer(reader, config));

  const std::vector<datagen::Tile> tiles =
      datagen::PartitionReference(full_reference, tile.shards);
  const datagen::Tile* mine = nullptr;
  for (const datagen::Tile& t : tiles) {
    if (t.slot == tile.slot) {
      mine = &t;
      break;
    }
  }
  if (mine == nullptr) {
    return Status::InvalidArgument(
        "tile " + std::to_string(tile.slot) + " of " +
        std::to_string(tile.shards) + " owns no reference features in " +
        in_path);
  }

  // The owned rows, renumbered but keeping their full-run row names, and
  // each relevant layer decoded through the tile's halo window — except
  // with directions on, which scan whole layers.
  const feature::Layer reference =
      feature::SubsetLayer(full_reference, mine->refs,
                           /*preserve_row_names=*/true);
  SFPM_ASSIGN_OR_RETURN(
      const std::vector<feature::Layer> relevant,
      LoadRelevantLayers(reader, in_path, config,
                         config.directions ? nullptr : &mine->window));
  SFPM_ASSIGN_OR_RETURN(const feature::PredicateTable table,
                        ExtractTable(reference, relevant, config));

  std::string rows;
  for (size_t i = 0; i < mine->refs.size(); ++i) {
    if (i > 0) rows += ',';
    rows += std::to_string(mine->refs[i]);
  }
  std::map<std::string, std::string> manifest =
      StageManifest(kStageExtractTile,
                    ExtractTileInputHash(config, in_hash, tile),
                    CanonicalExtractConfig(config));
  manifest["tile"] = std::to_string(tile.slot) + "of" +
                     std::to_string(tile.shards);
  manifest["tile_rows"] = rows;

  SnapshotWriter writer;
  writer.AddTable(table);
  writer.AddManifest(manifest);
  obs::MetricsRegistry::Global().GetCounter("pipeline.tile_stages").Add(1);
  return writer.WriteTo(out_path);
}

namespace {

/// The coloc mine stage: reads every layer section of `in_path` (the city
/// snapshot), materializes the neighbour graph, mines co-locations with
/// the uniform filter stack mapped onto the *type* universe, and writes
/// neighbour-graph + co-location sections.
Status RunColocMineStage(const SnapshotReader& reader, uint64_t in_hash,
                         const std::string& in_path,
                         const std::string& out_path,
                         const MineConfig& config) {
  std::vector<feature::Layer> layers;
  for (const SectionInfo& info : reader.sections()) {
    if (info.type != SectionType::kLayer) continue;
    SFPM_ASSIGN_OR_RETURN(feature::Layer layer, reader.ReadLayer(info));
    layers.push_back(std::move(layer));
  }
  if (layers.size() < 2) {
    return Status::InvalidArgument(
        in_path + ": coloc backend needs at least two layer sections");
  }
  const feature::LayerSet layer_set = feature::LayerSet::Of(layers);

  const qsr::DistanceQuantizer quantizer = qsr::DistanceQuantizer::Default();
  coloc::NeighborGraphOptions graph_options;
  graph_options.distance = config.coloc_distance;
  graph_options.quantizer = &quantizer;
  graph_options.threads = config.threads;
  SFPM_ASSIGN_OR_RETURN(const coloc::NeighborGraph graph,
                        coloc::NeighborGraph::Build(layer_set, graph_options));

  // The uniform KC/KC+ stack over the coloc item universe: dependencies
  // map to type-id pairs; the same-key filter gets one key per type (a
  // structural no-op — co-locations never repeat a type — applied anyway
  // so filtering is uniform across backends).
  feature::DependencyRegistry dependencies;
  for (const auto& [a, b] : config.dependencies) dependencies.Add(a, b);
  core::BackendOptions backend_options;
  backend_options.min_support = config.min_support;
  backend_options.parallelism = config.threads;
  backend_options.neighbor_distance = config.coloc_distance;
  std::optional<core::PairBlocklistFilter> dependency_filter;
  std::optional<core::SameKeyFilter> same_key;
  if (config.filter == "kc" || config.filter == "kc+") {
    std::vector<std::pair<core::ItemId, core::ItemId>> pairs;
    const std::vector<std::string>& types = graph.type_names();
    for (uint32_t a = 0; a + 1 < types.size(); ++a) {
      for (uint32_t b = a + 1; b < types.size(); ++b) {
        if (dependencies.IsDependent(types[a], types[b])) {
          pairs.emplace_back(a, b);
        }
      }
    }
    dependency_filter.emplace(std::move(pairs));
    backend_options.filters.push_back(&*dependency_filter);
  }
  if (config.filter == "kc+") {
    same_key.emplace(graph.type_names());
    backend_options.filters.push_back(&*same_key);
  }

  const coloc::LayerSource source(layer_set, &graph);
  SFPM_ASSIGN_OR_RETURN(const core::MinedPatternSet mined,
                        coloc::GraphBackend().Mine(source, backend_options));

  NeighborGraphData graph_data;
  graph_data.distance = graph.distance();
  graph_data.type_names = graph.type_names();
  for (size_t t = 0; t < graph.num_types(); ++t) {
    graph_data.type_sizes.push_back(graph.TypeSize(t));
  }
  graph_data.band_names = graph.band_names();
  graph_data.offsets = graph.offsets();
  graph_data.neighbors = graph.neighbors();
  graph_data.bands = graph.bands();

  ColocationSet coloc_set;
  coloc_set.type_names = mined.labels;
  coloc_set.min_prevalence = config.min_support;
  coloc_set.distance = config.coloc_distance;
  coloc_set.filter = config.filter;
  for (const core::MinedPattern& p : mined.patterns) {
    ColocationSet::Pattern pattern;
    pattern.types = p.items;
    pattern.participation_index = p.score;
    pattern.fuzzy_prevalence = p.fuzzy;
    pattern.rows = p.rows;
    coloc_set.patterns.push_back(std::move(pattern));
  }

  SnapshotWriter writer;
  writer.AddNeighborGraph(graph_data);
  writer.AddColocationSet(coloc_set);
  writer.AddManifest(StageManifest(kStageMine, MineInputHash(config, in_hash),
                                   CanonicalMineConfig(config)));
  return writer.WriteTo(out_path);
}

}  // namespace

Status RunMineStage(const std::string& in_path, const std::string& out_path,
                    const MineConfig& config) {
  obs::Tracer::Span span = obs::Tracer::Global().StartSpan("stage/mine");
  const std::string backend_name = ResolvedMineBackend(config);
  if (backend_name != "apriori" && backend_name != "fpgrowth" &&
      backend_name != "coloc") {
    return Status::InvalidArgument(
        "backend must be apriori|fpgrowth|coloc, got '" + backend_name + "'");
  }
  if (config.filter != "none" && config.filter != "kc" &&
      config.filter != "kc+") {
    return Status::InvalidArgument("filter must be none|kc|kc+, got '" +
                                   config.filter + "'");
  }
  SFPM_ASSIGN_OR_RETURN(const SnapshotReader reader,
                        SnapshotReader::Open(in_path));
  const uint64_t in_hash = SnapshotContentHash(reader);
  if (backend_name == "coloc") {
    return RunColocMineStage(reader, in_hash, in_path, out_path, config);
  }
  SFPM_ASSIGN_OR_RETURN(const SectionInfo db_info,
                        reader.Find(SectionType::kTransactionDb));
  SFPM_ASSIGN_OR_RETURN(const feature::PredicateTable table,
                        reader.ReadTable(db_info));
  const core::TransactionDb& db = table.db();

  feature::DependencyRegistry dependencies;
  for (const auto& [a, b] : config.dependencies) dependencies.Add(a, b);

  core::BackendOptions backend_options;
  backend_options.min_support = config.min_support;
  backend_options.parallelism = config.threads;
  std::optional<core::PairBlocklistFilter> dependency_filter;
  std::optional<core::SameKeyFilter> same_key;
  if (config.filter == "kc" || config.filter == "kc+") {
    dependency_filter.emplace(dependencies.MakeFilter(db));
    backend_options.filters.push_back(&*dependency_filter);
  }
  if (config.filter == "kc+") {
    same_key.emplace(db);
    backend_options.filters.push_back(&*same_key);
  }

  const core::MiningBackend* backend = core::FindBackend(backend_name);
  if (backend == nullptr) {
    return Status::Internal("no itemset backend named '" + backend_name + "'");
  }
  const core::TransactionSource source(&db);
  SFPM_ASSIGN_OR_RETURN(const core::MinedPatternSet mined,
                        backend->Mine(source, backend_options));

  // Rebuilt in the backend's emission order, so the section is
  // byte-identical to one written straight off an AprioriResult.
  PatternSet patterns;
  patterns.labels = mined.labels;
  patterns.keys = mined.keys;
  patterns.itemsets.reserve(mined.patterns.size());
  for (const core::MinedPattern& p : mined.patterns) {
    core::FrequentItemset itemset;
    itemset.items = core::Itemset(p.items);
    itemset.support = p.support;
    patterns.itemsets.push_back(std::move(itemset));
  }
  patterns.min_support = config.min_support;
  patterns.algorithm = backend_name;
  patterns.filter = config.filter;

  SnapshotWriter writer;
  writer.AddPatternSet(patterns);
  writer.AddManifest(StageManifest(kStageMine, MineInputHash(config, in_hash),
                                   CanonicalMineConfig(config)));
  return writer.WriteTo(out_path);
}

Result<PipelineResult> RunPipeline(const PipelineOptions& options) {
  obs::Tracer::Span span = obs::Tracer::Global().StartSpan("pipeline/run");
  PipelineResult result;
  Stopwatch watch;

  const auto run_stage = [&](const std::string& stage,
                             const std::string& output,
                             const std::string& input_hash,
                             const auto& run) -> Status {
    StageOutcome outcome;
    outcome.stage = stage;
    outcome.output = output;
    outcome.input_hash = input_hash;
    if (!options.force && OutputUpToDate(output, stage, input_hash)) {
      outcome.skipped = true;
      result.stages.push_back(std::move(outcome));
      return Status::OK();
    }
    watch.Restart();
    SFPM_RETURN_NOT_OK(run());
    outcome.seconds = watch.ElapsedSeconds();
    result.stages.push_back(std::move(outcome));
    return Status::OK();
  };

  SFPM_RETURN_NOT_OK(run_stage(
      kStageGenerateCity, options.city_path,
      GenerateCityInputHash(options.city),
      [&] { return RunGenerateCityStage(options.city, options.city_path); }));

  SFPM_ASSIGN_OR_RETURN(const uint64_t city_hash,
                        SnapshotContentHash(options.city_path));
  const std::string extract_hash =
      ExtractInputHash(options.extract, city_hash);
  if (options.shards <= 1) {
    SFPM_RETURN_NOT_OK(run_stage(
        kStageExtract, options.txdb_path, extract_hash, [&] {
          return RunExtractStage(options.city_path, options.txdb_path,
                                 options.extract);
        }));
  } else if (!options.force &&
             OutputUpToDate(options.txdb_path, kStageExtract,
                            extract_hash)) {
    // The merged output is already valid — a prior run (sharded or not)
    // finished the whole extract phase, so every tile stage is moot.
    StageOutcome outcome;
    outcome.stage = kStageExtract;
    outcome.output = options.txdb_path;
    outcome.input_hash = extract_hash;
    outcome.skipped = true;
    result.stages.push_back(std::move(outcome));
  } else {
    // Sharded DAG: generate -> N tile-extracts -> merge. The partition
    // is a pure function of (city snapshot, shards), so the tile list
    // here always matches what each tile stage recomputes.
    obs::MetricsRegistry::Global()
        .GetGauge("pipeline.shards")
        .Set(static_cast<double>(options.shards));
    SFPM_ASSIGN_OR_RETURN(const SnapshotReader city_reader,
                          SnapshotReader::Open(options.city_path));
    SFPM_ASSIGN_OR_RETURN(
        const SectionInfo ref_info,
        city_reader.Find(SectionType::kLayer, options.extract.reference));
    SFPM_ASSIGN_OR_RETURN(const feature::Layer reference,
                          city_reader.ReadLayer(ref_info));
    const std::vector<datagen::Tile> tiles =
        datagen::PartitionReference(reference, options.shards);

    // Tile stages run concurrently (they are embarrassingly parallel and
    // the output is deterministic regardless); --threads caps the whole
    // phase, with each tile's inner extract sharing the remainder.
    const size_t resolved = ResolveParallelism(options.extract.threads);
    const size_t workers = std::min(tiles.size(), resolved);
    ExtractConfig tile_config = options.extract;
    tile_config.threads = std::max<size_t>(1, resolved / workers);

    std::vector<StageOutcome> tile_outcomes(tiles.size());
    std::vector<Status> tile_status(tiles.size());
    ThreadPool pool(workers);
    pool.ParallelFor(0, tiles.size(), [&](size_t i) {
      const TileSpec spec{tiles[i].slot, options.shards};
      StageOutcome& outcome = tile_outcomes[i];
      outcome.stage = "tile" + std::to_string(spec.slot) + "of" +
                      std::to_string(spec.shards);
      outcome.output = TileSnapshotPath(options.txdb_path, spec);
      outcome.input_hash =
          ExtractTileInputHash(options.extract, city_hash, spec);
      if (!options.force &&
          OutputUpToDate(outcome.output, kStageExtractTile,
                         outcome.input_hash)) {
        outcome.skipped = true;
        return;
      }
      Stopwatch tile_watch;
      tile_status[i] = RunExtractTileStage(options.city_path,
                                           outcome.output, tile_config, spec);
      outcome.seconds = tile_watch.ElapsedSeconds();
    });
    for (size_t i = 0; i < tiles.size(); ++i) {
      SFPM_RETURN_NOT_OK(tile_status[i]);
      result.stages.push_back(std::move(tile_outcomes[i]));
    }

    SFPM_RETURN_NOT_OK(run_stage("merge", options.txdb_path, extract_hash,
                                 [&]() -> Status {
      obs::Tracer::Span span =
          obs::Tracer::Global().StartSpan("stage/merge");
      std::vector<TileTable> loaded;
      loaded.reserve(tiles.size());
      for (const datagen::Tile& tile : tiles) {
        const TileSpec spec{tile.slot, options.shards};
        SFPM_ASSIGN_OR_RETURN(
            TileTable tile_table,
            LoadTileTable(TileSnapshotPath(options.txdb_path, spec),
                          ExtractTileInputHash(options.extract, city_hash,
                                               spec)));
        loaded.push_back(std::move(tile_table));
      }
      SFPM_ASSIGN_OR_RETURN(const feature::PredicateTable merged,
                            MergeTileTables(loaded, reference.Size()));
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      registry.GetCounter("merge.tiles").Add(loaded.size());
      registry.GetCounter("merge.rows").Add(merged.NumRows());
      registry.GetCounter("merge.items").Add(merged.NumPredicates());
      // The merged snapshot carries the plain extract manifest: it *is*
      // the single-shard output, byte for byte, and downstream stages
      // (and later resumes at any shard count) treat it as such.
      SnapshotWriter writer;
      writer.AddTable(merged);
      writer.AddManifest(StageManifest(kStageExtract, extract_hash,
                                       CanonicalExtractConfig(
                                           options.extract)));
      return writer.WriteTo(options.txdb_path);
    }));
  }

  SFPM_ASSIGN_OR_RETURN(const uint64_t txdb_hash,
                        SnapshotContentHash(options.txdb_path));
  // The coloc backend mines the *layer* snapshot: its input is the city
  // (whose hash is already in hand), not the transaction db.
  const bool coloc_mine = ResolvedMineBackend(options.mine) == "coloc";
  const std::string& mine_in_path =
      coloc_mine ? options.city_path : options.txdb_path;
  const uint64_t mine_in_hash = coloc_mine ? city_hash : txdb_hash;
  SFPM_RETURN_NOT_OK(run_stage(
      kStageMine, options.patterns_path,
      MineInputHash(options.mine, mine_in_hash), [&] {
        return RunMineStage(mine_in_path, options.patterns_path,
                            options.mine);
      }));

  return result;
}

}  // namespace store
}  // namespace sfpm
