#include "store/pipeline.h"

#include <algorithm>
#include <map>
#include <optional>

#include "core/apriori.h"
#include "core/fpgrowth.h"
#include "feature/dependency.h"
#include "feature/extractor.h"
#include "io/csv.h"
#include "obs/trace.h"
#include "store/reader.h"
#include "store/writer.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/version.h"

namespace sfpm {
namespace store {

uint64_t Fnv1a64(std::string_view bytes, uint64_t seed) {
  uint64_t h = seed;
  for (const char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HashHex(uint64_t hash) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[hash & 0xF];
    hash >>= 4;
  }
  return out;
}

std::string CanonicalCityConfig(const datagen::CityConfig& c) {
  std::string out;
  out += "grid_cols=" + std::to_string(c.grid_cols);
  out += ";grid_rows=" + std::to_string(c.grid_rows);
  out += ";cell_size=" + FormatRoundTripDouble(c.cell_size);
  out += ";jitter=" + FormatRoundTripDouble(c.jitter);
  out += ";num_slums=" + std::to_string(c.num_slums);
  out += ";num_slum_clusters=" + std::to_string(c.num_slum_clusters);
  out += ";slum_radius_min=" + FormatRoundTripDouble(c.slum_radius_min);
  out += ";slum_radius_max=" + FormatRoundTripDouble(c.slum_radius_max);
  out += ";num_schools=" + std::to_string(c.num_schools);
  out += ";num_police=" + std::to_string(c.num_police);
  out += ";num_streets=" + std::to_string(c.num_streets);
  out += ";illumination_per_street=" +
         std::to_string(c.illumination_per_street);
  out += ";num_rivers=" + std::to_string(c.num_rivers);
  out += ";boundary_detail=" + std::to_string(c.boundary_detail);
  out += ";seed=" + std::to_string(c.seed);
  return out;
}

std::string CanonicalExtractConfig(const ExtractConfig& c) {
  std::string out = "reference=" + c.reference + ";relevant=";
  for (size_t i = 0; i < c.relevant.size(); ++i) {
    if (i > 0) out += ',';
    out += c.relevant[i];
  }
  out += ";directions=";
  out += c.directions ? '1' : '0';
  return out;
}

std::string CanonicalMineConfig(const MineConfig& c) {
  std::string out = "min_support=" + FormatRoundTripDouble(c.min_support);
  out += ";algorithm=" + c.algorithm;
  out += ";filter=" + c.filter;
  // Dependencies are an unordered set of unordered pairs: normalize each
  // pair, then sort and dedupe, so declaration order never changes the
  // hash.
  std::vector<std::pair<std::string, std::string>> deps = c.dependencies;
  for (auto& [a, b] : deps) {
    if (b < a) std::swap(a, b);
  }
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());
  out += ";dependencies=";
  for (size_t i = 0; i < deps.size(); ++i) {
    if (i > 0) out += ',';
    out += deps[i].first + ":" + deps[i].second;
  }
  return out;
}

namespace {

constexpr char kStageGenerateCity[] = "generate-city";
constexpr char kStageExtract[] = "extract";
constexpr char kStageMine[] = "mine";

std::string GenerateCityInputHash(const datagen::CityConfig& config) {
  return HashHex(Fnv1a64("stage=generate-city;format=1;" +
                         CanonicalCityConfig(config)));
}

std::string ExtractInputHash(const ExtractConfig& config,
                             uint64_t in_file_hash) {
  return HashHex(Fnv1a64("stage=extract;format=1;" +
                         CanonicalExtractConfig(config) +
                         ";input=" + HashHex(in_file_hash)));
}

std::string MineInputHash(const MineConfig& config, uint64_t in_file_hash) {
  return HashHex(Fnv1a64("stage=mine;format=1;" +
                         CanonicalMineConfig(config) +
                         ";input=" + HashHex(in_file_hash)));
}

Result<uint64_t> HashFile(const std::string& path) {
  SFPM_ASSIGN_OR_RETURN(const std::string bytes, io::ReadFile(path));
  return Fnv1a64(bytes);
}

std::map<std::string, std::string> StageManifest(const std::string& stage,
                                                 const std::string& input_hash,
                                                 const std::string& params) {
  return {
      {"format", std::to_string(kFormatVersion)},
      {"input_hash", input_hash},
      {"params", params},
      {"stage", stage},
      {"tool_version", kSfpmVersion},
  };
}

/// True when `path` is a valid snapshot whose manifest says it was
/// produced by `stage` from exactly this `input_hash`. Any failure —
/// missing file, corruption, older format, different parameters — means
/// "rerun", never an error.
bool OutputUpToDate(const std::string& path, const std::string& stage,
                    const std::string& input_hash) {
  auto reader = SnapshotReader::Open(path);
  if (!reader.ok()) return false;
  const auto info = reader.value().Find(SectionType::kManifest);
  if (!info.ok()) return false;
  const auto manifest = reader.value().ReadManifest(info.value());
  if (!manifest.ok()) return false;
  const auto get = [&](const char* key) {
    const auto it = manifest.value().find(key);
    return it == manifest.value().end() ? std::string() : it->second;
  };
  return get("stage") == stage && get("input_hash") == input_hash &&
         get("format") == std::to_string(kFormatVersion);
}

}  // namespace

Status RunGenerateCityStage(const datagen::CityConfig& config,
                            const std::string& out_path) {
  obs::Tracer::Span span =
      obs::Tracer::Global().StartSpan("stage/generate-city");
  const std::unique_ptr<datagen::City> city = datagen::GenerateCity(config);
  SnapshotWriter writer;
  writer.AddLayer(city->districts);
  writer.AddLayer(city->slums);
  writer.AddLayer(city->schools);
  writer.AddLayer(city->police);
  writer.AddLayer(city->streets);
  writer.AddLayer(city->illumination);
  writer.AddLayer(city->rivers);
  writer.AddManifest(StageManifest(kStageGenerateCity,
                                   GenerateCityInputHash(config),
                                   CanonicalCityConfig(config)));
  return writer.WriteTo(out_path);
}

Status RunExtractStage(const std::string& in_path,
                       const std::string& out_path,
                       const ExtractConfig& config) {
  obs::Tracer::Span span = obs::Tracer::Global().StartSpan("stage/extract");
  SFPM_ASSIGN_OR_RETURN(const uint64_t in_hash, HashFile(in_path));
  SFPM_ASSIGN_OR_RETURN(const SnapshotReader reader,
                        SnapshotReader::Open(in_path));

  SFPM_ASSIGN_OR_RETURN(
      const SectionInfo ref_info,
      reader.Find(SectionType::kLayer, config.reference));
  SFPM_ASSIGN_OR_RETURN(const feature::Layer reference,
                        reader.ReadLayer(ref_info));

  std::vector<feature::Layer> relevant;
  if (config.relevant.empty()) {
    for (const SectionInfo& info : reader.sections()) {
      if (info.type != SectionType::kLayer || info.name == config.reference) {
        continue;
      }
      SFPM_ASSIGN_OR_RETURN(feature::Layer layer, reader.ReadLayer(info));
      relevant.push_back(std::move(layer));
    }
  } else {
    for (const std::string& name : config.relevant) {
      SFPM_ASSIGN_OR_RETURN(const SectionInfo info,
                            reader.Find(SectionType::kLayer, name));
      SFPM_ASSIGN_OR_RETURN(feature::Layer layer, reader.ReadLayer(info));
      relevant.push_back(std::move(layer));
    }
  }
  if (relevant.empty()) {
    return Status::InvalidArgument(in_path +
                                   ": no relevant layers to extract against");
  }

  feature::PredicateExtractor extractor(&reference);
  for (const feature::Layer& layer : relevant) {
    extractor.AddRelevantLayer(&layer);
  }
  feature::ExtractorOptions options;
  options.directions = config.directions;
  options.parallelism = config.threads;
  SFPM_ASSIGN_OR_RETURN(const feature::PredicateTable table,
                        extractor.Extract(options));

  SnapshotWriter writer;
  writer.AddTable(table);
  writer.AddManifest(StageManifest(kStageExtract,
                                   ExtractInputHash(config, in_hash),
                                   CanonicalExtractConfig(config)));
  return writer.WriteTo(out_path);
}

Status RunMineStage(const std::string& in_path, const std::string& out_path,
                    const MineConfig& config) {
  obs::Tracer::Span span = obs::Tracer::Global().StartSpan("stage/mine");
  if (config.algorithm != "apriori" && config.algorithm != "fpgrowth") {
    return Status::InvalidArgument("algorithm must be apriori|fpgrowth, got '" +
                                   config.algorithm + "'");
  }
  if (config.filter != "none" && config.filter != "kc" &&
      config.filter != "kc+") {
    return Status::InvalidArgument("filter must be none|kc|kc+, got '" +
                                   config.filter + "'");
  }
  SFPM_ASSIGN_OR_RETURN(const uint64_t in_hash, HashFile(in_path));
  SFPM_ASSIGN_OR_RETURN(const SnapshotReader reader,
                        SnapshotReader::Open(in_path));
  SFPM_ASSIGN_OR_RETURN(const SectionInfo db_info,
                        reader.Find(SectionType::kTransactionDb));
  SFPM_ASSIGN_OR_RETURN(const feature::PredicateTable table,
                        reader.ReadTable(db_info));
  const core::TransactionDb& db = table.db();

  feature::DependencyRegistry dependencies;
  for (const auto& [a, b] : config.dependencies) dependencies.Add(a, b);

  core::AprioriOptions options;
  options.min_support = config.min_support;
  options.parallelism = config.threads;
  std::optional<core::PairBlocklistFilter> dependency_filter;
  std::optional<core::SameKeyFilter> same_key;
  if (config.filter == "kc" || config.filter == "kc+") {
    dependency_filter.emplace(dependencies.MakeFilter(db));
    options.filters.push_back(&*dependency_filter);
  }
  if (config.filter == "kc+") {
    same_key.emplace(db);
    options.filters.push_back(&*same_key);
  }

  SFPM_ASSIGN_OR_RETURN(const core::AprioriResult mined,
                        config.algorithm == "fpgrowth"
                            ? core::MineFpGrowth(db, options)
                            : core::MineApriori(db, options));

  SnapshotWriter writer;
  writer.AddPatternSet(PatternSet::FromResult(
      db, mined, config.min_support, config.algorithm, config.filter));
  writer.AddManifest(StageManifest(kStageMine, MineInputHash(config, in_hash),
                                   CanonicalMineConfig(config)));
  return writer.WriteTo(out_path);
}

Result<PipelineResult> RunPipeline(const PipelineOptions& options) {
  obs::Tracer::Span span = obs::Tracer::Global().StartSpan("pipeline/run");
  PipelineResult result;
  Stopwatch watch;

  const auto run_stage = [&](const std::string& stage,
                             const std::string& output,
                             const std::string& input_hash,
                             const auto& run) -> Status {
    StageOutcome outcome;
    outcome.stage = stage;
    outcome.output = output;
    outcome.input_hash = input_hash;
    if (!options.force && OutputUpToDate(output, stage, input_hash)) {
      outcome.skipped = true;
      result.stages.push_back(std::move(outcome));
      return Status::OK();
    }
    watch.Restart();
    SFPM_RETURN_NOT_OK(run());
    outcome.seconds = watch.ElapsedSeconds();
    result.stages.push_back(std::move(outcome));
    return Status::OK();
  };

  SFPM_RETURN_NOT_OK(run_stage(
      kStageGenerateCity, options.city_path,
      GenerateCityInputHash(options.city),
      [&] { return RunGenerateCityStage(options.city, options.city_path); }));

  SFPM_ASSIGN_OR_RETURN(const uint64_t city_hash,
                        HashFile(options.city_path));
  SFPM_RETURN_NOT_OK(run_stage(
      kStageExtract, options.txdb_path,
      ExtractInputHash(options.extract, city_hash), [&] {
        return RunExtractStage(options.city_path, options.txdb_path,
                               options.extract);
      }));

  SFPM_ASSIGN_OR_RETURN(const uint64_t txdb_hash,
                        HashFile(options.txdb_path));
  SFPM_RETURN_NOT_OK(run_stage(
      kStageMine, options.patterns_path,
      MineInputHash(options.mine, txdb_hash), [&] {
        return RunMineStage(options.txdb_path, options.patterns_path,
                            options.mine);
      }));

  return result;
}

}  // namespace store
}  // namespace sfpm
