#include "store/crc32.h"

#include <array>

namespace sfpm {
namespace store {

namespace {

/// Slicing-by-4 lookup tables, built once at first use. Table 0 is the
/// classic byte-at-a-time table; table k folds a byte that sits k
/// positions deeper in the running CRC, letting the hot loop consume four
/// bytes per iteration at one table load each.
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 4> t;

  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (size >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = t[3][crc & 0xFF] ^ t[2][(crc >> 8) & 0xFF] ^
          t[1][(crc >> 16) & 0xFF] ^ t[0][crc >> 24];
    p += 4;
    size -= 4;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace store
}  // namespace sfpm
