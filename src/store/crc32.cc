#include "store/crc32.h"

#include <array>

namespace sfpm {
namespace store {

namespace {

/// Slicing-by-8 lookup tables, built once at first use. Table 0 is the
/// classic byte-at-a-time table; table k folds a byte that sits k
/// positions deeper in the running CRC, letting the hot loop consume
/// eight bytes per iteration at one table load each. Every snapshot
/// open checksums the whole file, so this loop is on the critical path
/// of each pipeline stage (and of every tile in a sharded extract).
struct Crc32Tables {
  std::array<std::array<uint32_t, 256>, 8> t;

  Crc32Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      t[0][i] = crc;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      for (size_t k = 1; k < t.size(); ++k) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

const Crc32Tables& Tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const auto& t = Tables().t;
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  while (size >= 8) {
    const uint32_t lo =
        crc ^ (static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16) |
               (static_cast<uint32_t>(p[3]) << 24));
    const uint32_t hi = static_cast<uint32_t>(p[4]) |
                        (static_cast<uint32_t>(p[5]) << 8) |
                        (static_cast<uint32_t>(p[6]) << 16) |
                        (static_cast<uint32_t>(p[7]) << 24);
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  while (size-- > 0) {
    crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  }
  return ~crc;
}

}  // namespace store
}  // namespace sfpm
