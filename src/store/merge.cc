#include "store/merge.h"

#include <map>

#include "store/format.h"
#include "util/strings.h"

namespace sfpm {
namespace store {

namespace {

/// "extract-tile <detail>" — every merge-side rejection names the stage
/// that produced (or should have produced) the offending snapshot, so a
/// failed `sfpm run` points straight at the tile to rerun or delete.
Status TileError(const std::string& detail) {
  return Status::InvalidArgument(std::string(kStageExtractTile) + " " +
                                 detail);
}

}  // namespace

Result<TileTable> ReadTileTable(const SnapshotReader& reader,
                                const std::string& expected_input_hash) {
  const auto manifest_info = reader.Find(SectionType::kManifest);
  if (!manifest_info.ok()) {
    return TileError("snapshot carries no manifest: " +
                     manifest_info.status().message());
  }
  const auto manifest = reader.ReadManifest(manifest_info.value());
  if (!manifest.ok()) {
    return TileError("snapshot manifest unreadable: " +
                     manifest.status().message());
  }
  const auto get = [&](const char* key) {
    const auto it = manifest.value().find(key);
    return it == manifest.value().end() ? std::string() : it->second;
  };
  if (get("stage") != kStageExtractTile) {
    return TileError("snapshot was written by stage '" + get("stage") +
                     "', not " + kStageExtractTile);
  }
  if (get("format") != std::to_string(kFormatVersion)) {
    return TileError("snapshot has format '" + get("format") +
                     "', want " + std::to_string(kFormatVersion));
  }
  if (get("input_hash") != expected_input_hash) {
    return TileError("snapshot input hash " + get("input_hash") +
                     " does not match expected " + expected_input_hash);
  }

  TileTable out;
  for (const std::string& part : Split(get("tile_rows"), ',')) {
    if (part.empty() ||
        part.find_first_not_of("0123456789") != std::string::npos) {
      return TileError("snapshot tile_rows entry '" + part +
                       "' is not a row id");
    }
    out.rows.push_back(std::strtoull(part.c_str(), nullptr, 10));
  }

  const auto db_info = reader.Find(SectionType::kTransactionDb);
  if (!db_info.ok()) {
    return TileError("snapshot carries no transaction db: " +
                     db_info.status().message());
  }
  auto table = reader.ReadTable(db_info.value());
  if (!table.ok()) {
    return TileError("snapshot table unreadable: " +
                     table.status().message());
  }
  out.table = std::move(table).value();
  if (out.table.NumRows() != out.rows.size()) {
    return TileError("snapshot covers " + std::to_string(out.rows.size()) +
                     " rows in its manifest but holds " +
                     std::to_string(out.table.NumRows()));
  }
  return out;
}

Result<TileTable> LoadTileTable(const std::string& path,
                                const std::string& expected_input_hash) {
  auto reader = SnapshotReader::Open(path);
  if (!reader.ok()) {
    return TileError("snapshot " + path +
                     " rejected: " + reader.status().message());
  }
  auto tile = ReadTileTable(reader.value(), expected_input_hash);
  if (!tile.ok()) {
    // Re-attribute with the path; ReadTileTable already names the stage.
    return Status::InvalidArgument(tile.status().message() + " (" + path +
                                   ")");
  }
  return tile;
}

Result<feature::PredicateTable> MergeTileTables(
    const std::vector<TileTable>& tiles, size_t total_rows) {
  // Exact-coverage check: every global row owned once.
  constexpr size_t kNoOwner = static_cast<size_t>(-1);
  struct Owner {
    size_t tile;
    size_t local;
  };
  std::vector<Owner> owners(total_rows, {kNoOwner, 0});
  for (size_t t = 0; t < tiles.size(); ++t) {
    for (size_t l = 0; l < tiles[t].rows.size(); ++l) {
      const uint64_t g = tiles[t].rows[l];
      if (g >= total_rows) {
        return TileError("row " + std::to_string(g) +
                         " is outside the reference layer (" +
                         std::to_string(total_rows) + " rows)");
      }
      if (owners[g].tile != kNoOwner) {
        return TileError("row " + std::to_string(g) +
                         " is owned by two tiles — double emission");
      }
      owners[g] = {t, l};
    }
  }
  for (size_t g = 0; g < total_rows; ++g) {
    if (owners[g].tile == kNoOwner) {
      return TileError("row " + std::to_string(g) +
                       " is owned by no tile — incomplete partition");
    }
  }

  // Replay in global row order; see the header for why tile item-id
  // order within a row reproduces the unsharded first-appearance ids.
  feature::PredicateTable merged;
  for (size_t g = 0; g < total_rows; ++g) {
    const TileTable& tile = tiles[owners[g].tile];
    const size_t local = owners[g].local;
    const size_t row = merged.AddRow(tile.table.RowName(local));
    for (const feature::Predicate& predicate :
         tile.table.RowPredicates(local)) {
      SFPM_RETURN_NOT_OK(merged.Set(row, predicate));
    }
  }
  return merged;
}

}  // namespace store
}  // namespace sfpm
