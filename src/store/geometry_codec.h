#ifndef SFPM_STORE_GEOMETRY_CODEC_H_
#define SFPM_STORE_GEOMETRY_CODEC_H_

#include "geom/geometry.h"
#include "store/bytes.h"
#include "util/status.h"

namespace sfpm {
namespace store {

/// \brief Binary geometry encoding of the layer section: a u8 type tag
/// (the geom::GeometryType enumerator value) followed by the coordinate
/// structure, doubles as IEEE-754 bit patterns. Round trips are bit-exact
/// — the basis of the snapshot store's identity guarantee.
void EncodeGeometry(const geom::Geometry& g, ByteWriter* w);

/// Decodes one geometry, validating every declared count against the
/// remaining bytes (absurd lengths fail cleanly, they never allocate).
Result<geom::Geometry> DecodeGeometry(ByteReader* r);

/// Consumes the bytes of one encoded geometry, computing only the
/// envelope DecodeGeometry(...)->GetEnvelope() would return (shell-only
/// for polygons, like Polygon::GetEnvelope) — no allocation. Windowed
/// layer decodes skim first and materialize only intersecting features.
Result<geom::Envelope> SkimGeometryEnvelope(ByteReader* r);

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_GEOMETRY_CODEC_H_
