#ifndef SFPM_STORE_FORMAT_H_
#define SFPM_STORE_FORMAT_H_

#include <cstdint>
#include <string>

namespace sfpm {
namespace store {

/// \brief On-disk constants of the `.sfpm` snapshot container. The byte
/// layout is specified in docs/STORAGE.md; this header is the single
/// source of the numbers.
///
/// File layout (all integers little-endian):
///
///     [ header | tool_version + pad8 | payloads... | section table ]
///
/// Fixed header, 40 bytes:
///
///     offset  field
///          0  u32 magic            "SFPM" (0x4D504653)
///          4  u16 format_version   kFormatVersion
///          6  u16 flags            0 in v1 (nonzero rejected)
///          8  u64 file_size        total file bytes (truncation check)
///         16  u64 table_offset     absolute offset of the section table
///         24  u32 section_count
///         28  u32 tool_version_len bytes of the version string at 40
///         32  u32 header_crc32     CRC32 of bytes [0,32) + version + pad
///         36  u32 reserved         0 in v1 (nonzero rejected)
///
/// Section payloads follow, each 8-aligned and zero-padded to 8 bytes;
/// the section table closes the file:
///
///     u32 table_crc32              CRC32 of every byte after this field
///     u32 reserved                 0 in v1
///     per section:
///       u32 type                   SectionType
///       u32 name_len
///       u64 offset                 absolute, 8-aligned
///       u64 length                 payload bytes incl. its zero padding
///       u32 payload_crc32
///       u32 reserved               0 in v1
///       name bytes
///
/// Every byte of the file is covered by exactly one of the three checksum
/// domains (header, payload, table) or validated semantically (reserved
/// fields, magic, version), so any single-byte corruption is detected —
/// the invariant the `store` fuzz oracle flips bytes to enforce.

inline constexpr uint32_t kMagic = 0x4D504653;  // "SFPM" little-endian.
inline constexpr uint16_t kFormatVersion = 1;
inline constexpr size_t kHeaderFixedSize = 40;
inline constexpr size_t kSectionEntryFixedSize = 32;

/// Per-payload codec version written as the first u32 of every section,
/// so section encodings can evolve within one container version.
inline constexpr uint32_t kSectionCodecVersion = 1;

enum class SectionType : uint32_t {
  kLayer = 1,          ///< feature::Layer: geometry + attributes.
  kTransactionDb = 2,  ///< Columnar bitmap transaction database.
  kPatternSet = 3,     ///< Mined frequent itemsets with supports.
  kManifest = 4,       ///< Key/value stage metadata (pipeline skip/resume).
  kNeighborGraph = 5,  ///< CSR neighbour graph of a co-location run.
  kColocationSet = 6,  ///< Mined co-location patterns with prevalence.
};

/// Stable name for diagnostics ("layer", "txdb", ...).
const char* SectionTypeName(SectionType type);

/// True for the section types this build understands.
bool IsKnownSectionType(uint32_t type);

/// \brief One entry of the section table, as parsed (offsets absolute).
struct SectionInfo {
  SectionType type = SectionType::kLayer;
  std::string name;     ///< Layer feature type, "txdb", "patterns", ...
  uint64_t offset = 0;  ///< Absolute payload offset, 8-aligned.
  uint64_t length = 0;  ///< Payload bytes including zero padding.
  uint32_t crc32 = 0;   ///< CRC32 of the payload bytes.
};

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_FORMAT_H_
