#include "store/geometry_codec.h"

#include <vector>

namespace sfpm {
namespace store {

namespace {

using geom::Geometry;
using geom::GeometryType;
using geom::LinearRing;
using geom::LineString;
using geom::MultiLineString;
using geom::MultiPoint;
using geom::MultiPolygon;
using geom::Point;
using geom::Polygon;

void EncodePoint(const Point& p, ByteWriter* w) {
  w->F64(p.x);
  w->F64(p.y);
}

void EncodePointList(const std::vector<Point>& pts, ByteWriter* w) {
  w->U64(pts.size());
  for (const Point& p : pts) EncodePoint(p, w);
}

void EncodePolygonBody(const Polygon& poly, ByteWriter* w) {
  if (poly.IsEmpty()) {
    w->U64(0);
    return;
  }
  w->U64(1 + poly.holes().size());
  EncodePointList(poly.shell().points(), w);
  for (const LinearRing& hole : poly.holes()) {
    EncodePointList(hole.points(), w);
  }
}

Result<Point> DecodePoint(ByteReader* r) {
  Point p;
  SFPM_ASSIGN_OR_RETURN(p.x, r->F64());
  SFPM_ASSIGN_OR_RETURN(p.y, r->F64());
  return p;
}

Result<std::vector<Point>> DecodePointList(ByteReader* r) {
  SFPM_ASSIGN_OR_RETURN(const uint64_t count, r->U64());
  SFPM_RETURN_NOT_OK(r->CheckCount(count, 16));
  std::vector<Point> pts;
  pts.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SFPM_ASSIGN_OR_RETURN(const Point p, DecodePoint(r));
    pts.push_back(p);
  }
  return pts;
}

/// Walks one encoded point list, expanding `env` by every point —
/// or, with `env == nullptr`, consuming the bytes only (polygon holes:
/// Polygon::GetEnvelope is shell-only, and the skim must agree with it
/// bit for bit).
Status SkimPointList(ByteReader* r, geom::Envelope* env) {
  SFPM_ASSIGN_OR_RETURN(const uint64_t count, r->U64());
  SFPM_RETURN_NOT_OK(r->CheckCount(count, 16));
  for (uint64_t i = 0; i < count; ++i) {
    SFPM_ASSIGN_OR_RETURN(const Point p, DecodePoint(r));
    if (env != nullptr) env->ExpandToInclude(p);
  }
  return Status::OK();
}

Status SkimPolygonBody(ByteReader* r, geom::Envelope* env) {
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_rings, r->U64());
  if (num_rings == 0) return Status::OK();
  SFPM_RETURN_NOT_OK(r->CheckCount(num_rings, 8));
  SFPM_RETURN_NOT_OK(SkimPointList(r, env));  // Shell.
  for (uint64_t i = 1; i < num_rings; ++i) {
    SFPM_RETURN_NOT_OK(SkimPointList(r, nullptr));  // Holes: bytes only.
  }
  return Status::OK();
}

Result<Polygon> DecodePolygonBody(ByteReader* r) {
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_rings, r->U64());
  if (num_rings == 0) return Polygon();
  SFPM_RETURN_NOT_OK(r->CheckCount(num_rings, 8));
  SFPM_ASSIGN_OR_RETURN(std::vector<Point> shell_pts, DecodePointList(r));
  // Rings are stored closed (LinearRing closes them at construction), so
  // LinearRing here never appends a vertex and round trips stay bit-exact.
  LinearRing shell(std::move(shell_pts));
  std::vector<LinearRing> holes;
  holes.reserve(num_rings - 1);
  for (uint64_t i = 1; i < num_rings; ++i) {
    SFPM_ASSIGN_OR_RETURN(std::vector<Point> pts, DecodePointList(r));
    holes.emplace_back(std::move(pts));
  }
  return Polygon(std::move(shell), std::move(holes));
}

}  // namespace

void EncodeGeometry(const Geometry& g, ByteWriter* w) {
  w->U8(static_cast<uint8_t>(g.type()));
  switch (g.type()) {
    case GeometryType::kPoint:
      EncodePoint(g.As<Point>(), w);
      break;
    case GeometryType::kLineString:
      EncodePointList(g.As<LineString>().points(), w);
      break;
    case GeometryType::kPolygon:
      EncodePolygonBody(g.As<Polygon>(), w);
      break;
    case GeometryType::kMultiPoint:
      EncodePointList(g.As<MultiPoint>().points(), w);
      break;
    case GeometryType::kMultiLineString: {
      const auto& lines = g.As<MultiLineString>().lines();
      w->U64(lines.size());
      for (const LineString& line : lines) EncodePointList(line.points(), w);
      break;
    }
    case GeometryType::kMultiPolygon: {
      const auto& polys = g.As<MultiPolygon>().polygons();
      w->U64(polys.size());
      for (const Polygon& poly : polys) EncodePolygonBody(poly, w);
      break;
    }
  }
}

Result<Geometry> DecodeGeometry(ByteReader* r) {
  SFPM_ASSIGN_OR_RETURN(const uint8_t tag, r->U8());
  if (tag > static_cast<uint8_t>(GeometryType::kMultiPolygon)) {
    return Status::ParseError("unknown geometry type tag " +
                              std::to_string(tag));
  }
  switch (static_cast<GeometryType>(tag)) {
    case GeometryType::kPoint: {
      SFPM_ASSIGN_OR_RETURN(const Point p, DecodePoint(r));
      return Geometry(p);
    }
    case GeometryType::kLineString: {
      SFPM_ASSIGN_OR_RETURN(std::vector<Point> pts, DecodePointList(r));
      return Geometry(LineString(std::move(pts)));
    }
    case GeometryType::kPolygon: {
      SFPM_ASSIGN_OR_RETURN(Polygon poly, DecodePolygonBody(r));
      return Geometry(std::move(poly));
    }
    case GeometryType::kMultiPoint: {
      SFPM_ASSIGN_OR_RETURN(std::vector<Point> pts, DecodePointList(r));
      return Geometry(MultiPoint(std::move(pts)));
    }
    case GeometryType::kMultiLineString: {
      SFPM_ASSIGN_OR_RETURN(const uint64_t count, r->U64());
      SFPM_RETURN_NOT_OK(r->CheckCount(count, 8));
      std::vector<LineString> lines;
      lines.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        SFPM_ASSIGN_OR_RETURN(std::vector<Point> pts, DecodePointList(r));
        lines.emplace_back(std::move(pts));
      }
      return Geometry(MultiLineString(std::move(lines)));
    }
    case GeometryType::kMultiPolygon: {
      SFPM_ASSIGN_OR_RETURN(const uint64_t count, r->U64());
      SFPM_RETURN_NOT_OK(r->CheckCount(count, 8));
      std::vector<Polygon> polys;
      polys.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        SFPM_ASSIGN_OR_RETURN(Polygon poly, DecodePolygonBody(r));
        polys.push_back(std::move(poly));
      }
      return Geometry(MultiPolygon(std::move(polys)));
    }
  }
  return Status::Internal("unreachable geometry tag");
}

Result<geom::Envelope> SkimGeometryEnvelope(ByteReader* r) {
  SFPM_ASSIGN_OR_RETURN(const uint8_t tag, r->U8());
  if (tag > static_cast<uint8_t>(GeometryType::kMultiPolygon)) {
    return Status::ParseError("unknown geometry type tag " +
                              std::to_string(tag));
  }
  geom::Envelope env;
  switch (static_cast<GeometryType>(tag)) {
    case GeometryType::kPoint: {
      SFPM_ASSIGN_OR_RETURN(const Point p, DecodePoint(r));
      env.ExpandToInclude(p);
      break;
    }
    case GeometryType::kLineString:
    case GeometryType::kMultiPoint:
      SFPM_RETURN_NOT_OK(SkimPointList(r, &env));
      break;
    case GeometryType::kPolygon:
      SFPM_RETURN_NOT_OK(SkimPolygonBody(r, &env));
      break;
    case GeometryType::kMultiLineString: {
      SFPM_ASSIGN_OR_RETURN(const uint64_t count, r->U64());
      SFPM_RETURN_NOT_OK(r->CheckCount(count, 8));
      for (uint64_t i = 0; i < count; ++i) {
        SFPM_RETURN_NOT_OK(SkimPointList(r, &env));
      }
      break;
    }
    case GeometryType::kMultiPolygon: {
      SFPM_ASSIGN_OR_RETURN(const uint64_t count, r->U64());
      SFPM_RETURN_NOT_OK(r->CheckCount(count, 8));
      for (uint64_t i = 0; i < count; ++i) {
        SFPM_RETURN_NOT_OK(SkimPolygonBody(r, &env));
      }
      break;
    }
  }
  return env;
}

}  // namespace store
}  // namespace sfpm
