#ifndef SFPM_STORE_READER_H_
#define SFPM_STORE_READER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/transaction_db.h"
#include "feature/feature.h"
#include "feature/predicate_table.h"
#include "store/format.h"
#include "store/mapped_file.h"
#include "store/writer.h"  // PatternSet
#include "util/status.h"

namespace sfpm {
namespace store {

/// \brief Zero-copy view of a transaction-db section: labels, keys and
/// row names are string_views into the mapping and `ColumnWords` points
/// straight at the file's bitmap columns (8-aligned by the writer).
/// Valid only while the owning SnapshotReader is alive. `Materialize`
/// copies it into an owned core::TransactionDb (a straight memcpy per
/// column — no parsing).
///
/// Lifetime contract for concurrent consumers: the reader never remaps
/// or invalidates a mapping in place — the mmap lives exactly as long
/// as the SnapshotReader object — so "keep the view valid" reduces to
/// "keep the reader alive", e.g. by holding both behind one shared_ptr.
/// That is how `sfpm serve` hot-swaps snapshots with queries in flight:
/// each request pins the reader-owning generation until it finishes,
/// and the old file unmaps only after the last view drops
/// (docs/SERVE.md "Hot swap and lifetime";
/// tests/serve/server_test.cc pins the contract under ASan).
struct TxDbView {
  size_t num_transactions = 0;
  size_t num_items = 0;
  size_t num_words = 0;  ///< ceil(num_transactions / 64).
  std::vector<std::string_view> labels;
  std::vector<std::string_view> keys;
  std::vector<std::string_view> row_names;  ///< Empty for bare databases.
  const uint64_t* columns = nullptr;  ///< Item-major, num_items * num_words.

  const uint64_t* ColumnWords(size_t item) const {
    return columns + item * num_words;
  }

  /// Copies the view into an owned database.
  Result<core::TransactionDb> Materialize() const;
};

/// \brief Validating reader over one `.sfpm` snapshot. `Open` maps (or
/// buffers) the file, parses and checks the header and section table, and
/// — by default — verifies every section checksum, so a truncated,
/// corrupted or version-mismatched file fails with a clear error before
/// any payload is decoded. Section accessors bounds-check every declared
/// length; no input can drive reads outside the mapping.
///
/// Reads publish `store.read.*` / `store.crc.*` counters and a
/// `store/open` span to the global obs registry.
class SnapshotReader {
 public:
  struct Options {
    /// Map the file instead of reading it (POSIX; buffered elsewhere).
    bool use_mmap = true;
    /// Verify all payload CRCs at open. Turning this off defers nothing
    /// — sections are then verified on first access instead.
    bool verify_checksums_eagerly = true;
  };

  /// Opens and validates `path`.
  static Result<SnapshotReader> Open(const std::string& path,
                                     const Options& options);
  static Result<SnapshotReader> Open(const std::string& path) {
    return Open(path, Options());
  }

  /// Validates an in-memory snapshot (buffered; for tests and fuzzing).
  static Result<SnapshotReader> FromBytes(std::string_view bytes,
                                          const Options& options);
  static Result<SnapshotReader> FromBytes(std::string_view bytes) {
    return FromBytes(bytes, Options());
  }

  SnapshotReader(SnapshotReader&&) = default;
  SnapshotReader& operator=(SnapshotReader&&) = default;

  /// Every section, in file order.
  const std::vector<SectionInfo>& sections() const { return sections_; }

  /// Version string of the writer, from the header.
  const std::string& tool_version() const { return tool_version_; }

  /// True when the snapshot is backed by an mmap (vs a buffered read).
  bool is_mapped() const { return file_->is_mapped(); }

  /// First section of `type` (any name); NotFound when absent.
  Result<SectionInfo> Find(SectionType type) const;

  /// Section of `type` named `name`; NotFound when absent.
  Result<SectionInfo> Find(SectionType type, const std::string& name) const;

  /// \name Section decoders. Each validates the info against this file
  /// (type, bounds) and, when deferred, its checksum.
  /// @{
  Result<feature::Layer> ReadLayer(const SectionInfo& info) const;
  /// Decodes only the features whose envelope intersects `window`,
  /// renumbered from 0 in file order — the same layer
  /// feature::WindowLayer would build from a full ReadLayer, without
  /// materializing (or R-tree-indexing) the skipped features. Tile
  /// extraction uses this with the halo window (docs/SHARDING.md).
  Result<feature::Layer> ReadLayer(const SectionInfo& info,
                                   const geom::Envelope& window) const;
  Result<feature::PredicateTable> ReadTable(const SectionInfo& info) const;
  Result<core::TransactionDb> ReadTransactionDb(const SectionInfo& info) const;
  Result<TxDbView> ViewTable(const SectionInfo& info) const;
  Result<PatternSet> ReadPatternSet(const SectionInfo& info) const;
  Result<NeighborGraphData> ReadNeighborGraph(const SectionInfo& info) const;
  Result<ColocationSet> ReadColocationSet(const SectionInfo& info) const;
  Result<std::map<std::string, std::string>> ReadManifest(
      const SectionInfo& info) const;
  /// @}

 private:
  explicit SnapshotReader(MappedFile file);

  static Result<SnapshotReader> Validate(MappedFile file,
                                         const Options& options);
  Result<const uint8_t*> SectionPayload(const SectionInfo& info,
                                        SectionType expected_type) const;
  Result<feature::Layer> ReadLayerImpl(const SectionInfo& info,
                                       const geom::Envelope* window) const;
  Status VerifyCrc(const SectionInfo& info) const;

  /// unique_ptr keeps zero-copy views (which point into the mapping)
  /// valid across moves of the reader itself.
  std::unique_ptr<MappedFile> file_;
  std::string tool_version_;
  std::vector<SectionInfo> sections_;
  bool eager_crc_ = true;
};

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_READER_H_
