#include "store/mapped_file.h"

#include <cstdio>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define SFPM_STORE_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SFPM_STORE_HAS_MMAP 0
#endif

namespace sfpm {
namespace store {

namespace {

/// Buffered fallback: reads the whole file into aligned memory.
Result<MappedFile> OpenBuffered(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  AlignedVector<uint8_t> buffer;
  uint8_t chunk[1 << 16];
  size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    buffer.insert(buffer.end(), chunk, chunk + n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("read error on " + path);
  }
  return MappedFile::FromAligned(std::move(buffer));
}

}  // namespace

Result<MappedFile> MappedFile::Open(const std::string& path,
                                    bool prefer_mmap) {
#if SFPM_STORE_HAS_MMAP
  if (prefer_mmap) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      return Status::NotFound("cannot open " + path);
    }
    struct stat st;
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
      ::close(fd);
      return Status::Internal("cannot stat " + path);
    }
    const size_t size = static_cast<size_t>(st.st_size);
    if (size == 0) {
      // mmap rejects zero-length mappings; an empty file is representable
      // as an empty (buffered) view.
      ::close(fd);
      MappedFile file;
      return file;
    }
    void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);  // The mapping keeps the file alive.
    if (base == MAP_FAILED) {
      return OpenBuffered(path);  // e.g. a pipe or unusual filesystem.
    }
    MappedFile file;
    file.data_ = static_cast<const uint8_t*>(base);
    file.size_ = size;
    file.mapped_ = true;
    file.map_base_ = base;
    return file;
  }
#else
  (void)prefer_mmap;
#endif
  return OpenBuffered(path);
}

MappedFile MappedFile::FromBytes(std::string_view bytes) {
  AlignedVector<uint8_t> buffer(bytes.begin(), bytes.end());
  return FromAligned(std::move(buffer));
}

MappedFile MappedFile::FromAligned(AlignedVector<uint8_t> buffer) {
  MappedFile file;
  file.buffer_ = std::move(buffer);
  file.data_ = file.buffer_.data();
  file.size_ = file.buffer_.size();
  return file;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  buffer_ = std::move(other.buffer_);
  mapped_ = other.mapped_;
  map_base_ = other.map_base_;
  size_ = other.size_;
  // The buffer's data pointer belongs to *this* object's member now.
  data_ = mapped_ ? other.data_ : buffer_.data();
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
  other.map_base_ = nullptr;
  return *this;
}

void MappedFile::Reset() {
#if SFPM_STORE_HAS_MMAP
  if (mapped_ && map_base_ != nullptr) {
    ::munmap(map_base_, size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
  map_base_ = nullptr;
  buffer_.clear();
}

}  // namespace store
}  // namespace sfpm
