#include "store/reader.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <optional>

#include "feature/predicate.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "store/bytes.h"
#include "store/crc32.h"
#include "store/geometry_codec.h"
#include "util/stopwatch.h"

namespace sfpm {
namespace store {

namespace {

Status Corrupt(const std::string& what) {
  return Status::ParseError("corrupt snapshot: " + what);
}

/// Bits past num_transactions in the last column word must be zero — the
/// invariant SupportOfWords popcounts rely on.
Status CheckTailBits(const uint64_t* words, size_t num_words,
                     size_t num_transactions) {
  if (num_words == 0) return Status::OK();
  const size_t tail_bits = num_transactions % 64;
  if (tail_bits == 0) return Status::OK();
  const uint64_t mask = ~uint64_t{0} << tail_bits;
  if ((words[num_words - 1] & mask) != 0) {
    return Corrupt("bitmap column has bits set past the last transaction");
  }
  return Status::OK();
}

}  // namespace

Result<core::TransactionDb> TxDbView::Materialize() const {
  std::vector<std::string> label_strings(labels.begin(), labels.end());
  std::vector<std::string> key_strings(keys.begin(), keys.end());
  return core::TransactionDb::FromParts(std::move(label_strings),
                                        std::move(key_strings),
                                        num_transactions, columns);
}

SnapshotReader::SnapshotReader(MappedFile file)
    : file_(std::make_unique<MappedFile>(std::move(file))) {}

Result<SnapshotReader> SnapshotReader::Open(const std::string& path,
                                            const Options& options) {
  SFPM_ASSIGN_OR_RETURN(MappedFile file,
                        MappedFile::Open(path, options.use_mmap));
  auto reader = Validate(std::move(file), options);
  if (!reader.ok()) {
    return Status(reader.status().code(),
                  path + ": " + reader.status().message());
  }
  return reader;
}

Result<SnapshotReader> SnapshotReader::FromBytes(std::string_view bytes,
                                                 const Options& options) {
  return Validate(MappedFile::FromBytes(bytes), options);
}

Result<SnapshotReader> SnapshotReader::Validate(MappedFile file,
                                                const Options& options) {
  obs::Tracer::Span span = obs::Tracer::Global().StartSpan("store/open");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  Stopwatch watch;

  SnapshotReader reader(std::move(file));
  reader.eager_crc_ = options.verify_checksums_eagerly;
  const uint8_t* data = reader.file_->data();
  const size_t size = reader.file_->size();

  if (size < kHeaderFixedSize) {
    return Corrupt("file is smaller than the fixed header (" +
                   std::to_string(size) + " bytes)");
  }

  ByteReader header(data, size);
  SFPM_ASSIGN_OR_RETURN(const uint32_t magic, header.U32());
  if (magic != kMagic) {
    return Corrupt("bad magic (not an .sfpm snapshot)");
  }
  SFPM_ASSIGN_OR_RETURN(const uint16_t version, header.U16());
  if (version != kFormatVersion) {
    return Status::Unsupported(
        "snapshot format version " + std::to_string(version) +
        " (this build reads version " + std::to_string(kFormatVersion) + ")");
  }
  SFPM_ASSIGN_OR_RETURN(const uint16_t flags, header.U16());
  if (flags != 0) {
    return Status::Unsupported("snapshot header flags " +
                               std::to_string(flags) + " are not supported");
  }
  SFPM_ASSIGN_OR_RETURN(const uint64_t file_size, header.U64());
  if (file_size != size) {
    return Corrupt("header declares " + std::to_string(file_size) +
                   " bytes but the file has " + std::to_string(size));
  }
  SFPM_ASSIGN_OR_RETURN(const uint64_t table_offset, header.U64());
  SFPM_ASSIGN_OR_RETURN(const uint32_t section_count, header.U32());
  SFPM_ASSIGN_OR_RETURN(const uint32_t tool_version_len, header.U32());
  SFPM_ASSIGN_OR_RETURN(const uint32_t header_crc, header.U32());
  SFPM_ASSIGN_OR_RETURN(const uint32_t header_reserved, header.U32());
  if (header_reserved != 0) {
    return Corrupt("nonzero reserved header field");
  }

  // Variable header part: tool version string, zero-padded to 8.
  if (tool_version_len > size - kHeaderFixedSize) {
    return Corrupt("tool version string overruns the file");
  }
  size_t header_end = kHeaderFixedSize + tool_version_len;
  header_end += (8 - header_end % 8) % 8;
  if (header_end > size) {
    return Corrupt("header padding overruns the file");
  }
  const uint32_t actual_header_crc =
      Crc32(data + kHeaderFixedSize, header_end - kHeaderFixedSize,
            Crc32(data, 32));
  if (actual_header_crc != header_crc) {
    return Corrupt("header checksum mismatch");
  }
  reader.tool_version_.assign(
      reinterpret_cast<const char*>(data) + kHeaderFixedSize,
      tool_version_len);
  for (size_t i = kHeaderFixedSize + tool_version_len; i < header_end; ++i) {
    if (data[i] != 0) return Corrupt("nonzero header padding byte");
  }

  // Section table.
  if (table_offset < header_end || table_offset > size ||
      table_offset % 8 != 0) {
    return Corrupt("section table offset out of bounds");
  }
  ByteReader table(data + table_offset, size - table_offset);
  SFPM_ASSIGN_OR_RETURN(const uint32_t table_crc, table.U32());
  SFPM_ASSIGN_OR_RETURN(const uint32_t table_reserved, table.U32());
  if (table_reserved != 0) {
    return Corrupt("nonzero reserved section-table field");
  }
  const size_t entries_begin = table_offset + 8;
  const uint32_t actual_table_crc =
      Crc32(data + entries_begin, size - entries_begin);
  if (actual_table_crc != table_crc) {
    return Corrupt("section table checksum mismatch");
  }

  uint64_t payload_cursor = header_end;
  reader.sections_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    SFPM_ASSIGN_OR_RETURN(const uint32_t type, table.U32());
    SFPM_ASSIGN_OR_RETURN(const uint32_t name_len, table.U32());
    SectionInfo info;
    SFPM_ASSIGN_OR_RETURN(info.offset, table.U64());
    SFPM_ASSIGN_OR_RETURN(info.length, table.U64());
    SFPM_ASSIGN_OR_RETURN(info.crc32, table.U32());
    SFPM_ASSIGN_OR_RETURN(const uint32_t entry_reserved, table.U32());
    if (entry_reserved != 0) {
      return Corrupt("nonzero reserved section-entry field");
    }
    if (!IsKnownSectionType(type)) {
      return Corrupt("unknown section type " + std::to_string(type));
    }
    info.type = static_cast<SectionType>(type);
    SFPM_ASSIGN_OR_RETURN(const uint8_t* name_bytes, table.Bytes(name_len));
    info.name.assign(reinterpret_cast<const char*>(name_bytes), name_len);
    // Sections are laid out back to back between the header and the
    // table; requiring exactly that (no gaps, no overlap) means every
    // payload byte belongs to exactly one checksum domain.
    if (info.offset != payload_cursor || info.length % 8 != 0 ||
        info.offset + info.length > table_offset) {
      return Corrupt("section '" + info.name +
                     "' has out-of-bounds or non-contiguous extent");
    }
    payload_cursor = info.offset + info.length;
    reader.sections_.push_back(std::move(info));
  }
  if (payload_cursor != table_offset) {
    return Corrupt("unaccounted bytes between sections and table");
  }
  if (table.remaining() != 0) {
    return Corrupt("section table has trailing bytes");
  }

  uint64_t crc_bytes = 0;
  if (reader.eager_crc_) {
    for (const SectionInfo& info : reader.sections_) {
      SFPM_RETURN_NOT_OK(reader.VerifyCrc(info));
      crc_bytes += info.length;
    }
  }

  registry.GetCounter("store.read.bytes").Add(size);
  registry.GetCounter("store.read.sections").Add(reader.sections_.size());
  registry.GetCounter("store.crc.bytes").Add(crc_bytes);
  span.SetAttr("bytes", static_cast<double>(size));
  span.SetAttr("sections", static_cast<double>(reader.sections_.size()));
  span.SetAttr("crc_ms", watch.ElapsedMillis());
  return reader;
}

Status SnapshotReader::VerifyCrc(const SectionInfo& info) const {
  const uint32_t actual =
      Crc32(file_->data() + info.offset, info.length);
  if (actual != info.crc32) {
    return Corrupt("section '" + info.name + "' checksum mismatch");
  }
  return Status::OK();
}

Result<SectionInfo> SnapshotReader::Find(SectionType type) const {
  for (const SectionInfo& info : sections_) {
    if (info.type == type) return info;
  }
  return Status::NotFound(std::string("snapshot has no ") +
                          SectionTypeName(type) + " section");
}

Result<SectionInfo> SnapshotReader::Find(SectionType type,
                                         const std::string& name) const {
  for (const SectionInfo& info : sections_) {
    if (info.type == type && info.name == name) return info;
  }
  return Status::NotFound(std::string("snapshot has no ") +
                          SectionTypeName(type) + " section named '" + name +
                          "'");
}

Result<const uint8_t*> SnapshotReader::SectionPayload(
    const SectionInfo& info, SectionType expected_type) const {
  if (info.type != expected_type) {
    return Status::InvalidArgument(
        std::string("section '") + info.name + "' is a " +
        SectionTypeName(info.type) + " section, not " +
        SectionTypeName(expected_type));
  }
  // Re-validate the extent: the info may come from a caller, not from
  // this reader's parsed table.
  if (info.offset % 8 != 0 || info.offset > file_->size() ||
      info.length > file_->size() - info.offset) {
    return Corrupt("section extent out of bounds");
  }
  if (!eager_crc_) {
    SFPM_RETURN_NOT_OK(VerifyCrc(info));
    obs::MetricsRegistry::Global().GetCounter("store.crc.bytes")
        .Add(info.length);
  }
  return file_->data() + info.offset;
}

Result<feature::Layer> SnapshotReader::ReadLayer(
    const SectionInfo& info) const {
  return ReadLayerImpl(info, nullptr);
}

Result<feature::Layer> SnapshotReader::ReadLayer(
    const SectionInfo& info, const geom::Envelope& window) const {
  return ReadLayerImpl(info, &window);
}

Result<feature::Layer> SnapshotReader::ReadLayerImpl(
    const SectionInfo& info, const geom::Envelope* window) const {
  SFPM_ASSIGN_OR_RETURN(const uint8_t* payload,
                        SectionPayload(info, SectionType::kLayer));
  ByteReader r(payload, info.length);
  SFPM_ASSIGN_OR_RETURN(const uint32_t codec, r.U32());
  if (codec != kSectionCodecVersion) {
    return Status::Unsupported("layer section codec version " +
                               std::to_string(codec));
  }
  SFPM_ASSIGN_OR_RETURN(const std::string_view feature_type, r.Str());
  SFPM_ASSIGN_OR_RETURN(const std::string_view name, r.Str());
  feature::Layer layer{std::string(feature_type), std::string(name)};
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_features, r.U64());
  SFPM_RETURN_NOT_OK(r.CheckCount(num_features, 13));  // id + tag + attrs.
  for (uint64_t i = 0; i < num_features; ++i) {
    SFPM_ASSIGN_OR_RETURN(const uint64_t id, r.U64());
    if (id != i) {
      return Corrupt("layer feature ids are not sequential from 0");
    }
    // A windowed-out feature still has all its bytes walked (geometry
    // and attributes are inline) — just never materialized: the skim
    // computes the envelope without allocating, and only intersecting
    // features are decoded for real.
    bool keep = true;
    std::optional<geom::Geometry> geometry;
    if (window == nullptr) {
      SFPM_ASSIGN_OR_RETURN(geom::Geometry g, DecodeGeometry(&r));
      geometry.emplace(std::move(g));
    } else {
      const size_t geometry_pos = r.pos();
      SFPM_ASSIGN_OR_RETURN(const geom::Envelope env,
                            SkimGeometryEnvelope(&r));
      keep = env.Intersects(*window);
      if (keep) {
        r.SeekTo(geometry_pos);
        SFPM_ASSIGN_OR_RETURN(geom::Geometry g, DecodeGeometry(&r));
        geometry.emplace(std::move(g));
      }
    }
    SFPM_ASSIGN_OR_RETURN(const uint32_t num_attrs, r.U32());
    SFPM_RETURN_NOT_OK(r.CheckCount(num_attrs, 8));
    std::map<std::string, std::string> attributes;
    for (uint32_t a = 0; a < num_attrs; ++a) {
      SFPM_ASSIGN_OR_RETURN(const std::string_view key, r.Str());
      SFPM_ASSIGN_OR_RETURN(const std::string_view value, r.Str());
      if (keep) attributes.emplace(std::string(key), std::string(value));
    }
    if (keep) layer.Add(std::move(*geometry), std::move(attributes));
  }
  SFPM_RETURN_NOT_OK(r.ExpectEndWithPadding());
  return layer;
}

namespace {

/// Shared txdb section scan: header scalars, item dictionary, optional
/// row names, then the 8-aligned column block.
struct TxDbSection {
  TxDbView view;
};

Result<TxDbSection> ParseTxDbSection(const uint8_t* payload, size_t length,
                                     uint64_t base_offset) {
  ByteReader r(payload, length);
  SFPM_ASSIGN_OR_RETURN(const uint32_t codec, r.U32());
  if (codec != kSectionCodecVersion) {
    return Status::Unsupported("txdb section codec version " +
                               std::to_string(codec));
  }
  TxDbSection out;
  TxDbView& view = out.view;
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_transactions, r.U64());
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_items, r.U64());
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_words, r.U64());
  if (num_words != (num_transactions + 63) / 64) {
    return Corrupt("txdb word count does not match its transaction count");
  }
  if (num_items > (uint64_t{1} << 32) - 1) {
    return Corrupt("txdb item count exceeds the 32-bit item-id space");
  }
  SFPM_RETURN_NOT_OK(r.CheckCount(num_items, 8));
  // The column block alone needs num_items * num_words * 8 bytes.
  if (num_words != 0 && num_items > length / (num_words * 8)) {
    return Corrupt("txdb declares more column words than the section holds");
  }
  view.num_transactions = num_transactions;
  view.num_items = num_items;
  view.num_words = num_words;
  view.labels.reserve(num_items);
  view.keys.reserve(num_items);
  for (uint64_t i = 0; i < num_items; ++i) {
    SFPM_ASSIGN_OR_RETURN(const std::string_view label, r.Str());
    SFPM_ASSIGN_OR_RETURN(const std::string_view key, r.Str());
    view.labels.push_back(label);
    view.keys.push_back(key);
  }
  SFPM_ASSIGN_OR_RETURN(const uint8_t has_rows, r.U8());
  if (has_rows > 1) return Corrupt("txdb has_rows flag must be 0 or 1");
  if (has_rows == 1) {
    SFPM_RETURN_NOT_OK(r.CheckCount(num_transactions, 4));
    view.row_names.reserve(num_transactions);
    for (uint64_t i = 0; i < num_transactions; ++i) {
      SFPM_ASSIGN_OR_RETURN(const std::string_view row_name, r.Str());
      view.row_names.push_back(row_name);
    }
  }
  // Writer-inserted padding aligns the columns to 8 within the payload.
  while ((base_offset + r.pos()) % 8 != 0) {
    SFPM_ASSIGN_OR_RETURN(const uint8_t pad, r.U8());
    if (pad != 0) return Corrupt("nonzero txdb column padding byte");
  }
  const size_t column_bytes = num_items * num_words * 8;
  SFPM_ASSIGN_OR_RETURN(const uint8_t* columns, r.Bytes(column_bytes));
  SFPM_RETURN_NOT_OK(r.ExpectEndWithPadding());
  if constexpr (std::endian::native == std::endian::little) {
    view.columns = reinterpret_cast<const uint64_t*>(columns);
  } else {
    return Status::Unsupported(
        "zero-copy txdb sections require a little-endian host");
  }
  for (uint64_t i = 0; i < num_items; ++i) {
    SFPM_RETURN_NOT_OK(
        CheckTailBits(view.ColumnWords(i), num_words, num_transactions));
  }
  return out;
}

}  // namespace

Result<TxDbView> SnapshotReader::ViewTable(const SectionInfo& info) const {
  SFPM_ASSIGN_OR_RETURN(const uint8_t* payload,
                        SectionPayload(info, SectionType::kTransactionDb));
  SFPM_ASSIGN_OR_RETURN(TxDbSection section,
                        ParseTxDbSection(payload, info.length, info.offset));
  return section.view;
}

Result<core::TransactionDb> SnapshotReader::ReadTransactionDb(
    const SectionInfo& info) const {
  SFPM_ASSIGN_OR_RETURN(const TxDbView view, ViewTable(info));
  return view.Materialize();
}

Result<feature::PredicateTable> SnapshotReader::ReadTable(
    const SectionInfo& info) const {
  SFPM_ASSIGN_OR_RETURN(const TxDbView view, ViewTable(info));
  if (view.row_names.empty() && view.num_transactions != 0) {
    return Corrupt("txdb section '" + info.name +
                   "' carries no row names (bare database, not a table)");
  }
  SFPM_ASSIGN_OR_RETURN(core::TransactionDb db, view.Materialize());
  std::vector<std::string> row_names(view.row_names.begin(),
                                     view.row_names.end());
  std::vector<feature::Predicate> predicates;
  predicates.reserve(view.num_items);
  for (size_t i = 0; i < view.num_items; ++i) {
    auto predicate =
        feature::Predicate::FromLabel(std::string(view.labels[i]));
    if (!predicate.ok()) {
      return Corrupt("txdb item label '" + std::string(view.labels[i]) +
                     "' is not a predicate label: " +
                     predicate.status().message());
    }
    if (predicate.value().Key() != view.keys[i]) {
      return Corrupt("txdb item '" + std::string(view.labels[i]) +
                     "' key does not match its predicate");
    }
    predicates.push_back(std::move(predicate).value());
  }
  return feature::PredicateTable::FromParts(std::move(row_names),
                                            std::move(predicates),
                                            std::move(db));
}

Result<PatternSet> SnapshotReader::ReadPatternSet(
    const SectionInfo& info) const {
  SFPM_ASSIGN_OR_RETURN(const uint8_t* payload,
                        SectionPayload(info, SectionType::kPatternSet));
  ByteReader r(payload, info.length);
  SFPM_ASSIGN_OR_RETURN(const uint32_t codec, r.U32());
  if (codec != kSectionCodecVersion) {
    return Status::Unsupported("pattern section codec version " +
                               std::to_string(codec));
  }
  PatternSet out;
  SFPM_ASSIGN_OR_RETURN(out.min_support, r.F64());
  SFPM_ASSIGN_OR_RETURN(const std::string_view algorithm, r.Str());
  SFPM_ASSIGN_OR_RETURN(const std::string_view filter, r.Str());
  out.algorithm = std::string(algorithm);
  out.filter = std::string(filter);
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_items, r.U64());
  SFPM_RETURN_NOT_OK(r.CheckCount(num_items, 8));
  out.labels.reserve(num_items);
  out.keys.reserve(num_items);
  for (uint64_t i = 0; i < num_items; ++i) {
    SFPM_ASSIGN_OR_RETURN(const std::string_view label, r.Str());
    SFPM_ASSIGN_OR_RETURN(const std::string_view key, r.Str());
    out.labels.emplace_back(label);
    out.keys.emplace_back(key);
  }
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_itemsets, r.U64());
  SFPM_RETURN_NOT_OK(r.CheckCount(num_itemsets, 8));
  out.itemsets.reserve(num_itemsets);
  for (uint64_t i = 0; i < num_itemsets; ++i) {
    core::FrequentItemset fi;
    SFPM_ASSIGN_OR_RETURN(fi.support, r.U32());
    SFPM_ASSIGN_OR_RETURN(const uint32_t set_size, r.U32());
    SFPM_RETURN_NOT_OK(r.CheckCount(set_size, 4));
    std::vector<core::ItemId> items;
    items.reserve(set_size);
    for (uint32_t j = 0; j < set_size; ++j) {
      SFPM_ASSIGN_OR_RETURN(const uint32_t item, r.U32());
      if (item >= num_items) {
        return Corrupt("pattern itemset references item " +
                       std::to_string(item) + " of " +
                       std::to_string(num_items));
      }
      items.push_back(item);
    }
    fi.items = core::Itemset(std::move(items));
    if (fi.items.size() != set_size) {
      return Corrupt("pattern itemset has duplicate items");
    }
    out.itemsets.push_back(std::move(fi));
  }
  SFPM_RETURN_NOT_OK(r.ExpectEndWithPadding());
  return out;
}

Result<NeighborGraphData> SnapshotReader::ReadNeighborGraph(
    const SectionInfo& info) const {
  SFPM_ASSIGN_OR_RETURN(const uint8_t* payload,
                        SectionPayload(info, SectionType::kNeighborGraph));
  ByteReader r(payload, info.length);
  SFPM_ASSIGN_OR_RETURN(const uint32_t codec, r.U32());
  if (codec != kSectionCodecVersion) {
    return Status::Unsupported("neighbour graph section codec version " +
                               std::to_string(codec));
  }
  NeighborGraphData out;
  SFPM_ASSIGN_OR_RETURN(out.distance, r.F64());
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_types, r.U64());
  SFPM_RETURN_NOT_OK(r.CheckCount(num_types, 8));
  out.type_names.reserve(num_types);
  out.type_sizes.reserve(num_types);
  uint64_t size_sum = 0;
  for (uint64_t t = 0; t < num_types; ++t) {
    SFPM_ASSIGN_OR_RETURN(const std::string_view type, r.Str());
    SFPM_ASSIGN_OR_RETURN(const uint32_t size, r.U32());
    out.type_names.emplace_back(type);
    out.type_sizes.push_back(size);
    size_sum += size;
  }
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_bands, r.U64());
  SFPM_RETURN_NOT_OK(r.CheckCount(num_bands, 4));
  out.band_names.reserve(num_bands);
  for (uint64_t b = 0; b < num_bands; ++b) {
    SFPM_ASSIGN_OR_RETURN(const std::string_view band, r.Str());
    out.band_names.emplace_back(band);
  }
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_nodes, r.U64());
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_edges, r.U64());
  if (num_nodes > (uint64_t{1} << 32) - 1) {
    return Corrupt("neighbour graph exceeds the 32-bit node-id space");
  }
  if (num_nodes != size_sum) {
    return Corrupt("neighbour graph node count does not match its type "
                   "sizes");
  }
  // Writer-inserted padding aligns the CSR arrays to 8 within the payload.
  while (r.pos() % 8 != 0) {
    SFPM_ASSIGN_OR_RETURN(const uint8_t pad, r.U8());
    if (pad != 0) return Corrupt("nonzero neighbour graph padding byte");
  }
  SFPM_RETURN_NOT_OK(r.CheckCount(num_nodes + 1, 8));
  SFPM_RETURN_NOT_OK(r.CheckCount(num_edges, 5));  // neighbor + band.
  out.offsets.reserve(num_nodes + 1);
  for (uint64_t i = 0; i <= num_nodes; ++i) {
    SFPM_ASSIGN_OR_RETURN(const uint64_t offset, r.U64());
    if (i == 0 && offset != 0) {
      return Corrupt("neighbour graph offsets do not start at 0");
    }
    if (i > 0 && offset < out.offsets.back()) {
      return Corrupt("neighbour graph offsets are not non-decreasing");
    }
    out.offsets.push_back(offset);
  }
  if (out.offsets.back() != num_edges) {
    return Corrupt("neighbour graph offsets do not end at the edge count");
  }
  out.neighbors.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    SFPM_ASSIGN_OR_RETURN(const uint32_t neighbor, r.U32());
    if (neighbor >= num_nodes) {
      return Corrupt("neighbour graph edge references node " +
                     std::to_string(neighbor) + " of " +
                     std::to_string(num_nodes));
    }
    out.neighbors.push_back(neighbor);
  }
  for (uint64_t u = 0; u < num_nodes; ++u) {
    for (uint64_t i = out.offsets[u] + 1; i < out.offsets[u + 1]; ++i) {
      if (out.neighbors[i] <= out.neighbors[i - 1]) {
        return Corrupt("neighbour list is not strictly ascending");
      }
    }
  }
  out.bands.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    SFPM_ASSIGN_OR_RETURN(const uint8_t band, r.U8());
    if (num_bands != 0 && band >= num_bands) {
      return Corrupt("neighbour graph edge band out of range");
    }
    if (num_bands == 0 && band != 0) {
      return Corrupt("ungraded neighbour graph has a nonzero edge band");
    }
    out.bands.push_back(band);
  }
  SFPM_RETURN_NOT_OK(r.ExpectEndWithPadding());
  return out;
}

Result<ColocationSet> SnapshotReader::ReadColocationSet(
    const SectionInfo& info) const {
  SFPM_ASSIGN_OR_RETURN(const uint8_t* payload,
                        SectionPayload(info, SectionType::kColocationSet));
  ByteReader r(payload, info.length);
  SFPM_ASSIGN_OR_RETURN(const uint32_t codec, r.U32());
  if (codec != kSectionCodecVersion) {
    return Status::Unsupported("colocation section codec version " +
                               std::to_string(codec));
  }
  ColocationSet out;
  SFPM_ASSIGN_OR_RETURN(out.min_prevalence, r.F64());
  SFPM_ASSIGN_OR_RETURN(out.distance, r.F64());
  SFPM_ASSIGN_OR_RETURN(const std::string_view filter, r.Str());
  out.filter = std::string(filter);
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_types, r.U64());
  SFPM_RETURN_NOT_OK(r.CheckCount(num_types, 4));
  out.type_names.reserve(num_types);
  for (uint64_t t = 0; t < num_types; ++t) {
    SFPM_ASSIGN_OR_RETURN(const std::string_view type, r.Str());
    out.type_names.emplace_back(type);
  }
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_patterns, r.U64());
  SFPM_RETURN_NOT_OK(r.CheckCount(num_patterns, 28));  // size + 3 measures.
  out.patterns.reserve(num_patterns);
  for (uint64_t i = 0; i < num_patterns; ++i) {
    ColocationSet::Pattern p;
    SFPM_ASSIGN_OR_RETURN(const uint32_t set_size, r.U32());
    if (set_size < 2) {
      return Corrupt("co-location pattern has fewer than two types");
    }
    SFPM_RETURN_NOT_OK(r.CheckCount(set_size, 4));
    p.types.reserve(set_size);
    for (uint32_t j = 0; j < set_size; ++j) {
      SFPM_ASSIGN_OR_RETURN(const uint32_t type, r.U32());
      if (type >= num_types) {
        return Corrupt("co-location pattern references type " +
                       std::to_string(type) + " of " +
                       std::to_string(num_types));
      }
      if (j > 0 && type <= p.types.back()) {
        return Corrupt("co-location pattern types are not strictly "
                       "ascending");
      }
      p.types.push_back(type);
    }
    SFPM_ASSIGN_OR_RETURN(p.participation_index, r.F64());
    SFPM_ASSIGN_OR_RETURN(p.fuzzy_prevalence, r.F64());
    SFPM_ASSIGN_OR_RETURN(p.rows, r.U64());
    out.patterns.push_back(std::move(p));
  }
  SFPM_RETURN_NOT_OK(r.ExpectEndWithPadding());
  return out;
}

Result<std::map<std::string, std::string>> SnapshotReader::ReadManifest(
    const SectionInfo& info) const {
  SFPM_ASSIGN_OR_RETURN(const uint8_t* payload,
                        SectionPayload(info, SectionType::kManifest));
  ByteReader r(payload, info.length);
  SFPM_ASSIGN_OR_RETURN(const uint32_t codec, r.U32());
  if (codec != kSectionCodecVersion) {
    return Status::Unsupported("manifest section codec version " +
                               std::to_string(codec));
  }
  SFPM_ASSIGN_OR_RETURN(const uint64_t num_entries, r.U64());
  SFPM_RETURN_NOT_OK(r.CheckCount(num_entries, 8));
  std::map<std::string, std::string> out;
  for (uint64_t i = 0; i < num_entries; ++i) {
    SFPM_ASSIGN_OR_RETURN(const std::string_view key, r.Str());
    SFPM_ASSIGN_OR_RETURN(const std::string_view value, r.Str());
    out.emplace(std::string(key), std::string(value));
  }
  SFPM_RETURN_NOT_OK(r.ExpectEndWithPadding());
  return out;
}

}  // namespace store
}  // namespace sfpm
