#ifndef SFPM_STORE_CRC32_H_
#define SFPM_STORE_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sfpm {
namespace store {

/// \brief CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected), the
/// checksum of every `.sfpm` snapshot region: header, section table, and
/// each section payload. Matches zlib's crc32, so snapshots can be
/// verified with standard tools.
///
/// `seed` is the running CRC of the preceding bytes (0 for a fresh
/// computation), so large regions can be checksummed incrementally:
/// `Crc32(b, nb, Crc32(a, na))` == `Crc32(ab, na + nb)`.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_CRC32_H_
