#include "store/format.h"

namespace sfpm {
namespace store {

const char* SectionTypeName(SectionType type) {
  switch (type) {
    case SectionType::kLayer:
      return "layer";
    case SectionType::kTransactionDb:
      return "txdb";
    case SectionType::kPatternSet:
      return "patterns";
    case SectionType::kManifest:
      return "manifest";
    case SectionType::kNeighborGraph:
      return "neighbors";
    case SectionType::kColocationSet:
      return "colocations";
  }
  return "unknown";
}

bool IsKnownSectionType(uint32_t type) {
  return type >= static_cast<uint32_t>(SectionType::kLayer) &&
         type <= static_cast<uint32_t>(SectionType::kColocationSet);
}

}  // namespace store
}  // namespace sfpm
