#ifndef SFPM_STORE_PIPELINE_H_
#define SFPM_STORE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "datagen/city.h"
#include "util/status.h"

namespace sfpm {
namespace store {

/// \brief Staged snapshot pipeline: generate-city -> extract -> mine, each
/// stage reading and writing one `.sfpm` snapshot. Every output snapshot
/// carries a manifest section recording the stage name and a content hash
/// of everything that determined its bytes (stage parameters + input
/// snapshot bytes; never the thread count — outputs are bit-identical at
/// every thread count). `RunPipeline` skips a stage when its output
/// already exists, validates, and carries a matching hash, so re-running
/// after a crash or a parameter tweak redoes only the invalidated suffix.

/// FNV-1a 64-bit over `bytes`, chainable through `seed`.
inline constexpr uint64_t kFnv1aSeed = 14695981039346656037ULL;
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = kFnv1aSeed);

/// Lower-case 16-digit hex of a 64-bit hash.
std::string HashHex(uint64_t hash);

/// \brief Extract-stage parameters (the snapshot-driven subset of the CSV
/// CLI's extract flags).
struct ExtractConfig {
  /// Layer section that defines the transactions (one row per feature).
  std::string reference = "district";
  /// Layer sections to relate against; empty = every non-reference layer
  /// in the input snapshot, in file order.
  std::vector<std::string> relevant;
  /// Also emit cone-based direction predicates.
  bool directions = false;
  /// Worker threads (0 = auto, 1 = serial). Excluded from content hashes:
  /// outputs are identical at every setting.
  size_t threads = 0;
};

/// \brief Mine-stage parameters.
struct MineConfig {
  double min_support = 0.1;
  std::string algorithm = "apriori";  ///< "apriori" or "fpgrowth".
  std::string filter = "kc+";         ///< "none", "kc" or "kc+".
  /// Background-knowledge dependencies (feature-type pairs) for kc/kc+.
  std::vector<std::pair<std::string, std::string>> dependencies;
  /// Worker threads (0 = auto, 1 = serial); excluded from content hashes.
  size_t threads = 0;
};

/// \name Canonical parameter strings — the hash inputs. Stable across
/// runs and processes; thread counts never appear.
/// @{
std::string CanonicalCityConfig(const datagen::CityConfig& config);
std::string CanonicalExtractConfig(const ExtractConfig& config);
std::string CanonicalMineConfig(const MineConfig& config);
/// @}

/// \name Stage functions, shared by the `sfpm` subcommands and the `run`
/// driver. Each writes its output snapshot with a manifest recording
/// {stage, input_hash, tool_version, format}.
/// @{

/// Generates the synthetic city and writes its layers to `out_path`.
Status RunGenerateCityStage(const datagen::CityConfig& config,
                            const std::string& out_path);

/// Reads layers from `in_path`, extracts the predicate table, writes it
/// to `out_path`.
Status RunExtractStage(const std::string& in_path,
                       const std::string& out_path,
                       const ExtractConfig& config);

/// Reads the transaction db from `in_path`, mines it, writes the pattern
/// set to `out_path`.
Status RunMineStage(const std::string& in_path, const std::string& out_path,
                    const MineConfig& config);
/// @}

/// \brief Configuration of one `sfpm run` invocation.
struct PipelineOptions {
  std::string city_path = "city.sfpm";
  std::string txdb_path = "txdb.sfpm";
  std::string patterns_path = "patterns.sfpm";
  datagen::CityConfig city;
  ExtractConfig extract;
  MineConfig mine;
  /// Rerun every stage even when the output's hash already matches.
  bool force = false;
};

/// \brief What happened to one stage.
struct StageOutcome {
  std::string stage;       ///< "generate-city", "extract" or "mine".
  std::string output;      ///< Snapshot path the stage owns.
  std::string input_hash;  ///< 16-digit hex content hash.
  bool skipped = false;    ///< Output was already up to date.
  double seconds = 0.0;    ///< Wall time (0 when skipped).
};

struct PipelineResult {
  std::vector<StageOutcome> stages;
};

/// Runs (or skips) the three stages in order.
Result<PipelineResult> RunPipeline(const PipelineOptions& options);

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_PIPELINE_H_
