#ifndef SFPM_STORE_PIPELINE_H_
#define SFPM_STORE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "datagen/city.h"
#include "util/status.h"

namespace sfpm {
namespace store {

/// \brief Staged snapshot pipeline: generate-city -> extract -> mine, each
/// stage reading and writing one `.sfpm` snapshot. Every output snapshot
/// carries a manifest section recording the stage name and a content hash
/// of everything that determined its bytes (stage parameters + input
/// snapshot bytes; never the thread count — outputs are bit-identical at
/// every thread count). `RunPipeline` skips a stage when its output
/// already exists, validates, and carries a matching hash, so re-running
/// after a crash or a parameter tweak redoes only the invalidated suffix.

/// FNV-1a 64-bit over `bytes`, chainable through `seed`.
inline constexpr uint64_t kFnv1aSeed = 14695981039346656037ULL;
uint64_t Fnv1a64(std::string_view bytes, uint64_t seed = kFnv1aSeed);

/// Lower-case 16-digit hex of a 64-bit hash.
std::string HashHex(uint64_t hash);

class SnapshotReader;

/// Content identity of an open snapshot — the "input bytes" term of
/// every manifest hash. FNV-1a over the section table (type, name,
/// length, crc32 per section) instead of a second scan of the whole
/// file: Open has already checksummed every payload, so the table
/// commits to the content and any byte change flips a section CRC.
uint64_t SnapshotContentHash(const SnapshotReader& reader);

/// Opens `path` (validating every checksum) and hashes it; any open
/// failure propagates.
Result<uint64_t> SnapshotContentHash(const std::string& path);

/// \brief Extract-stage parameters (the snapshot-driven subset of the CSV
/// CLI's extract flags).
struct ExtractConfig {
  /// Layer section that defines the transactions (one row per feature).
  std::string reference = "district";
  /// Layer sections to relate against; empty = every non-reference layer
  /// in the input snapshot, in file order.
  std::vector<std::string> relevant;
  /// Also emit cone-based direction predicates.
  bool directions = false;
  /// Worker threads (0 = auto, 1 = serial). Excluded from content hashes:
  /// outputs are identical at every setting.
  size_t threads = 0;
};

/// \brief Mine-stage parameters.
struct MineConfig {
  /// Prevalence threshold: minimum support ratio (itemset backends) or
  /// minimum participation index (coloc backend).
  double min_support = 0.1;
  std::string algorithm = "apriori";  ///< "apriori" or "fpgrowth".
  std::string filter = "kc+";         ///< "none", "kc" or "kc+".
  /// Mining backend: "" defers to `algorithm`; otherwise "apriori",
  /// "fpgrowth" or "coloc". The itemset backends read the transaction db
  /// and write a pattern-set section — `--backend=apriori` is
  /// byte-identical to `--algorithm=apriori`. The coloc backend reads the
  /// *layer* snapshot (the city), materializes the neighbour graph and
  /// writes neighbour-graph + co-location sections instead.
  std::string backend;
  /// Background-knowledge dependencies (feature-type pairs) for kc/kc+.
  /// Uniform across backends: itemset miners prune predicate-item pairs,
  /// the coloc miner prunes feature-type pairs.
  std::vector<std::pair<std::string, std::string>> dependencies;
  /// Neighbourhood radius of the coloc backend's distance join; itemset
  /// backends ignore it (and it never enters their content hashes).
  double coloc_distance = 500.0;
  /// Worker threads (0 = auto, 1 = serial); excluded from content hashes.
  size_t threads = 0;
};

/// The backend a MineConfig resolves to: `backend` when set, else
/// `algorithm`.
std::string ResolvedMineBackend(const MineConfig& config);

/// \name Canonical parameter strings — the hash inputs. Stable across
/// runs and processes; thread counts never appear.
/// @{
std::string CanonicalCityConfig(const datagen::CityConfig& config);
std::string CanonicalExtractConfig(const ExtractConfig& config);
std::string CanonicalMineConfig(const MineConfig& config);
/// @}

/// \name Stage functions, shared by the `sfpm` subcommands and the `run`
/// driver. Each writes its output snapshot with a manifest recording
/// {stage, input_hash, tool_version, format}.
/// @{

/// Generates the synthetic city and writes its layers to `out_path`.
Status RunGenerateCityStage(const datagen::CityConfig& config,
                            const std::string& out_path);

/// Reads layers from `in_path`, extracts the predicate table, writes it
/// to `out_path`.
Status RunExtractStage(const std::string& in_path,
                       const std::string& out_path,
                       const ExtractConfig& config);

/// \brief One tile of a sharded extract (docs/SHARDING.md): `slot` in
/// the grid of `shards` tiles (datagen::TileGridFor). The partition is
/// recomputed from the input snapshot, so a TileSpec plus the city file
/// fully determines the stage.
struct TileSpec {
  int slot = 0;
  int shards = 1;
};

/// Path of one tile's snapshot: `txdb.sfpm` -> `txdb.tile2of4.sfpm`.
std::string TileSnapshotPath(const std::string& txdb_path,
                             const TileSpec& tile);

/// Content hash of one tile-extract stage (extract parameters + input
/// city bytes + tile coordinates; never the thread count).
std::string ExtractTileInputHash(const ExtractConfig& config,
                                 uint64_t in_file_hash, const TileSpec& tile);

/// Extracts the predicate table of one tile: the reference rows the tile
/// owns, joined against halo sub-layers of the relevant layers (the
/// features that can appear in an owned row's envelope join). The output
/// rows/predicates are byte-for-byte the full run's rows for those
/// reference features. With `config.directions` the relevant layers are
/// used whole — direction predicates scan the entire layer, so a halo
/// subset would change them.
Status RunExtractTileStage(const std::string& in_path,
                           const std::string& out_path,
                           const ExtractConfig& config, const TileSpec& tile);

/// Reads the transaction db from `in_path`, mines it, writes the pattern
/// set to `out_path`.
Status RunMineStage(const std::string& in_path, const std::string& out_path,
                    const MineConfig& config);
/// @}

/// \brief Configuration of one `sfpm run` invocation.
struct PipelineOptions {
  std::string city_path = "city.sfpm";
  std::string txdb_path = "txdb.sfpm";
  std::string patterns_path = "patterns.sfpm";
  datagen::CityConfig city;
  ExtractConfig extract;
  MineConfig mine;
  /// Rerun every stage even when the output's hash already matches.
  bool force = false;
  /// Extract-phase shard count (docs/SHARDING.md). 1 = the classic
  /// single extract stage. N > 1 partitions the city into N tiles
  /// (datagen::PartitionReference), runs one extract-tile stage per
  /// non-empty tile — concurrently, each independently skippable under
  /// its own content hash — then a merge stage writes `txdb_path` with
  /// the *same* manifest as a single-shard extract. The merged snapshot
  /// is byte-identical to the single-shard one, so sharded and unsharded
  /// runs resume each other, and the mine stage never knows the
  /// difference. Excluded from content hashes, like thread counts.
  int shards = 1;
};

/// \brief What happened to one stage.
struct StageOutcome {
  /// "generate-city", "extract" or "mine"; sharded runs report
  /// "tile<i>of<N>" per tile and "merge" instead of "extract".
  std::string stage;
  std::string output;      ///< Snapshot path the stage owns.
  std::string input_hash;  ///< 16-digit hex content hash.
  bool skipped = false;    ///< Output was already up to date.
  double seconds = 0.0;    ///< Wall time (0 when skipped).
};

struct PipelineResult {
  std::vector<StageOutcome> stages;
};

/// Runs (or skips) the three stages in order.
Result<PipelineResult> RunPipeline(const PipelineOptions& options);

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_PIPELINE_H_
