#ifndef SFPM_STORE_MAPPED_FILE_H_
#define SFPM_STORE_MAPPED_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/aligned.h"
#include "util/status.h"

namespace sfpm {
namespace store {

/// \brief Read-only view of a whole file: an mmap when the platform has
/// one (POSIX), else a buffered read into 64-byte-aligned memory. Either
/// way `data()` is at least 8-byte aligned, so 8-aligned file offsets are
/// 8-aligned addresses — the zero-copy transaction-column contract.
///
/// Move-only; the mapping (or buffer) lives as long as the object, and so
/// do the zero-copy views handed out by SnapshotReader.
class MappedFile {
 public:
  /// Opens `path` read-only. `prefer_mmap = false` forces the buffered
  /// path (the portable fallback, also exercised by tests and benches).
  static Result<MappedFile> Open(const std::string& path,
                                 bool prefer_mmap = true);

  /// Wraps an in-memory snapshot (copied into aligned storage) — the
  /// buffered path for byte-level tests and the fuzz oracle.
  static MappedFile FromBytes(std::string_view bytes);

  /// Takes ownership of an already-aligned buffer.
  static MappedFile FromAligned(AlignedVector<uint8_t> buffer);

  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { Reset(); }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// True when backed by an actual memory mapping (vs a buffered read).
  bool is_mapped() const { return mapped_; }

 private:
  void Reset();

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;  ///< mmap base (page-aligned), when mapped.
  AlignedVector<uint8_t> buffer_;  ///< Owned bytes, when buffered.
};

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_MAPPED_FILE_H_
