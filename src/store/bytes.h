#ifndef SFPM_STORE_BYTES_H_
#define SFPM_STORE_BYTES_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/status.h"

namespace sfpm {
namespace store {

/// \brief Little-endian scalar encoding shared by the snapshot writer and
/// reader. Scalars are assembled byte by byte, so the on-disk format is
/// identical on every host; bulk word arrays (the transaction bitmap
/// columns) take the memcpy fast path on little-endian hosts.

/// \brief Appends little-endian scalars and length-prefixed strings to a
/// growing byte buffer. The writer serializes each section payload through
/// one of these, then frames the payloads with offsets and checksums.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v));
    U8(static_cast<uint8_t>(v >> 8));
  }

  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v));
    U16(static_cast<uint16_t>(v >> 16));
  }

  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }

  /// Doubles travel as their IEEE-754 bit pattern — bit-exact round trips
  /// including -0.0, subnormals and NaN payloads.
  void F64(double v) { U64(std::bit_cast<uint64_t>(v)); }

  /// u32 length prefix + raw bytes, no padding or terminator.
  void Str(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  /// Bulk little-endian u64 array (memcpy on little-endian hosts).
  void Words(const uint64_t* words, size_t count) {
    if constexpr (std::endian::native == std::endian::little) {
      const size_t old = buf_.size();
      buf_.resize(old + count * 8);
      std::memcpy(buf_.data() + old, words, count * 8);
    } else {
      for (size_t i = 0; i < count; ++i) U64(words[i]);
    }
  }

  /// Zero-pads to the next 8-byte boundary. Every section payload ends
  /// with this, so payload starts (and the bitmap columns inside them)
  /// stay 8-aligned in the file — the zero-copy view's alignment contract.
  void AlignTo8() {
    while (buf_.size() % 8 != 0) buf_.push_back('\0');
  }

  size_t size() const { return buf_.size(); }
  const std::string& bytes() const { return buf_; }
  std::string TakeBytes() { return std::move(buf_); }

  /// Patches a previously written u32 in place (header back-fills).
  void PatchU32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[offset + static_cast<size_t>(i)] =
          static_cast<char>((v >> (8 * i)) & 0xFF);
    }
  }

  void PatchU64(size_t offset, uint64_t v) {
    PatchU32(offset, static_cast<uint32_t>(v));
    PatchU32(offset + 4, static_cast<uint32_t>(v >> 32));
  }

 private:
  std::string buf_;
};

/// \brief Bounds-checked little-endian cursor over an untrusted byte
/// range. Every read validates the remaining length first, so a
/// truncated or length-corrupted snapshot produces a clean ParseError
/// instead of reading out of bounds — the store's first line of defense
/// (checksums are the second).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t pos() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  /// Rewinds to a position previously returned by pos() (two-pass
  /// skim-then-decode reads). Positions past the end are ignored.
  void SeekTo(size_t pos) {
    if (pos <= size_) pos_ = pos;
  }

  Result<uint8_t> U8() {
    SFPM_RETURN_NOT_OK(Need(1));
    return data_[pos_++];
  }

  Result<uint16_t> U16() {
    SFPM_RETURN_NOT_OK(Need(2));
    const uint16_t v = static_cast<uint16_t>(
        static_cast<uint16_t>(data_[pos_]) |
        (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  Result<uint32_t> U32() {
    SFPM_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) {
      v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> U64() {
    SFPM_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | data_[pos_ + static_cast<size_t>(i)];
    }
    pos_ += 8;
    return v;
  }

  Result<double> F64() {
    SFPM_ASSIGN_OR_RETURN(const uint64_t bits, U64());
    return std::bit_cast<double>(bits);
  }

  /// Length-prefixed string; the declared length is validated against the
  /// remaining bytes before any allocation.
  Result<std::string_view> Str() {
    SFPM_ASSIGN_OR_RETURN(const uint32_t len, U32());
    SFPM_RETURN_NOT_OK(Need(len));
    std::string_view view(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return view;
  }

  /// Raw view of `count` bytes.
  Result<const uint8_t*> Bytes(size_t count) {
    SFPM_RETURN_NOT_OK(Need(count));
    const uint8_t* p = data_ + pos_;
    pos_ += count;
    return p;
  }

  /// Guards a declared element count before a decode loop: a section
  /// claiming more elements than its remaining bytes could possibly hold
  /// (`min_element_size` bytes each) is rejected up front, so absurd
  /// lengths can never drive a huge allocation.
  Status CheckCount(uint64_t count, size_t min_element_size) {
    if (count > remaining() / min_element_size) {
      return Status::ParseError(
          "declared count " + std::to_string(count) +
          " exceeds the section's remaining " +
          std::to_string(remaining()) + " bytes");
    }
    return Status::OK();
  }

  /// Consumes trailing zero padding (< 8 bytes) and requires the cursor to
  /// end exactly at the payload end — any other leftover is corruption.
  Status ExpectEndWithPadding() {
    if (remaining() >= 8) {
      return Status::ParseError("section payload has " +
                                std::to_string(remaining()) +
                                " undecoded trailing bytes");
    }
    while (pos_ < size_) {
      if (data_[pos_] != 0) {
        return Status::ParseError("nonzero section padding byte");
      }
      ++pos_;
    }
    return Status::OK();
  }

 private:
  Status Need(size_t n) {
    if (n > remaining()) {
      return Status::ParseError(
          "snapshot truncated: need " + std::to_string(n) + " bytes at " +
          std::to_string(pos_) + ", have " + std::to_string(remaining()));
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_BYTES_H_
