#ifndef SFPM_STORE_MERGE_H_
#define SFPM_STORE_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "feature/predicate_table.h"
#include "store/reader.h"
#include "util/status.h"

namespace sfpm {
namespace store {

/// \brief Snapshot merger for the sharded pipeline (docs/SHARDING.md):
/// joins per-tile extract outputs back into the single-shard transaction
/// db, byte for byte.
///
/// Each tile snapshot holds one predicate table over the reference rows
/// the tile owns, plus a manifest naming its stage ("extract-tile"), its
/// content hash, and the global row ids it covers ("tile_rows"). The
/// merge concatenates the tiles' bitmap transaction dbs in global row
/// order, remapping every tile-local item id to its global
/// first-appearance id, and re-aggregates supports implicitly — the
/// merged columns are rebuilt bit by bit, so every item's support is the
/// sum of its per-tile supports by construction.

/// One loaded tile: its table and the global row ids it owns (ascending,
/// same order as the table's rows).
struct TileTable {
  feature::PredicateTable table;
  std::vector<uint64_t> rows;
};

/// Validates and loads one tile table from an open snapshot.
/// `expected_input_hash` must match the manifest's input_hash (and the
/// stage must be "extract-tile") — a tile produced by different
/// parameters, an older tool, or a corrupted write is rejected, never
/// merged. Errors are attributed to the tile stage.
Result<TileTable> ReadTileTable(const SnapshotReader& reader,
                                const std::string& expected_input_hash);

/// Opens `path` and loads its tile table; any failure — unreadable file,
/// checksum mismatch, wrong stage or hash — is attributed to the tile.
Result<TileTable> LoadTileTable(const std::string& path,
                                const std::string& expected_input_hash);

/// Merges the tiles (any order) into the full table over rows
/// {0, ..., total_rows-1}. The tiles' row sets must partition that range
/// exactly — a missing, duplicated, or out-of-range row is an error.
///
/// The merged table is byte-identical to a single-shard extraction of
/// the same city: global rows are replayed in ascending order, and each
/// row's predicates are set in tile item-id order. Within a row, items
/// that are globally new must be new to the owning tile at that row too
/// (tile rows are a subsequence of global rows), and a tile assigns ids
/// to its row-new items in emission order — so the replay reassigns
/// global first-appearance ids exactly as the unsharded extractor would.
Result<feature::PredicateTable> MergeTileTables(
    const std::vector<TileTable>& tiles, size_t total_rows);

/// The stage name tile snapshots carry in their manifest.
inline constexpr char kStageExtractTile[] = "extract-tile";

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_MERGE_H_
