#ifndef SFPM_STORE_WRITER_H_
#define SFPM_STORE_WRITER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/apriori.h"
#include "feature/feature.h"
#include "feature/predicate_table.h"
#include "store/format.h"
#include "util/status.h"

namespace sfpm {
namespace store {

/// \brief A mined pattern set as stored in a snapshot: self-describing
/// (item labels and keys travel with the itemsets) plus the mining
/// configuration that produced it.
struct PatternSet {
  std::vector<std::string> labels;  ///< Indexed by the itemsets' item ids.
  std::vector<std::string> keys;    ///< Feature-type keys, parallel to labels.
  std::vector<core::FrequentItemset> itemsets;
  double min_support = 0.0;
  std::string algorithm;  ///< "apriori" or "fpgrowth".
  std::string filter;     ///< "none", "kc" or "kc+".

  /// Builds a pattern set from a mining result over `db`.
  static PatternSet FromResult(const core::TransactionDb& db,
                               const core::AprioriResult& result,
                               double min_support, std::string algorithm,
                               std::string filter);

  bool operator==(const PatternSet& o) const;
};

/// \brief A co-location neighbour graph as stored in a snapshot: the CSR
/// adjacency plus the type universe and distance-band names it is keyed
/// by. Plain data (mirrors coloc::NeighborGraph's accessors) so the store
/// codecs stay decoupled from the miner's types.
struct NeighborGraphData {
  double distance = 0.0;                 ///< Neighbourhood radius R.
  std::vector<std::string> type_names;   ///< Layer order = type-id order.
  std::vector<uint32_t> type_sizes;      ///< Instances per type.
  std::vector<std::string> band_names;   ///< Empty when edges are ungraded.
  std::vector<uint64_t> offsets;         ///< num_nodes + 1 CSR fences.
  std::vector<uint32_t> neighbors;       ///< Ascending within each node.
  std::vector<uint8_t> bands;            ///< Parallel to neighbors.

  bool operator==(const NeighborGraphData& o) const = default;
};

/// \brief A mined co-location pattern set as stored in a snapshot:
/// self-describing (the type universe travels with the patterns) plus the
/// mining configuration that produced it.
struct ColocationSet {
  struct Pattern {
    std::vector<uint32_t> types;  ///< Ascending ids into type_names.
    double participation_index = 0.0;
    double fuzzy_prevalence = 0.0;
    uint64_t rows = 0;

    bool operator==(const Pattern& o) const = default;
  };

  std::vector<std::string> type_names;
  double min_prevalence = 0.0;
  double distance = 0.0;   ///< Neighbourhood radius R of the run.
  std::string filter;      ///< "none", "kc" or "kc+".
  std::vector<Pattern> patterns;

  bool operator==(const ColocationSet& o) const = default;
};

/// \brief Serializes feature layers, transaction databases, and mined
/// pattern sets into one versioned, checksummed `.sfpm` snapshot
/// (docs/STORAGE.md). Sections are appended in call order; `WriteTo`
/// frames them with the header and CRC'd section table.
///
/// Writes publish `store.write.*` counters and a `store/write` span to the
/// global obs registry.
class SnapshotWriter {
 public:
  /// Adds a layer section named by the layer's feature type.
  void AddLayer(const feature::Layer& layer);

  /// Adds a columnar transaction-db section carrying the table's row
  /// names (and predicates, recoverable from the item labels).
  void AddTable(const feature::PredicateTable& table,
                const std::string& name = "txdb");

  /// Adds a bare transaction db (no row names).
  void AddTransactionDb(const core::TransactionDb& db,
                        const std::string& name = "txdb");

  /// Adds a mined pattern-set section.
  void AddPatternSet(const PatternSet& patterns,
                     const std::string& name = "patterns");

  /// Adds a co-location neighbour-graph section (CSR arrays 8-aligned
  /// within the payload).
  void AddNeighborGraph(const NeighborGraphData& graph,
                        const std::string& name = "neighbors");

  /// Adds a mined co-location pattern-set section.
  void AddColocationSet(const ColocationSet& colocations,
                        const std::string& name = "colocations");

  /// Adds a key/value manifest section (stage provenance; the pipeline
  /// driver's skip/resume logic keys off it). Entries are stored sorted.
  void AddManifest(const std::map<std::string, std::string>& entries,
                   const std::string& name = "manifest");

  /// Renders the complete snapshot (header + payloads + table) in memory.
  std::string Serialize() const;

  /// Serializes and writes the snapshot to `path` atomically enough for
  /// the pipeline (write then size-checked close).
  Status WriteTo(const std::string& path) const;

 private:
  struct PendingSection {
    SectionType type;
    std::string name;
    std::string payload;  ///< 8-padded section bytes.
  };

  void Add(SectionType type, std::string name, std::string payload);

  std::vector<PendingSection> sections_;
};

}  // namespace store
}  // namespace sfpm

#endif  // SFPM_STORE_WRITER_H_
