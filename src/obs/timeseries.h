#ifndef SFPM_OBS_TIMESERIES_H_
#define SFPM_OBS_TIMESERIES_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace sfpm {
namespace obs {

/// One timestamped observation of a scalar instrument. `at_ms` counts
/// from the owning sampler's construction (a steady clock, never wall
/// time, so windows are immune to clock steps).
struct SeriesSample {
  double at_ms = 0.0;
  double value = 0.0;
};

/// \brief In-process time-series ring: a background ticker snapshots the
/// registry every `interval_ms` into fixed-capacity per-instrument rings,
/// which is what turns cumulative counters into rates and cumulative
/// histograms into p99-over-the-last-N-seconds — the numbers `/varz` and
/// `sfpm top` show. Bounded memory by construction: `capacity` samples
/// per instrument, oldest dropped first.
///
/// All methods are thread-safe. The ticker is started explicitly and
/// joined by Stop()/the destructor; tests drive SampleNow() directly.
class RingSampler {
 public:
  struct Options {
    double interval_ms = 1000.0;  ///< Ticker period.
    size_t capacity = 128;        ///< Samples kept per instrument.
  };

  /// `registry` must outlive the sampler.
  explicit RingSampler(MetricsRegistry* registry);
  RingSampler(MetricsRegistry* registry, Options options);
  ~RingSampler();

  RingSampler(const RingSampler&) = delete;
  RingSampler& operator=(const RingSampler&) = delete;

  /// Spawns the ticker thread (idempotent).
  void Start();

  /// Stops and joins the ticker (idempotent; also run by the destructor).
  void Stop();

  /// Takes one sample of every registered instrument right now. The
  /// ticker calls this; tests call it directly for determinism.
  void SampleNow();

  /// Milliseconds since construction on the sampler's steady clock.
  double NowMs() const;

  /// Number of SampleNow calls so far (ticker liveness in tests/varz).
  uint64_t samples() const;

  /// Per-second rate of a counter over the trailing window: newest
  /// sample minus the oldest sample still inside `window_ms`, divided by
  /// their time distance. 0 until two samples span the window.
  double CounterRate(const std::string& name, double window_ms) const;

  /// Newest sampled value of a gauge; nullopt before the first sample.
  std::optional<double> GaugeValue(const std::string& name) const;

  /// Histogram delta over the trailing window (newest minus oldest
  /// in-window sample): bucket counts, count and sum of just the last
  /// `window_ms`. nullopt until two samples span the window — callers
  /// fall back to the cumulative histogram then.
  std::optional<HistogramData> HistogramWindow(const std::string& name,
                                               double window_ms) const;

 private:
  /// Fixed-capacity scalar ring, oldest overwritten first. Guarded by
  /// the sampler's mutex.
  struct ScalarRing {
    std::vector<SeriesSample> samples;  ///< Ring storage, size <= capacity.
    size_t next = 0;                    ///< Insert position once full.
  };
  struct HistogramSample {
    double at_ms = 0.0;
    HistogramData data;
  };
  struct HistogramRing {
    std::vector<HistogramSample> samples;
    size_t next = 0;
  };

  void PushScalar(ScalarRing* ring, double at_ms, double value) const;
  /// Newest sample, and the oldest one with at_ms >= since_ms.
  static std::optional<SeriesSample> NewestOf(const ScalarRing& ring);
  static std::optional<SeriesSample> OldestSince(const ScalarRing& ring,
                                                 double since_ms);
  void TickerLoop();

  MetricsRegistry* registry_;
  Options options_;
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;
  std::map<std::string, ScalarRing> counters_;
  std::map<std::string, ScalarRing> gauges_;
  std::map<std::string, HistogramRing> histograms_;
  uint64_t sample_count_ = 0;

  std::mutex ticker_mu_;  ///< Guards stop_ for the cv wait.
  std::condition_variable ticker_cv_;
  bool stop_ = false;
  std::thread ticker_;
};

}  // namespace obs
}  // namespace sfpm

#endif  // SFPM_OBS_TIMESERIES_H_
