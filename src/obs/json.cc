#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/strings.h"

namespace sfpm {
namespace obs {
namespace json {

std::string Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
}

Writer& Writer::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

Writer& Writer::EndObject() {
  has_value_.pop_back();
  out_ += '}';
  return *this;
}

Writer& Writer::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

Writer& Writer::EndArray() {
  has_value_.pop_back();
  out_ += ']';
  return *this;
}

Writer& Writer::Key(const std::string& key) {
  if (!has_value_.empty()) {
    if (has_value_.back()) out_ += ',';
    has_value_.back() = true;
  }
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

Writer& Writer::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

Writer& Writer::Number(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "0";  // JSON has no Inf/NaN; clamp rather than emit garbage.
    return *this;
  }
  // Shortest round-trippable representation: %.17g always round-trips,
  // but prefer %g when it already does for readability.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  if (parsed != value) {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out_ += buf;
  return *this;
}

Writer& Writer::Number(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Number(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

Writer& Writer::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

Writer& Writer::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

const Value* Value::Find(const std::string& key) const {
  for (const auto& [member_key, member] : object) {
    if (member_key == key) return &member;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<Value> Parse() {
    Value value;
    SFPM_RETURN_NOT_OK(ParseValue(&value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(
        StrFormat("%s at offset %zu", message.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Value* out) {
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = Value::Type::kString;
      return ParseString(&out->string);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  Status ParseObject(Value* out) {
    out->type = Value::Type::kObject;
    ++pos_;  // '{'
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      std::string key;
      SFPM_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' in object");
      Value member;
      SFPM_RETURN_NOT_OK(ParseValue(&member));
      out->object.emplace_back(std::move(key), std::move(member));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(Value* out) {
    out->type = Value::Type::kArray;
    ++pos_;  // '['
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      Value element;
      SFPM_RETURN_NOT_OK(ParseValue(&element));
      out->array.push_back(std::move(element));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the code point (surrogate pairs are passed
          // through individually; the reports never emit them).
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseKeyword(Value* out) {
    auto matches = [&](const char* keyword) {
      const size_t len = std::string(keyword).size();
      if (text_.compare(pos_, len, keyword) != 0) return false;
      pos_ += len;
      return true;
    };
    if (matches("true")) {
      out->type = Value::Type::kBool;
      out->boolean = true;
      return Status::OK();
    }
    if (matches("false")) {
      out->type = Value::Type::kBool;
      out->boolean = false;
      return Status::OK();
    }
    if (matches("null")) {
      out->type = Value::Type::kNull;
      return Status::OK();
    }
    return Error("unknown keyword");
  }

  Status ParseNumber(Value* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected value");
    char* end = nullptr;
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    out->type = Value::Type::kNumber;
    out->number = value;
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(const std::string& text) { return Parser(text).Parse(); }

}  // namespace json
}  // namespace obs
}  // namespace sfpm
