#include "obs/log.h"

#include <chrono>
#include <ctime>

#include "util/strings.h"

namespace sfpm {
namespace obs {

namespace {

/// True when a logfmt parser needs the value quoted to read it back as
/// one token.
bool NeedsQuoting(const std::string& value) {
  if (value.empty()) return true;
  for (const char c : value) {
    if (c == ' ' || c == '"' || c == '=' || c == '\\' || c == '\n' ||
        c == '\t') {
      return true;
    }
  }
  return false;
}

void AppendQuoted(const std::string& value, std::string* out) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

void AppendValue(const LogField& field, std::string* out) {
  if (field.quote_if_needed && NeedsQuoting(field.value)) {
    AppendQuoted(field.value, out);
  } else {
    out->append(field.value);
  }
}

int64_t UnixMillisNow() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

LogField::LogField(std::string k, double v) : key(std::move(k)) {
  AppendRoundTripDouble(v, &value);
}

LogField::LogField(std::string k, uint64_t v)
    : key(std::move(k)), value(std::to_string(v)) {}

LogField::LogField(std::string k, int v)
    : key(std::move(k)), value(std::to_string(v)) {}

LogField::LogField(std::string k, bool v)
    : key(std::move(k)), value(v ? "true" : "false") {}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::set_sink(std::FILE* sink) {
  const std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

std::string Logger::Format(LogLevel level, const std::string& msg,
                           const std::vector<LogField>& fields,
                           int64_t unix_ms) {
  const std::time_t seconds = static_cast<std::time_t>(unix_ms / 1000);
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char ts[40];
  std::snprintf(ts, sizeof(ts), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(unix_ms % 1000));

  std::string line = "ts=";
  line.append(ts);
  line.append(" level=");
  line.append(LogLevelName(level));
  line.append(" msg=");
  AppendValue(LogField("msg", msg), &line);
  for (const LogField& field : fields) {
    line.push_back(' ');
    line.append(field.key);
    line.push_back('=');
    AppendValue(field, &line);
  }
  return line;
}

void Logger::Log(LogLevel level, const std::string& msg,
                 const std::vector<LogField>& fields) {
  if (!ShouldLog(level)) return;
  // Render outside the lock; one fwrite keeps concurrent lines whole.
  std::string line = Format(level, msg, fields, UnixMillisNow());
  line.push_back('\n');
  const std::lock_guard<std::mutex> lock(mu_);
  if (sink_ == nullptr) return;
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);
}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  entries_.push_back(std::move(entry));
  while (entries_.size() > capacity_) entries_.pop_front();
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return {entries_.begin(), entries_.end()};
}

uint64_t SlowQueryLog::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

}  // namespace obs
}  // namespace sfpm
