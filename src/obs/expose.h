#ifndef SFPM_OBS_EXPOSE_H_
#define SFPM_OBS_EXPOSE_H_

#include <string>

#include "obs/metrics.h"

namespace sfpm {
namespace obs {

/// \brief Prometheus text exposition (format 0.0.4) of a metrics
/// snapshot. Dependency-free renderer for the `/metrics` endpoint of
/// `sfpm serve --metrics-port` (docs/SERVE.md).
///
/// Instrument names are dotted (`serve.queries`); Prometheus names are
/// not, so every name is exported as `sfpm_` + name with each character
/// outside [a-zA-Z0-9_] replaced by '_' (`sfpm_serve_queries`). The
/// mapping is injective under the repo's naming scheme (lowercase dotted
/// segments of [a-z0-9_], docs/OBSERVABILITY.md) because '.' is the only
/// rewritten character.

/// The exported Prometheus metric name of a dotted instrument name.
std::string PrometheusName(const std::string& name);

/// Renders the whole snapshot:
///   * counters as `# TYPE <name> counter` + one sample;
///   * gauges as `# TYPE <name> gauge` + one sample;
///   * histograms as cumulative `<name>_bucket{le="<bound>"}` samples
///     (inclusive upper bounds, matching the registry's convention) plus
///     the mandatory `le="+Inf"` bucket, `<name>_sum` and `<name>_count`.
/// Every `# HELP` line carries the original dotted name so a scrape can
/// be traced back to docs/OBSERVABILITY.md's instrument table.
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// The Content-Type a server must send with PrometheusText output.
inline constexpr char kPrometheusContentType[] =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace obs
}  // namespace sfpm

#endif  // SFPM_OBS_EXPOSE_H_
