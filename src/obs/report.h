#ifndef SFPM_OBS_REPORT_H_
#define SFPM_OBS_REPORT_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace sfpm {
namespace obs {

/// Version stamp of the run-report JSON schema (see
/// docs/OBSERVABILITY.md, "Run report schema").
inline constexpr int kRunReportVersion = 1;

/// \brief Identity of one CLI run — what produced the numbers. The
/// metrics and spans are passed separately at write time so the report
/// captures exactly the run's delta.
struct RunReport {
  std::string tool;     ///< "extract", "mine", ...
  std::string command;  ///< The full command line, for reproduction.
  std::vector<std::pair<std::string, std::string>> config;  ///< Parsed flags.
};

/// Renders the machine-readable run report:
/// `{sfpm_report_version, tool, command, config, spans, metrics}`.
/// Zero-valued counters and zero-count histograms are dropped
/// (MetricsSnapshot::DropZeros), so a report written late in a long
/// process carries only the instruments this run touched.
std::string RunReportToJson(const RunReport& report,
                            const MetricsSnapshot& metrics,
                            const std::vector<TraceSpan>& spans);

/// Writes the `{counters, gauges, histograms}` object of a snapshot into
/// an open writer — the report's `metrics` member, reused verbatim by
/// the serve `/varz` endpoint.
void MetricsToJson(const MetricsSnapshot& metrics, json::Writer* w);

/// Renders the spans as Chrome `trace_event` JSON — loads directly in
/// about:tracing and Perfetto. Complete ("X") events with microsecond
/// timestamps; span attributes and counter deltas land in `args`.
std::string ChromeTraceJson(const std::vector<TraceSpan>& spans);

/// Writes `content` to `path` (the reports are small; no streaming).
Status WriteTextFile(const std::string& path, const std::string& content);

/// Writes `content` to `path` via write-temp-then-rename, so a
/// concurrent reader sees either nothing, the previous content, or the
/// complete new content — never a half-written file. This is the
/// rendezvous discipline `sfpm serve --port-file` relies on: pollers
/// (`sfpm top`, the cli_serve harness) race the server's startup.
Status WriteTextFileAtomic(const std::string& path,
                           const std::string& content);

}  // namespace obs
}  // namespace sfpm

#endif  // SFPM_OBS_REPORT_H_
