#ifndef SFPM_OBS_TRACE_H_
#define SFPM_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace sfpm {
namespace obs {

/// \brief One completed phase span. `parent` indexes into the tracer's
/// span list (kNoParent for roots); `counters` holds the registry counter
/// deltas that accrued while the span was open — the "what did this phase
/// actually do" attachment of the run report.
struct TraceSpan {
  static constexpr size_t kNoParent = static_cast<size_t>(-1);

  std::string name;     ///< Hierarchical path, e.g. "mine/support/k=2".
  double start_ms = 0;  ///< Since the tracer's epoch (construction/Clear).
  double dur_ms = 0;
  size_t thread = 0;    ///< DenseThreadId of the opening thread.
  size_t depth = 0;
  size_t parent = kNoParent;
  std::vector<std::pair<std::string, double>> attrs;
  std::vector<std::pair<std::string, uint64_t>> counters;
};

/// \brief Collects nested phase spans. Disabled by default so library
/// instrumentation costs one atomic load per phase in normal runs and
/// long-running processes (benches mining in a loop) accumulate nothing;
/// the CLI enables the global tracer when `--report`/`--trace` is given.
///
/// Spans may be opened from any thread; nesting is tracked per thread.
/// When a registry is attached, every span records the delta of its
/// counters between open and close.
class Tracer {
 public:
  explicit Tracer(MetricsRegistry* registry = nullptr)
      : registry_(registry), epoch_(Clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The tracer the library phases report to, attached to
  /// MetricsRegistry::Global(). Starts disabled.
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// RAII span handle. A handle from a disabled tracer is an inert no-op.
  /// Ends at destruction unless End() was called first.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept { *this = std::move(other); }
    Span& operator=(Span&& other) noexcept {
      End();
      tracer_ = other.tracer_;
      index_ = other.index_;
      begin_ = std::move(other.begin_);
      other.tracer_ = nullptr;
      other.index_ = TraceSpan::kNoParent;
      return *this;
    }
    ~Span() { End(); }

    /// Attaches a numeric attribute (thread count, scale, ...).
    void SetAttr(const std::string& key, double value);
    /// Closes the span; idempotent.
    void End();

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    size_t index_ = TraceSpan::kNoParent;
    MetricsSnapshot begin_;  ///< Counter values when the span opened.
  };

  /// Opens a span nested under the calling thread's innermost open span.
  Span StartSpan(std::string name);

  /// Copies the spans recorded so far (completed ones have dur_ms set).
  std::vector<TraceSpan> spans() const;

  /// Drops all spans and restarts the epoch.
  void Clear();

  /// Indented human-readable tree of the recorded spans.
  std::string ToTreeString() const;

 private:
  using Clock = std::chrono::steady_clock;

  double SinceEpochMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - epoch_)
        .count();
  }
  void EndSpan(size_t index, const MetricsSnapshot& begin);

  std::atomic<bool> enabled_{false};
  MetricsRegistry* registry_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
  Clock::time_point epoch_;
};

}  // namespace obs
}  // namespace sfpm

#endif  // SFPM_OBS_TRACE_H_
