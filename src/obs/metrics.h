#ifndef SFPM_OBS_METRICS_H_
#define SFPM_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace sfpm {
namespace obs {

/// \brief Dense id of the calling thread, assigned on first use and stable
/// for the thread's lifetime. The metric shard selector: with fewer live
/// threads than kMetricShards (the ThreadPool caps out far below it in
/// practice) every thread owns a private shard and an increment is one
/// uncontended relaxed atomic add.
size_t DenseThreadId();

/// Shards per instrument. A power of two so the shard pick is a mask.
inline constexpr size_t kMetricShards = 32;

/// \brief Monotonic counter, thread-local sharded. `Add` is wait-free and
/// uncontended on the hot path; `Value` sums the shards at read time.
/// Aggregation is an exact integer sum, so a run that performs the same
/// set of increments reports the same total at every thread count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    shards_[DenseThreadId() & (kMetricShards - 1)].value.fetch_add(
        n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t sum = 0;
    for (const Shard& shard : shards_) {
      sum += shard.value.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  /// Cache-line sized so two threads' shards never false-share.
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// \brief Last-writer-wins double value (thread counts, wall times). Not
/// sharded: gauges are set at phase boundaries, not in hot loops. The
/// value round-trips bit-exactly through the uint64 storage, which is
/// what keeps the legacy `--stats` rendering byte-stable.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value);
  double Value() const;

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Aggregated histogram state, also the snapshot/export representation.
struct HistogramData {
  /// Ascending finite *inclusive* upper bounds (Prometheus `le`
  /// convention: bucket b counts observations <= bounds[b]); counts has
  /// bounds.size() + 1 entries, the last one for observations above every
  /// bound.
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;  ///< Total observations.
  double sum = 0.0;    ///< Sum of observed values.

  /// Nearest-upper-bound quantile estimate over the buckets. Returns the
  /// bound of the bucket holding the q-th observation — the resolution is
  /// the bucket grid, so it over-estimates by at most one bucket width.
  /// Edge cases: 0 when the histogram is empty or has no finite bounds;
  /// the last finite bound when the rank lands in the overflow bucket (an
  /// underestimate, flagged in docs/SERVE.md); q is clamped so q <= 0
  /// picks the first observation and q >= 1 the last.
  double Quantile(double q) const;
};

/// \brief Fixed-bucket histogram, sharded like Counter. An observation is
/// one binary search over the (immutable) bounds plus two relaxed atomic
/// updates on the calling thread's shard.
///
/// Bucket counts aggregate exactly. `sum` is a double accumulated per
/// shard; observe from a deterministic context (one thread, fixed order)
/// when bit-exact sums across thread counts matter — the extraction
/// pipeline observes during its serial merge for exactly this reason.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);
  HistogramData Data() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;
    std::atomic<uint64_t> sum_bits{0};  ///< CAS-accumulated double.
  };
  std::vector<double> bounds_;
  std::array<Shard, kMetricShards> shards_;
};

/// \brief Point-in-time copy of every instrument, ordered by name so every
/// export (JSON report, bench counters, span deltas) is deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  /// Counters and histogram buckets become `this - earlier` (instruments
  /// absent from `earlier` count from zero); gauges keep their current
  /// value. The delta of one run inside a long-lived process. A delta
  /// still contains *all* registered names — chain `.DropZeros()` to shed
  /// instruments this run never touched.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;

  /// Removes zero-valued counters and zero-count histograms in place and
  /// returns *this. Gauges are kept: zero is a meaningful last-written
  /// value, and dropping them would break FromMetrics round trips. This
  /// is what keeps run reports and bench metrics from accumulating dead
  /// instruments registered by earlier runs in the same process.
  MetricsSnapshot& DropZeros();
};

/// \brief Process-wide named-instrument registry. Instruments are created
/// on first use, live as long as the registry, and hand out stable
/// references, so hot call sites can look a counter up once and increment
/// forever. All methods are thread-safe.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The registry every library instrument publishes to.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// On first use creates the histogram with `bounds` (ascending upper
  /// bounds); later calls return the existing instrument regardless of the
  /// bounds passed.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace sfpm

#endif  // SFPM_OBS_METRICS_H_
