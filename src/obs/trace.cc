#include "obs/trace.h"

#include "util/strings.h"

namespace sfpm {
namespace obs {

namespace {

/// The calling thread's stack of open span indices for `tracer`. Spans are
/// RAII-balanced, so a stack always drains back to empty; entries for dead
/// tracers are therefore empty and harmless.
std::vector<size_t>& OpenStack(const Tracer* tracer) {
  thread_local std::vector<std::pair<const Tracer*, std::vector<size_t>>>
      stacks;
  for (auto& [owner, stack] : stacks) {
    if (owner == tracer) return stack;
  }
  stacks.emplace_back(tracer, std::vector<size_t>{});
  return stacks.back().second;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer(&MetricsRegistry::Global());
  return *tracer;
}

Tracer::Span Tracer::StartSpan(std::string name) {
  Span span;
  if (!enabled()) return span;
  if (registry_ != nullptr) span.begin_ = registry_->Snapshot();
  std::vector<size_t>& stack = OpenStack(this);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    TraceSpan record;
    record.name = std::move(name);
    record.start_ms = SinceEpochMs();
    record.thread = DenseThreadId();
    record.parent = stack.empty() ? TraceSpan::kNoParent : stack.back();
    record.depth = stack.size();
    span.index_ = spans_.size();
    spans_.push_back(std::move(record));
  }
  span.tracer_ = this;
  stack.push_back(span.index_);
  return span;
}

void Tracer::Span::SetAttr(const std::string& key, double value) {
  if (tracer_ == nullptr) return;
  const std::lock_guard<std::mutex> lock(tracer_->mu_);
  tracer_->spans_[index_].attrs.emplace_back(key, value);
}

void Tracer::Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->EndSpan(index_, begin_);
  std::vector<size_t>& stack = OpenStack(tracer);
  if (!stack.empty() && stack.back() == index_) {
    stack.pop_back();
  } else {
    std::erase(stack, index_);  // Out-of-order End(); keep nesting sane.
  }
}

void Tracer::EndSpan(size_t index, const MetricsSnapshot& begin) {
  MetricsSnapshot end;
  if (registry_ != nullptr) end = registry_->Snapshot();
  const std::lock_guard<std::mutex> lock(mu_);
  TraceSpan& span = spans_[index];
  span.dur_ms = SinceEpochMs() - span.start_ms;
  if (registry_ != nullptr) {
    for (const auto& [name, value] : end.counters) {
      const auto it = begin.counters.find(name);
      const uint64_t before = it == begin.counters.end() ? 0 : it->second;
      if (value != before) span.counters.emplace_back(name, value - before);
    }
  }
}

std::vector<TraceSpan> Tracer::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

void Tracer::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  epoch_ = Clock::now();
}

std::string Tracer::ToTreeString() const {
  const std::vector<TraceSpan> spans = this->spans();
  std::string out;
  for (const TraceSpan& span : spans) {
    std::string label = std::string(span.depth * 2, ' ') + span.name;
    if (label.size() < 42) label.resize(42, ' ');
    out += StrFormat("%s %9.2f ms", label.c_str(), span.dur_ms);
    for (const auto& [key, value] : span.attrs) {
      out += StrFormat("  %s=%g", key.c_str(), value);
    }
    for (const auto& [name, delta] : span.counters) {
      out += StrFormat("  +%s=%llu", name.c_str(),
                       static_cast<unsigned long long>(delta));
    }
    out += '\n';
  }
  return out;
}

}  // namespace obs
}  // namespace sfpm
