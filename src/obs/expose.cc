#include "obs/expose.h"

#include <cstdint>

#include "util/strings.h"

namespace sfpm {
namespace obs {

namespace {

void AppendHeader(const std::string& prom, const std::string& dotted,
                  const char* type, std::string* out) {
  out->append("# HELP ");
  out->append(prom);
  out->append(" sfpm instrument ");
  out->append(dotted);
  out->append("\n# TYPE ");
  out->append(prom);
  out->append(" ");
  out->append(type);
  out->append("\n");
}

void AppendU64(uint64_t value, std::string* out) {
  out->append(std::to_string(value));
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = "sfpm_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    out.push_back(keep ? c : '_');
  }
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    AppendHeader(prom, name, "counter", &out);
    out.append(prom);
    out.push_back(' ');
    AppendU64(value, &out);
    out.push_back('\n');
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    AppendHeader(prom, name, "gauge", &out);
    out.append(prom);
    out.push_back(' ');
    AppendRoundTripDouble(value, &out);
    out.push_back('\n');
  }
  for (const auto& [name, data] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    AppendHeader(prom, name, "histogram", &out);
    // Prometheus buckets are cumulative; the registry's are per-bucket.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < data.bounds.size(); ++b) {
      cumulative += b < data.counts.size() ? data.counts[b] : 0;
      out.append(prom);
      out.append("_bucket{le=\"");
      AppendRoundTripDouble(data.bounds[b], &out);
      out.append("\"} ");
      AppendU64(cumulative, &out);
      out.push_back('\n');
    }
    out.append(prom);
    out.append("_bucket{le=\"+Inf\"} ");
    AppendU64(data.count, &out);
    out.push_back('\n');
    out.append(prom);
    out.append("_sum ");
    AppendRoundTripDouble(data.sum, &out);
    out.push_back('\n');
    out.append(prom);
    out.append("_count ");
    AppendU64(data.count, &out);
    out.push_back('\n');
  }
  return out;
}

}  // namespace obs
}  // namespace sfpm
