#ifndef SFPM_OBS_LOG_H_
#define SFPM_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace sfpm {
namespace obs {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Stable lowercase spelling ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

/// \brief One key=value pair of a structured log line. Numeric overloads
/// render bare (logfmt style); strings are quoted when they contain
/// anything a logfmt parser would split on.
struct LogField {
  std::string key;
  std::string value;
  bool quote_if_needed = false;  ///< True for string-valued fields.

  LogField(std::string k, std::string v)
      : key(std::move(k)), value(std::move(v)), quote_if_needed(true) {}
  LogField(std::string k, const char* v)
      : LogField(std::move(k), std::string(v)) {}
  LogField(std::string k, double v);
  LogField(std::string k, uint64_t v);
  LogField(std::string k, int v);
  LogField(std::string k, bool v);
};

/// \brief Leveled, thread-safe, machine-parseable (logfmt) logger:
///
///     ts=2026-08-08T12:34:56.789Z level=info msg="listening" port=8437
///
/// One line per event, rendered outside the sink lock's critical section
/// and written with a single fwrite so concurrent writers never
/// interleave. The level gate is one relaxed atomic load, so a disabled
/// debug line costs nothing but the call.
class Logger {
 public:
  explicit Logger(std::FILE* sink = stderr) : sink_(sink) {}

  /// The process-wide logger every subsystem writes to. Sinks to stderr
  /// until redirected; starts at kInfo.
  static Logger& Global();

  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }
  bool ShouldLog(LogLevel level) const { return level >= min_level(); }

  /// Redirects output (tests point this at tmpfile()). Not owned.
  void set_sink(std::FILE* sink);

  /// Emits one logfmt line: `ts=<UTC ms> level=<level> msg=<msg> fields...`.
  void Log(LogLevel level, const std::string& msg,
           const std::vector<LogField>& fields = {});

  void Info(const std::string& msg, const std::vector<LogField>& fields = {}) {
    Log(LogLevel::kInfo, msg, fields);
  }
  void Warn(const std::string& msg, const std::vector<LogField>& fields = {}) {
    Log(LogLevel::kWarn, msg, fields);
  }
  void Error(const std::string& msg,
             const std::vector<LogField>& fields = {}) {
    Log(LogLevel::kError, msg, fields);
  }

  /// Renders the line without writing it (what tests assert on). `ts` is
  /// the wall-clock timestamp in milliseconds since the Unix epoch.
  static std::string Format(LogLevel level, const std::string& msg,
                            const std::vector<LogField>& fields,
                            int64_t unix_ms);

 private:
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::mutex mu_;  ///< Guards sink_ and serializes writes.
  std::FILE* sink_;
};

/// \brief One slow request as recorded by the serve path: identity,
/// where the time went (the request's span tree), and which snapshot
/// generation answered it.
struct SlowQueryEntry {
  uint64_t seq = 0;            ///< The request's monotonic sequence number.
  std::string request_id;      ///< "r<seq>", echoed in the response.
  std::string type;            ///< Query type ("patterns", "status", ...).
  double latency_ms = 0.0;
  uint64_t generation = 0;     ///< Serving snapshot generation.
  std::string spans;           ///< Rendered span tree (Tracer::ToTreeString).
};

/// \brief Bounded ring of the most recent slow queries, surfaced by
/// `/varz` and `sfpm top`. Thread-safe; capacity bounds memory no matter
/// how slow the server gets.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(size_t capacity = 64) : capacity_(capacity) {}

  void Record(SlowQueryEntry entry);

  /// The retained entries, oldest first.
  std::vector<SlowQueryEntry> Entries() const;

  /// All-time count of recorded slow queries (not capped by capacity).
  uint64_t total() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  uint64_t total_ = 0;
  std::deque<SlowQueryEntry> entries_;
};

}  // namespace obs
}  // namespace sfpm

#endif  // SFPM_OBS_LOG_H_
