#ifndef SFPM_OBS_JSON_H_
#define SFPM_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace sfpm {
namespace obs {
namespace json {

/// \brief Minimal JSON writer with comma/nesting management — enough for
/// the run report, the Chrome trace, and the bench JSON, with zero
/// dependencies. Keys and values are emitted in call order.
class Writer {
 public:
  Writer& BeginObject();
  Writer& EndObject();
  Writer& BeginArray();
  Writer& EndArray();
  /// Starts a key inside an object; follow with a value or Begin* call.
  Writer& Key(const std::string& key);
  Writer& String(const std::string& value);
  Writer& Number(double value);
  Writer& Number(uint64_t value);
  Writer& Number(int64_t value);
  Writer& Bool(bool value);
  Writer& Null();

  const std::string& str() const { return out_; }

 private:
  void BeforeValue();
  std::string out_;
  /// One flag per open container: whether a value was already written.
  std::vector<bool> has_value_;
  bool pending_key_ = false;
};

/// Escapes a string for embedding between JSON quotes.
std::string Escape(const std::string& text);

/// \brief Parsed JSON value — a small closed variant. Object member order
/// is preserved (the schema validator reports in document order).
struct Value {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// First member with the given key, or nullptr.
  const Value* Find(const std::string& key) const;
};

/// \brief Recursive-descent parser for the full JSON grammar (strings with
/// \uXXXX escapes included). Exists so the report schema validator and the
/// tests can read back what the writers emit without a third-party parser.
Result<Value> Parse(const std::string& text);

}  // namespace json
}  // namespace obs
}  // namespace sfpm

#endif  // SFPM_OBS_JSON_H_
