#include "obs/timeseries.h"

#include <algorithm>

namespace sfpm {
namespace obs {

RingSampler::RingSampler(MetricsRegistry* registry)
    : RingSampler(registry, Options()) {}

RingSampler::RingSampler(MetricsRegistry* registry, Options options)
    : registry_(registry),
      options_(options),
      epoch_(std::chrono::steady_clock::now()) {
  options_.interval_ms = std::max(1.0, options_.interval_ms);
  options_.capacity = std::max<size_t>(2, options_.capacity);
}

RingSampler::~RingSampler() { Stop(); }

void RingSampler::Start() {
  if (ticker_.joinable()) return;
  {
    const std::lock_guard<std::mutex> lock(ticker_mu_);
    stop_ = false;
  }
  ticker_ = std::thread([this] { TickerLoop(); });
}

void RingSampler::Stop() {
  {
    const std::lock_guard<std::mutex> lock(ticker_mu_);
    stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

void RingSampler::TickerLoop() {
  const auto interval = std::chrono::duration<double, std::milli>(
      options_.interval_ms);
  std::unique_lock<std::mutex> lock(ticker_mu_);
  while (!stop_) {
    if (ticker_cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    SampleNow();
    lock.lock();
  }
}

double RingSampler::NowMs() const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void RingSampler::PushScalar(ScalarRing* ring, double at_ms,
                             double value) const {
  if (ring->samples.size() < options_.capacity) {
    ring->samples.push_back({at_ms, value});
    return;
  }
  ring->samples[ring->next] = {at_ms, value};
  ring->next = (ring->next + 1) % options_.capacity;
}

void RingSampler::SampleNow() {
  const MetricsSnapshot snapshot = registry_->Snapshot();
  const double at_ms = NowMs();
  const std::lock_guard<std::mutex> lock(mu_);
  ++sample_count_;
  for (const auto& [name, value] : snapshot.counters) {
    PushScalar(&counters_[name], at_ms, static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    PushScalar(&gauges_[name], at_ms, value);
  }
  for (const auto& [name, data] : snapshot.histograms) {
    HistogramRing& ring = histograms_[name];
    if (ring.samples.size() < options_.capacity) {
      ring.samples.push_back({at_ms, data});
      continue;
    }
    ring.samples[ring.next] = {at_ms, data};
    ring.next = (ring.next + 1) % options_.capacity;
  }
}

uint64_t RingSampler::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sample_count_;
}

// The rings are small (capacity defaults to 128), so "scan for the
// extremum by timestamp" beats bookkeeping an ordered view.
std::optional<SeriesSample> RingSampler::NewestOf(const ScalarRing& ring) {
  std::optional<SeriesSample> newest;
  for (const SeriesSample& s : ring.samples) {
    if (!newest.has_value() || s.at_ms > newest->at_ms) newest = s;
  }
  return newest;
}

std::optional<SeriesSample> RingSampler::OldestSince(const ScalarRing& ring,
                                                     double since_ms) {
  std::optional<SeriesSample> oldest;
  for (const SeriesSample& s : ring.samples) {
    if (s.at_ms < since_ms) continue;
    if (!oldest.has_value() || s.at_ms < oldest->at_ms) oldest = s;
  }
  return oldest;
}

double RingSampler::CounterRate(const std::string& name,
                                double window_ms) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) return 0.0;
  const auto newest = NewestOf(it->second);
  if (!newest.has_value()) return 0.0;
  const auto oldest = OldestSince(it->second, newest->at_ms - window_ms);
  if (!oldest.has_value() || newest->at_ms <= oldest->at_ms) return 0.0;
  return (newest->value - oldest->value) /
         (newest->at_ms - oldest->at_ms) * 1000.0;
}

std::optional<double> RingSampler::GaugeValue(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it == gauges_.end()) return std::nullopt;
  const auto newest = NewestOf(it->second);
  if (!newest.has_value()) return std::nullopt;
  return newest->value;
}

std::optional<HistogramData> RingSampler::HistogramWindow(
    const std::string& name, double window_ms) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end() || it->second.samples.empty()) {
    return std::nullopt;
  }
  const HistogramSample* newest = nullptr;
  for (const HistogramSample& s : it->second.samples) {
    if (newest == nullptr || s.at_ms > newest->at_ms) newest = &s;
  }
  const HistogramSample* oldest = nullptr;
  for (const HistogramSample& s : it->second.samples) {
    if (s.at_ms < newest->at_ms - window_ms) continue;
    if (oldest == nullptr || s.at_ms < oldest->at_ms) oldest = &s;
  }
  if (oldest == nullptr || newest->at_ms <= oldest->at_ms) return std::nullopt;
  // Bucket-wise delta; the bounds are immutable after registration, so
  // the newest sample's grid applies to both ends of the window.
  HistogramData delta = newest->data;
  const HistogramData& base = oldest->data;
  for (size_t b = 0; b < delta.counts.size() && b < base.counts.size(); ++b) {
    delta.counts[b] -= base.counts[b];
  }
  delta.count -= base.count;
  delta.sum -= base.sum;
  return delta;
}

}  // namespace obs
}  // namespace sfpm
