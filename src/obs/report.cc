#include "obs/report.h"

#include <unistd.h>

#include <cstdio>

#include "obs/json.h"
#include "util/version.h"

namespace sfpm {
namespace obs {

namespace {

void WriteSpan(json::Writer* w, const TraceSpan& span) {
  w->BeginObject();
  w->Key("name").String(span.name);
  w->Key("start_ms").Number(span.start_ms);
  w->Key("dur_ms").Number(span.dur_ms);
  w->Key("thread").Number(static_cast<uint64_t>(span.thread));
  w->Key("depth").Number(static_cast<uint64_t>(span.depth));
  if (span.parent == TraceSpan::kNoParent) {
    w->Key("parent").Null();
  } else {
    w->Key("parent").Number(static_cast<uint64_t>(span.parent));
  }
  w->Key("attrs").BeginObject();
  for (const auto& [key, value] : span.attrs) w->Key(key).Number(value);
  w->EndObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, delta] : span.counters) w->Key(name).Number(delta);
  w->EndObject();
  w->EndObject();
}

}  // namespace

void MetricsToJson(const MetricsSnapshot& metrics, json::Writer* w) {
  w->BeginObject();
  w->Key("counters").BeginObject();
  for (const auto& [name, value] : metrics.counters) {
    w->Key(name).Number(value);
  }
  w->EndObject();
  w->Key("gauges").BeginObject();
  for (const auto& [name, value] : metrics.gauges) w->Key(name).Number(value);
  w->EndObject();
  w->Key("histograms").BeginObject();
  for (const auto& [name, data] : metrics.histograms) {
    w->Key(name).BeginObject();
    w->Key("bounds").BeginArray();
    for (double bound : data.bounds) w->Number(bound);
    w->EndArray();
    w->Key("counts").BeginArray();
    for (uint64_t count : data.counts) w->Number(count);
    w->EndArray();
    w->Key("count").Number(data.count);
    w->Key("sum").Number(data.sum);
    w->EndObject();
  }
  w->EndObject();
  w->EndObject();
}

std::string RunReportToJson(const RunReport& report,
                            const MetricsSnapshot& metrics,
                            const std::vector<TraceSpan>& spans) {
  json::Writer w;
  w.BeginObject();
  w.Key("sfpm_report_version").Number(static_cast<int64_t>(kRunReportVersion));
  w.Key("sfpm_version").String(kSfpmVersion);
  w.Key("tool").String(report.tool);
  w.Key("command").String(report.command);
  w.Key("config").BeginObject();
  for (const auto& [key, value] : report.config) w.Key(key).String(value);
  w.EndObject();
  w.Key("spans").BeginArray();
  for (const TraceSpan& span : spans) WriteSpan(&w, span);
  w.EndArray();
  w.Key("metrics");
  MetricsSnapshot live = metrics;
  MetricsToJson(live.DropZeros(), &w);
  w.EndObject();
  return w.str() + "\n";
}

std::string ChromeTraceJson(const std::vector<TraceSpan>& spans) {
  json::Writer w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ms");
  w.Key("traceEvents").BeginArray();
  for (const TraceSpan& span : spans) {
    w.BeginObject();
    w.Key("name").String(span.name);
    w.Key("cat").String("sfpm");
    w.Key("ph").String("X");
    w.Key("ts").Number(span.start_ms * 1000.0);   // Microseconds.
    w.Key("dur").Number(span.dur_ms * 1000.0);
    w.Key("pid").Number(static_cast<int64_t>(1));
    w.Key("tid").Number(static_cast<uint64_t>(span.thread));
    w.Key("args").BeginObject();
    for (const auto& [key, value] : span.attrs) w.Key(key).Number(value);
    for (const auto& [name, delta] : span.counters) {
      w.Key(name).Number(delta);
    }
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str() + "\n";
}

Status WriteTextFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

Status WriteTextFileAtomic(const std::string& path,
                           const std::string& content) {
  // The temp name carries the writer's pid so two processes pointed at
  // the same path (a misconfigured test harness, say) cannot interleave
  // inside one temp file; the final rename is last-writer-wins either
  // way, which is the same contract a direct write would have.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  SFPM_RETURN_NOT_OK(WriteTextFile(tmp, content));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace sfpm
