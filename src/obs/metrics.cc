#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

namespace sfpm {
namespace obs {

size_t DenseThreadId() {
  static std::atomic<size_t> next{0};
  thread_local const size_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void Gauge::Set(double value) {
  bits_.store(std::bit_cast<uint64_t>(value), std::memory_order_relaxed);
}

double Gauge::Value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Shard& shard : shards_) {
    shard.buckets =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t b = 0; b <= bounds_.size(); ++b) shard.buckets[b] = 0;
  }
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  Shard& shard = shards_[DenseThreadId() & (kMetricShards - 1)];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  // Per-shard CAS loop: uncontended in the single-shard-owner common case.
  uint64_t old_bits = shard.sum_bits.load(std::memory_order_relaxed);
  while (!shard.sum_bits.compare_exchange_weak(
      old_bits, std::bit_cast<uint64_t>(std::bit_cast<double>(old_bits) + value),
      std::memory_order_relaxed, std::memory_order_relaxed)) {
  }
}

HistogramData Histogram::Data() const {
  HistogramData data;
  data.bounds = bounds_;
  data.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      data.counts[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    data.sum += std::bit_cast<double>(
        shard.sum_bits.load(std::memory_order_relaxed));
  }
  for (uint64_t c : data.counts) data.count += c;
  return data;
}

double HistogramData::Quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  // Rank of the wanted observation, clamped into [1, count] so any q
  // (including q <= 0 and q >= 1) names a real observation. Clamp in
  // double: a negative product cast to uint64_t would wrap huge.
  const double scaled = std::ceil(q * static_cast<double>(count));
  const uint64_t rank =
      scaled < 1.0 ? 1
                   : (scaled >= static_cast<double>(count)
                          ? count
                          : static_cast<uint64_t>(scaled));
  uint64_t seen = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    seen += counts[b];
    if (seen >= rank) {
      // Overflow bucket (b == bounds.size()): no upper bound exists, so
      // report the last finite bound — an underestimate by construction.
      return b < bounds.size() ? bounds[b] : bounds.back();
    }
  }
  // counts sum below `count` only for a malformed snapshot; answer with
  // the largest representable estimate rather than reading off the end.
  return bounds.back();
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta = *this;
  for (auto& [name, value] : delta.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) value -= it->second;
  }
  for (auto& [name, data] : delta.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) continue;
    for (size_t b = 0;
         b < data.counts.size() && b < it->second.counts.size(); ++b) {
      data.counts[b] -= it->second.counts[b];
    }
    data.count -= it->second.count;
    data.sum -= it->second.sum;
  }
  return delta;
}

MetricsSnapshot& MetricsSnapshot::DropZeros() {
  std::erase_if(counters, [](const auto& entry) { return entry.second == 0; });
  std::erase_if(histograms,
                [](const auto& entry) { return entry.second.count == 0; });
  return *this;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->Value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->Data());
  }
  return snapshot;
}

}  // namespace obs
}  // namespace sfpm
