#include "core/rules.h"

#include <limits>

namespace sfpm {
namespace core {

std::string AssociationRule::ToString(const TransactionDb& db) const {
  std::string out;
  for (size_t i = 0; i < antecedent.size(); ++i) {
    if (i > 0) out += " & ";
    out += db.Label(antecedent[i]);
  }
  out += " -> ";
  for (size_t i = 0; i < consequent.size(); ++i) {
    if (i > 0) out += " & ";
    out += db.Label(consequent[i]);
  }
  return out;
}

namespace {

/// Enumerates every non-empty proper subset of `items` as an antecedent.
/// Itemsets are small (tens of items at most), so the 2^k walk is fine.
void EnumerateSplits(const FrequentItemset& itemset, const TransactionDb& db,
                     const AprioriResult& result, const RuleOptions& options,
                     std::vector<AssociationRule>* rules) {
  const std::vector<ItemId>& items = itemset.items.items();
  const size_t n = items.size();
  const double num_tx = static_cast<double>(db.NumTransactions());

  for (uint64_t mask = 1; mask + 1 < (uint64_t{1} << n); ++mask) {
    std::vector<ItemId> ante, cons;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        ante.push_back(items[i]);
      } else {
        cons.push_back(items[i]);
      }
    }
    if (options.single_consequent && cons.size() != 1) continue;

    AssociationRule rule;
    rule.antecedent = Itemset(std::move(ante));
    rule.consequent = Itemset(std::move(cons));

    const auto sup_ante = result.SupportOf(rule.antecedent);
    const auto sup_cons = result.SupportOf(rule.consequent);
    if (!sup_ante || !sup_cons) continue;  // Defensive; see header note.

    rule.support_count = itemset.support;
    rule.support = itemset.support / num_tx;
    rule.confidence = static_cast<double>(itemset.support) / *sup_ante;
    if (rule.confidence < options.min_confidence) continue;

    const double freq_cons = *sup_cons / num_tx;
    rule.lift = freq_cons > 0.0 ? rule.confidence / freq_cons : 0.0;
    rule.leverage = rule.support - (*sup_ante / num_tx) * freq_cons;
    rule.conviction = rule.confidence >= 1.0
                          ? std::numeric_limits<double>::infinity()
                          : (1.0 - freq_cons) / (1.0 - rule.confidence);
    rules->push_back(std::move(rule));
  }
}

}  // namespace

std::vector<AssociationRule> GenerateRules(const TransactionDb& db,
                                           const AprioriResult& result,
                                           const RuleOptions& options) {
  std::vector<AssociationRule> rules;
  for (const FrequentItemset& fi : result.itemsets()) {
    if (fi.items.size() < 2) continue;
    EnumerateSplits(fi, db, result, options, &rules);
  }
  return rules;
}

}  // namespace core
}  // namespace sfpm
