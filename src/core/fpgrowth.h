#ifndef SFPM_CORE_FPGROWTH_H_
#define SFPM_CORE_FPGROWTH_H_

#include "core/apriori.h"

namespace sfpm {
namespace core {

/// \brief FP-Growth (Han, Pei & Yin) over the same TransactionDb, options
/// and result types as MineApriori.
///
/// The paper notes its filtering step "can be implemented by any algorithm
/// that generates frequent itemsets"; this is the demonstration. Candidate
/// filters are honoured by constraint-aware projection: while growing a
/// prefix, the conditional pattern base drops every item blocked against
/// any prefix member, which yields exactly the frequent itemsets that
/// contain no pruned pair — the same set Apriori-KC+ produces.
///
/// Returns the identical itemsets and supports as MineApriori(db, options)
/// (ordering may differ; AprioriResult lookups are order-independent).
Result<AprioriResult> MineFpGrowth(const TransactionDb& db,
                                   const AprioriOptions& options);

/// Convenience overload without filters.
Result<AprioriResult> MineFpGrowth(const TransactionDb& db,
                                   double min_support);

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_FPGROWTH_H_
