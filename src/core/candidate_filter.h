#ifndef SFPM_CORE_CANDIDATE_FILTER_H_
#define SFPM_CORE_CANDIDATE_FILTER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/transaction_db.h"

namespace sfpm {
namespace core {

/// \brief Candidate-pair constraint applied by the miner in the second pass
/// (k == 2), exactly as Listing 1 of the paper prescribes.
///
/// Removing a pair from C2 exploits Apriori's anti-monotone property: no
/// superset of the pair can ever become a candidate, so one pair removal
/// prunes an entire sub-lattice of meaningless patterns before any support
/// counting happens.
class CandidateFilter {
 public:
  virtual ~CandidateFilter() = default;

  /// Returns true when the candidate 2-itemset {a, b} must be dropped.
  virtual bool PrunePair(ItemId a, ItemId b) const = 0;

  /// Human-readable filter name for mining reports.
  virtual std::string Name() const = 0;
};

/// \brief The Apriori-KC constraint: an explicit blocklist of item pairs,
/// built from background knowledge (the paper's dependency set phi; e.g.
/// the street/illumination-point dependency).
class PairBlocklistFilter : public CandidateFilter {
 public:
  explicit PairBlocklistFilter(
      std::vector<std::pair<ItemId, ItemId>> pairs,
      std::string name = "knowledge-constraints");

  bool PrunePair(ItemId a, ItemId b) const override;
  std::string Name() const override { return name_; }

  size_t NumPairs() const { return blocked_.size(); }

 private:
  static uint64_t PairKey(ItemId a, ItemId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<uint64_t>(a) << 32) | b;
  }

  std::unordered_set<uint64_t> blocked_;
  std::string name_;
};

/// \brief The Apriori-KC+ constraint: prunes every pair of items that share
/// the same non-empty key (the geographic feature type in the spatial
/// pipeline) — the paper's same-feature-type filter, which needs no
/// background knowledge at all.
class SameKeyFilter : public CandidateFilter {
 public:
  /// \param keys per-item key, indexed by ItemId; empty key = no group.
  explicit SameKeyFilter(std::vector<std::string> keys);

  /// Convenience: takes the keys straight from a TransactionDb.
  explicit SameKeyFilter(const TransactionDb& db);

  bool PrunePair(ItemId a, ItemId b) const override;
  std::string Name() const override { return "same-feature-type"; }

 private:
  std::vector<std::string> keys_;
};

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_CANDIDATE_FILTER_H_
