#ifndef SFPM_CORE_TRANSACTION_DB_H_
#define SFPM_CORE_TRANSACTION_DB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/itemset.h"
#include "util/aligned.h"
#include "util/status.h"

namespace sfpm {
namespace core {

/// \brief Column-oriented boolean transaction database.
///
/// Each item owns one bit column over the transactions (a vertical bitmap
/// layout); itemset support is the popcount of the AND of the member
/// columns — the dominant operation of Apriori's counting phase.
///
/// Besides its label, every item may carry a *key*: an arbitrary grouping
/// tag. In the spatial pipeline the key is the geographic feature type
/// ("slum" for both `contains_slum` and `touches_slum`), which is what the
/// Apriori-KC+ same-feature-type filter prunes on. Items with an empty key
/// belong to no group.
class TransactionDb {
 public:
  TransactionDb() = default;

  /// Rebuilds a database from its serialized parts: parallel label/key
  /// arrays and `labels.size() * NumWords` bitmap words laid out
  /// item-major (`columns` may be null when that product is zero). The
  /// deserialization hook of the snapshot store — one memcpy per column.
  /// Fails on duplicate labels or bits set past `num_transactions`.
  static Result<TransactionDb> FromParts(std::vector<std::string> labels,
                                         std::vector<std::string> keys,
                                         size_t num_transactions,
                                         const uint64_t* columns);

  /// Registers an item; re-registering a label returns the existing id
  /// (the key must then match; mismatch is an error surfaced by
  /// AddItemChecked).
  ItemId AddItem(const std::string& label, const std::string& key = "");

  /// Like AddItem but reports key conflicts.
  Result<ItemId> AddItemChecked(const std::string& label,
                                const std::string& key = "");

  /// Id of a registered label.
  Result<ItemId> FindItem(const std::string& label) const;

  size_t NumItems() const { return labels_.size(); }
  size_t NumTransactions() const { return num_transactions_; }

  const std::string& Label(ItemId item) const { return labels_[item]; }
  const std::string& Key(ItemId item) const { return keys_[item]; }

  /// Opens a new (initially empty) transaction; returns its row index.
  size_t AddTransaction();

  /// Adds a transaction holding `items` in one call.
  size_t AddTransaction(const std::vector<ItemId>& items);

  /// Marks `item` present in transaction `row`.
  Status SetItem(size_t row, ItemId item);

  /// True when `item` is present in transaction `row`.
  bool Test(size_t row, ItemId item) const;

  /// Number of transactions containing `item`.
  uint32_t Support(ItemId item) const;

  /// Number of transactions containing every item of `set`
  /// (bitwise-AND + popcount over the member columns).
  uint32_t SupportOf(const Itemset& set) const;

  /// SupportOf restricted to the 64-transaction words
  /// [word_begin, word_end) of the bitmap columns — the unit of work of
  /// parallel support counting, where each worker counts a disjoint word
  /// range and the partial counts are summed. Word w covers transactions
  /// [64*w, 64*w + 64).
  uint32_t SupportOfWords(const Itemset& set, size_t word_begin,
                          size_t word_end) const;

  /// SupportOfWords over an explicit item array that also *materializes*
  /// the AND into `out` (which must hold word_end - word_begin words):
  /// out[w - word_begin] = AND of the member columns at word w. Returns
  /// the popcount of the materialized range. The caller can then extend
  /// the result by one item with a single column-AND instead of repeating
  /// the k-way AND — the prefix-sharing trick of PrefixSupportCounter.
  /// Blocked so each column slice is streamed once per cache-resident
  /// block; requires num_items >= 1.
  uint32_t SupportOfWordsInto(const ItemId* items, size_t num_items,
                              size_t word_begin, size_t word_end,
                              uint64_t* out) const;

  /// Raw bitmap column of `item` (NumWords() words, 64-byte aligned).
  const uint64_t* ColumnWords(ItemId item) const {
    return columns_[item].data();
  }

  /// Number of 64-bit words per bitmap column (the parallel count passes
  /// partition this range).
  size_t NumWords() const { return (num_transactions_ + 63) / 64; }

  /// Support as a fraction of transactions (0 when the db is empty).
  double Frequency(const Itemset& set) const;

  /// The items of transaction `row`, ascending.
  std::vector<ItemId> TransactionItems(size_t row) const;

 private:
  std::vector<std::string> labels_;
  std::vector<std::string> keys_;
  std::unordered_map<std::string, ItemId> label_index_;
  /// columns_[item] holds ceil(n/64) words; bit t of the column is set when
  /// transaction t contains the item. 64-byte aligned for the blocked AND
  /// kernels.
  std::vector<AlignedVector<uint64_t>> columns_;
  size_t num_transactions_ = 0;
};

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_TRANSACTION_DB_H_
