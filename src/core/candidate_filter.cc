#include "core/candidate_filter.h"

namespace sfpm {
namespace core {

PairBlocklistFilter::PairBlocklistFilter(
    std::vector<std::pair<ItemId, ItemId>> pairs, std::string name)
    : name_(std::move(name)) {
  for (const auto& [a, b] : pairs) blocked_.insert(PairKey(a, b));
}

bool PairBlocklistFilter::PrunePair(ItemId a, ItemId b) const {
  return blocked_.count(PairKey(a, b)) > 0;
}

SameKeyFilter::SameKeyFilter(std::vector<std::string> keys)
    : keys_(std::move(keys)) {}

SameKeyFilter::SameKeyFilter(const TransactionDb& db) {
  keys_.reserve(db.NumItems());
  for (ItemId item = 0; item < db.NumItems(); ++item) {
    keys_.push_back(db.Key(item));
  }
}

bool SameKeyFilter::PrunePair(ItemId a, ItemId b) const {
  if (a >= keys_.size() || b >= keys_.size()) return false;
  const std::string& key_a = keys_[a];
  return !key_a.empty() && key_a == keys_[b];
}

}  // namespace core
}  // namespace sfpm
