#ifndef SFPM_CORE_MEASURES_H_
#define SFPM_CORE_MEASURES_H_

#include <string>
#include <vector>

#include "core/rules.h"

namespace sfpm {
namespace core {

/// \brief Objective interestingness measures over a 2x2 contingency table,
/// the framework of Tan, Kumar & Srivastava (KDD'02) that the paper cites
/// as the aposteriori alternative its apriori filter outperforms.
///
/// All measures are computed from the joint/marginal frequencies of an
/// antecedent A and consequent C over |D| transactions.
struct Contingency {
  double n = 0;    ///< |D|.
  double n_ac = 0; ///< Transactions with A and C.
  double n_a = 0;  ///< Transactions with A.
  double n_c = 0;  ///< Transactions with C.

  /// Builds the table for a rule using the mining result's support index.
  /// Returns NotFound when a side's support is unavailable.
  static Result<Contingency> ForRule(const AssociationRule& rule,
                                     const AprioriResult& result,
                                     const TransactionDb& db);

  double Support() const { return n_ac / n; }
  double Confidence() const { return n_a > 0 ? n_ac / n_a : 0.0; }
  /// Lift (a.k.a. interest): 1 = independent, > 1 positively correlated.
  double Lift() const;
  /// Leverage (Piatetsky-Shapiro): P(AC) - P(A)P(C).
  double Leverage() const;
  /// Conviction: (1 - P(C)) / (1 - conf); +inf for exact implications.
  double Conviction() const;
  /// Jaccard: P(AC) / P(A u C).
  double Jaccard() const;
  /// Cosine (IS measure): P(AC) / sqrt(P(A) P(C)).
  double Cosine() const;
  /// Kulczynski: mean of the two conditional probabilities.
  double Kulczynski() const;
  /// Certainty factor: (conf - P(C)) / (1 - P(C)), in [-1, 1].
  double CertaintyFactor() const;
  /// Odds ratio: (n_ac * n_!a!c) / (n_a!c * n_!ac); +inf on zero cells.
  double OddsRatio() const;
  /// Phi coefficient (Pearson correlation of the two indicators).
  double Phi() const;
};

/// \brief Scores every rule with the named measure.
enum class Measure {
  kSupport,
  kConfidence,
  kLift,
  kLeverage,
  kConviction,
  kJaccard,
  kCosine,
  kKulczynski,
  kCertaintyFactor,
  kOddsRatio,
  kPhi,
};

/// Stable name ("lift", "certaintyFactor", ...).
const char* MeasureName(Measure measure);

/// Evaluates one measure on a contingency table.
double Evaluate(Measure measure, const Contingency& table);

/// \brief Returns the `k` rules with the highest value of `measure`,
/// descending (ties keep input order). Rules whose contingency table
/// cannot be built are skipped.
std::vector<AssociationRule> TopRulesBy(Measure measure,
                                        const std::vector<AssociationRule>& rules,
                                        const AprioriResult& result,
                                        const TransactionDb& db, size_t k);

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_MEASURES_H_
