#ifndef SFPM_CORE_APRIORI_H_
#define SFPM_CORE_APRIORI_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/candidate_filter.h"
#include "core/itemset.h"
#include "core/transaction_db.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace sfpm {
namespace core {

/// \brief Configuration of one mining run.
struct AprioriOptions {
  /// Minimum support as a fraction of transactions, in (0, 1].
  double min_support = 0.1;

  /// Stop after itemsets of this size (0 = unlimited).
  size_t max_itemset_size = 0;

  /// Candidate-pair constraints applied at k == 2 (not owned). With none
  /// this is the classic Apriori of Agrawal & Srikant; with a
  /// PairBlocklistFilter it is the authors' Apriori-KC; adding the
  /// SameKeyFilter yields the paper's Apriori-KC+.
  std::vector<const CandidateFilter*> filters;

  /// Worker threads for support counting: every pass partitions the
  /// transaction bitmap's word range across workers, each worker fills its
  /// own count vector, and the partials are summed at the pass barrier.
  /// Counts are exact integer sums, so the mined result is identical at
  /// every setting. 0 = auto (the SFPM_THREADS environment variable, else
  /// hardware concurrency); 1 = serial. FP-Growth currently ignores this
  /// knob. See docs/ARCHITECTURE.md, "Threading model".
  size_t parallelism = 0;

  /// Count supports with the prefix-shared kernel (PrefixSupportCounter):
  /// consecutive candidates sharing a (k-1)-prefix reuse its cached
  /// column-AND, so each costs one AND + popcount instead of k-1. Counts
  /// are identical either way; this only exists for A/B benchmarking and
  /// differential tests. Leave it on.
  bool prefix_cache = true;
};

/// \brief One frequent itemset with its absolute support count.
struct FrequentItemset {
  Itemset items;
  uint32_t support = 0;
};

/// \brief Per-pass and aggregate counters of a mining run, the raw material
/// of the paper's Figures 4-7.
///
/// Every mining run also publishes these fields to
/// obs::MetricsRegistry::Global() under the `mine.*` instrument names; the
/// struct remains the deterministic accumulation path and `FromMetrics` is
/// the thin view back out of the registry.
struct MiningStats {
  struct Pass {
    size_t k = 0;                   ///< Itemset size of this pass.
    size_t candidates = 0;          ///< |C_k| before filtering.
    size_t filtered_candidates = 0; ///< Candidates removed by filters.
    size_t frequent = 0;            ///< |L_k|.
    double millis = 0.0;            ///< Wall time of the pass.
    double count_millis = 0.0;      ///< Support-counting share of `millis`.
    /// 64-bit column-AND operations of the pass's support counting (0 on
    /// the naive path). Thread-count independent, unlike the cache-event
    /// counters below.
    uint64_t and_word_ops = 0;
    /// Prefix-cache events of the pass. Each word chunk replays the
    /// candidate sequence, so these scale with the chunk count — they are
    /// hit-rate observability, not a work measure.
    uint64_t prefix_hits = 0;
    uint64_t prefix_misses = 0;

    /// Publishes this pass under `mine.pass.k<k>.*`.
    void PublishTo(obs::MetricsRegistry* registry) const;
  };
  std::vector<Pass> passes;
  size_t total_frequent = 0;        ///< Itemsets of size >= 1.
  size_t total_frequent_ge2 = 0;    ///< Itemsets of size >= 2 (paper counts these).
  double total_millis = 0.0;
  size_t threads = 1;               ///< Workers used for support counting.
  uint64_t and_word_ops = 0;        ///< Sum over passes.
  uint64_t prefix_hits = 0;         ///< Sum over passes.
  uint64_t prefix_misses = 0;       ///< Sum over passes.

  std::string ToString() const;

  /// Publishes the totals and every pass to the registry's `mine.*`
  /// instruments. The miners call this once, at the end of a run.
  void PublishTo(obs::MetricsRegistry* registry) const;

  /// Thin view back from the registry: rebuilds the struct from a snapshot
  /// (typically one run's delta) so the legacy `--stats` text renders
  /// byte-identically from the registry. Passes are recovered for
  /// consecutive k while `mine.pass.k<k>.candidates` exists and the pass
  /// structure is consistent (pass k >= 2 requires frequent itemsets at
  /// k-1), so the view assumes the snapshot covers a single mining run.
  static MiningStats FromMetrics(const obs::MetricsSnapshot& snapshot);
};

/// \brief The outcome of a mining run: every frequent itemset plus stats.
class AprioriResult {
 public:
  AprioriResult(std::vector<FrequentItemset> itemsets, MiningStats stats);

  const std::vector<FrequentItemset>& itemsets() const { return itemsets_; }
  const MiningStats& stats() const { return stats_; }

  /// Support of a specific itemset, when frequent.
  std::optional<uint32_t> SupportOf(const Itemset& set) const;

  /// Frequent itemsets of exactly the given size.
  std::vector<FrequentItemset> OfSize(size_t k) const;

  /// Size of the largest frequent itemset (the paper's `m`).
  size_t MaxItemsetSize() const;

  /// Number of frequent itemsets with at least `min_size` items.
  size_t CountAtLeast(size_t min_size) const;

 private:
  std::vector<FrequentItemset> itemsets_;
  std::unordered_map<Itemset, uint32_t, ItemsetHash> support_index_;
  MiningStats stats_;
};

/// \brief Runs Apriori (Listing 1 of the paper, generalized) over `db`.
///
/// Returns InvalidArgument for a min_support outside (0, 1] and for an
/// empty database.
Result<AprioriResult> MineApriori(const TransactionDb& db,
                                  const AprioriOptions& options);

/// Classic Apriori: no filters.
Result<AprioriResult> MineApriori(const TransactionDb& db, double min_support);

/// Apriori-KC: dependency pairs removed from C2.
Result<AprioriResult> MineAprioriKC(const TransactionDb& db,
                                    double min_support,
                                    const PairBlocklistFilter& dependencies);

/// Apriori-KC+: dependency pairs and same-feature-type pairs removed from
/// C2. `dependencies` may be null when no background knowledge is given
/// (the paper's second experiment).
Result<AprioriResult> MineAprioriKCPlus(
    const TransactionDb& db, double min_support,
    const PairBlocklistFilter* dependencies = nullptr);

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_APRIORI_H_
