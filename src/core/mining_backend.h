#ifndef SFPM_CORE_MINING_BACKEND_H_
#define SFPM_CORE_MINING_BACKEND_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/candidate_filter.h"
#include "core/transaction_db.h"
#include "util/status.h"

namespace sfpm {
namespace core {

/// \brief Type-erased input of a mining backend.
///
/// The itemset miners consume a TransactionDb; the co-location miner
/// consumes feature layers. Each backend downcasts to the source kind it
/// supports and rejects the rest with InvalidArgument, so the pipeline can
/// route any source to any backend and get a diagnosable error instead of
/// undefined behaviour. Layer-backed sources live in the coloc module
/// (core does not depend on feature).
class MiningSource {
 public:
  enum class Kind {
    kTransactions,  ///< TransactionSource, wraps a core::TransactionDb.
    kLayers,        ///< coloc::LayerSource, wraps a feature::LayerSet.
  };

  virtual ~MiningSource() = default;
  virtual Kind kind() const = 0;
};

/// \brief A TransactionDb as a mining source (not owned).
class TransactionSource final : public MiningSource {
 public:
  explicit TransactionSource(const TransactionDb* db) : db_(db) {}
  Kind kind() const override { return Kind::kTransactions; }
  const TransactionDb& db() const { return *db_; }

 private:
  const TransactionDb* db_;
};

/// \brief Backend-agnostic mining knobs.
struct BackendOptions {
  /// Prevalence threshold: minimum support as a fraction of transactions
  /// (itemset backends) or minimum participation index (co-location).
  double min_support = 0.1;

  /// Stop after patterns of this many items/types (0 = unlimited).
  size_t max_size = 0;

  /// Worker threads (0 = auto). Every backend is bit-identical at every
  /// setting.
  size_t parallelism = 0;

  /// Candidate-pair constraints over the backend's own item universe
  /// (item ids for itemset backends, type ids for co-location), applied
  /// at pattern size 2 — the uniform KC/KC+ filter stack. The caller
  /// builds universe-appropriate filters; not owned.
  std::vector<const CandidateFilter*> filters;

  /// Neighbourhood radius of the co-location backend's distance join;
  /// itemset backends ignore it.
  double neighbor_distance = 500.0;
};

/// \brief One mined pattern in the backend's item universe.
struct MinedPattern {
  std::vector<uint32_t> items;  ///< Ascending item/type ids.
  uint32_t support = 0;         ///< Absolute support (itemset backends).
  uint64_t rows = 0;            ///< Row instances (co-location backend).
  double score = 0.0;           ///< Support ratio, or participation index.
  double fuzzy = 0.0;           ///< Fuzzy prevalence; == score when ungraded.
};

/// \brief The uniform output of every backend: the item universe the ids
/// index into, plus the patterns in the backend's canonical order (the
/// itemset miners' emission order; (size, ids) for co-location).
struct MinedPatternSet {
  std::vector<std::string> labels;  ///< Indexed by pattern item ids.
  std::vector<std::string> keys;    ///< Grouping keys, parallel to labels.
  std::vector<MinedPattern> patterns;
};

/// \brief One frequent-pattern mining algorithm behind a uniform
/// interface, so dependency (KC) and same-feature-type (KC+) filtering,
/// the staged pipeline, content-hash manifests and the RunReport apply to
/// Apriori, FP-Growth and the co-location miner alike.
class MiningBackend {
 public:
  virtual ~MiningBackend() = default;

  /// Stable CLI name ("apriori", "fpgrowth", "coloc").
  virtual const char* name() const = 0;

  /// The source kind this backend consumes.
  virtual MiningSource::Kind source_kind() const = 0;

  /// Runs the algorithm. Returns InvalidArgument when `source` is not of
  /// source_kind() or the options are out of range.
  virtual Result<MinedPatternSet> Mine(const MiningSource& source,
                                       const BackendOptions& options) const = 0;
};

/// The Apriori itemset backend (shares MineApriori's counting kernels).
const MiningBackend& AprioriBackend();

/// The FP-Growth itemset backend.
const MiningBackend& FpGrowthBackend();

/// Backend registered in core under `name`, or null. Knows "apriori" and
/// "fpgrowth"; the co-location backend lives in the coloc module
/// (coloc::GraphBackend) to keep core free of feature dependencies.
const MiningBackend* FindBackend(const std::string& name);

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_MINING_BACKEND_H_
