#include "core/support_counter.h"

#include <algorithm>
#include <bit>

namespace sfpm {
namespace core {

void PrefixSupportCounter::Count(const TransactionDb& db,
                                 const std::vector<Itemset>& candidates,
                                 size_t word_begin, size_t word_end,
                                 uint32_t* counts, SupportCountStats* stats) {
  word_end = std::min(word_end, db.NumWords());
  const size_t n = word_end > word_begin ? word_end - word_begin : 0;
  // The buffers never outlive their word range.
  prefix_items_.clear();
  parent_items_.clear();
  if (prefix_buf_.size() < n) prefix_buf_.resize(n);
  if (parent_buf_.size() < n) parent_buf_.resize(n);

  SupportCountStats local;
  for (size_t c = 0; c < candidates.size(); ++c) {
    const std::vector<ItemId>& items = candidates[c].items();
    const size_t k = items.size();
    ++local.counted;
    if (k < 2 || n == 0) {
      counts[c] = db.SupportOfWords(candidates[c], word_begin, word_end);
      continue;
    }

    // The representation is picked from k alone, never from the data, so
    // the AND-op total stays independent of how words are chunked across
    // workers: short prefixes (one or two columns) are near-dense and use
    // a sequential dense buffer, deeper ones are sparse in practice and
    // keep only their nonzero words.
    const bool hit = prefix_items_.size() == k - 1 &&
                     std::equal(prefix_items_.begin(), prefix_items_.end(),
                                items.begin());
    if (hit) {
      ++local.prefix_hits;
    } else {
      ++local.prefix_misses;
      prefix_items_.assign(items.begin(), items.end() - 1);
      if (k == 2) {
        // The prefix is a single column — use it in place.
        prefix_dense_ = db.ColumnWords(items[0]) + word_begin;
        prefix_sparse_ = false;
      } else if (k == 3) {
        const uint64_t* a = db.ColumnWords(items[0]) + word_begin;
        const uint64_t* b = db.ColumnWords(items[1]) + word_begin;
        for (size_t w = 0; w < n; ++w) prefix_buf_[w] = a[w] & b[w];
        local.and_word_ops += n;
        prefix_dense_ = prefix_buf_.data();
        prefix_sparse_ = false;
      } else {
        // k >= 4: build the prefix from its (k-2)-parent, which usually
        // survives across prefix changes within a pass.
        const bool parent_hit =
            parent_items_.size() == k - 2 &&
            std::equal(parent_items_.begin(), parent_items_.end(),
                       items.begin());
        if (!parent_hit) {
          parent_items_.assign(items.begin(), items.end() - 2);
          if (k == 4) {
            const uint64_t* a = db.ColumnWords(items[0]) + word_begin;
            const uint64_t* b = db.ColumnWords(items[1]) + word_begin;
            for (size_t w = 0; w < n; ++w) parent_buf_[w] = a[w] & b[w];
            local.and_word_ops += n;
            parent_sparse_ = false;
          } else {
            // Per-word AND chain over the k-2 columns, short-circuiting
            // on zero; only nonzero words are kept. The one remaining
            // database-width sweep, and sorted candidate order makes it
            // rare.
            cols_.clear();
            for (size_t i = 0; i + 2 < k; ++i) {
              cols_.push_back(db.ColumnWords(items[i]));
            }
            parent_words_.clear();
            parent_values_.clear();
            uint64_t ops = 0;
            for (size_t w = word_begin; w < word_end; ++w) {
              uint64_t acc = cols_[0][w];
              size_t i = 1;
              for (; i < cols_.size() && acc != 0; ++i) acc &= cols_[i][w];
              ops += i - 1;
              if (acc != 0) {
                parent_words_.push_back(static_cast<uint32_t>(w));
                parent_values_.push_back(acc);
              }
            }
            local.and_word_ops += ops;
            parent_sparse_ = true;
          }
        }
        // Extend the parent by the prefix's last item into the sparse
        // prefix: work proportional to the parent's nonzero words.
        const uint64_t* col = db.ColumnWords(items[k - 2]);
        nz_words_.clear();
        nz_values_.clear();
        if (parent_sparse_) {
          for (size_t j = 0; j < parent_words_.size(); ++j) {
            const uint64_t acc = parent_values_[j] & col[parent_words_[j]];
            if (acc != 0) {
              nz_words_.push_back(parent_words_[j]);
              nz_values_.push_back(acc);
            }
          }
          local.and_word_ops += parent_words_.size();
        } else {
          for (size_t w = 0; w < n; ++w) {
            const uint64_t acc = parent_buf_[w] & col[word_begin + w];
            if (acc != 0) {
              nz_words_.push_back(static_cast<uint32_t>(word_begin + w));
              nz_values_.push_back(acc);
            }
          }
          local.and_word_ops += n;
        }
        prefix_sparse_ = true;
      }
    }

    const uint64_t* last = db.ColumnWords(items[k - 1]);
    uint32_t count = 0;
    if (prefix_sparse_) {
      for (size_t j = 0; j < nz_words_.size(); ++j) {
        count += static_cast<uint32_t>(
            std::popcount(nz_values_[j] & last[nz_words_[j]]));
      }
      local.and_word_ops += nz_words_.size();
    } else {
      const uint64_t* l = last + word_begin;
      const uint64_t* p = prefix_dense_;
      for (size_t w = 0; w < n; ++w) {
        count += static_cast<uint32_t>(std::popcount(p[w] & l[w]));
      }
      local.and_word_ops += n;
    }
    counts[c] = count;
  }
  if (stats != nullptr) stats->Add(local);
}

}  // namespace core
}  // namespace sfpm
