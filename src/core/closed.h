#ifndef SFPM_CORE_CLOSED_H_
#define SFPM_CORE_CLOSED_H_

#include <vector>

#include "core/apriori.h"

namespace sfpm {
namespace core {

/// \brief Keeps only the *closed* frequent itemsets: those with no proper
/// frequent superset of identical support. Every frequent itemset and its
/// support can be recovered from the closed family, so this is a lossless
/// condensation (Pasquier et al.) — the redundancy-elimination direction
/// the paper's conclusion points to.
std::vector<FrequentItemset> ClosedItemsets(const AprioriResult& result);

/// \brief Keeps only the *maximal* frequent itemsets: those with no
/// frequent superset at all. Lossy (supports of subsets are dropped) but
/// minimal — the paper's explicit future-work target.
std::vector<FrequentItemset> MaximalItemsets(const AprioriResult& result);

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_CLOSED_H_
