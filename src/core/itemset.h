#ifndef SFPM_CORE_ITEMSET_H_
#define SFPM_CORE_ITEMSET_H_

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace sfpm {
namespace core {

/// Item handle inside a TransactionDb.
using ItemId = uint32_t;

/// \brief A set of items kept sorted ascending; the unit of frequent
/// pattern mining. Cheap value type.
class Itemset {
 public:
  Itemset() = default;
  Itemset(std::initializer_list<ItemId> items) : items_(items) { Normalize(); }
  explicit Itemset(std::vector<ItemId> items) : items_(std::move(items)) {
    Normalize();
  }

  const std::vector<ItemId>& items() const { return items_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  ItemId operator[](size_t i) const { return items_[i]; }

  bool Contains(ItemId item) const {
    return std::binary_search(items_.begin(), items_.end(), item);
  }

  /// True when every item of `other` is in this set.
  bool ContainsAll(const Itemset& other) const {
    return std::includes(items_.begin(), items_.end(), other.items_.begin(),
                         other.items_.end());
  }

  /// Set union.
  Itemset Union(const Itemset& other) const;

  /// This set minus `other`.
  Itemset Difference(const Itemset& other) const;

  /// New set with `item` added.
  Itemset With(ItemId item) const;

  /// New set with `item` removed.
  Itemset Without(ItemId item) const;

  /// All subsets of size `size() - 1`.
  std::vector<Itemset> AllButOneSubsets() const;

  bool operator==(const Itemset& o) const { return items_ == o.items_; }
  bool operator<(const Itemset& o) const { return items_ < o.items_; }

  /// "{1, 5, 9}"
  std::string ToString() const;

 private:
  void Normalize() {
    std::sort(items_.begin(), items_.end());
    items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
  }

  std::vector<ItemId> items_;
};

/// FNV-1a style hash usable in unordered containers. Transparent: a
/// sorted std::vector<ItemId> hashes identically, so hot paths can probe
/// an index with a reused scratch vector instead of allocating an Itemset
/// per lookup.
struct ItemsetHash {
  using is_transparent = void;
  size_t operator()(const Itemset& s) const { return Hash(s.items()); }
  size_t operator()(const std::vector<ItemId>& items) const {
    return Hash(items);
  }

 private:
  static size_t Hash(const std::vector<ItemId>& items) {
    uint64_t h = 1469598103934665603ULL;
    for (ItemId item : items) {
      h ^= item;
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

/// Transparent equality to pair with ItemsetHash. Comparing against a
/// vector assumes the vector is sorted and duplicate-free, like the item
/// list of every normalized Itemset.
struct ItemsetEq {
  using is_transparent = void;
  bool operator()(const Itemset& a, const Itemset& b) const {
    return a.items() == b.items();
  }
  bool operator()(const Itemset& a, const std::vector<ItemId>& b) const {
    return a.items() == b;
  }
  bool operator()(const std::vector<ItemId>& a, const Itemset& b) const {
    return a == b.items();
  }
};

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_ITEMSET_H_
