#ifndef SFPM_CORE_SUPPORT_COUNTER_H_
#define SFPM_CORE_SUPPORT_COUNTER_H_

#include <cstdint>
#include <vector>

#include "core/itemset.h"
#include "core/transaction_db.h"
#include "util/aligned.h"

namespace sfpm {
namespace core {

/// \brief Counters of the prefix-shared support counting kernel. Additive,
/// like relate::RelateStats.
///
/// `and_word_ops` is the number of 64-bit column-AND operations executed,
/// the kernel's natural work measure; its total is independent of the
/// thread count (every worker replays the same candidate sequence over its
/// own word range). `prefix_hits`/`prefix_misses` count cache *events* and
/// therefore scale with the number of word chunks.
struct SupportCountStats {
  uint64_t counted = 0;        ///< Candidate countings performed.
  uint64_t prefix_hits = 0;    ///< Candidates served from the cached prefix.
  uint64_t prefix_misses = 0;  ///< Prefix buffer rebuilds.
  uint64_t and_word_ops = 0;   ///< 64-bit AND operations executed.

  void Add(const SupportCountStats& o) {
    counted += o.counted;
    prefix_hits += o.prefix_hits;
    prefix_misses += o.prefix_misses;
    and_word_ops += o.and_word_ops;
  }
};

/// \brief Support counting that exploits Apriori's candidate order.
///
/// apriori_gen emits candidates lexicographically sorted and grouped by
/// shared (k-1)-prefix, so consecutive candidates almost always differ in
/// the last item only. This counter caches the AND of the current prefix's
/// columns, so a candidate sharing the previous prefix costs one AND +
/// popcount per cached word instead of the k-1-way chain. The
/// representation adapts to the prefix depth (chosen from k alone, which
/// keeps the AND-op total thread-count-invariant): one- and two-column
/// prefixes are near-dense and live in a sequential 64-byte-aligned
/// buffer (for k=2 the database column is used in place, copy-free);
/// deeper prefixes keep only their *nonzero* words, and at mining
/// thresholds almost every word of a deep prefix AND is zero — the work
/// tracks the transactions that can still support the candidate, not the
/// database size. The cache is also two-level: behind the (k-1)-prefix
/// sits its (k-2)-parent, so even a prefix change usually costs one
/// parent extension rather than a database sweep; full sweeps only happen
/// when the parent changes too.
///
/// The counts are exactly TransactionDb::SupportOfWords — only the
/// operation count changes — so mining output is identical with or
/// without the counter.
///
/// One instance per ThreadPool worker; instances are reused across passes
/// to keep the buffer allocations warm. Not thread-safe.
class PrefixSupportCounter {
 public:
  /// Counts the supports of `candidates` (sorted; any sizes) over the
  /// column words [word_begin, word_end), writing counts[i] for candidate
  /// i. `stats`, when non-null, accumulates kernel counters. The prefix
  /// cache is scoped to this call: it never carries over a stale word
  /// range.
  void Count(const TransactionDb& db, const std::vector<Itemset>& candidates,
             size_t word_begin, size_t word_end, uint32_t* counts,
             SupportCountStats* stats = nullptr);

 private:
  std::vector<ItemId> prefix_items_;  ///< (k-1)-prefix the cache holds.
  bool prefix_sparse_ = false;        ///< Which representation is live.
  /// Dense representation (k <= 3): the range's words, contiguous. Points
  /// at prefix_buf_ or directly at a database column.
  const uint64_t* prefix_dense_ = nullptr;
  AlignedVector<uint64_t> prefix_buf_;
  /// Sparse representation (k >= 4): the nonzero words only.
  std::vector<uint32_t> nz_words_;  ///< Absolute word indexes.
  std::vector<uint64_t> nz_values_;  ///< AND of the prefix columns there.

  std::vector<ItemId> parent_items_;  ///< (k-2)-parent behind the prefix.
  bool parent_sparse_ = false;
  AlignedVector<uint64_t> parent_buf_;  ///< Dense parent (k == 4).
  std::vector<uint32_t> parent_words_;  ///< Sparse parent (k >= 5).
  std::vector<uint64_t> parent_values_;
  std::vector<const uint64_t*> cols_;  ///< Scratch column pointers.
};

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_SUPPORT_COUNTER_H_
