#include "core/fpgrowth.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <unordered_map>

#include "obs/trace.h"
#include "util/stopwatch.h"

namespace sfpm {
namespace core {

namespace {

/// A conditional pattern base: weighted transactions over a shrinking item
/// universe. The top-level base is the database itself with weight 1.
struct PatternBase {
  std::vector<std::pair<std::vector<ItemId>, uint32_t>> rows;
};

struct FpNode {
  ItemId item = 0;
  uint32_t count = 0;
  FpNode* parent = nullptr;
  FpNode* next_same_item = nullptr;  // Header chain.
  std::map<ItemId, FpNode*> children;
};

/// FP-tree over one pattern base. Items inside paths are ordered by
/// descending support (rank), the classic compression ordering.
class FpTree {
 public:
  FpTree(const PatternBase& base, uint32_t min_count) {
    // Support counting within the base.
    std::unordered_map<ItemId, uint32_t> supports;
    for (const auto& [items, weight] : base.rows) {
      for (ItemId item : items) supports[item] += weight;
    }
    for (const auto& [item, support] : supports) {
      if (support >= min_count) {
        header_[item] = {nullptr, support};
      }
    }

    // Ranks: descending support, ties by item id, computed once.
    std::vector<ItemId> ordered;
    for (const auto& [item, entry] : header_) ordered.push_back(item);
    std::sort(ordered.begin(), ordered.end(), [this](ItemId a, ItemId b) {
      const uint32_t sa = header_[a].support;
      const uint32_t sb = header_[b].support;
      return sa != sb ? sa > sb : a < b;
    });
    for (size_t i = 0; i < ordered.size(); ++i) {
      rank_[ordered[i]] = i;
    }

    root_ = NewNode();
    for (const auto& [items, weight] : base.rows) {
      std::vector<ItemId> path;
      for (ItemId item : items) {
        if (header_.count(item)) path.push_back(item);
      }
      std::sort(path.begin(), path.end(), [this](ItemId a, ItemId b) {
        return rank_.at(a) < rank_.at(b);
      });
      Insert(path, weight);
    }
  }

  bool Empty() const { return header_.empty(); }

  size_t NodeCount() const { return arena_.size(); }

  /// Items by ascending support — the mining order of FP-Growth.
  std::vector<ItemId> ItemsAscending() const {
    std::vector<ItemId> items;
    for (const auto& [item, entry] : header_) items.push_back(item);
    std::sort(items.begin(), items.end(), [this](ItemId a, ItemId b) {
      const uint32_t sa = header_.at(a).support;
      const uint32_t sb = header_.at(b).support;
      return sa != sb ? sa < sb : a > b;
    });
    return items;
  }

  uint32_t Support(ItemId item) const { return header_.at(item).support; }

  /// The conditional pattern base of `item`: for each tree occurrence, the
  /// root-ward path (excluding `item`) weighted by the occurrence count.
  PatternBase ConditionalBase(ItemId item) const {
    PatternBase base;
    for (const FpNode* node = header_.at(item).head; node != nullptr;
         node = node->next_same_item) {
      std::vector<ItemId> path;
      for (const FpNode* up = node->parent; up != nullptr && up->parent != nullptr;
           up = up->parent) {
        path.push_back(up->item);
      }
      if (!path.empty()) {
        std::reverse(path.begin(), path.end());
        base.rows.emplace_back(std::move(path), node->count);
      }
    }
    return base;
  }

 private:
  struct HeaderEntry {
    FpNode* head = nullptr;
    uint32_t support = 0;
  };

  FpNode* NewNode() {
    arena_.emplace_back();
    return &arena_.back();
  }

  void Insert(const std::vector<ItemId>& path, uint32_t weight) {
    FpNode* node = root_;
    for (ItemId item : path) {
      const auto it = node->children.find(item);
      if (it != node->children.end()) {
        node = it->second;
      } else {
        FpNode* child = NewNode();
        child->item = item;
        child->parent = node;
        HeaderEntry& entry = header_.at(item);
        child->next_same_item = entry.head;
        entry.head = child;
        node->children.emplace(item, child);
        node = child;
      }
      node->count += weight;
    }
  }

  std::deque<FpNode> arena_;
  FpNode* root_ = nullptr;
  std::map<ItemId, HeaderEntry> header_;
  std::unordered_map<ItemId, size_t> rank_;
};

class FpGrowthMiner {
 public:
  FpGrowthMiner(uint32_t min_count, const AprioriOptions& options)
      : min_count_(min_count), options_(options) {}

  void Mine(const PatternBase& base, const std::vector<ItemId>& prefix,
            std::vector<FrequentItemset>* out) {
    if (options_.max_itemset_size != 0 &&
        prefix.size() >= options_.max_itemset_size) {
      return;
    }
    const FpTree tree(base, min_count_);
    ++trees_;
    nodes_ += tree.NodeCount();
    for (ItemId item : tree.ItemsAscending()) {
      if (BlockedAgainstPrefix(item, prefix)) continue;

      std::vector<ItemId> extended = prefix;
      extended.push_back(item);
      out->push_back({Itemset(extended), tree.Support(item)});

      ++conditional_bases_;
      PatternBase conditional = tree.ConditionalBase(item);
      // Constraint-aware projection: drop items blocked against any
      // member of the new prefix so no pruned pair ever forms.
      if (!options_.filters.empty()) {
        for (auto& [items, weight] : conditional.rows) {
          std::erase_if(items, [&](ItemId candidate) {
            return BlockedAgainstPrefix(candidate, extended);
          });
        }
        std::erase_if(conditional.rows,
                      [](const auto& row) { return row.first.empty(); });
      }
      if (!conditional.rows.empty()) {
        Mine(conditional, extended, out);
      }
    }
  }

 private:
  bool BlockedAgainstPrefix(ItemId item,
                            const std::vector<ItemId>& prefix) const {
    for (const CandidateFilter* filter : options_.filters) {
      for (ItemId p : prefix) {
        if (filter->PrunePair(item, p)) return true;
      }
    }
    return false;
  }

 public:
  /// Work counters of the recursion, published as `fpgrowth.*`.
  uint64_t trees() const { return trees_; }
  uint64_t nodes() const { return nodes_; }
  uint64_t conditional_bases() const { return conditional_bases_; }

 private:
  uint32_t min_count_;
  const AprioriOptions& options_;
  uint64_t trees_ = 0;
  uint64_t nodes_ = 0;
  uint64_t conditional_bases_ = 0;
};

}  // namespace

Result<AprioriResult> MineFpGrowth(const TransactionDb& db,
                                   const AprioriOptions& options) {
  if (!(options.min_support > 0.0) || options.min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  if (db.NumTransactions() == 0) {
    return Status::InvalidArgument("transaction database is empty");
  }
  const uint32_t min_count = static_cast<uint32_t>(std::max<double>(
      1.0,
      std::ceil(options.min_support *
                static_cast<double>(db.NumTransactions()) -
                1e-9)));

  obs::Tracer::Span span = obs::Tracer::Global().StartSpan("mine/fpgrowth");
  Stopwatch watch;
  PatternBase base;
  base.rows.reserve(db.NumTransactions());
  for (size_t row = 0; row < db.NumTransactions(); ++row) {
    base.rows.emplace_back(db.TransactionItems(row), 1);
  }

  std::vector<FrequentItemset> itemsets;
  FpGrowthMiner miner(min_count, options);
  miner.Mine(base, {}, &itemsets);

  std::sort(itemsets.begin(), itemsets.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size()) {
                return a.items.size() < b.items.size();
              }
              return a.items < b.items;
            });

  MiningStats stats;
  stats.total_frequent = itemsets.size();
  for (const FrequentItemset& fi : itemsets) {
    if (fi.items.size() >= 2) ++stats.total_frequent_ge2;
  }
  stats.total_millis = watch.ElapsedMillis();

  // Publish before the run span closes so the `mine/fpgrowth` span's
  // counter-delta attachment covers the whole run.
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("fpgrowth.trees").Add(miner.trees());
  registry.GetCounter("fpgrowth.nodes").Add(miner.nodes());
  registry.GetCounter("fpgrowth.conditional_bases")
      .Add(miner.conditional_bases());
  stats.PublishTo(&registry);
  return AprioriResult(std::move(itemsets), std::move(stats));
}

Result<AprioriResult> MineFpGrowth(const TransactionDb& db,
                                   double min_support) {
  AprioriOptions options;
  options.min_support = min_support;
  return MineFpGrowth(db, options);
}

}  // namespace core
}  // namespace sfpm
