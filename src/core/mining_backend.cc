#include "core/mining_backend.h"

#include "core/apriori.h"
#include "core/fpgrowth.h"

namespace sfpm {
namespace core {

namespace {

/// Shared adapter of the two TransactionDb miners: same option mapping,
/// same result conversion, different mining entry point.
class ItemsetBackend : public MiningBackend {
 public:
  MiningSource::Kind source_kind() const override {
    return MiningSource::Kind::kTransactions;
  }

  Result<MinedPatternSet> Mine(const MiningSource& source,
                               const BackendOptions& options) const override {
    if (source.kind() != MiningSource::Kind::kTransactions) {
      return Status::InvalidArgument(std::string("backend '") + name() +
                                     "' needs a transaction source");
    }
    const TransactionDb& db =
        static_cast<const TransactionSource&>(source).db();

    AprioriOptions mine_options;
    mine_options.min_support = options.min_support;
    mine_options.max_itemset_size = options.max_size;
    mine_options.filters = options.filters;
    mine_options.parallelism = options.parallelism;
    Result<AprioriResult> result = Run(db, mine_options);
    if (!result.ok()) return result.status();

    MinedPatternSet out;
    out.labels.reserve(db.NumItems());
    out.keys.reserve(db.NumItems());
    for (size_t i = 0; i < db.NumItems(); ++i) {
      const auto id = static_cast<ItemId>(i);
      out.labels.push_back(db.Label(id));
      out.keys.push_back(db.Key(id));
    }
    // Emission order preserved: PatternSet sections rebuilt from this are
    // byte-identical to ones built straight off the AprioriResult.
    const double total = static_cast<double>(db.NumTransactions());
    out.patterns.reserve(result.value().itemsets().size());
    for (const FrequentItemset& f : result.value().itemsets()) {
      MinedPattern p;
      p.items = f.items.items();
      p.support = f.support;
      p.rows = f.support;
      p.score = total == 0.0 ? 0.0 : static_cast<double>(f.support) / total;
      p.fuzzy = p.score;
      out.patterns.push_back(std::move(p));
    }
    return out;
  }

 protected:
  virtual Result<AprioriResult> Run(const TransactionDb& db,
                                    const AprioriOptions& options) const = 0;
};

class AprioriBackendImpl final : public ItemsetBackend {
 public:
  const char* name() const override { return "apriori"; }

 protected:
  Result<AprioriResult> Run(const TransactionDb& db,
                            const AprioriOptions& options) const override {
    return MineApriori(db, options);
  }
};

class FpGrowthBackendImpl final : public ItemsetBackend {
 public:
  const char* name() const override { return "fpgrowth"; }

 protected:
  Result<AprioriResult> Run(const TransactionDb& db,
                            const AprioriOptions& options) const override {
    return MineFpGrowth(db, options);
  }
};

}  // namespace

const MiningBackend& AprioriBackend() {
  static const AprioriBackendImpl* backend = new AprioriBackendImpl();
  return *backend;
}

const MiningBackend& FpGrowthBackend() {
  static const FpGrowthBackendImpl* backend = new FpGrowthBackendImpl();
  return *backend;
}

const MiningBackend* FindBackend(const std::string& name) {
  if (name == "apriori") return &AprioriBackend();
  if (name == "fpgrowth") return &FpGrowthBackend();
  return nullptr;
}

}  // namespace core
}  // namespace sfpm
