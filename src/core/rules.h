#ifndef SFPM_CORE_RULES_H_
#define SFPM_CORE_RULES_H_

#include <string>
#include <vector>

#include "core/apriori.h"

namespace sfpm {
namespace core {

/// \brief An association rule antecedent -> consequent with the standard
/// objective interestingness measures attached.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  uint32_t support_count = 0;  ///< Transactions containing both sides.
  double support = 0.0;        ///< support_count / |D|.
  double confidence = 0.0;     ///< sup(A u C) / sup(A).
  double lift = 0.0;           ///< confidence / freq(C).
  double leverage = 0.0;       ///< freq(A u C) - freq(A) * freq(C).
  double conviction = 0.0;     ///< (1 - freq(C)) / (1 - confidence); inf when confidence == 1.

  /// Renders with the labels of `db`, e.g.
  /// "contains_slum & touches_slum -> murderRate=high".
  std::string ToString(const TransactionDb& db) const;
};

/// \brief Rule generation options.
struct RuleOptions {
  double min_confidence = 0.5;
  /// Keep only single-item consequents (the common spatial ARM setting).
  bool single_consequent = false;
};

/// \brief Derives association rules from the frequent itemsets of a mining
/// run. Every itemset of size >= 2 is split into all antecedent/consequent
/// partitions meeting the confidence threshold.
///
/// Subset supports are looked up in `result` — guaranteed present because
/// candidate filtering only ever removes pairs, hence whole sub-lattices.
std::vector<AssociationRule> GenerateRules(const TransactionDb& db,
                                           const AprioriResult& result,
                                           const RuleOptions& options);

}  // namespace core
}  // namespace sfpm

#endif  // SFPM_CORE_RULES_H_
