#include "core/transaction_db.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

namespace sfpm {
namespace core {

Result<TransactionDb> TransactionDb::FromParts(
    std::vector<std::string> labels, std::vector<std::string> keys,
    size_t num_transactions, const uint64_t* columns) {
  if (labels.size() != keys.size()) {
    return Status::InvalidArgument(
        "label and key arrays differ in length (" +
        std::to_string(labels.size()) + " vs " + std::to_string(keys.size()) +
        ")");
  }
  TransactionDb db;
  db.num_transactions_ = num_transactions;
  db.labels_ = std::move(labels);
  db.keys_ = std::move(keys);
  db.label_index_.reserve(db.labels_.size());
  for (size_t i = 0; i < db.labels_.size(); ++i) {
    const auto [it, inserted] =
        db.label_index_.emplace(db.labels_[i], static_cast<ItemId>(i));
    if (!inserted) {
      return Status::InvalidArgument("duplicate item label '" +
                                     db.labels_[i] + "'");
    }
  }
  const size_t num_words = db.NumWords();
  const size_t tail_bits = num_transactions % 64;
  const uint64_t tail_mask =
      tail_bits == 0 ? 0 : ~uint64_t{0} << tail_bits;
  db.columns_.reserve(db.labels_.size());
  for (size_t i = 0; i < db.labels_.size(); ++i) {
    AlignedVector<uint64_t> column(num_words, 0);
    if (num_words != 0) {
      std::memcpy(column.data(), columns + i * num_words, num_words * 8);
      if ((column[num_words - 1] & tail_mask) != 0) {
        return Status::InvalidArgument(
            "column '" + db.labels_[i] +
            "' has bits set past the last transaction");
      }
    }
    db.columns_.push_back(std::move(column));
  }
  return db;
}

ItemId TransactionDb::AddItem(const std::string& label,
                              const std::string& key) {
  const auto it = label_index_.find(label);
  if (it != label_index_.end()) return it->second;
  const ItemId id = static_cast<ItemId>(labels_.size());
  labels_.push_back(label);
  keys_.push_back(key);
  label_index_.emplace(label, id);
  columns_.emplace_back(NumWords(), 0);
  return id;
}

Result<ItemId> TransactionDb::AddItemChecked(const std::string& label,
                                             const std::string& key) {
  const auto it = label_index_.find(label);
  if (it != label_index_.end()) {
    if (keys_[it->second] != key) {
      return Status::AlreadyExists("item '" + label +
                                   "' already registered with key '" +
                                   keys_[it->second] + "'");
    }
    return it->second;
  }
  return AddItem(label, key);
}

Result<ItemId> TransactionDb::FindItem(const std::string& label) const {
  const auto it = label_index_.find(label);
  if (it == label_index_.end()) {
    return Status::NotFound("unknown item '" + label + "'");
  }
  return it->second;
}

size_t TransactionDb::AddTransaction() {
  const size_t row = num_transactions_++;
  if (NumWords() > (columns_.empty() ? 0 : columns_[0].size())) {
    for (auto& column : columns_) column.resize(NumWords(), 0);
  }
  return row;
}

size_t TransactionDb::AddTransaction(const std::vector<ItemId>& items) {
  const size_t row = AddTransaction();
  for (ItemId item : items) {
    const Status st = SetItem(row, item);
    (void)st;  // Items come from AddItem in this overload's typical use.
  }
  return row;
}

Status TransactionDb::SetItem(size_t row, ItemId item) {
  if (row >= num_transactions_) {
    return Status::OutOfRange("transaction row out of range");
  }
  if (item >= labels_.size()) {
    return Status::OutOfRange("item id out of range");
  }
  columns_[item][row / 64] |= uint64_t{1} << (row % 64);
  return Status::OK();
}

bool TransactionDb::Test(size_t row, ItemId item) const {
  if (row >= num_transactions_ || item >= labels_.size()) return false;
  return (columns_[item][row / 64] >> (row % 64)) & 1;
}

uint32_t TransactionDb::Support(ItemId item) const {
  uint32_t count = 0;
  for (uint64_t word : columns_[item]) {
    count += static_cast<uint32_t>(std::popcount(word));
  }
  return count;
}

uint32_t TransactionDb::SupportOf(const Itemset& set) const {
  return SupportOfWords(set, 0, NumWords());
}

uint32_t TransactionDb::SupportOfWords(const Itemset& set, size_t word_begin,
                                       size_t word_end) const {
  word_end = std::min(word_end, NumWords());
  if (set.empty()) {
    // Transactions covered by the word range (the final word is partial).
    const size_t begin = std::min(word_begin * 64, num_transactions_);
    const size_t end = std::min(word_end * 64, num_transactions_);
    return static_cast<uint32_t>(end - begin);
  }
  const std::vector<ItemId>& items = set.items();
  uint32_t count = 0;
  for (size_t w = word_begin; w < word_end; ++w) {
    uint64_t acc = columns_[items[0]][w];
    for (size_t i = 1; i < items.size() && acc != 0; ++i) {
      acc &= columns_[items[i]][w];
    }
    count += static_cast<uint32_t>(std::popcount(acc));
  }
  return count;
}

uint32_t TransactionDb::SupportOfWordsInto(const ItemId* items,
                                           size_t num_items,
                                           size_t word_begin, size_t word_end,
                                           uint64_t* out) const {
  word_end = std::min(word_end, NumWords());
  if (word_begin >= word_end) return 0;
  // 4 KiB blocks: every column's slice of the block stays cache-resident
  // while the k columns stream over it.
  constexpr size_t kBlockWords = 512;
  uint32_t count = 0;
  for (size_t block = word_begin; block < word_end; block += kBlockWords) {
    const size_t end = std::min(block + kBlockWords, word_end);
    uint64_t* dst = out + (block - word_begin);
    const size_t n = end - block;
    const uint64_t* first = columns_[items[0]].data() + block;
    for (size_t w = 0; w < n; ++w) dst[w] = first[w];
    for (size_t i = 1; i < num_items; ++i) {
      const uint64_t* col = columns_[items[i]].data() + block;
      for (size_t w = 0; w < n; ++w) dst[w] &= col[w];
    }
    for (size_t w = 0; w < n; ++w) {
      count += static_cast<uint32_t>(std::popcount(dst[w]));
    }
  }
  return count;
}

double TransactionDb::Frequency(const Itemset& set) const {
  if (num_transactions_ == 0) return 0.0;
  return static_cast<double>(SupportOf(set)) /
         static_cast<double>(num_transactions_);
}

std::vector<ItemId> TransactionDb::TransactionItems(size_t row) const {
  std::vector<ItemId> out;
  for (ItemId item = 0; item < labels_.size(); ++item) {
    if (Test(row, item)) out.push_back(item);
  }
  return out;
}

}  // namespace core
}  // namespace sfpm
