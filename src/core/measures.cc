#include "core/measures.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sfpm {
namespace core {

Result<Contingency> Contingency::ForRule(const AssociationRule& rule,
                                         const AprioriResult& result,
                                         const TransactionDb& db) {
  const auto sup_a = result.SupportOf(rule.antecedent);
  const auto sup_c = result.SupportOf(rule.consequent);
  if (!sup_a || !sup_c) {
    return Status::NotFound("rule side supports not in mining result");
  }
  Contingency table;
  table.n = static_cast<double>(db.NumTransactions());
  table.n_ac = static_cast<double>(rule.support_count);
  table.n_a = static_cast<double>(*sup_a);
  table.n_c = static_cast<double>(*sup_c);
  return table;
}

double Contingency::Lift() const {
  const double denom = n_a * n_c;
  return denom > 0 ? (n_ac * n) / denom : 0.0;
}

double Contingency::Leverage() const {
  return n_ac / n - (n_a / n) * (n_c / n);
}

double Contingency::Conviction() const {
  const double conf = Confidence();
  if (conf >= 1.0) return std::numeric_limits<double>::infinity();
  return (1.0 - n_c / n) / (1.0 - conf);
}

double Contingency::Jaccard() const {
  const double denom = n_a + n_c - n_ac;
  return denom > 0 ? n_ac / denom : 0.0;
}

double Contingency::Cosine() const {
  const double denom = std::sqrt(n_a * n_c);
  return denom > 0 ? n_ac / denom : 0.0;
}

double Contingency::Kulczynski() const {
  if (n_a == 0 || n_c == 0) return 0.0;
  return 0.5 * (n_ac / n_a + n_ac / n_c);
}

double Contingency::CertaintyFactor() const {
  const double p_c = n_c / n;
  const double conf = Confidence();
  if (conf >= p_c) {
    return p_c < 1.0 ? (conf - p_c) / (1.0 - p_c) : 0.0;
  }
  return p_c > 0.0 ? (conf - p_c) / p_c : 0.0;
}

double Contingency::OddsRatio() const {
  const double n_a_notc = n_a - n_ac;
  const double n_nota_c = n_c - n_ac;
  const double n_nota_notc = n - n_a - n_c + n_ac;
  const double denom = n_a_notc * n_nota_c;
  if (denom == 0.0) {
    return n_ac * n_nota_notc > 0 ? std::numeric_limits<double>::infinity()
                                  : 0.0;
  }
  return (n_ac * n_nota_notc) / denom;
}

double Contingency::Phi() const {
  const double denom =
      std::sqrt(n_a * n_c * (n - n_a) * (n - n_c));
  if (denom == 0.0) return 0.0;
  return (n * n_ac - n_a * n_c) / denom;
}

const char* MeasureName(Measure measure) {
  switch (measure) {
    case Measure::kSupport:
      return "support";
    case Measure::kConfidence:
      return "confidence";
    case Measure::kLift:
      return "lift";
    case Measure::kLeverage:
      return "leverage";
    case Measure::kConviction:
      return "conviction";
    case Measure::kJaccard:
      return "jaccard";
    case Measure::kCosine:
      return "cosine";
    case Measure::kKulczynski:
      return "kulczynski";
    case Measure::kCertaintyFactor:
      return "certaintyFactor";
    case Measure::kOddsRatio:
      return "oddsRatio";
    case Measure::kPhi:
      return "phi";
  }
  return "unknown";
}

double Evaluate(Measure measure, const Contingency& table) {
  switch (measure) {
    case Measure::kSupport:
      return table.Support();
    case Measure::kConfidence:
      return table.Confidence();
    case Measure::kLift:
      return table.Lift();
    case Measure::kLeverage:
      return table.Leverage();
    case Measure::kConviction:
      return table.Conviction();
    case Measure::kJaccard:
      return table.Jaccard();
    case Measure::kCosine:
      return table.Cosine();
    case Measure::kKulczynski:
      return table.Kulczynski();
    case Measure::kCertaintyFactor:
      return table.CertaintyFactor();
    case Measure::kOddsRatio:
      return table.OddsRatio();
    case Measure::kPhi:
      return table.Phi();
  }
  return 0.0;
}

std::vector<AssociationRule> TopRulesBy(
    Measure measure, const std::vector<AssociationRule>& rules,
    const AprioriResult& result, const TransactionDb& db, size_t k) {
  std::vector<std::pair<double, size_t>> scored;
  for (size_t i = 0; i < rules.size(); ++i) {
    const auto table = Contingency::ForRule(rules[i], result, db);
    if (!table.ok()) continue;
    scored.emplace_back(Evaluate(measure, table.value()), i);
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<AssociationRule> top;
  for (size_t i = 0; i < scored.size() && i < k; ++i) {
    top.push_back(rules[scored[i].second]);
  }
  return top;
}

}  // namespace core
}  // namespace sfpm
