#include "core/closed.h"

#include <algorithm>

namespace sfpm {
namespace core {

namespace {

/// Groups itemsets by size descending so each candidate only needs to be
/// checked against strictly larger sets.
std::vector<const FrequentItemset*> BySizeDescending(
    const AprioriResult& result) {
  std::vector<const FrequentItemset*> sorted;
  sorted.reserve(result.itemsets().size());
  for (const FrequentItemset& fi : result.itemsets()) sorted.push_back(&fi);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const FrequentItemset* a, const FrequentItemset* b) {
                     return a->items.size() > b->items.size();
                   });
  return sorted;
}

}  // namespace

std::vector<FrequentItemset> ClosedItemsets(const AprioriResult& result) {
  const auto sorted = BySizeDescending(result);
  std::vector<FrequentItemset> closed;
  for (size_t i = 0; i < sorted.size(); ++i) {
    bool is_closed = true;
    // A superset must be strictly larger, hence earlier in the ordering.
    for (size_t j = 0; j < i; ++j) {
      if (sorted[j]->items.size() == sorted[i]->items.size()) break;
      if (sorted[j]->support == sorted[i]->support &&
          sorted[j]->items.ContainsAll(sorted[i]->items)) {
        is_closed = false;
        break;
      }
    }
    if (is_closed) closed.push_back(*sorted[i]);
  }
  std::sort(closed.begin(), closed.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  return closed;
}

std::vector<FrequentItemset> MaximalItemsets(const AprioriResult& result) {
  const auto sorted = BySizeDescending(result);
  std::vector<FrequentItemset> maximal;
  for (size_t i = 0; i < sorted.size(); ++i) {
    bool is_maximal = true;
    for (size_t j = 0; j < i; ++j) {
      if (sorted[j]->items.size() == sorted[i]->items.size()) break;
      if (sorted[j]->items.ContainsAll(sorted[i]->items)) {
        is_maximal = false;
        break;
      }
    }
    if (is_maximal) maximal.push_back(*sorted[i]);
  }
  std::sort(maximal.begin(), maximal.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              return a.items < b.items;
            });
  return maximal;
}

}  // namespace core
}  // namespace sfpm
