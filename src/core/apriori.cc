#include "core/apriori.h"

#include <algorithm>
#include <cmath>

#include "core/support_counter.h"
#include "obs/trace.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sfpm {
namespace core {

std::string MiningStats::ToString() const {
  std::string out;
  for (const Pass& p : passes) {
    out += StrFormat(
        "pass k=%zu: candidates=%zu filtered=%zu frequent=%zu "
        "(%.2f ms, counting %.2f ms, %llu AND-ops)\n",
        p.k, p.candidates, p.filtered_candidates, p.frequent, p.millis,
        p.count_millis, static_cast<unsigned long long>(p.and_word_ops));
  }
  out += StrFormat("total frequent=%zu (>=2: %zu) in %.2f ms on %zu thread%s",
                   total_frequent, total_frequent_ge2, total_millis, threads,
                   threads == 1 ? "" : "s");
  const uint64_t events = prefix_hits + prefix_misses;
  if (events > 0) {
    out += StrFormat(
        "\nprefix cache: %llu hits / %llu events (%.1f%%), %llu AND-ops",
        static_cast<unsigned long long>(prefix_hits),
        static_cast<unsigned long long>(events),
        100.0 * static_cast<double>(prefix_hits) /
            static_cast<double>(events),
        static_cast<unsigned long long>(and_word_ops));
  }
  return out;
}

void MiningStats::Pass::PublishTo(obs::MetricsRegistry* registry) const {
  const std::string prefix = StrFormat("mine.pass.k%zu.", k);
  registry->GetCounter(prefix + "candidates").Add(candidates);
  registry->GetCounter(prefix + "filtered").Add(filtered_candidates);
  registry->GetCounter(prefix + "frequent").Add(frequent);
  registry->GetCounter(prefix + "and_word_ops").Add(and_word_ops);
  registry->GetCounter(prefix + "prefix_hits").Add(prefix_hits);
  registry->GetCounter(prefix + "prefix_misses").Add(prefix_misses);
  registry->GetGauge(prefix + "millis").Set(millis);
  registry->GetGauge(prefix + "count_millis").Set(count_millis);
}

void MiningStats::PublishTo(obs::MetricsRegistry* registry) const {
  for (const Pass& pass : passes) pass.PublishTo(registry);
  registry->GetCounter("mine.runs").Add(1);
  registry->GetCounter("mine.total_frequent").Add(total_frequent);
  registry->GetCounter("mine.total_frequent_ge2").Add(total_frequent_ge2);
  registry->GetCounter("mine.and_word_ops").Add(and_word_ops);
  registry->GetCounter("mine.prefix_hits").Add(prefix_hits);
  registry->GetCounter("mine.prefix_misses").Add(prefix_misses);
  registry->GetGauge("mine.total_millis").Set(total_millis);
  registry->GetGauge("mine.threads").Set(static_cast<double>(threads));
}

MiningStats MiningStats::FromMetrics(const obs::MetricsSnapshot& snapshot) {
  const auto counter = [&snapshot](const std::string& name) -> uint64_t {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  const auto gauge = [&snapshot](const std::string& name) -> double {
    const auto it = snapshot.gauges.find(name);
    return it == snapshot.gauges.end() ? 0.0 : it->second;
  };
  MiningStats stats;
  // Passes mirror the mining loop's structure: pass 1 exists when it had
  // candidates, pass k >= 2 only when pass k-1 produced frequent itemsets.
  // The guard also keeps an FP-Growth run's delta (where pass counters may
  // exist at zero from an earlier Apriori run in the process) pass-free.
  size_t previous_frequent = 0;
  for (size_t k = 1;; ++k) {
    const std::string prefix = StrFormat("mine.pass.k%zu.", k);
    const auto it = snapshot.counters.find(prefix + "candidates");
    if (it == snapshot.counters.end()) break;
    if (k == 1 ? it->second == 0 : previous_frequent == 0) break;
    Pass pass;
    pass.k = k;
    pass.candidates = static_cast<size_t>(it->second);
    pass.filtered_candidates = static_cast<size_t>(counter(prefix + "filtered"));
    pass.frequent = static_cast<size_t>(counter(prefix + "frequent"));
    pass.and_word_ops = counter(prefix + "and_word_ops");
    pass.prefix_hits = counter(prefix + "prefix_hits");
    pass.prefix_misses = counter(prefix + "prefix_misses");
    pass.millis = gauge(prefix + "millis");
    pass.count_millis = gauge(prefix + "count_millis");
    previous_frequent = pass.frequent;
    stats.passes.push_back(pass);
  }
  stats.total_frequent = static_cast<size_t>(counter("mine.total_frequent"));
  stats.total_frequent_ge2 =
      static_cast<size_t>(counter("mine.total_frequent_ge2"));
  stats.and_word_ops = counter("mine.and_word_ops");
  stats.prefix_hits = counter("mine.prefix_hits");
  stats.prefix_misses = counter("mine.prefix_misses");
  stats.total_millis = gauge("mine.total_millis");
  const auto threads_it = snapshot.gauges.find("mine.threads");
  if (threads_it != snapshot.gauges.end()) {
    stats.threads = static_cast<size_t>(threads_it->second);
  }
  return stats;
}

AprioriResult::AprioriResult(std::vector<FrequentItemset> itemsets,
                             MiningStats stats)
    : itemsets_(std::move(itemsets)), stats_(std::move(stats)) {
  support_index_.reserve(itemsets_.size());
  for (const FrequentItemset& fi : itemsets_) {
    support_index_.emplace(fi.items, fi.support);
  }
}

std::optional<uint32_t> AprioriResult::SupportOf(const Itemset& set) const {
  const auto it = support_index_.find(set);
  if (it == support_index_.end()) return std::nullopt;
  return it->second;
}

std::vector<FrequentItemset> AprioriResult::OfSize(size_t k) const {
  std::vector<FrequentItemset> out;
  for (const FrequentItemset& fi : itemsets_) {
    if (fi.items.size() == k) out.push_back(fi);
  }
  return out;
}

size_t AprioriResult::MaxItemsetSize() const {
  size_t max_size = 0;
  for (const FrequentItemset& fi : itemsets_) {
    max_size = std::max(max_size, fi.items.size());
  }
  return max_size;
}

size_t AprioriResult::CountAtLeast(size_t min_size) const {
  size_t count = 0;
  for (const FrequentItemset& fi : itemsets_) {
    if (fi.items.size() >= min_size) ++count;
  }
  return count;
}

namespace {

/// apriori_gen of Agrawal & Srikant: join L_{k-1} with itself on a shared
/// (k-2)-prefix, then prune candidates with an infrequent (k-1)-subset.
std::vector<Itemset> GenerateCandidates(
    const std::vector<FrequentItemset>& previous,
    const std::unordered_map<Itemset, uint32_t, ItemsetHash, ItemsetEq>&
        previous_index) {
  std::vector<Itemset> candidates;
  std::vector<ItemId> subset;  // Reused lookup key; no per-probe allocation.
  for (size_t i = 0; i < previous.size(); ++i) {
    const auto& a = previous[i].items.items();
    for (size_t j = i + 1; j < previous.size(); ++j) {
      const auto& b = previous[j].items.items();
      // Join step: first k-2 items equal, last items differ. `previous` is
      // lexicographically sorted, so a < b and a.back() != b.back() implies
      // the join produces each candidate exactly once.
      bool prefix_equal = true;
      for (size_t t = 0; t + 1 < a.size(); ++t) {
        if (a[t] != b[t]) {
          prefix_equal = false;
          break;
        }
      }
      if (!prefix_equal) break;  // Sorted order: no later j can match.

      // Prune step: every (k-1)-subset must be frequent. The candidate is
      // a + {b.back()}, so the subsets dropping its last two positions are
      // b and a — frequent by construction; only subsets dropping a prefix
      // position need a lookup.
      bool all_subsets_frequent = true;
      for (size_t t = 0; t + 1 < a.size() && all_subsets_frequent; ++t) {
        subset.clear();
        for (size_t u = 0; u < a.size(); ++u) {
          if (u != t) subset.push_back(a[u]);
        }
        subset.push_back(b.back());
        all_subsets_frequent =
            previous_index.find(subset) != previous_index.end();
      }
      if (all_subsets_frequent) {
        candidates.push_back(previous[i].items.With(b.back()));
      }
    }
  }
  return candidates;
}

/// Supports of every candidate. Serial below a small cutover; otherwise
/// the bitmap's word range is partitioned across the pool's workers, each
/// worker fills its own count vector, and the partials are summed at this
/// barrier. The sums are exact, so the result never depends on the
/// partitioning or on scheduling.
///
/// `counters` holds one PrefixSupportCounter per worker, owned by the
/// caller so the prefix buffers survive across passes; worker `chunk` only
/// ever touches counters[chunk] (the ThreadPool contract guarantees one
/// chunk index per worker invocation). With prefix_cache off the original
/// naive per-candidate SupportOfWords path runs instead.
std::vector<uint32_t> CountSupports(const TransactionDb& db,
                                    const std::vector<Itemset>& candidates,
                                    ThreadPool* pool, bool prefix_cache,
                                    std::vector<PrefixSupportCounter>* counters,
                                    SupportCountStats* stats) {
  std::vector<uint32_t> totals(candidates.size(), 0);
  const size_t words = db.NumWords();
  // Below a few words (256 transactions) per worker the fork-join overhead
  // dominates the popcounts.
  const bool serial = pool->num_threads() <= 1 || candidates.empty() ||
                      words < 4 * pool->num_threads();
  if (serial) {
    if (prefix_cache) {
      (*counters)[0].Count(db, candidates, 0, words, totals.data(), stats);
    } else {
      for (size_t c = 0; c < candidates.size(); ++c) {
        totals[c] = db.SupportOf(candidates[c]);
      }
    }
    return totals;
  }

  std::vector<std::vector<uint32_t>> partials(pool->num_threads());
  std::vector<SupportCountStats> chunk_stats(pool->num_threads());
  pool->ParallelForChunks(
      0, words, [&](size_t word_begin, size_t word_end, size_t chunk) {
        std::vector<uint32_t>& counts = partials[chunk];
        counts.assign(candidates.size(), 0);
        if (prefix_cache) {
          (*counters)[chunk].Count(db, candidates, word_begin, word_end,
                                   counts.data(), &chunk_stats[chunk]);
        } else {
          for (size_t c = 0; c < candidates.size(); ++c) {
            counts[c] = db.SupportOfWords(candidates[c], word_begin, word_end);
          }
        }
      });
  for (const std::vector<uint32_t>& counts : partials) {
    for (size_t c = 0; c < counts.size(); ++c) totals[c] += counts[c];
  }
  if (stats != nullptr) {
    for (const SupportCountStats& s : chunk_stats) stats->Add(s);
  }
  return totals;
}

}  // namespace

Result<AprioriResult> MineApriori(const TransactionDb& db,
                                  const AprioriOptions& options) {
  if (!(options.min_support > 0.0) || options.min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  if (db.NumTransactions() == 0) {
    return Status::InvalidArgument("transaction database is empty");
  }

  // The paper (and classic Apriori) uses support >= minsup, with the
  // threshold expressed in transactions.
  const uint32_t min_count = static_cast<uint32_t>(std::max<double>(
      1.0,
      std::ceil(options.min_support *
                static_cast<double>(db.NumTransactions()) -
                1e-9)));

  obs::Tracer& tracer = obs::Tracer::Global();
  obs::Tracer::Span mine_span = tracer.StartSpan("mine/apriori");

  Stopwatch total_watch;
  MiningStats stats;
  std::vector<FrequentItemset> all_frequent;

  ThreadPool pool(ResolveParallelism(options.parallelism));
  stats.threads = pool.num_threads();
  mine_span.SetAttr("threads", static_cast<double>(pool.num_threads()));

  // One prefix counter per worker, reused across passes so the buffers
  // stay allocated; worker i only touches counters[i].
  std::vector<PrefixSupportCounter> counters(pool.num_threads());

  // Pass 1: large 1-predicate sets, counted like every later pass.
  Stopwatch pass_watch;
  Stopwatch count_watch;
  obs::Tracer::Span pass1_span = tracer.StartSpan("mine/pass/k=1");
  std::vector<Itemset> singles;
  singles.reserve(db.NumItems());
  for (ItemId item = 0; item < db.NumItems(); ++item) {
    singles.push_back(Itemset{item});
  }
  SupportCountStats count_stats;
  std::vector<uint32_t> single_supports;
  count_watch.Restart();
  {
    obs::Tracer::Span count_span = tracer.StartSpan("mine/support/k=1");
    count_span.SetAttr("candidates", static_cast<double>(singles.size()));
    single_supports = CountSupports(db, singles, &pool, options.prefix_cache,
                                    &counters, &count_stats);
  }
  double count_millis = count_watch.ElapsedMillis();
  std::vector<FrequentItemset> current;
  for (ItemId item = 0; item < db.NumItems(); ++item) {
    if (single_supports[item] >= min_count) {
      current.push_back({std::move(singles[item]), single_supports[item]});
    }
  }
  {
    MiningStats::Pass pass;
    pass.k = 1;
    pass.candidates = db.NumItems();
    pass.frequent = current.size();
    pass.millis = pass_watch.LapMillis();
    pass.count_millis = count_millis;
    pass.and_word_ops = count_stats.and_word_ops;
    pass.prefix_hits = count_stats.prefix_hits;
    pass.prefix_misses = count_stats.prefix_misses;
    stats.passes.push_back(pass);
    pass1_span.SetAttr("candidates", static_cast<double>(pass.candidates));
    pass1_span.SetAttr("frequent", static_cast<double>(pass.frequent));
  }
  pass1_span.End();
  all_frequent.insert(all_frequent.end(), current.begin(), current.end());

  std::unordered_map<Itemset, uint32_t, ItemsetHash, ItemsetEq> current_index;
  for (const FrequentItemset& fi : current) {
    current_index.emplace(fi.items, fi.support);
  }

  for (size_t k = 2; !current.empty(); ++k) {
    if (options.max_itemset_size != 0 && k > options.max_itemset_size) break;
    obs::Tracer::Span pass_span =
        tracer.StartSpan(StrFormat("mine/pass/k=%zu", k));

    std::vector<Itemset> candidates;
    {
      obs::Tracer::Span gen_span =
          tracer.StartSpan(StrFormat("mine/candidate_gen/k=%zu", k));
      candidates = GenerateCandidates(current, current_index);
    }
    const size_t raw_candidates = candidates.size();

    // The paper's extra step: at k == 2 drop pairs hitting a constraint
    // (well-known dependencies for KC, same feature type for KC+).
    size_t filtered = 0;
    if (k == 2 && !options.filters.empty()) {
      obs::Tracer::Span filter_span = tracer.StartSpan("mine/filter/k=2");
      auto is_blocked = [&options](const Itemset& pair) {
        for (const CandidateFilter* filter : options.filters) {
          if (filter->PrunePair(pair[0], pair[1])) return true;
        }
        return false;
      };
      const auto new_end =
          std::remove_if(candidates.begin(), candidates.end(), is_blocked);
      filtered = static_cast<size_t>(candidates.end() - new_end);
      candidates.erase(new_end, candidates.end());
      filter_span.SetAttr("filtered", static_cast<double>(filtered));
    }

    // Counting via the vertical bitmap columns, word-partitioned across
    // the pool's workers.
    count_watch.Restart();
    count_stats = SupportCountStats{};
    std::vector<uint32_t> supports;
    {
      obs::Tracer::Span count_span =
          tracer.StartSpan(StrFormat("mine/support/k=%zu", k));
      count_span.SetAttr("candidates", static_cast<double>(candidates.size()));
      supports = CountSupports(db, candidates, &pool, options.prefix_cache,
                               &counters, &count_stats);
    }
    count_millis = count_watch.ElapsedMillis();
    std::vector<FrequentItemset> next;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (supports[c] >= min_count) {
        next.push_back({std::move(candidates[c]), supports[c]});
      }
    }
    std::sort(next.begin(), next.end(),
              [](const FrequentItemset& a, const FrequentItemset& b) {
                return a.items < b.items;
              });

    {
      MiningStats::Pass pass;
      pass.k = k;
      pass.candidates = raw_candidates;
      pass.filtered_candidates = filtered;
      pass.frequent = next.size();
      pass.millis = pass_watch.LapMillis();
      pass.count_millis = count_millis;
      pass.and_word_ops = count_stats.and_word_ops;
      pass.prefix_hits = count_stats.prefix_hits;
      pass.prefix_misses = count_stats.prefix_misses;
      stats.passes.push_back(pass);
      pass_span.SetAttr("candidates", static_cast<double>(pass.candidates));
      pass_span.SetAttr("frequent", static_cast<double>(pass.frequent));
    }
    all_frequent.insert(all_frequent.end(), next.begin(), next.end());

    current = std::move(next);
    current_index.clear();
    for (const FrequentItemset& fi : current) {
      current_index.emplace(fi.items, fi.support);
    }
  }

  stats.total_frequent = all_frequent.size();
  for (const FrequentItemset& fi : all_frequent) {
    if (fi.items.size() >= 2) ++stats.total_frequent_ge2;
  }
  for (const MiningStats::Pass& pass : stats.passes) {
    stats.and_word_ops += pass.and_word_ops;
    stats.prefix_hits += pass.prefix_hits;
    stats.prefix_misses += pass.prefix_misses;
  }
  stats.total_millis = total_watch.ElapsedMillis();
  // Publish before the run span closes so the `mine/apriori` span's
  // counter-delta attachment covers the whole run.
  stats.PublishTo(&obs::MetricsRegistry::Global());
  return AprioriResult(std::move(all_frequent), std::move(stats));
}

Result<AprioriResult> MineApriori(const TransactionDb& db,
                                  double min_support) {
  AprioriOptions options;
  options.min_support = min_support;
  return MineApriori(db, options);
}

Result<AprioriResult> MineAprioriKC(const TransactionDb& db,
                                    double min_support,
                                    const PairBlocklistFilter& dependencies) {
  AprioriOptions options;
  options.min_support = min_support;
  options.filters.push_back(&dependencies);
  return MineApriori(db, options);
}

Result<AprioriResult> MineAprioriKCPlus(
    const TransactionDb& db, double min_support,
    const PairBlocklistFilter* dependencies) {
  AprioriOptions options;
  options.min_support = min_support;
  const SameKeyFilter same_key(db);
  options.filters.push_back(&same_key);
  if (dependencies != nullptr) options.filters.push_back(dependencies);
  return MineApriori(db, options);
}

}  // namespace core
}  // namespace sfpm
