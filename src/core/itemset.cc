#include "core/itemset.h"

namespace sfpm {
namespace core {

Itemset Itemset::Union(const Itemset& other) const {
  std::vector<ItemId> merged;
  merged.reserve(items_.size() + other.items_.size());
  std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                 other.items_.end(), std::back_inserter(merged));
  Itemset out;
  out.items_ = std::move(merged);  // Already sorted and unique.
  return out;
}

Itemset Itemset::Difference(const Itemset& other) const {
  std::vector<ItemId> diff;
  std::set_difference(items_.begin(), items_.end(), other.items_.begin(),
                      other.items_.end(), std::back_inserter(diff));
  Itemset out;
  out.items_ = std::move(diff);
  return out;
}

Itemset Itemset::With(ItemId item) const {
  Itemset out = *this;
  const auto it =
      std::lower_bound(out.items_.begin(), out.items_.end(), item);
  if (it == out.items_.end() || *it != item) out.items_.insert(it, item);
  return out;
}

Itemset Itemset::Without(ItemId item) const {
  Itemset out = *this;
  const auto it =
      std::lower_bound(out.items_.begin(), out.items_.end(), item);
  if (it != out.items_.end() && *it == item) out.items_.erase(it);
  return out;
}

std::vector<Itemset> Itemset::AllButOneSubsets() const {
  std::vector<Itemset> subsets;
  subsets.reserve(items_.size());
  for (ItemId item : items_) subsets.push_back(Without(item));
  return subsets;
}

std::string Itemset::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(items_[i]);
  }
  out += '}';
  return out;
}

}  // namespace core
}  // namespace sfpm
