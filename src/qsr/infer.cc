#include "qsr/infer.h"

#include <cassert>

namespace sfpm {
namespace qsr {

void Rcc8PairStore::Set(uint64_t a, uint64_t b, Rcc8 rel) {
  assert(a < adjacency_.size() && b < adjacency_.size() && a != b);
  adjacency_[b].push_back(Rcc8PivotEdge{a, rel, false});
  adjacency_[a].push_back(Rcc8PivotEdge{b, Rcc8Converse(rel), true});
  ++num_pairs_;
}

void Rcc8CrossStore::SetCross(uint64_t ref, uint64_t cand, Rcc8 rel) {
  cross_[cand].push_back(Rcc8PivotEdge{ref, rel, false});
  ++num_cross_;
}

void Rcc8CrossStore::SetRefPair(uint64_t a, uint64_t b, Rcc8 rel) {
  assert(a != b && !HasRefPair(a, b));
  ref_pairs_[a].push_back(Rcc8PivotEdge{b, rel, false});
  ref_pairs_[b].push_back(Rcc8PivotEdge{a, Rcc8Converse(rel), true});
  ++num_ref_pairs_;
}

const std::vector<Rcc8PivotEdge>* Rcc8CrossStore::CrossOf(
    uint64_t cand) const {
  const auto it = cross_.find(cand);
  return it == cross_.end() ? nullptr : &it->second;
}

const std::vector<Rcc8PivotEdge>* Rcc8CrossStore::RefPairsOf(
    uint64_t ref) const {
  const auto it = ref_pairs_.find(ref);
  return it == ref_pairs_.end() ? nullptr : &it->second;
}

bool Rcc8CrossStore::HasRefPair(uint64_t a, uint64_t b) const {
  const auto it = ref_pairs_.find(a);
  if (it == ref_pairs_.end()) return false;
  for (const Rcc8PivotEdge& edge : it->second) {
    if (edge.pivot == b) return true;
  }
  return false;
}

Rcc8Deduction ClusterInference::Deduce(uint64_t candidate) const {
  Rcc8Deduction out;

  // Reference-pivot tier: exact prepare-phase relations (the row's own
  // reference) and compositions through other references.
  const std::vector<Rcc8PivotEdge>* cross =
      cross_ == nullptr ? nullptr : cross_->CrossOf(candidate);
  if (cross != nullptr) {
    const std::vector<Rcc8PivotEdge>* ref_pairs = cross_->RefPairsOf(ref_id_);
    for (const Rcc8PivotEdge& edge : *cross) {
      if (edge.pivot == ref_id_) {
        // R(ref -> candidate) itself was computed in the prepare phase:
        // not a composition, the exact engine relation.
        out.set &= Rcc8Set(edge.rel);
        ++out.pivots_used;
        continue;
      }
      if (ref_pairs == nullptr) continue;
      for (const Rcc8PivotEdge& rr : *ref_pairs) {
        if (rr.pivot != edge.pivot) continue;
        out.set &= Rcc8Compose(Rcc8Set(rr.rel), Rcc8Set(edge.rel));
        ++out.pivots_used;
        if (rr.via_converse) ++out.converse_hits;
        break;
      }
      if (out.set.IsEmpty()) return out;
    }
  }

  // Candidate-pivot tier: compositions through this row's already-decided
  // candidates.
  if (store_ == nullptr || known_.empty()) return out;
  for (const Rcc8PivotEdge& edge : store_->Neighbors(candidate)) {
    const auto it = known_.find(edge.pivot);
    if (it == known_.end()) continue;
    out.set &= Rcc8Compose(Rcc8Set(it->second), Rcc8Set(edge.rel));
    ++out.pivots_used;
    if (edge.via_converse) ++out.converse_hits;
    // No singleton early-exit: a later pivot that empties the set exposes
    // a soundness violation the caller must handle by falling back, not a
    // decision.
    if (out.set.IsEmpty()) break;
  }
  return out;
}

}  // namespace qsr
}  // namespace sfpm
