#include "qsr/direction.h"

#include <cmath>

#include "geom/algorithms.h"

namespace sfpm {
namespace qsr {

const char* CardinalDirectionName(CardinalDirection dir) {
  switch (dir) {
    case CardinalDirection::kNorth:
      return "north";
    case CardinalDirection::kNorthEast:
      return "northEast";
    case CardinalDirection::kEast:
      return "east";
    case CardinalDirection::kSouthEast:
      return "southEast";
    case CardinalDirection::kSouth:
      return "south";
    case CardinalDirection::kSouthWest:
      return "southWest";
    case CardinalDirection::kWest:
      return "west";
    case CardinalDirection::kNorthWest:
      return "northWest";
    case CardinalDirection::kSame:
      return "same";
  }
  return "unknown";
}

CardinalDirection Opposite(CardinalDirection dir) {
  switch (dir) {
    case CardinalDirection::kNorth:
      return CardinalDirection::kSouth;
    case CardinalDirection::kNorthEast:
      return CardinalDirection::kSouthWest;
    case CardinalDirection::kEast:
      return CardinalDirection::kWest;
    case CardinalDirection::kSouthEast:
      return CardinalDirection::kNorthWest;
    case CardinalDirection::kSouth:
      return CardinalDirection::kNorth;
    case CardinalDirection::kSouthWest:
      return CardinalDirection::kNorthEast;
    case CardinalDirection::kWest:
      return CardinalDirection::kEast;
    case CardinalDirection::kNorthWest:
      return CardinalDirection::kSouthEast;
    case CardinalDirection::kSame:
      return CardinalDirection::kSame;
  }
  return CardinalDirection::kSame;
}

CardinalDirection DirectionBetween(const geom::Point& from,
                                   const geom::Point& to) {
  const double dx = to.x - from.x;
  const double dy = to.y - from.y;
  if (dx == 0.0 && dy == 0.0) return CardinalDirection::kSame;

  // Azimuth measured clockwise from north, in [0, 360).
  double azimuth = std::atan2(dx, dy) * 180.0 / M_PI;
  if (azimuth < 0.0) azimuth += 360.0;

  // Eight 45-degree cones centred on the compass directions; sector 0
  // (north) covers [-22.5, 22.5).
  const int sector = static_cast<int>(std::floor((azimuth + 22.5) / 45.0)) % 8;
  static constexpr CardinalDirection kSectors[8] = {
      CardinalDirection::kNorth,     CardinalDirection::kNorthEast,
      CardinalDirection::kEast,      CardinalDirection::kSouthEast,
      CardinalDirection::kSouth,     CardinalDirection::kSouthWest,
      CardinalDirection::kWest,      CardinalDirection::kNorthWest,
  };
  return kSectors[sector];
}

CardinalDirection DirectionBetween(const geom::Geometry& from,
                                   const geom::Geometry& to) {
  return DirectionBetween(geom::Centroid(from), geom::Centroid(to));
}

}  // namespace qsr
}  // namespace sfpm
