#ifndef SFPM_QSR_TOPOLOGICAL_H_
#define SFPM_QSR_TOPOLOGICAL_H_

#include <string>

#include "geom/geometry.h"
#include "relate/intersection_matrix.h"

namespace sfpm {
namespace qsr {

/// \brief The qualitative topological relations of the 9-intersection model
/// used by the paper (Egenhofer & Franzosa): contains, within, touches,
/// crosses, covers, coveredBy, overlaps, equals, disjoint.
///
/// The contains/covers (and within/coveredBy) split follows Egenhofer's
/// region semantics: *contains* means the contained geometry does not touch
/// the container's boundary; *covers* means it does. `kIntersects` is a
/// catch-all for the rare mixed-dimension configurations (e.g. a line with
/// one endpoint inside an area and the rest of it on the boundary) that
/// match none of the nine named relations.
enum class TopologicalRelation {
  kDisjoint,
  kTouches,
  kOverlaps,
  kEquals,
  kContains,
  kWithin,
  kCovers,
  kCoveredBy,
  kCrosses,
  kIntersects,
};

/// Stable lower-camel name ("coveredBy", "disjoint", ...), matching the
/// predicate spelling used in the paper's rules.
const char* TopologicalRelationName(TopologicalRelation rel);

/// The relation of B to A given the relation of A to B.
TopologicalRelation Converse(TopologicalRelation rel);

/// \brief Maps a DE-9IM matrix (plus operand dimensions) to the canonical
/// qualitative relation. Exactly one relation is returned per matrix.
TopologicalRelation ClassifyMatrix(const relate::IntersectionMatrix& m,
                                   int dim_a, int dim_b);

/// Computes Relate(a, b) and classifies it.
TopologicalRelation ClassifyTopological(const geom::Geometry& a,
                                        const geom::Geometry& b);

}  // namespace qsr
}  // namespace sfpm

#endif  // SFPM_QSR_TOPOLOGICAL_H_
