#ifndef SFPM_QSR_INFER_H_
#define SFPM_QSR_INFER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "qsr/rcc8.h"

namespace sfpm {
namespace qsr {

/// \brief One adjacency entry of Rcc8PairStore: a known relation between
/// `pivot` and the candidate whose list holds the edge, oriented
/// pivot-to-candidate so it can be composed directly after a known
/// reference-to-pivot relation.
struct Rcc8PivotEdge {
  uint64_t pivot = 0;
  Rcc8 rel = Rcc8::kDC;  ///< R(pivot -> candidate).
  /// True when `rel` is the Rcc8Converse of the stored direction — the
  /// free half of the unordered pair (each pair is computed once; the
  /// reverse orientation costs nothing).
  bool via_converse = false;
};

/// \brief An immutable-after-build store of known RCC8 relations between
/// the features of one layer, laid out as adjacency lists so a deduction
/// touches O(degree) edges rather than O(n) pairs.
///
/// The extraction inference tier builds one store per relevant layer in
/// the serial prepare phase (see extractor.cc), then the parallel row
/// workers read it concurrently: every accessor is const and touches only
/// state frozen at build time. Because the store is per-extractor state,
/// it shards for free under tile-sharded extraction (docs/SHARDING.md):
/// each tile stage builds stores over its own halo sub-layers. A tile
/// may hold fewer pivots than the full run and so deduce less, but every
/// deduction that does fire agrees with the relate engine (the
/// relate_inferred oracle's invariant), so sharded outputs stay
/// byte-identical either way.
///
/// Each unordered pair is Set() once; both orientations become edges, the
/// reverse one via Rcc8Converse with `via_converse` marking it so the
/// converse-symmetry savings are observable.
class Rcc8PairStore {
 public:
  explicit Rcc8PairStore(size_t num_features)
      : adjacency_(num_features), eligible_(num_features, 0) {}

  size_t NumFeatures() const { return adjacency_.size(); }

  /// Unordered pairs recorded so far (each contributes two edges).
  size_t NumPairs() const { return num_pairs_; }

  /// Records R(a -> b) = rel. Call at most once per unordered pair;
  /// build-time only (not thread-safe against concurrent readers).
  void Set(uint64_t a, uint64_t b, Rcc8 rel);

  /// All known edges into `candidate`, each oriented pivot-to-candidate.
  const std::vector<Rcc8PivotEdge>& Neighbors(uint64_t candidate) const {
    return adjacency_[candidate];
  }

  /// \name Inference admission
  /// RCC8's axioms hold for valid regions; an invalid geometry (self
  /// intersections, degenerate rings) can make the engine's classification
  /// non-compositional. The builder admits only validated areal features
  /// and the extractor consults the flag before deducing.
  /// @{
  void SetEligible(uint64_t id, bool eligible) {
    eligible_[id] = eligible ? 1 : 0;
  }
  bool Eligible(uint64_t id) const { return eligible_[id] != 0; }
  /// @}

 private:
  std::vector<std::vector<Rcc8PivotEdge>> adjacency_;
  std::vector<uint8_t> eligible_;
  size_t num_pairs_ = 0;
};

/// \brief An immutable-after-build store of relations that cross the
/// reference/candidate layer boundary, enabling deductions that pivot
/// through *other reference features* rather than through candidates.
///
/// Two edge families, both oriented for direct composition:
///  - cross edges: R(reference -> candidate) for envelope-containment
///    pairs, computed once in the prepare phase. Each such pair is by
///    construction a candidate of its own reference's row, so the row
///    reuses the stored relation instead of re-invoking the engine —
///    the prepare call substitutes one-for-one for the row call.
///  - reference pairs: R(ref_a -> ref_b) for the pairs some deduction can
///    actually use (a cross edge of a shared candidate). Stored once per
///    unordered pair; the reverse orientation is derived via Rcc8Converse.
///
/// The payoff: when reference A holds candidate C strictly inside
/// (R(A, C) = NTPPi) and reference B merely touches A (R(B, A) = EC),
/// Compose(EC, NTPPi) = {DC} decides B's row for C with no engine call —
/// one reference pair amortizes across every candidate the two rows
/// share. Built serially, read concurrently (const accessors only).
class Rcc8CrossStore {
 public:
  /// Records R(ref -> cand) = rel. Build-time only.
  void SetCross(uint64_t ref, uint64_t cand, Rcc8 rel);

  /// Records R(a -> b) = rel for two reference features. Both orientations
  /// become edges (the reverse via Rcc8Converse). Build-time only; call at
  /// most once per unordered pair.
  void SetRefPair(uint64_t a, uint64_t b, Rcc8 rel);

  /// Known reference edges into `cand` (pivot = a reference id), or null.
  const std::vector<Rcc8PivotEdge>* CrossOf(uint64_t cand) const;

  /// Known reference-to-reference edges out of `ref` (each edge.rel is
  /// R(ref -> edge.pivot)), or null when none are recorded.
  const std::vector<Rcc8PivotEdge>* RefPairsOf(uint64_t ref) const;

  /// True when the unordered reference pair {a, b} is already recorded.
  bool HasRefPair(uint64_t a, uint64_t b) const;

  size_t NumCross() const { return num_cross_; }
  size_t NumRefPairs() const { return num_ref_pairs_; }

 private:
  std::unordered_map<uint64_t, std::vector<Rcc8PivotEdge>> cross_;
  std::unordered_map<uint64_t, std::vector<Rcc8PivotEdge>> ref_pairs_;
  size_t num_cross_ = 0;
  size_t num_ref_pairs_ = 0;
};

/// \brief Outcome of one ClusterInference::Deduce call. `set` is the
/// intersection of the compositions through every usable pivot: a
/// singleton decides the pair without the engine; the empty set signals a
/// contradiction (possible only when a tolerance artifact broke
/// compositional soundness) and callers must fall back to the engine.
struct Rcc8Deduction {
  Rcc8Set set = Rcc8Set::Universal();
  size_t pivots_used = 0;
  /// Pivot edges consumed in the converse orientation.
  size_t converse_hits = 0;
};

/// \brief Row-local RCC8 inference over one reference feature's candidate
/// cluster: Record() feeds reference-to-candidate relations as they become
/// known (engine-computed or deduced), Deduce() composes them with the
/// pair store's candidate-to-candidate edges to decide later pairs
/// algebraically.
///
/// The deduction rule is the algebra's composition axiom: given
/// R(ref, p) and R(p, c), R(ref, c) must lie in Compose(R(ref, p),
/// R(p, c)); intersecting over every known pivot p tightens the set, and
/// a singleton is a decision. One instance per (row, layer); never shared
/// across threads.
class ClusterInference {
 public:
  /// `store` may be null (every Deduce returns Universal).
  explicit ClusterInference(const Rcc8PairStore* store)
      : ClusterInference(store, nullptr, 0) {}

  /// With a cross store, Deduce additionally pivots through other
  /// reference features: a cross edge naming this row's own reference
  /// (`ref_id`) is the pair's exact prepare-phase relation; any other
  /// cross edge composes after the matching reference pair. Either store
  /// may be null independently.
  ClusterInference(const Rcc8PairStore* store, const Rcc8CrossStore* cross,
                   uint64_t ref_id)
      : store_(store), cross_(cross), ref_id_(ref_id) {}

  /// Records R(reference -> candidate) = rel.
  void Record(uint64_t candidate, Rcc8 rel) { known_[candidate] = rel; }

  size_t NumKnown() const { return known_.size(); }

  /// Composes every known reference-to-pivot relation with the store's
  /// pivot-to-candidate edge and intersects the results.
  Rcc8Deduction Deduce(uint64_t candidate) const;

 private:
  const Rcc8PairStore* store_;
  const Rcc8CrossStore* cross_;
  uint64_t ref_id_;
  std::unordered_map<uint64_t, Rcc8> known_;
};

}  // namespace qsr
}  // namespace sfpm

#endif  // SFPM_QSR_INFER_H_
