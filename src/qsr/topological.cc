#include "qsr/topological.h"

#include "relate/relate.h"

namespace sfpm {
namespace qsr {

using relate::IntersectionMatrix;

const char* TopologicalRelationName(TopologicalRelation rel) {
  switch (rel) {
    case TopologicalRelation::kDisjoint:
      return "disjoint";
    case TopologicalRelation::kTouches:
      return "touches";
    case TopologicalRelation::kOverlaps:
      return "overlaps";
    case TopologicalRelation::kEquals:
      return "equals";
    case TopologicalRelation::kContains:
      return "contains";
    case TopologicalRelation::kWithin:
      return "within";
    case TopologicalRelation::kCovers:
      return "covers";
    case TopologicalRelation::kCoveredBy:
      return "coveredBy";
    case TopologicalRelation::kCrosses:
      return "crosses";
    case TopologicalRelation::kIntersects:
      return "intersects";
  }
  return "unknown";
}

TopologicalRelation Converse(TopologicalRelation rel) {
  switch (rel) {
    case TopologicalRelation::kContains:
      return TopologicalRelation::kWithin;
    case TopologicalRelation::kWithin:
      return TopologicalRelation::kContains;
    case TopologicalRelation::kCovers:
      return TopologicalRelation::kCoveredBy;
    case TopologicalRelation::kCoveredBy:
      return TopologicalRelation::kCovers;
    default:
      return rel;  // The remaining relations are symmetric.
  }
}

TopologicalRelation ClassifyMatrix(const IntersectionMatrix& m, int dim_a,
                                   int dim_b) {
  if (m.Disjoint()) return TopologicalRelation::kDisjoint;
  if (m.Equals(dim_a, dim_b)) return TopologicalRelation::kEquals;

  const bool boundary_contact =
      m.at(IntersectionMatrix::kBoundary, IntersectionMatrix::kBoundary) >= 0;

  if (m.Within()) {
    return boundary_contact ? TopologicalRelation::kCoveredBy
                            : TopologicalRelation::kWithin;
  }
  if (m.Contains()) {
    return boundary_contact ? TopologicalRelation::kCovers
                            : TopologicalRelation::kContains;
  }
  // When the interiors do not meet, boundary-only containment (a point on
  // a polygon's boundary, a line along it) classifies as *touches*: every
  // CoveredBy/Covers matrix with an empty interior-interior cell also
  // matches a Touches pattern, and the meet reading is the conventional
  // one for such configurations.
  if (m.Crosses(dim_a, dim_b)) return TopologicalRelation::kCrosses;
  if (m.Touches(dim_a, dim_b)) return TopologicalRelation::kTouches;
  if (m.Overlaps(dim_a, dim_b)) return TopologicalRelation::kOverlaps;
  return TopologicalRelation::kIntersects;
}

TopologicalRelation ClassifyTopological(const geom::Geometry& a,
                                        const geom::Geometry& b) {
  return ClassifyMatrix(relate::Relate(a, b), a.Dimension(), b.Dimension());
}

}  // namespace qsr
}  // namespace sfpm
