#include "qsr/rcc8.h"

#include <bit>
#include <cassert>
#include <deque>

namespace sfpm {
namespace qsr {

namespace {

constexpr uint8_t kDCb = 1u << 0;
constexpr uint8_t kECb = 1u << 1;
constexpr uint8_t kPOb = 1u << 2;
constexpr uint8_t kTPPb = 1u << 3;
constexpr uint8_t kNTPPb = 1u << 4;
constexpr uint8_t kTPPib = 1u << 5;
constexpr uint8_t kNTPPib = 1u << 6;
constexpr uint8_t kEQb = 1u << 7;
constexpr uint8_t kAll = 0xFF;

/// The RCC8 composition table (Randell, Cui & Cohn 1992; as tabulated by
/// Cohn, Bennett, Gooday & Gotts 1997). Row: relation of A to B; column:
/// relation of B to C; entry: possible relations of A to C.
constexpr uint8_t kComposition[kNumRcc8][kNumRcc8] = {
    // A DC B
    {
        kAll,                                   // DC ; DC
        kDCb | kECb | kPOb | kTPPb | kNTPPb,    // DC ; EC
        kDCb | kECb | kPOb | kTPPb | kNTPPb,    // DC ; PO
        kDCb | kECb | kPOb | kTPPb | kNTPPb,    // DC ; TPP
        kDCb | kECb | kPOb | kTPPb | kNTPPb,    // DC ; NTPP
        kDCb,                                   // DC ; TPPi
        kDCb,                                   // DC ; NTPPi
        kDCb,                                   // DC ; EQ
    },
    // A EC B
    {
        kDCb | kECb | kPOb | kTPPib | kNTPPib,       // EC ; DC
        kDCb | kECb | kPOb | kTPPb | kTPPib | kEQb,  // EC ; EC
        kDCb | kECb | kPOb | kTPPb | kNTPPb,         // EC ; PO
        kECb | kPOb | kTPPb | kNTPPb,                // EC ; TPP
        kPOb | kTPPb | kNTPPb,                       // EC ; NTPP
        kDCb | kECb,                                 // EC ; TPPi
        kDCb,                                        // EC ; NTPPi
        kECb,                                        // EC ; EQ
    },
    // A PO B
    {
        kDCb | kECb | kPOb | kTPPib | kNTPPib,  // PO ; DC
        kDCb | kECb | kPOb | kTPPib | kNTPPib,  // PO ; EC
        kAll,                                   // PO ; PO
        kPOb | kTPPb | kNTPPb,                  // PO ; TPP
        kPOb | kTPPb | kNTPPb,                  // PO ; NTPP
        kDCb | kECb | kPOb | kTPPib | kNTPPib,  // PO ; TPPi
        kDCb | kECb | kPOb | kTPPib | kNTPPib,  // PO ; NTPPi
        kPOb,                                   // PO ; EQ
    },
    // A TPP B
    {
        kDCb,                                         // TPP ; DC
        kDCb | kECb,                                  // TPP ; EC
        kDCb | kECb | kPOb | kTPPb | kNTPPb,          // TPP ; PO
        kTPPb | kNTPPb,                               // TPP ; TPP
        kNTPPb,                                       // TPP ; NTPP
        kDCb | kECb | kPOb | kTPPb | kTPPib | kEQb,   // TPP ; TPPi
        kDCb | kECb | kPOb | kTPPib | kNTPPib,        // TPP ; NTPPi
        kTPPb,                                        // TPP ; EQ
    },
    // A NTPP B
    {
        kDCb,                                 // NTPP ; DC
        kDCb,                                 // NTPP ; EC
        kDCb | kECb | kPOb | kTPPb | kNTPPb,  // NTPP ; PO
        kNTPPb,                               // NTPP ; TPP
        kNTPPb,                               // NTPP ; NTPP
        kDCb | kECb | kPOb | kTPPb | kNTPPb,  // NTPP ; TPPi
        kAll,                                 // NTPP ; NTPPi
        kNTPPb,                               // NTPP ; EQ
    },
    // A TPPi B
    {
        kDCb | kECb | kPOb | kTPPib | kNTPPib,  // TPPi ; DC
        kECb | kPOb | kTPPib | kNTPPib,         // TPPi ; EC
        kPOb | kTPPib | kNTPPib,                // TPPi ; PO
        kPOb | kTPPb | kTPPib | kEQb,           // TPPi ; TPP
        kPOb | kTPPb | kNTPPb,                  // TPPi ; NTPP
        kTPPib | kNTPPib,                       // TPPi ; TPPi
        kNTPPib,                                // TPPi ; NTPPi
        kTPPib,                                 // TPPi ; EQ
    },
    // A NTPPi B
    {
        kDCb | kECb | kPOb | kTPPib | kNTPPib,           // NTPPi ; DC
        kPOb | kTPPib | kNTPPib,                         // NTPPi ; EC
        kPOb | kTPPib | kNTPPib,                         // NTPPi ; PO
        kPOb | kTPPib | kNTPPib,                         // NTPPi ; TPP
        kPOb | kTPPb | kNTPPb | kTPPib | kNTPPib | kEQb, // NTPPi ; NTPP
        kNTPPib,                                         // NTPPi ; TPPi
        kNTPPib,                                         // NTPPi ; NTPPi
        kNTPPib,                                         // NTPPi ; EQ
    },
    // A EQ B: composition is the column relation.
    {
        kDCb, kECb, kPOb, kTPPb, kNTPPb, kTPPib, kNTPPib, kEQb,
    },
};

}  // namespace

int Rcc8Set::Count() const { return std::popcount(bits_); }

Rcc8 Rcc8Set::Single() const {
  assert(IsSingleton());
  return static_cast<Rcc8>(std::countr_zero(bits_));
}

std::string Rcc8Set::ToString() const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < kNumRcc8; ++i) {
    if (bits_ & (1u << i)) {
      if (!first) out += ", ";
      out += Rcc8Name(static_cast<Rcc8>(i));
      first = false;
    }
  }
  out += '}';
  return out;
}

const char* Rcc8Name(Rcc8 rel) {
  switch (rel) {
    case Rcc8::kDC:
      return "DC";
    case Rcc8::kEC:
      return "EC";
    case Rcc8::kPO:
      return "PO";
    case Rcc8::kTPP:
      return "TPP";
    case Rcc8::kNTPP:
      return "NTPP";
    case Rcc8::kTPPi:
      return "TPPi";
    case Rcc8::kNTPPi:
      return "NTPPi";
    case Rcc8::kEQ:
      return "EQ";
  }
  return "?";
}

Rcc8 Rcc8Converse(Rcc8 rel) {
  switch (rel) {
    case Rcc8::kTPP:
      return Rcc8::kTPPi;
    case Rcc8::kTPPi:
      return Rcc8::kTPP;
    case Rcc8::kNTPP:
      return Rcc8::kNTPPi;
    case Rcc8::kNTPPi:
      return Rcc8::kNTPP;
    default:
      return rel;  // DC, EC, PO, EQ are symmetric.
  }
}

Rcc8Set Rcc8Converse(Rcc8Set set) {
  Rcc8Set out;
  for (int i = 0; i < kNumRcc8; ++i) {
    const Rcc8 rel = static_cast<Rcc8>(i);
    if (set.Contains(rel)) out |= Rcc8Set(Rcc8Converse(rel));
  }
  return out;
}

Rcc8Set Rcc8Compose(Rcc8 a, Rcc8 b) {
  return Rcc8Set(
      kComposition[static_cast<uint8_t>(a)][static_cast<uint8_t>(b)]);
}

Rcc8Set Rcc8ComposeUncached(Rcc8Set a, Rcc8Set b) {
  Rcc8Set out;
  for (int i = 0; i < kNumRcc8; ++i) {
    if (!a.Contains(static_cast<Rcc8>(i))) continue;
    for (int j = 0; j < kNumRcc8; ++j) {
      if (!b.Contains(static_cast<Rcc8>(j))) continue;
      out |= Rcc8Compose(static_cast<Rcc8>(i), static_cast<Rcc8>(j));
    }
  }
  return out;
}

Rcc8Set Rcc8Compose(Rcc8Set a, Rcc8Set b) {
  // All 65536 set pairs, closed over once (64 KiB). Propagate composes
  // sets on every triangle visit and the extraction inference tier on
  // every pivot, so the 8x8 member loop is worth folding away.
  static const std::array<std::array<uint8_t, 256>, 256>* table = [] {
    auto* t = new std::array<std::array<uint8_t, 256>, 256>();
    for (int x = 0; x < 256; ++x) {
      for (int y = 0; y < 256; ++y) {
        (*t)[x][y] = Rcc8ComposeUncached(Rcc8Set(static_cast<uint8_t>(x)),
                                         Rcc8Set(static_cast<uint8_t>(y)))
                         .bits();
      }
    }
    return t;
  }();
  return Rcc8Set((*table)[a.bits()][b.bits()]);
}

Result<Rcc8> Rcc8FromTopological(TopologicalRelation rel) {
  switch (rel) {
    case TopologicalRelation::kDisjoint:
      return Rcc8::kDC;
    case TopologicalRelation::kTouches:
      return Rcc8::kEC;
    case TopologicalRelation::kOverlaps:
      return Rcc8::kPO;
    case TopologicalRelation::kEquals:
      return Rcc8::kEQ;
    case TopologicalRelation::kCoveredBy:
      return Rcc8::kTPP;
    case TopologicalRelation::kWithin:
      return Rcc8::kNTPP;
    case TopologicalRelation::kCovers:
      return Rcc8::kTPPi;
    case TopologicalRelation::kContains:
      return Rcc8::kNTPPi;
    case TopologicalRelation::kCrosses:
    case TopologicalRelation::kIntersects:
      return Status::InvalidArgument(
          std::string("no RCC8 counterpart for region relation '") +
          TopologicalRelationName(rel) + "'");
  }
  return Status::InvalidArgument("unknown topological relation");
}

TopologicalRelation TopologicalFromRcc8(Rcc8 rel) {
  switch (rel) {
    case Rcc8::kDC:
      return TopologicalRelation::kDisjoint;
    case Rcc8::kEC:
      return TopologicalRelation::kTouches;
    case Rcc8::kPO:
      return TopologicalRelation::kOverlaps;
    case Rcc8::kTPP:
      return TopologicalRelation::kCoveredBy;
    case Rcc8::kNTPP:
      return TopologicalRelation::kWithin;
    case Rcc8::kTPPi:
      return TopologicalRelation::kCovers;
    case Rcc8::kNTPPi:
      return TopologicalRelation::kContains;
    case Rcc8::kEQ:
      return TopologicalRelation::kEquals;
  }
  return TopologicalRelation::kIntersects;
}

Result<Rcc8> Rcc8Relate(const geom::Geometry& a, const geom::Geometry& b) {
  if (a.Dimension() != 2 || b.Dimension() != 2) {
    return Status::InvalidArgument("RCC8 is defined over regions (areas)");
  }
  return Rcc8FromTopological(ClassifyTopological(a, b));
}

Rcc8Network::Rcc8Network(size_t num_variables)
    : n_(num_variables), constraints_(n_ * n_, Rcc8Set::Universal()) {
  for (size_t i = 0; i < n_; ++i) {
    constraints_[Index(i, i)] = Rcc8Set(Rcc8::kEQ);
  }
}

Status Rcc8Network::Constrain(size_t i, size_t j, Rcc8Set rel) {
  if (i >= n_ || j >= n_) {
    return Status::InvalidArgument("variable index out of range");
  }
  constraints_[Index(i, j)] &= rel;
  constraints_[Index(j, i)] &= Rcc8Converse(rel);
  if (constraints_[Index(i, j)].IsEmpty()) inconsistent_ = true;
  return Status::OK();
}

Rcc8Set Rcc8Network::At(size_t i, size_t j) const {
  assert(i < n_ && j < n_);
  return constraints_[Index(i, j)];
}

bool Rcc8Network::Propagate(PropagateMode mode) {
  if (inconsistent_) return false;

  // PC-2-style worklist over edges; refining (i, j) re-queues every
  // triangle that mentions it.
  const bool skip_universal = mode == PropagateMode::kSkipUniversal;
  std::deque<std::pair<size_t, size_t>> queue;
  std::vector<bool> queued(n_ * n_, false);
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = 0; j < n_; ++j) {
      if (i != j &&
          !(skip_universal &&
            constraints_[Index(i, j)] == Rcc8Set::Universal())) {
        queue.emplace_back(i, j);
        queued[Index(i, j)] = true;
      }
    }
  }

  while (!queue.empty()) {
    const auto [i, j] = queue.front();
    queue.pop_front();
    queued[Index(i, j)] = false;
    // A queued edge can have relaxed back to universal only if it was
    // never refined; composing through the full set cannot tighten any
    // triangle, so popping it is a no-op.
    if (skip_universal && constraints_[Index(i, j)] == Rcc8Set::Universal()) {
      continue;
    }

    for (size_t k = 0; k < n_; ++k) {
      if (k == i || k == j) continue;

      // Refine (i, k) through j.
      Rcc8Set refined =
          constraints_[Index(i, k)] &
          Rcc8Compose(constraints_[Index(i, j)], constraints_[Index(j, k)]);
      if (refined != constraints_[Index(i, k)]) {
        constraints_[Index(i, k)] = refined;
        constraints_[Index(k, i)] = Rcc8Converse(refined);
        if (refined.IsEmpty()) {
          inconsistent_ = true;
          return false;
        }
        if (!queued[Index(i, k)]) {
          queue.emplace_back(i, k);
          queued[Index(i, k)] = true;
        }
      }

      // Refine (k, j) through i.
      refined =
          constraints_[Index(k, j)] &
          Rcc8Compose(constraints_[Index(k, i)], constraints_[Index(i, j)]);
      if (refined != constraints_[Index(k, j)]) {
        constraints_[Index(k, j)] = refined;
        constraints_[Index(j, k)] = Rcc8Converse(refined);
        if (refined.IsEmpty()) {
          inconsistent_ = true;
          return false;
        }
        if (!queued[Index(k, j)]) {
          queue.emplace_back(k, j);
          queued[Index(k, j)] = true;
        }
      }
    }
  }
  return true;
}

bool Rcc8Network::IsAtomic() const {
  for (size_t i = 0; i < n_; ++i) {
    for (size_t j = i + 1; j < n_; ++j) {
      if (!constraints_[Index(i, j)].IsSingleton()) return false;
    }
  }
  return true;
}

namespace {

/// Depth-first refinement: pick the smallest non-singleton constraint, try
/// each member, propagate, recurse.
bool SolveRecursive(Rcc8Network* network) {
  if (!network->Propagate()) return false;

  size_t best_i = 0, best_j = 0;
  int best_count = kNumRcc8 + 1;
  const size_t n = network->NumVariables();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const int count = network->At(i, j).Count();
      if (count > 1 && count < best_count) {
        best_count = count;
        best_i = i;
        best_j = j;
      }
    }
  }
  if (best_count == kNumRcc8 + 1) {
    // Atomic and path consistent: consistent (PC is complete for atomic
    // RCC8 networks).
    return true;
  }

  const Rcc8Set candidates = network->At(best_i, best_j);
  for (int r = 0; r < kNumRcc8; ++r) {
    const Rcc8 rel = static_cast<Rcc8>(r);
    if (!candidates.Contains(rel)) continue;
    Rcc8Network attempt = *network;
    const Status st = attempt.Constrain(best_i, best_j, Rcc8Set(rel));
    (void)st;  // Indices are in range by construction.
    if (SolveRecursive(&attempt)) {
      *network = std::move(attempt);
      return true;
    }
  }
  return false;
}

}  // namespace

Result<Rcc8Network> SolveScenario(const Rcc8Network& network) {
  Rcc8Network scenario = network;
  if (!SolveRecursive(&scenario)) {
    return Status::NotFound("RCC8 network is unsatisfiable");
  }
  return scenario;
}

bool IsSatisfiable(const Rcc8Network& network) {
  return SolveScenario(network).ok();
}

}  // namespace qsr
}  // namespace sfpm
