#ifndef SFPM_QSR_RCC8_H_
#define SFPM_QSR_RCC8_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.h"
#include "qsr/topological.h"
#include "util/status.h"

namespace sfpm {
namespace qsr {

/// \brief The eight base relations of the Region Connection Calculus RCC8
/// (Randell, Cui & Cohn), the canonical qualitative spatial reasoning
/// algebra over regions.
enum class Rcc8 : uint8_t {
  kDC = 0,     ///< Disconnected.
  kEC = 1,     ///< Externally connected (touch).
  kPO = 2,     ///< Partial overlap.
  kTPP = 3,    ///< Tangential proper part.
  kNTPP = 4,   ///< Non-tangential proper part.
  kTPPi = 5,   ///< Inverse of TPP.
  kNTPPi = 6,  ///< Inverse of NTPP.
  kEQ = 7,     ///< Equal.
};

constexpr int kNumRcc8 = 8;

/// \brief A disjunction of RCC8 base relations, encoded as an 8-bit set.
/// The empty set signals an inconsistent constraint; the full set is the
/// universal (uninformative) relation.
class Rcc8Set {
 public:
  constexpr Rcc8Set() : bits_(0) {}
  constexpr explicit Rcc8Set(uint8_t bits) : bits_(bits) {}
  constexpr Rcc8Set(Rcc8 rel)  // NOLINT(runtime/explicit)
      : bits_(static_cast<uint8_t>(1u << static_cast<uint8_t>(rel))) {}

  static constexpr Rcc8Set Universal() { return Rcc8Set(0xFF); }
  static constexpr Rcc8Set Empty() { return Rcc8Set(); }

  constexpr bool Contains(Rcc8 rel) const {
    return bits_ & (1u << static_cast<uint8_t>(rel));
  }
  constexpr bool IsEmpty() const { return bits_ == 0; }
  constexpr bool IsSingleton() const {
    return bits_ != 0 && (bits_ & (bits_ - 1)) == 0;
  }
  int Count() const;

  /// The single member; precondition IsSingleton().
  Rcc8 Single() const;

  constexpr Rcc8Set operator|(Rcc8Set o) const {
    return Rcc8Set(static_cast<uint8_t>(bits_ | o.bits_));
  }
  constexpr Rcc8Set operator&(Rcc8Set o) const {
    return Rcc8Set(static_cast<uint8_t>(bits_ & o.bits_));
  }
  Rcc8Set& operator|=(Rcc8Set o) {
    bits_ |= o.bits_;
    return *this;
  }
  Rcc8Set& operator&=(Rcc8Set o) {
    bits_ &= o.bits_;
    return *this;
  }
  constexpr bool operator==(const Rcc8Set& o) const { return bits_ == o.bits_; }

  uint8_t bits() const { return bits_; }

  /// Renders as "{EC, PO}" etc.
  std::string ToString() const;

 private:
  uint8_t bits_;
};

/// Stable name ("DC", "NTPPi", ...).
const char* Rcc8Name(Rcc8 rel);

/// The converse relation (relation of B to A given A to B).
Rcc8 Rcc8Converse(Rcc8 rel);

/// Converse of every member.
Rcc8Set Rcc8Converse(Rcc8Set set);

/// \brief Composition of base relations per the RCC8 composition table:
/// the possible relations of (A, C) given A `a` B and B `b` C.
Rcc8Set Rcc8Compose(Rcc8 a, Rcc8 b);

/// Set-lifted composition: union over member pairs. Served from a
/// precomputed 256x256 table (one lookup per call); the extraction
/// inference tier and Rcc8Network::Propagate both sit on this.
Rcc8Set Rcc8Compose(Rcc8Set a, Rcc8Set b);

/// The unmemoized set-lifted composition (the 8x8 member-pair loop).
/// Reference implementation for the table-consistency tests and the
/// memoization micro-bench; callers want Rcc8Compose.
Rcc8Set Rcc8ComposeUncached(Rcc8Set a, Rcc8Set b);

/// \brief Maps the paper's 9-intersection relation between two regions to
/// an RCC8 base relation. Returns InvalidArgument for relations that have
/// no region-region counterpart (crosses, generic intersects).
Result<Rcc8> Rcc8FromTopological(TopologicalRelation rel);

/// The 9-intersection relation corresponding to an RCC8 base relation.
TopologicalRelation TopologicalFromRcc8(Rcc8 rel);

/// Computes the RCC8 relation between two areal geometries (polygons or
/// multipolygons). Returns InvalidArgument for non-areal operands.
Result<Rcc8> Rcc8Relate(const geom::Geometry& a, const geom::Geometry& b);

/// How Rcc8Network::Propagate seeds and drains its worklist.
enum class PropagateMode {
  /// Skip universal edges: composing through the full set is always a
  /// no-op (Compose(U, b) == U for nonempty b), so edges still at the
  /// universal relation are neither seeded nor processed. This is exact —
  /// every refinement the exhaustive mode finds goes through at least one
  /// non-universal edge — and turns the seed cost from O(n^2) into
  /// O(stated constraints) on sparse networks.
  kSkipUniversal,
  /// The original PC-2 seeding: every ordered edge enqueued, every popped
  /// edge processed. Reference mode for the equivalence tests and the
  /// early-exit micro-bench.
  kExhaustive,
};

/// \brief A binary RCC8 constraint network over `n` region variables,
/// solved to path consistency.
///
/// Unstated constraints default to the universal relation. `Propagate`
/// runs the standard PC-2 style algebraic-closure loop; a network whose
/// propagation empties some constraint is inconsistent.
class Rcc8Network {
 public:
  explicit Rcc8Network(size_t num_variables);

  size_t NumVariables() const { return n_; }

  /// Intersects the (i, j) constraint with `rel` (and (j, i) with its
  /// converse). Returns InvalidArgument on out-of-range variables.
  Status Constrain(size_t i, size_t j, Rcc8Set rel);

  /// Current constraint between i and j.
  Rcc8Set At(size_t i, size_t j) const;

  /// \brief Enforces algebraic closure. Returns false when the network is
  /// detected inconsistent (some constraint became empty). Both modes
  /// compute the identical closure; see PropagateMode.
  bool Propagate(PropagateMode mode = PropagateMode::kSkipUniversal);

  /// True when a previous Propagate emptied a constraint.
  bool IsInconsistent() const { return inconsistent_; }

  /// True when every constraint is a single base relation.
  bool IsAtomic() const;

 private:
  size_t Index(size_t i, size_t j) const { return i * n_ + j; }

  size_t n_;
  std::vector<Rcc8Set> constraints_;
  bool inconsistent_ = false;
};

/// \brief Decides exact satisfiability of an RCC8 network by backtracking
/// search over base relations with path-consistency propagation at every
/// step (path consistency alone is complete for atomic RCC8 networks,
/// which makes the leaves of the search decisive).
///
/// Returns a consistent *scenario* — a refinement of the input where every
/// constraint is a single base relation — or NotFound when the network is
/// unsatisfiable.
Result<Rcc8Network> SolveScenario(const Rcc8Network& network);

/// True when the network has at least one consistent scenario.
bool IsSatisfiable(const Rcc8Network& network);

}  // namespace qsr
}  // namespace sfpm

#endif  // SFPM_QSR_RCC8_H_
