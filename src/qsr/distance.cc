#include "qsr/distance.h"

#include <limits>
#include <unordered_set>

#include "geom/algorithms.h"

namespace sfpm {
namespace qsr {

Result<DistanceQuantizer> DistanceQuantizer::Create(
    std::vector<std::pair<std::string, double>> bounds,
    std::string beyond_name) {
  std::vector<Band> bands;
  std::unordered_set<std::string> names;
  double prev = 0.0;
  for (auto& [name, upper] : bounds) {
    if (name.empty()) {
      return Status::InvalidArgument("distance band name must not be empty");
    }
    if (!(upper > prev)) {
      return Status::InvalidArgument(
          "distance band bounds must be positive and strictly ascending");
    }
    if (!names.insert(name).second) {
      return Status::InvalidArgument("duplicate distance band name '" + name +
                                     "'");
    }
    bands.push_back({std::move(name), upper});
    prev = bands.back().upper_bound;
  }
  if (beyond_name.empty()) {
    return Status::InvalidArgument("distance band name must not be empty");
  }
  if (!names.insert(beyond_name).second) {
    return Status::InvalidArgument("duplicate distance band name '" +
                                   beyond_name + "'");
  }
  bands.push_back(
      {std::move(beyond_name), std::numeric_limits<double>::infinity()});
  return DistanceQuantizer(std::move(bands));
}

DistanceQuantizer DistanceQuantizer::Default() {
  Result<DistanceQuantizer> q =
      Create({{"veryClose", 500.0}, {"close", 2000.0}}, "far");
  return q.value();
}

size_t DistanceQuantizer::BandIndex(double distance) const {
  for (size_t i = 0; i + 1 < bands_.size(); ++i) {
    if (distance < bands_[i].upper_bound) return i;
  }
  return bands_.size() - 1;
}

const std::string& DistanceQuantizer::BandName(double distance) const {
  return bands_[BandIndex(distance)].name;
}

const std::string& DistanceQuantizer::Classify(const geom::Geometry& a,
                                               const geom::Geometry& b) const {
  return BandName(geom::Distance(a, b));
}

}  // namespace qsr
}  // namespace sfpm
