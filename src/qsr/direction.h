#ifndef SFPM_QSR_DIRECTION_H_
#define SFPM_QSR_DIRECTION_H_

#include "geom/geometry.h"

namespace sfpm {
namespace qsr {

/// \brief Cone-based cardinal direction relations (the "order" relation
/// family of Güting's taxonomy cited by the paper).
enum class CardinalDirection {
  kNorth,
  kNorthEast,
  kEast,
  kSouthEast,
  kSouth,
  kSouthWest,
  kWest,
  kNorthWest,
  kSame,  ///< Coincident reference points; no direction defined.
};

/// Stable name ("north", "northEast", ...).
const char* CardinalDirectionName(CardinalDirection dir);

/// The direction of travel reversed (north <-> south, ...).
CardinalDirection Opposite(CardinalDirection dir);

/// \brief Direction of `to` as seen from `from`, using eight 45-degree
/// cones centred on the compass directions (y grows northward).
CardinalDirection DirectionBetween(const geom::Point& from,
                                   const geom::Point& to);

/// Direction between geometry centroids.
CardinalDirection DirectionBetween(const geom::Geometry& from,
                                   const geom::Geometry& to);

}  // namespace qsr
}  // namespace sfpm

#endif  // SFPM_QSR_DIRECTION_H_
