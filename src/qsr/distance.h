#ifndef SFPM_QSR_DISTANCE_H_
#define SFPM_QSR_DISTANCE_H_

#include <string>
#include <vector>

#include "geom/geometry.h"
#include "util/status.h"

namespace sfpm {
namespace qsr {

/// \brief Quantizes metric distances into named qualitative bands
/// (e.g. veryClose / close / far), the distance-relation flavour of
/// qualitative spatial reasoning used in the paper's police-center example.
///
/// Bands are half-open: band i covers [upper_{i-1}, upper_i), the final
/// band covers [upper_last, +inf).
class DistanceQuantizer {
 public:
  struct Band {
    std::string name;
    double upper_bound;  ///< Exclusive; +inf for the last band.
  };

  /// \param bounds ascending (name, exclusive upper bound) pairs
  /// \param beyond_name name of the unbounded final band
  ///
  /// Returns InvalidArgument when bounds are not strictly ascending and
  /// positive, or when any name is empty or duplicated.
  static Result<DistanceQuantizer> Create(
      std::vector<std::pair<std::string, double>> bounds,
      std::string beyond_name);

  /// The quantizer from the paper's running example:
  /// veryClose < 500, close < 2000, far beyond.
  static DistanceQuantizer Default();

  /// Band index for a distance (>= 0).
  size_t BandIndex(double distance) const;

  /// Band name for a distance.
  const std::string& BandName(double distance) const;

  /// Qualitative distance between two geometries (minimum distance).
  const std::string& Classify(const geom::Geometry& a,
                              const geom::Geometry& b) const;

  const std::vector<Band>& bands() const { return bands_; }

 private:
  explicit DistanceQuantizer(std::vector<Band> bands)
      : bands_(std::move(bands)) {}

  std::vector<Band> bands_;
};

}  // namespace qsr
}  // namespace sfpm

#endif  // SFPM_QSR_DISTANCE_H_
