#ifndef SFPM_FEATURE_EXTRACTOR_H_
#define SFPM_FEATURE_EXTRACTOR_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "feature/feature.h"
#include "feature/predicate_table.h"
#include "obs/metrics.h"
#include "qsr/direction.h"
#include "qsr/distance.h"
#include "qsr/topological.h"
#include "relate/prepared.h"

namespace sfpm {
namespace feature {

/// \brief What the extractor computes between each reference feature and
/// the relevant layers.
struct ExtractorOptions {
  /// Emit topological predicates (contains_slum, touches_slum, ...) for
  /// every non-disjoint pair found by the R-tree envelope join.
  bool topological = true;

  /// When set, emit qualitative distance predicates (veryClose_slum,
  /// far_slum, ...) using these bands. The unbounded final band is emitted
  /// when at least one instance of the type falls beyond the last finite
  /// bound, matching the paper's farFrom_PoliceCenter semantics.
  const qsr::DistanceQuantizer* distance_bands = nullptr;

  /// Feature types the distance bands apply to; empty means every relevant
  /// layer. Distance relations are usually only meaningful for a few types
  /// (police centers in the paper's example) while topological relations
  /// cover the rest.
  std::set<std::string> distance_types;

  /// Emit cone-based direction predicates (north_slum, ...) between the
  /// reference centroid and each relevant instance centroid.
  bool directions = false;

  /// Copy the reference features' non-spatial attributes into the table as
  /// attribute predicates (murderRate=high).
  bool reference_attributes = true;

  /// Emit predicates at *instance* granularity (contains_slum159 instead
  /// of contains_slum): the feature type is suffixed with the feature id.
  /// Combine with feature::InstanceTaxonomy + feature::GeneralizeTable to
  /// reproduce the paper's multi-level granularity workflow.
  bool instance_granularity = false;

  /// Worker threads for the filter-and-refine join: reference features are
  /// partitioned across workers, each with its own prepared-geometry
  /// cache, and the per-row results are merged in reference order, so the
  /// output table is bit-identical at every setting. 0 = auto (the
  /// SFPM_THREADS environment variable, else hardware concurrency);
  /// 1 = serial. See docs/ARCHITECTURE.md, "Threading model".
  size_t parallelism = 0;

  /// Use PreparedGeometry's certified relate fast path. The fast path
  /// returns the identical DE-9IM matrix, so this only exists for A/B
  /// benchmarking and differential tests; leave it on.
  bool fast_relate = true;
};

/// \brief Observability counters of one Extract run, for `sfpm_cli
/// --stats` and the benches. Merged from per-row counters in reference
/// order, so every field except `total_millis` is deterministic at every
/// thread count.
///
/// Every Extract run also publishes these fields to
/// obs::MetricsRegistry::Global() under the `extract.*` / `relate.*`
/// instrument names; the struct is the deterministic accumulation path and
/// `FromMetrics` is the thin view back out of the registry.
struct ExtractionStats {
  size_t rows = 0;              ///< Reference features processed.
  size_t threads = 0;           ///< Resolved worker count.
  /// Envelope-join candidates refined by the DE-9IM engine (the number of
  /// Relate calls issued by the topological extractor).
  uint64_t envelope_candidates = 0;
  relate::RelateStats relate;   ///< Fast-path outcome counters.
  double total_millis = 0.0;    ///< Wall time of the Extract call.

  std::string ToString() const;

  /// Publishes every field to the registry's `extract.*` / `relate.*`
  /// instruments. Extract calls this once, at the end of the run.
  void PublishTo(obs::MetricsRegistry* registry) const;

  /// Thin view back from the registry: rebuilds the struct from a snapshot
  /// (typically one run's delta), exact field for field, so the legacy
  /// `--stats` text renders byte-identically from the registry.
  static ExtractionStats FromMetrics(const obs::MetricsSnapshot& snapshot);
};

/// \brief Computes the qualitative predicate table (the paper's Table 1)
/// from a reference layer and a set of relevant layers.
///
/// This is the "spatial predicate extraction" phase the paper identifies
/// as the dominant cost of spatial pattern mining. The join is
/// filter-and-refine: the relevant layer's R-tree proposes candidates by
/// envelope, the DE-9IM engine (or exact distance) refines. Rows are
/// independent, so Extract parallelizes over reference features; every
/// layer's lazy R-tree is built up front because Layer::Index() is not
/// safe to first-call concurrently.
class PredicateExtractor {
 public:
  /// \param reference the transaction-defining layer (districts).
  explicit PredicateExtractor(const Layer* reference)
      : reference_(reference) {}

  /// Registers a relevant layer (slums, schools, ...). The layer must
  /// outlive the extractor.
  void AddRelevantLayer(const Layer* layer) { relevant_.push_back(layer); }

  /// Runs the join and builds the table. Rows are named by the reference
  /// layer's "name" attribute when present, else "<type><id>". `stats`,
  /// when non-null, receives the run's counters.
  Result<PredicateTable> Extract(const ExtractorOptions& options,
                                 ExtractionStats* stats = nullptr) const;

 private:
  /// Predicates of one row in emission order — the unit of parallel work.
  /// Replaying drafts row by row reassigns item ids exactly as the serial
  /// single-table path would, which is what makes the parallel output
  /// bit-identical. Counters ride along and are merged in the same order.
  struct RowDraft {
    std::string name;
    std::vector<Predicate> predicates;
    uint64_t envelope_candidates = 0;
    relate::RelateStats relate;
  };

  RowDraft ExtractRow(const Feature& ref,
                      const ExtractorOptions& options) const;
  void ExtractTopological(const relate::PreparedGeometry& ref,
                          const Layer& layer, const ExtractorOptions& options,
                          RowDraft* draft) const;
  void ExtractDistance(const Feature& ref, const Layer& layer,
                       const qsr::DistanceQuantizer& bands,
                       bool instance_granularity,
                       std::vector<Predicate>* out) const;
  void ExtractDirections(const Feature& ref, const Layer& layer,
                         std::vector<Predicate>* out) const;

  const Layer* reference_;
  std::vector<const Layer*> relevant_;
};

}  // namespace feature
}  // namespace sfpm

#endif  // SFPM_FEATURE_EXTRACTOR_H_
