#ifndef SFPM_FEATURE_EXTRACTOR_H_
#define SFPM_FEATURE_EXTRACTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "feature/feature.h"
#include "feature/predicate_table.h"
#include "obs/metrics.h"
#include "qsr/direction.h"
#include "qsr/distance.h"
#include "qsr/infer.h"
#include "qsr/topological.h"
#include "relate/prepared.h"

namespace sfpm {
namespace feature {

/// \brief What the extractor computes between each reference feature and
/// the relevant layers.
struct ExtractorOptions {
  /// Emit topological predicates (contains_slum, touches_slum, ...) for
  /// every non-disjoint pair found by the R-tree envelope join.
  bool topological = true;

  /// When set, emit qualitative distance predicates (veryClose_slum,
  /// far_slum, ...) using these bands. The unbounded final band is emitted
  /// when at least one instance of the type falls beyond the last finite
  /// bound, matching the paper's farFrom_PoliceCenter semantics.
  const qsr::DistanceQuantizer* distance_bands = nullptr;

  /// Feature types the distance bands apply to; empty means every relevant
  /// layer. Distance relations are usually only meaningful for a few types
  /// (police centers in the paper's example) while topological relations
  /// cover the rest.
  std::set<std::string> distance_types;

  /// Emit cone-based direction predicates (north_slum, ...) between the
  /// reference centroid and each relevant instance centroid.
  bool directions = false;

  /// Copy the reference features' non-spatial attributes into the table as
  /// attribute predicates (murderRate=high).
  bool reference_attributes = true;

  /// Emit predicates at *instance* granularity (contains_slum159 instead
  /// of contains_slum): the feature type is suffixed with the feature id.
  /// Combine with feature::InstanceTaxonomy + feature::GeneralizeTable to
  /// reproduce the paper's multi-level granularity workflow.
  bool instance_granularity = false;

  /// Worker threads for the filter-and-refine join: reference features are
  /// partitioned across workers, each with its own prepared-geometry
  /// cache, and the per-row results are merged in reference order, so the
  /// output table is bit-identical at every setting. 0 = auto (the
  /// SFPM_THREADS environment variable, else hardware concurrency);
  /// 1 = serial. See docs/ARCHITECTURE.md, "Threading model".
  size_t parallelism = 0;

  /// Use PreparedGeometry's certified relate fast path. The fast path
  /// returns the identical DE-9IM matrix, so this only exists for A/B
  /// benchmarking and differential tests; leave it on.
  bool fast_relate = true;

  /// Sort each row's envelope-join candidates by feature id before
  /// deciding and emitting. The R-tree returns candidates in traversal
  /// order — a function of the tree's structure — so without this the
  /// per-row emission order (and with it the table's first-appearance
  /// item-id assignment) depends on exactly which features were indexed.
  /// Canonical order makes a row a pure function of its candidate *set*,
  /// which is what lets tile-sharded extraction over halo sub-layers
  /// (feature/window.h) reproduce the full-run bytes. The staged snapshot
  /// pipeline always sets this; the default stays off so legacy CSV-path
  /// outputs keep their historical byte order.
  bool canonical_candidate_order = false;

  /// Use the RCC8 inference tier: before relating the reference against a
  /// candidate, reuse the exact prepare-phase relation or compose
  /// already-known relations through shared pivots (qsr::ClusterInference
  /// over per-layer qsr::Rcc8PairStore / qsr::Rcc8CrossStore, built once
  /// per extractor and reused by every later Extract); a singleton
  /// composition decides the pair without the engine. The emitted
  /// predicates are byte-identical on or off at every thread count — the
  /// flag exists for A/B benchmarking and differential tests; leave it
  /// on. See docs/ARCHITECTURE.md, "Hot paths".
  bool infer_relate = true;
};

/// \brief Observability counters of one Extract run, for `sfpm_cli
/// --stats` and the benches. Merged from per-row counters in reference
/// order, so every field except `total_millis` is deterministic at every
/// thread count.
///
/// Every Extract run also publishes these fields to
/// obs::MetricsRegistry::Global() under the `extract.*` / `relate.*`
/// instrument names; the struct is the deterministic accumulation path and
/// `FromMetrics` is the thin view back out of the registry.
struct ExtractionStats {
  size_t rows = 0;              ///< Reference features processed.
  size_t threads = 0;           ///< Resolved worker count.
  /// Envelope-join candidates refined by the DE-9IM engine (the number of
  /// Relate calls issued by the topological extractor).
  uint64_t envelope_candidates = 0;
  /// Relations in the inference tier's per-layer stores: candidate pairs,
  /// reference-to-candidate cross relations, and reference pairs. Reported
  /// by every inference-enabled run (the stores are cached per extractor).
  uint64_t infer_pivot_pairs = 0;
  /// Engine calls spent building those stores — the inference tier's
  /// one-time prepare cost. Counted apart from `relate.calls` so A/B
  /// comparisons can total them honestly; nonzero only on the run that
  /// built the cache (the first inference-enabled Extract), zero on every
  /// later run of the same extractor.
  uint64_t infer_pivot_calls = 0;
  relate::RelateStats relate;   ///< Fast-path + inference outcome counters.
  double total_millis = 0.0;    ///< Wall time of the Extract call.

  std::string ToString() const;

  /// Publishes every field to the registry's `extract.*` / `relate.*`
  /// instruments. Extract calls this once, at the end of the run.
  void PublishTo(obs::MetricsRegistry* registry) const;

  /// Thin view back from the registry: rebuilds the struct from a snapshot
  /// (typically one run's delta), exact field for field, so the legacy
  /// `--stats` text renders byte-identically from the registry.
  static ExtractionStats FromMetrics(const obs::MetricsSnapshot& snapshot);
};

/// \brief Computes the qualitative predicate table (the paper's Table 1)
/// from a reference layer and a set of relevant layers.
///
/// This is the "spatial predicate extraction" phase the paper identifies
/// as the dominant cost of spatial pattern mining. The join is
/// filter-and-refine: the relevant layer's R-tree proposes candidates by
/// envelope, the DE-9IM engine (or exact distance) refines. Rows are
/// independent, so Extract parallelizes over reference features; every
/// layer's lazy R-tree is built up front because Layer::Index() is not
/// safe to first-call concurrently.
class PredicateExtractor {
 public:
  /// \param reference the transaction-defining layer (districts).
  explicit PredicateExtractor(const Layer* reference)
      : reference_(reference) {}

  /// Movable (the pipeline stores extractors by value); the inference
  /// cache moves along, the mutex is recreated. Not safe concurrently
  /// with Extract, like any move.
  PredicateExtractor(PredicateExtractor&& other) noexcept
      : reference_(other.reference_),
        relevant_(std::move(other.relevant_)),
        infer_state_(std::move(other.infer_state_)) {}

  /// Registers a relevant layer (slums, schools, ...). The layer must
  /// outlive the extractor.
  void AddRelevantLayer(const Layer* layer) { relevant_.push_back(layer); }

  /// Runs the join and builds the table. Rows are named by the reference
  /// layer's "name" attribute when present, else "<type><id>". `stats`,
  /// when non-null, receives the run's counters.
  Result<PredicateTable> Extract(const ExtractorOptions& options,
                                 ExtractionStats* stats = nullptr) const;

 private:
  /// Predicates of one row in emission order — the unit of parallel work.
  /// Replaying drafts row by row reassigns item ids exactly as the serial
  /// single-table path would, which is what makes the parallel output
  /// bit-identical. Counters ride along and are merged in the same order.
  struct RowDraft {
    std::string name;
    std::vector<Predicate> predicates;
    uint64_t envelope_candidates = 0;
    relate::RelateStats relate;
  };

  /// Immutable inputs of the inference tier, built serially in the
  /// prepare phase and read concurrently by every row worker.
  ///
  /// The state depends only on the reference and relevant layers — never
  /// on ExtractorOptions or on any per-row result — and layers are
  /// immutable once handed to the extractor (the same contract
  /// Layer::Prepared() relies on). So the first inference-enabled Extract
  /// builds it and every later Extract on this extractor reuses it: the
  /// pivot-store engine calls (`infer_pivot_calls`) are a one-time
  /// prepare cost, not a per-run tax, and repeated extraction (the serve
  /// pipeline's regime) runs the inference tier for free.
  struct InferState {
    /// One pair store per entry of relevant_, same order.
    std::vector<qsr::Rcc8PairStore> stores;
    /// One cross store (reference-to-candidate relations + the reference
    /// pairs that make them composable) per entry of relevant_.
    std::vector<qsr::Rcc8CrossStore> cross;
    /// Per reference-feature id: valid areal, admitted to inference.
    std::vector<uint8_t> ref_eligible;
    /// Engine calls the build spent (reported by the building run only).
    uint64_t build_calls = 0;
    /// Relations stored across all stores (reported by every run).
    uint64_t num_pairs = 0;
  };

  RowDraft ExtractRow(const Feature& ref, const ExtractorOptions& options,
                      const InferState* infer) const;
  void ExtractTopological(const relate::PreparedGeometry& ref,
                          uint64_t ref_id, const Layer& layer,
                          const ExtractorOptions& options,
                          const qsr::Rcc8PairStore* pairs,
                          const qsr::Rcc8CrossStore* cross, RowDraft* draft)
      const;
  void ExtractDistance(const Feature& ref, const Layer& layer,
                       const qsr::DistanceQuantizer& bands,
                       bool instance_granularity,
                       std::vector<Predicate>* out) const;
  void ExtractDirections(const Feature& ref, const Layer& layer,
                         std::vector<Predicate>* out) const;

  /// Returns the inference-tier state, building it under the lock on the
  /// first inference-enabled Extract. `built_this_run` reports whether
  /// this call paid the build (its engine calls belong to this run's
  /// counters).
  const InferState* InferStateFor(bool* built_this_run) const;

  const Layer* reference_;
  std::vector<const Layer*> relevant_;

  /// Lazily built inference-tier cache; see InferState. Guarded by
  /// infer_mu_ during build, immutable afterwards.
  mutable std::mutex infer_mu_;
  mutable std::unique_ptr<InferState> infer_state_;
};

}  // namespace feature
}  // namespace sfpm

#endif  // SFPM_FEATURE_EXTRACTOR_H_
