#ifndef SFPM_FEATURE_TAXONOMY_H_
#define SFPM_FEATURE_TAXONOMY_H_

#include <map>
#include <string>
#include <vector>

#include "feature/feature.h"
#include "feature/predicate_table.h"
#include "util/status.h"

namespace sfpm {
namespace feature {

/// \brief A concept hierarchy over feature types — the "granularity
/// levels" of the paper (after Han's multiple-level mining, its ref [12]).
///
/// The paper mines at *feature type* granularity: `contains_slum159` and
/// `contains_slum174` both generalize to `contains_slum`, and only then do
/// same-feature-type pairs appear and get filtered. The taxonomy makes
/// that step explicit and repeatable at any level (slum159 -> slum ->
/// informalSettlement -> ...).
///
/// Each type has at most one parent; cycles are rejected.
class Taxonomy {
 public:
  /// Declares `child` IS-A `parent`. Fails with AlreadyExists when the
  /// child already has a different parent, InvalidArgument on cycles or
  /// self-loops.
  Status AddIsA(const std::string& child, const std::string& parent);

  /// Direct parent; NotFound for roots and unknown types.
  Result<std::string> ParentOf(const std::string& type) const;

  /// Ancestors nearest-first (empty for roots/unknown types).
  std::vector<std::string> AncestorsOf(const std::string& type) const;

  /// The topmost ancestor (the type itself when it has no parent).
  std::string RootOf(const std::string& type) const;

  /// Climbs `levels` steps toward the root (stops at the root). Types
  /// unknown to the taxonomy generalize to themselves.
  std::string Generalize(const std::string& type, int levels) const;

  /// Number of declared IS-A edges.
  size_t Size() const { return parent_.size(); }

 private:
  std::map<std::string, std::string> parent_;
};

/// \brief Rewrites a predicate table at a coarser granularity: every
/// spatial predicate's feature type is replaced by
/// `taxonomy.Generalize(type, levels)`, predicates that coincide after
/// generalization merge (a row holds the merged predicate when it held any
/// of the originals), and attribute predicates pass through unchanged.
///
/// Mining the generalized table with the same-feature-type filter is
/// exactly the paper's pipeline for data recorded at instance granularity.
PredicateTable GeneralizeTable(const PredicateTable& table,
                               const Taxonomy& taxonomy, int levels = 1);

/// \brief The taxonomy matching PredicateExtractor's instance granularity:
/// `<type><id>` IS-A `<type>` for every feature of every given layer
/// (slum159 -> slum). One GeneralizeTable step then moves an
/// instance-granularity table to feature-type granularity.
Taxonomy InstanceTaxonomy(const std::vector<const Layer*>& layers);

}  // namespace feature
}  // namespace sfpm

#endif  // SFPM_FEATURE_TAXONOMY_H_
