#include "feature/dependency.h"

namespace sfpm {
namespace feature {

void DependencyRegistry::Add(const std::string& type_a,
                             const std::string& type_b) {
  pairs_.insert(Ordered(type_a, type_b));
}

bool DependencyRegistry::IsDependent(const std::string& type_a,
                                     const std::string& type_b) const {
  return pairs_.count(Ordered(type_a, type_b)) > 0;
}

core::PairBlocklistFilter DependencyRegistry::MakeFilter(
    const core::TransactionDb& db) const {
  std::vector<std::pair<core::ItemId, core::ItemId>> blocked;
  for (core::ItemId a = 0; a < db.NumItems(); ++a) {
    if (db.Key(a).empty()) continue;
    for (core::ItemId b = a + 1; b < db.NumItems(); ++b) {
      if (db.Key(b).empty()) continue;
      if (IsDependent(db.Key(a), db.Key(b))) blocked.emplace_back(a, b);
    }
  }
  return core::PairBlocklistFilter(std::move(blocked));
}

}  // namespace feature
}  // namespace sfpm
