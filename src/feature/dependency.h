#ifndef SFPM_FEATURE_DEPENDENCY_H_
#define SFPM_FEATURE_DEPENDENCY_H_

#include <set>
#include <string>
#include <vector>

#include "core/candidate_filter.h"
#include "core/transaction_db.h"

namespace sfpm {
namespace feature {

/// \brief The paper's background knowledge `phi`: well-known geographic
/// dependencies between feature types (streets have illumination points,
/// every street belongs to a district, ...). Apriori-KC removes every
/// candidate pair whose two items mention a dependent pair of types.
class DependencyRegistry {
 public:
  /// Declares an (unordered) dependency between two feature types.
  void Add(const std::string& type_a, const std::string& type_b);

  /// True when the two types were declared dependent (order-insensitive).
  bool IsDependent(const std::string& type_a, const std::string& type_b) const;

  size_t Size() const { return pairs_.size(); }

  /// \brief Materializes the registry as an item-pair blocklist for `db`:
  /// every pair of items whose keys (feature types) form a dependency.
  /// Items with empty keys are never blocked.
  core::PairBlocklistFilter MakeFilter(const core::TransactionDb& db) const;

 private:
  static std::pair<std::string, std::string> Ordered(const std::string& a,
                                                     const std::string& b) {
    return a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  }

  std::set<std::pair<std::string, std::string>> pairs_;
};

}  // namespace feature
}  // namespace sfpm

#endif  // SFPM_FEATURE_DEPENDENCY_H_
