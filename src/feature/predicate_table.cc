#include "feature/predicate_table.h"

#include <utility>

namespace sfpm {
namespace feature {

Result<PredicateTable> PredicateTable::FromParts(
    std::vector<std::string> row_names, std::vector<Predicate> predicates,
    core::TransactionDb db) {
  if (db.NumTransactions() != row_names.size()) {
    return Status::InvalidArgument(
        "database has " + std::to_string(db.NumTransactions()) +
        " transactions for " + std::to_string(row_names.size()) + " rows");
  }
  if (db.NumItems() != predicates.size()) {
    return Status::InvalidArgument(
        "database has " + std::to_string(db.NumItems()) + " items for " +
        std::to_string(predicates.size()) + " predicates");
  }
  for (size_t i = 0; i < predicates.size(); ++i) {
    const auto id = static_cast<core::ItemId>(i);
    if (db.Label(id) != predicates[i].Label() ||
        db.Key(id) != predicates[i].Key()) {
      return Status::InvalidArgument("item " + std::to_string(i) + " ('" +
                                     db.Label(id) +
                                     "') does not match its predicate ('" +
                                     predicates[i].Label() + "')");
    }
  }
  PredicateTable table;
  table.db_ = std::move(db);
  table.row_names_ = std::move(row_names);
  table.predicates_ = std::move(predicates);
  return table;
}

size_t PredicateTable::AddRow(std::string row_name) {
  row_names_.push_back(std::move(row_name));
  return db_.AddTransaction();
}

core::ItemId PredicateTable::Declare(const Predicate& predicate) {
  const core::ItemId before = static_cast<core::ItemId>(db_.NumItems());
  const core::ItemId item = db_.AddItem(predicate.Label(), predicate.Key());
  if (item == before) predicates_.push_back(predicate);
  return item;
}

Status PredicateTable::Set(size_t row, const Predicate& predicate) {
  if (row >= NumRows()) {
    return Status::OutOfRange("predicate table row out of range");
  }
  return db_.SetItem(row, Declare(predicate));
}

Status PredicateTable::SetSpatial(size_t row, const std::string& relation,
                                  const std::string& feature_type) {
  return Set(row, Predicate::Spatial(relation, feature_type));
}

Status PredicateTable::SetAttribute(size_t row, const std::string& name,
                                    const std::string& value) {
  return Set(row, Predicate::Attribute(name, value));
}

size_t PredicateTable::CountSameFeatureTypePairs() const {
  size_t count = 0;
  for (size_t i = 0; i < predicates_.size(); ++i) {
    for (size_t j = i + 1; j < predicates_.size(); ++j) {
      if (predicates_[i].SameFeatureType(predicates_[j])) ++count;
    }
  }
  return count;
}

std::vector<Predicate> PredicateTable::RowPredicates(size_t row) const {
  std::vector<Predicate> out;
  for (core::ItemId item : db_.TransactionItems(row)) {
    out.push_back(predicates_[item]);
  }
  return out;
}

std::string PredicateTable::ToString() const {
  std::string out;
  for (size_t row = 0; row < NumRows(); ++row) {
    out += row_names_[row];
    out += ": ";
    bool first = true;
    for (core::ItemId item : db_.TransactionItems(row)) {
      if (!first) out += ", ";
      out += db_.Label(item);
      first = false;
    }
    out += '\n';
  }
  return out;
}

}  // namespace feature
}  // namespace sfpm
