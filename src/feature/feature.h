#ifndef SFPM_FEATURE_FEATURE_H_
#define SFPM_FEATURE_FEATURE_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "geom/geometry.h"
#include "index/rtree.h"
#include "relate/prepared.h"
#include "util/status.h"

namespace sfpm {
namespace feature {

/// \brief One geographic object: a geometry plus non-spatial attributes.
///
/// Attributes are string-valued categorical pairs ("murderRate" -> "high");
/// continuous attributes should be discretized before loading, as is usual
/// in spatial association rule mining.
class Feature {
 public:
  Feature(uint64_t id, geom::Geometry geometry,
          std::map<std::string, std::string> attributes = {})
      : id_(id),
        geometry_(std::move(geometry)),
        attributes_(std::move(attributes)) {}

  uint64_t id() const { return id_; }
  const geom::Geometry& geometry() const { return geometry_; }
  const std::map<std::string, std::string>& attributes() const {
    return attributes_;
  }

  /// Value of one attribute, or NotFound.
  Result<std::string> Attribute(const std::string& name) const;

 private:
  uint64_t id_;
  geom::Geometry geometry_;
  std::map<std::string, std::string> attributes_;
};

/// \brief A homogeneous collection of features of one geographic feature
/// type (all districts, all slums, ...), with an R-tree built on demand.
class Layer {
 public:
  /// \param feature_type type name used in predicate labels ("slum").
  /// \param name optional human-readable name; defaults to feature_type.
  explicit Layer(std::string feature_type, std::string name = "");

  const std::string& feature_type() const { return feature_type_; }
  const std::string& name() const { return name_; }

  /// Adds a feature; ids are assigned sequentially from 0.
  uint64_t Add(geom::Geometry geometry,
               std::map<std::string, std::string> attributes = {});

  size_t Size() const { return features_.size(); }
  bool IsEmpty() const { return features_.empty(); }
  const Feature& at(size_t i) const { return features_[i]; }
  const std::vector<Feature>& features() const { return features_; }

  /// Bounding envelope of the whole layer.
  geom::Envelope Bounds() const;

  /// \brief The layer's R-tree (bulk-loaded lazily, invalidated by Add).
  const index::RTree& Index() const;

  /// \brief One prepared geometry per feature, indexed by feature id
  /// (built lazily, invalidated by Add). A layer's features are related
  /// against many reference rows, so their derived linework, probe points
  /// and segment indexes are built once per layer instead of once per
  /// relate call. Like Index(), the first call is not safe to race — warm
  /// it before sharing the layer across threads; afterwards the cache is
  /// immutable and PreparedGeometry's const interface is thread-safe.
  const std::vector<relate::PreparedGeometry>& Prepared() const;

 private:
  std::string feature_type_;
  std::string name_;
  std::vector<Feature> features_;
  mutable index::RTree index_;
  mutable bool index_valid_ = false;
  mutable std::vector<relate::PreparedGeometry> prepared_;
  mutable bool prepared_valid_ = false;
};

/// \brief Non-owning, ordered view over a set of layers — the input shape
/// of multi-layer consumers (the co-location miner). Cheap to copy;
/// the referenced layers must outlive the view. Constructible from a
/// brace list of layer pointers (`{&a, &b}`) or from a vector of layers
/// via `Of`.
class LayerSet {
 public:
  LayerSet() = default;
  LayerSet(std::initializer_list<const Layer*> layers) : layers_(layers) {}
  explicit LayerSet(std::vector<const Layer*> layers)
      : layers_(std::move(layers)) {}

  /// View over owned layers (the address of each element is taken; the
  /// vector must not reallocate while the view is in use).
  static LayerSet Of(const std::vector<Layer>& layers) {
    std::vector<const Layer*> ptrs;
    ptrs.reserve(layers.size());
    for (const Layer& layer : layers) ptrs.push_back(&layer);
    return LayerSet(std::move(ptrs));
  }

  size_t size() const { return layers_.size(); }
  bool empty() const { return layers_.empty(); }
  const Layer& at(size_t i) const { return *layers_[i]; }
  const Layer& operator[](size_t i) const { return *layers_[i]; }

  std::vector<const Layer*>::const_iterator begin() const {
    return layers_.begin();
  }
  std::vector<const Layer*>::const_iterator end() const {
    return layers_.end();
  }

 private:
  std::vector<const Layer*> layers_;
};

}  // namespace feature
}  // namespace sfpm

#endif  // SFPM_FEATURE_FEATURE_H_
