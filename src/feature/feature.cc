#include "feature/feature.h"

namespace sfpm {
namespace feature {

Result<std::string> Feature::Attribute(const std::string& name) const {
  const auto it = attributes_.find(name);
  if (it == attributes_.end()) {
    return Status::NotFound("feature has no attribute '" + name + "'");
  }
  return it->second;
}

Layer::Layer(std::string feature_type, std::string name)
    : feature_type_(std::move(feature_type)),
      name_(name.empty() ? feature_type_ : std::move(name)) {}

uint64_t Layer::Add(geom::Geometry geometry,
                    std::map<std::string, std::string> attributes) {
  const uint64_t id = features_.size();
  features_.emplace_back(id, std::move(geometry), std::move(attributes));
  index_valid_ = false;
  prepared_valid_ = false;
  return id;
}

geom::Envelope Layer::Bounds() const {
  geom::Envelope env;
  for (const Feature& f : features_) {
    env.ExpandToInclude(f.geometry().GetEnvelope());
  }
  return env;
}

const index::RTree& Layer::Index() const {
  if (!index_valid_) {
    std::vector<std::pair<geom::Envelope, uint64_t>> entries;
    entries.reserve(features_.size());
    for (const Feature& f : features_) {
      entries.emplace_back(f.geometry().GetEnvelope(), f.id());
    }
    index_.BulkLoad(std::move(entries));
    index_valid_ = true;
  }
  return index_;
}

const std::vector<relate::PreparedGeometry>& Layer::Prepared() const {
  if (!prepared_valid_) {
    prepared_.clear();
    prepared_.reserve(features_.size());
    for (const Feature& f : features_) {
      prepared_.emplace_back(f.geometry());
    }
    prepared_valid_ = true;
  }
  return prepared_;
}

}  // namespace feature
}  // namespace sfpm
