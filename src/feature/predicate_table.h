#ifndef SFPM_FEATURE_PREDICATE_TABLE_H_
#define SFPM_FEATURE_PREDICATE_TABLE_H_

#include <string>
#include <vector>

#include "core/transaction_db.h"
#include "feature/predicate.h"

namespace sfpm {
namespace feature {

/// \brief The mining input of the paper's Table 1: one row per reference
/// feature (district), one boolean column per predicate.
///
/// A thin, predicate-aware facade over core::TransactionDb: rows carry the
/// reference feature name, items carry the predicate and its feature-type
/// key, so the mining layer's SameKeyFilter implements the paper's
/// same-feature-type pruning without knowing anything about geography.
class PredicateTable {
 public:
  PredicateTable() = default;

  /// Rebuilds a table from its serialized parts (the snapshot store's
  /// deserialization hook). `db` must have one transaction per row name
  /// and one item per predicate, each item labeled/keyed exactly as its
  /// predicate demands.
  static Result<PredicateTable> FromParts(std::vector<std::string> row_names,
                                          std::vector<Predicate> predicates,
                                          core::TransactionDb db);

  /// Opens a row for a reference feature; returns the row index.
  size_t AddRow(std::string row_name);

  /// Registers `predicate` as an item without setting it anywhere, fixing
  /// its item id. Useful to pin the schema before filling rows.
  core::ItemId Declare(const Predicate& predicate);

  /// Marks `predicate` true in `row` (registering the item on first use).
  Status Set(size_t row, const Predicate& predicate);

  /// Convenience: Set(row, Predicate::Spatial(relation, feature_type)).
  Status SetSpatial(size_t row, const std::string& relation,
                    const std::string& feature_type);

  /// Convenience: Set(row, Predicate::Attribute(name, value)).
  Status SetAttribute(size_t row, const std::string& name,
                      const std::string& value);

  size_t NumRows() const { return row_names_.size(); }
  size_t NumPredicates() const { return predicates_.size(); }

  const std::string& RowName(size_t row) const { return row_names_[row]; }
  const Predicate& PredicateAt(core::ItemId item) const {
    return predicates_[item];
  }

  /// Number of unordered predicate pairs sharing a feature type — the
  /// quantity the paper reports per experimental dataset ("9 pairs had the
  /// same feature type").
  size_t CountSameFeatureTypePairs() const;

  /// The predicates present in one row, in item order.
  std::vector<Predicate> RowPredicates(size_t row) const;

  /// The underlying transaction database (items keyed by feature type).
  const core::TransactionDb& db() const { return db_; }

  /// Formats the table like the paper's Table 1.
  std::string ToString() const;

 private:
  core::TransactionDb db_;
  std::vector<std::string> row_names_;
  std::vector<Predicate> predicates_;  // Indexed by ItemId.
};

}  // namespace feature
}  // namespace sfpm

#endif  // SFPM_FEATURE_PREDICATE_TABLE_H_
