#include "feature/extractor.h"

#include <cmath>
#include <unordered_set>

#include <algorithm>
#include <memory>
#include <numeric>

#include "geom/algorithms.h"
#include "geom/validity.h"
#include "obs/trace.h"
#include "relate/relate.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace sfpm {
namespace feature {

std::string ExtractionStats::ToString() const {
  return StrFormat(
      "extraction rows=%zu threads=%zu candidates=%llu pivot_pairs=%llu "
      "pivot_calls=%llu millis=%.1f\n  %s",
      rows, threads, static_cast<unsigned long long>(envelope_candidates),
      static_cast<unsigned long long>(infer_pivot_pairs),
      static_cast<unsigned long long>(infer_pivot_calls), total_millis,
      relate.ToString().c_str());
}

void ExtractionStats::PublishTo(obs::MetricsRegistry* registry) const {
  registry->GetCounter("extract.runs").Add(1);
  registry->GetCounter("extract.rows").Add(rows);
  registry->GetCounter("extract.envelope_candidates").Add(envelope_candidates);
  registry->GetGauge("extract.threads").Set(static_cast<double>(threads));
  registry->GetGauge("extract.total_millis").Set(total_millis);
  registry->GetCounter("relate.calls").Add(relate.calls);
  registry->GetCounter("relate.fast_disjoint").Add(relate.fast_disjoint);
  registry->GetCounter("relate.fast_contains").Add(relate.fast_contains);
  registry->GetCounter("relate.fast_within").Add(relate.fast_within);
  registry->GetCounter("relate.miss_boundary").Add(relate.miss_boundary);
  registry->GetCounter("relate.miss_inconclusive")
      .Add(relate.miss_inconclusive);
  registry->GetCounter("extract.infer.pivot_pairs").Add(infer_pivot_pairs);
  registry->GetCounter("extract.infer.pivot_calls").Add(infer_pivot_calls);
  registry->GetCounter("relate.inferred").Add(relate.inferred);
  registry->GetCounter("relate.inferred_skipped").Add(relate.inferred_skipped);
  registry->GetCounter("relate.converse_hits").Add(relate.converse_hits);
}

ExtractionStats ExtractionStats::FromMetrics(
    const obs::MetricsSnapshot& snapshot) {
  const auto counter = [&snapshot](const char* name) -> uint64_t {
    const auto it = snapshot.counters.find(name);
    return it == snapshot.counters.end() ? 0 : it->second;
  };
  const auto gauge = [&snapshot](const char* name) -> double {
    const auto it = snapshot.gauges.find(name);
    return it == snapshot.gauges.end() ? 0.0 : it->second;
  };
  ExtractionStats stats;
  stats.rows = static_cast<size_t>(counter("extract.rows"));
  stats.threads = static_cast<size_t>(gauge("extract.threads"));
  stats.envelope_candidates = counter("extract.envelope_candidates");
  stats.total_millis = gauge("extract.total_millis");
  stats.relate.calls = counter("relate.calls");
  stats.relate.fast_disjoint = counter("relate.fast_disjoint");
  stats.relate.fast_contains = counter("relate.fast_contains");
  stats.relate.fast_within = counter("relate.fast_within");
  stats.relate.miss_boundary = counter("relate.miss_boundary");
  stats.relate.miss_inconclusive = counter("relate.miss_inconclusive");
  stats.infer_pivot_pairs = counter("extract.infer.pivot_pairs");
  stats.infer_pivot_calls = counter("extract.infer.pivot_calls");
  stats.relate.inferred = counter("relate.inferred");
  stats.relate.inferred_skipped = counter("relate.inferred_skipped");
  stats.relate.converse_hits = counter("relate.converse_hits");
  return stats;
}

namespace {

/// The inference tier's admission bar: RCC8's composition table is only
/// guaranteed for valid regions, so only validated areal features may
/// participate in deductions (an invalid geometry silently degrades to the
/// engine path, never to a wrong answer).
bool InferEligible(const geom::Geometry& g) {
  return g.Dimension() == 2 && geom::Validate(g).ok();
}

/// An empty per-layer pair store with the eligibility bitmap filled.
qsr::Rcc8PairStore NewPairStore(const Layer& layer) {
  qsr::Rcc8PairStore store(layer.Size());
  const std::vector<Feature>& features = layer.features();
  for (size_t id = 0; id < features.size(); ++id) {
    store.SetEligible(id, InferEligible(features[id].geometry()));
  }
  return store;
}

/// Classifies one engine matrix into an RCC8 base relation, or nullopt
/// when the relation falls outside the jointly-exhaustive areal eight.
Result<qsr::Rcc8> ClassifyRcc8(const relate::IntersectionMatrix& matrix,
                               const geom::Geometry& a,
                               const geom::Geometry& b) {
  return qsr::Rcc8FromTopological(
      qsr::ClassifyMatrix(matrix, a.Dimension(), b.Dimension()));
}

/// \brief Builds one relevant layer's cross store (serial; prepare phase):
/// reference-to-candidate relations for envelope-containment pairs, plus
/// the reference-to-reference pairs those relations make usable.
///
/// The cross relations are free in aggregate: every (reference, candidate)
/// pair admitted here is by construction one of that reference's own row
/// candidates, so the row reuses the stored relation instead of invoking
/// the engine — one prepare call replaces one row call exactly. The
/// reference pairs are the only speculative spend, and they are bought
/// lazily: R(A, B) is computed only when some candidate held strictly
/// inside B (or equal to B) also protrudes, by envelope, into A's row —
/// the one shape where Compose(R(A, B), R(B, C)) can collapse to a
/// singleton ({DC} via EC;NTPPi or DC;NTPPi, or R(A, B) itself via x;EQ)
/// and save that row's engine call. One reference pair amortizes over
/// every candidate the two rows share.
qsr::Rcc8CrossStore BuildCrossStore(const Layer& reference,
                                    const std::vector<uint8_t>& ref_eligible,
                                    const Layer& layer,
                                    const qsr::Rcc8PairStore& store,
                                    uint64_t* engine_calls) {
  qsr::Rcc8CrossStore cross;
  const std::vector<relate::PreparedGeometry>& ref_prepared =
      reference.Prepared();
  const std::vector<Feature>& ref_features = reference.features();
  const std::vector<relate::PreparedGeometry>& prepared = layer.Prepared();
  const std::vector<Feature>& features = layer.features();

  // Containment-family cross relations seed {DC} (or exact) compositions
  // for other rows; anything else composes to a disjunction no row can
  // act on, so it never justifies buying a reference pair.
  std::vector<std::vector<uint64_t>> triggers(ref_features.size());
  std::vector<uint64_t> candidates;
  for (uint64_t rid = 0; rid < ref_features.size(); ++rid) {
    if (ref_eligible[rid] == 0) continue;
    const geom::Envelope& env_ref = ref_prepared[rid].envelope();
    candidates.clear();
    layer.Index().Query(env_ref, &candidates);
    for (uint64_t cid : candidates) {
      if (!store.Eligible(cid)) continue;
      const geom::Envelope& env_cand = prepared[cid].envelope();
      const double slack = relate::CollinearityBandSlack(env_ref) +
                           relate::CollinearityBandSlack(env_cand);
      if (!env_ref.Buffered(slack).Contains(env_cand)) continue;
      const relate::IntersectionMatrix matrix =
          ref_prepared[rid].Relate(prepared[cid]);
      ++*engine_calls;
      const Result<qsr::Rcc8> rel8 =
          ClassifyRcc8(matrix, ref_features[rid].geometry(),
                       features[cid].geometry());
      if (!rel8.ok()) continue;
      cross.SetCross(rid, cid, rel8.value());
      if (rel8.value() == qsr::Rcc8::kNTPPi ||
          rel8.value() == qsr::Rcc8::kEQ) {
        triggers[rid].push_back(cid);
      }
    }
  }

  // One reference-index query per triggering row (the union envelope of
  // its trigger candidates), not one per trigger; the per-candidate
  // envelope test below restores the exact per-trigger row set.
  std::vector<uint64_t> rows;
  for (uint64_t rid = 0; rid < triggers.size(); ++rid) {
    if (triggers[rid].empty()) continue;
    geom::Envelope probe;
    for (uint64_t cid : triggers[rid]) {
      probe.ExpandToInclude(prepared[cid].envelope());
    }
    rows.clear();
    reference.Index().Query(probe, &rows);
    for (uint64_t other : rows) {
      if (other == rid || ref_eligible[other] == 0) continue;
      if (cross.HasRefPair(other, rid)) continue;
      const geom::Envelope& env_other = ref_prepared[other].envelope();
      bool shared = false;
      for (uint64_t cid : triggers[rid]) {
        if (prepared[cid].envelope().Intersects(env_other)) {
          shared = true;
          break;
        }
      }
      if (!shared) continue;
      const relate::IntersectionMatrix matrix =
          ref_prepared[other].Relate(ref_prepared[rid]);
      ++*engine_calls;
      const Result<qsr::Rcc8> rel8 =
          ClassifyRcc8(matrix, ref_features[other].geometry(),
                       ref_features[rid].geometry());
      if (rel8.ok()) cross.SetRefPair(other, rid, rel8.value());
    }
  }
  return cross;
}

/// \brief Joins one relevant layer's candidate-to-candidate relation
/// pairs into `store` (serial; prepare phase).
///
/// Only envelope-containment pairs are joined: the containment family
/// (TPP/NTPP/TPPi/NTPPi/EQ) — the only relations that ever collapse a
/// composition to a singleton — forces the part's envelope inside the
/// whole's, so every profitable pair survives this filter (widened by the
/// tolerance band slack) and the up-front engine budget is spent only
/// where a row deduction can pay it back. Pairs whose inner member the
/// cross store already anchors to a reference are skipped outright: its
/// home row has the exact relation and every other row deduces through
/// the reference pairs, so a candidate pivot could only re-derive what is
/// already known. Each unordered pair is related once; `engine_calls`
/// counts those calls.
void JoinPairStore(const Layer& layer, const qsr::Rcc8CrossStore& cross,
                   qsr::Rcc8PairStore* store, uint64_t* engine_calls) {
  const std::vector<relate::PreparedGeometry>& prepared = layer.Prepared();
  const std::vector<Feature>& features = layer.features();

  // Regime check: when the references blanket the candidate set (most
  // eligible candidates are cross-anchored), candidate pivots are
  // provably subsumed — a candidate nested inside an anchored container
  // is itself envelope-inside the same reference, hence anchored too, so
  // every pair this join could store either duplicates a cross relation
  // or links two straddlers whose row relations are rarely decisive.
  // Sparse references (a cluster the reference only touches) are the
  // opposite regime: nothing is anchored and candidate pivots are the
  // only tier, so the join earns its engine budget there.
  size_t eligible = 0, anchored = 0;
  for (uint64_t id = 0; id < features.size(); ++id) {
    if (!store->Eligible(id)) continue;
    ++eligible;
    if (cross.CrossOf(id) != nullptr) ++anchored;
  }
  if (anchored * 2 > eligible) return;

  std::vector<uint64_t> candidates;
  for (uint64_t inner = 0; inner < features.size(); ++inner) {
    if (!store->Eligible(inner)) continue;
    if (cross.CrossOf(inner) != nullptr) continue;
    const geom::Envelope& env_inner = prepared[inner].envelope();
    candidates.clear();
    layer.Index().Query(env_inner, &candidates);
    for (uint64_t outer : candidates) {
      if (outer == inner || !store->Eligible(outer)) continue;
      const geom::Envelope& env_outer = prepared[outer].envelope();
      const double slack = relate::CollinearityBandSlack(env_outer) +
                           relate::CollinearityBandSlack(env_inner);
      if (!env_outer.Buffered(slack).Contains(env_inner)) continue;
      // Mutually containing envelopes pass the filter in both scan
      // orders; keep only the outer < inner orientation.
      if (outer > inner && env_inner.Buffered(slack).Contains(env_outer) &&
          cross.CrossOf(outer) == nullptr) {
        continue;
      }
      const relate::IntersectionMatrix matrix =
          prepared[outer].Relate(prepared[inner]);
      ++*engine_calls;
      const Result<qsr::Rcc8> rel8 = ClassifyRcc8(
          matrix, features[outer].geometry(), features[inner].geometry());
      // Every classifiable relation is kept, not just the containment
      // family: a DC/EC/PO edge still tightens multi-pivot intersections,
      // and the call is already paid for.
      if (rel8.ok()) store->Set(outer, inner, rel8.value());
    }
  }
}

}  // namespace

const PredicateExtractor::InferState* PredicateExtractor::InferStateFor(
    bool* built_this_run) const {
  std::lock_guard<std::mutex> lock(infer_mu_);
  if (infer_state_ != nullptr) {
    *built_this_run = false;
    return infer_state_.get();
  }

  // First inference-enabled run on this extractor: build the per-layer
  // pair stores and the reference admission bitmap, serially. The result
  // is immutable from here on — read-only during every parallel join and
  // shared by every later Extract call.
  obs::Tracer::Span infer_span = obs::Tracer::Global().StartSpan(
      "extract/infer");
  auto state = std::make_unique<InferState>();
  const std::vector<Feature>& refs = reference_->features();
  state->ref_eligible.assign(refs.size(), 0);
  for (const Feature& ref : refs) {
    state->ref_eligible[ref.id()] = InferEligible(ref.geometry()) ? 1 : 0;
  }
  // The cross-store build queries the reference layer's R-tree; warm it
  // here, still single-threaded.
  reference_->Index();
  state->stores.reserve(relevant_.size());
  state->cross.reserve(relevant_.size());
  for (const Layer* layer : relevant_) {
    qsr::Rcc8PairStore store = NewPairStore(*layer);
    qsr::Rcc8CrossStore cross;
    if (!layer->IsEmpty()) {
      cross = BuildCrossStore(*reference_, state->ref_eligible, *layer,
                              store, &state->build_calls);
      JoinPairStore(*layer, cross, &store, &state->build_calls);
    }
    state->num_pairs +=
        store.NumPairs() + cross.NumCross() + cross.NumRefPairs();
    state->stores.push_back(std::move(store));
    state->cross.push_back(std::move(cross));
  }
  infer_span.SetAttr("pivot_pairs", static_cast<double>(state->num_pairs));
  infer_span.SetAttr("pivot_calls",
                     static_cast<double>(state->build_calls));
  infer_state_ = std::move(state);
  *built_this_run = true;
  return infer_state_.get();
}

Result<PredicateTable> PredicateExtractor::Extract(
    const ExtractorOptions& options, ExtractionStats* stats) const {
  if (reference_ == nullptr || reference_->IsEmpty()) {
    return Status::InvalidArgument("reference layer is empty");
  }
  obs::Tracer& tracer = obs::Tracer::Global();
  obs::Tracer::Span extract_span = tracer.StartSpan("extract");
  Stopwatch watch;
  ExtractionStats run_stats;

  {
    // Layer::Index() and Layer::Prepared() build their caches lazily on
    // first call, which is not safe to race; warm every relevant layer
    // before the parallel region so workers only ever see immutable-after-
    // build state. The prepared cache amortizes each feature's derived
    // linework and segment index across every reference row (and every
    // Extract call) that relates against it.
    obs::Tracer::Span prepare_span = tracer.StartSpan("extract/prepare");
    for (const Layer* layer : relevant_) {
      if (layer->IsEmpty()) continue;
      layer->Index();
      layer->Prepared();
    }
    reference_->Prepared();
  }

  const std::vector<Feature>& refs = reference_->features();
  std::vector<RowDraft> drafts(refs.size());

  const InferState* infer_state = nullptr;
  if (options.topological && options.infer_relate) {
    bool built_this_run = false;
    infer_state = InferStateFor(&built_this_run);
    // The build's engine calls belong to the run that paid them; later
    // runs reuse the stores for free (see InferState).
    if (built_this_run) run_stats.infer_pivot_calls = infer_state->build_calls;
    run_stats.infer_pivot_pairs = infer_state->num_pairs;
  }

  ThreadPool pool(ResolveParallelism(options.parallelism));
  {
    obs::Tracer::Span join_span = tracer.StartSpan("extract/join");
    join_span.SetAttr("threads", static_cast<double>(pool.num_threads()));
    join_span.SetAttr("rows", static_cast<double>(refs.size()));
    pool.ParallelFor(0, refs.size(), [&](size_t i) {
      drafts[i] = ExtractRow(refs[i], options, infer_state);
    });
  }

  // Deterministic merge: replay the drafts in reference order, so item ids
  // are assigned in exactly the order the serial path would assign them
  // (and the counters sum in a fixed order too). The row-level candidate
  // histogram is observed here — one thread, reference order — so its sum
  // aggregates bit-exactly at every thread count.
  obs::Histogram& row_candidates =
      obs::MetricsRegistry::Global().GetHistogram(
          "extract.row.envelope_candidates",
          {0, 1, 2, 5, 10, 20, 50, 100, 200, 500});
  PredicateTable table;
  {
    obs::Tracer::Span merge_span = tracer.StartSpan("extract/merge");
    for (RowDraft& draft : drafts) {
      const size_t row = table.AddRow(std::move(draft.name));
      for (const Predicate& predicate : draft.predicates) {
        SFPM_RETURN_NOT_OK(table.Set(row, predicate));
      }
      run_stats.envelope_candidates += draft.envelope_candidates;
      run_stats.relate.Add(draft.relate);
      row_candidates.Observe(static_cast<double>(draft.envelope_candidates));
    }
  }
  run_stats.rows = refs.size();
  run_stats.threads = pool.num_threads();
  run_stats.total_millis = watch.ElapsedMillis();
  run_stats.PublishTo(&obs::MetricsRegistry::Global());
  if (stats != nullptr) *stats = run_stats;
  return table;
}

PredicateExtractor::RowDraft PredicateExtractor::ExtractRow(
    const Feature& ref, const ExtractorOptions& options,
    const InferState* infer) const {
  RowDraft draft;
  const Result<std::string> name = ref.Attribute("name");
  if (name.ok()) {
    draft.name = name.value();
  } else {
    draft.name = reference_->feature_type() + std::to_string(ref.id());
  }

  if (options.reference_attributes) {
    for (const auto& [key, value] : ref.attributes()) {
      if (key == "name") continue;
      draft.predicates.push_back(Predicate::Attribute(key, value));
    }
  }

  // The reference layer's prepared cache serves every relate call of this
  // row (all layers, all candidates) and every later Extract call.
  const relate::PreparedGeometry& prepared =
      reference_->Prepared()[ref.id()];
  // Inference is per (row, layer): an ineligible reference degrades the
  // whole row to the engine-only path.
  const bool row_infers =
      infer != nullptr && infer->ref_eligible[ref.id()] != 0;
  for (size_t li = 0; li < relevant_.size(); ++li) {
    const Layer* layer = relevant_[li];
    if (layer->IsEmpty()) continue;
    if (options.topological) {
      ExtractTopological(prepared, ref.id(), *layer, options,
                         row_infers ? &infer->stores[li] : nullptr,
                         row_infers ? &infer->cross[li] : nullptr, &draft);
    }
    if (options.distance_bands != nullptr &&
        (options.distance_types.empty() ||
         options.distance_types.count(layer->feature_type()) > 0)) {
      ExtractDistance(ref, *layer, *options.distance_bands,
                      options.instance_granularity, &draft.predicates);
    }
    if (options.directions) {
      ExtractDirections(ref, *layer, &draft.predicates);
    }
  }
  return draft;
}

void PredicateExtractor::ExtractTopological(
    const relate::PreparedGeometry& ref, uint64_t ref_id, const Layer& layer,
    const ExtractorOptions& options, const qsr::Rcc8PairStore* pairs,
    const qsr::Rcc8CrossStore* cross, RowDraft* draft) const {
  const std::vector<relate::PreparedGeometry>& prepared_others =
      layer.Prepared();
  std::vector<uint64_t> candidates;
  layer.Index().Query(ref.envelope(), &candidates);
  if (options.canonical_candidate_order) {
    std::sort(candidates.begin(), candidates.end());
  }
  draft->envelope_candidates += candidates.size();

  // Decides one candidate's relation: by RCC8 deduction — through the
  // cross store's reference pivots and through candidate pivots the row
  // already knows — when the composed set collapses to a singleton, by
  // the engine otherwise, with the engine result fed back to tighten
  // later deductions. `cluster` is row-and-layer-local, so the parallel
  // workers share nothing mutable.
  qsr::ClusterInference cluster(pairs, cross, ref_id);
  const auto decide = [&](uint64_t id) -> qsr::TopologicalRelation {
    // Feature ids are assigned sequentially from 0, so the id doubles as
    // the index into the layer's prepared cache.
    const Feature& other = layer.at(id);
    const relate::PreparedGeometry& prepared_other = prepared_others[id];
    const bool eligible = pairs != nullptr && pairs->Eligible(id);
    if (eligible) {
      const qsr::Rcc8Deduction deduction = cluster.Deduce(id);
      if (deduction.set.IsSingleton()) {
        const qsr::Rcc8 rel8 = deduction.set.Single();
        cluster.Record(id, rel8);
        draft->relate.converse_hits += deduction.converse_hits;
        if (rel8 == qsr::Rcc8::kDC) {
          ++draft->relate.inferred_skipped;
        } else {
          ++draft->relate.inferred;
        }
        return qsr::TopologicalFromRcc8(rel8);
      }
      // Empty set = algebra contradiction (a tolerance artifact broke
      // compositional soundness somewhere): not a decision, fall through
      // to the engine like any other non-singleton.
    }
    const relate::IntersectionMatrix matrix =
        options.fast_relate ? ref.Relate(prepared_other, &draft->relate)
                            : ref.RelateFull(prepared_other);
    const qsr::TopologicalRelation rel = qsr::ClassifyMatrix(
        matrix, ref.geometry().Dimension(), other.geometry().Dimension());
    if (eligible) {
      const Result<qsr::Rcc8> rel8 = qsr::Rcc8FromTopological(rel);
      if (rel8.ok()) cluster.Record(id, rel8.value());
    }
    return rel;
  };

  const auto emit = [&](uint64_t id, qsr::TopologicalRelation rel) {
    if (rel == qsr::TopologicalRelation::kDisjoint) return;
    const Feature& other = layer.at(id);
    const std::string type =
        options.instance_granularity
            ? layer.feature_type() + std::to_string(other.id())
            : layer.feature_type();
    draft->predicates.push_back(
        Predicate::Spatial(qsr::TopologicalRelationName(rel), type));
  };

  if (pairs == nullptr) {
    for (uint64_t id : candidates) emit(id, decide(id));
    return;
  }

  // Inference path: decide in container-first order (larger envelopes
  // first), so by the time a nested feature comes up its container is
  // usually known and the composition can decide it — then emit in the
  // original candidate order, which keeps the output byte-identical to
  // the engine-only path at every thread count.
  std::vector<size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    const geom::Envelope& ea = prepared_others[candidates[a]].envelope();
    const geom::Envelope& eb = prepared_others[candidates[b]].envelope();
    return ea.Width() * ea.Height() > eb.Width() * eb.Height();
  });
  std::vector<qsr::TopologicalRelation> relations(candidates.size());
  for (size_t idx : order) relations[idx] = decide(candidates[idx]);
  for (size_t idx = 0; idx < candidates.size(); ++idx) {
    emit(candidates[idx], relations[idx]);
  }
}

void PredicateExtractor::ExtractDistance(const Feature& ref,
                                         const Layer& layer,
                                         const qsr::DistanceQuantizer& bands,
                                         bool instance_granularity,
                                         std::vector<Predicate>* out) const {
  // Candidates within the last finite bound, found by envelope distance.
  const auto& band_list = bands.bands();
  const double max_finite = band_list.size() >= 2
                                ? band_list[band_list.size() - 2].upper_bound
                                : 0.0;

  std::vector<uint64_t> candidates;
  layer.Index().QueryWithinDistance(ref.geometry().GetEnvelope(), max_finite,
                                    &candidates);

  size_t within_last_bound = 0;
  for (uint64_t id : candidates) {
    const Feature& other = layer.at(id);
    const double d = geom::Distance(ref.geometry(), other.geometry());
    if (d >= max_finite) continue;  // Envelope filter false positive.
    ++within_last_bound;
    const std::string type =
        instance_granularity
            ? layer.feature_type() + std::to_string(other.id())
            : layer.feature_type();
    out->push_back(
        Predicate::Spatial(band_list[bands.BandIndex(d)].name, type));
  }

  // The unbounded band: emitted when some instance lies beyond every
  // finite bound (the paper's farFrom_PoliceCenter).
  if (within_last_bound < layer.Size()) {
    out->push_back(
        Predicate::Spatial(band_list.back().name, layer.feature_type()));
  }
}

void PredicateExtractor::ExtractDirections(const Feature& ref,
                                           const Layer& layer,
                                           std::vector<Predicate>* out) const {
  const geom::Point origin = geom::Centroid(ref.geometry());
  std::unordered_set<int> seen;
  for (const Feature& other : layer.features()) {
    const qsr::CardinalDirection dir =
        qsr::DirectionBetween(origin, geom::Centroid(other.geometry()));
    if (dir == qsr::CardinalDirection::kSame) continue;
    if (!seen.insert(static_cast<int>(dir)).second) continue;
    out->push_back(Predicate::Spatial(qsr::CardinalDirectionName(dir),
                                      layer.feature_type()));
  }
}

}  // namespace feature
}  // namespace sfpm
