#include "feature/extractor.h"

#include <cmath>
#include <unordered_set>

#include "geom/algorithms.h"
#include "relate/relate.h"

namespace sfpm {
namespace feature {

Result<PredicateTable> PredicateExtractor::Extract(
    const ExtractorOptions& options) const {
  if (reference_ == nullptr || reference_->IsEmpty()) {
    return Status::InvalidArgument("reference layer is empty");
  }

  PredicateTable table;
  for (const Feature& ref : reference_->features()) {
    std::string row_name;
    const Result<std::string> name = ref.Attribute("name");
    if (name.ok()) {
      row_name = name.value();
    } else {
      row_name = reference_->feature_type() + std::to_string(ref.id());
    }
    const size_t row = table.AddRow(std::move(row_name));

    if (options.reference_attributes) {
      for (const auto& [key, value] : ref.attributes()) {
        if (key == "name") continue;
        SFPM_RETURN_NOT_OK(table.SetAttribute(row, key, value));
      }
    }

    // One prepared geometry per reference feature serves every relate call
    // of this row (all layers, all candidates).
    const relate::PreparedGeometry prepared(ref.geometry());
    for (const Layer* layer : relevant_) {
      if (layer->IsEmpty()) continue;
      if (options.topological) {
        ExtractTopological(prepared, row, *layer,
                           options.instance_granularity, &table);
      }
      if (options.distance_bands != nullptr &&
          (options.distance_types.empty() ||
           options.distance_types.count(layer->feature_type()) > 0)) {
        ExtractDistance(ref, row, *layer, *options.distance_bands,
                        options.instance_granularity, &table);
      }
      if (options.directions) {
        ExtractDirections(ref, row, *layer, &table);
      }
    }
  }
  return table;
}

void PredicateExtractor::ExtractTopological(
    const relate::PreparedGeometry& ref, size_t row, const Layer& layer,
    bool instance_granularity, PredicateTable* table) const {
  std::vector<uint64_t> candidates;
  layer.Index().Query(ref.geometry().GetEnvelope(), &candidates);
  for (uint64_t id : candidates) {
    const Feature& other = layer.at(id);
    const qsr::TopologicalRelation rel = qsr::ClassifyMatrix(
        ref.Relate(other.geometry()), ref.geometry().Dimension(),
        other.geometry().Dimension());
    if (rel == qsr::TopologicalRelation::kDisjoint) continue;
    const std::string type =
        instance_granularity
            ? layer.feature_type() + std::to_string(other.id())
            : layer.feature_type();
    const Status st =
        table->SetSpatial(row, qsr::TopologicalRelationName(rel), type);
    (void)st;  // Row index is valid by construction.
  }
}

void PredicateExtractor::ExtractDistance(const Feature& ref, size_t row,
                                         const Layer& layer,
                                         const qsr::DistanceQuantizer& bands,
                                         bool instance_granularity,
                                         PredicateTable* table) const {
  // Candidates within the last finite bound, found by envelope distance.
  const auto& band_list = bands.bands();
  const double max_finite = band_list.size() >= 2
                                ? band_list[band_list.size() - 2].upper_bound
                                : 0.0;

  std::vector<uint64_t> candidates;
  layer.Index().QueryWithinDistance(ref.geometry().GetEnvelope(), max_finite,
                                    &candidates);

  size_t within_last_bound = 0;
  for (uint64_t id : candidates) {
    const Feature& other = layer.at(id);
    const double d = geom::Distance(ref.geometry(), other.geometry());
    if (d >= max_finite) continue;  // Envelope filter false positive.
    ++within_last_bound;
    const std::string type =
        instance_granularity
            ? layer.feature_type() + std::to_string(other.id())
            : layer.feature_type();
    const Status st =
        table->SetSpatial(row, band_list[bands.BandIndex(d)].name, type);
    (void)st;
  }

  // The unbounded band: emitted when some instance lies beyond every
  // finite bound (the paper's farFrom_PoliceCenter).
  if (within_last_bound < layer.Size()) {
    const Status st =
        table->SetSpatial(row, band_list.back().name, layer.feature_type());
    (void)st;
  }
}

void PredicateExtractor::ExtractDirections(const Feature& ref, size_t row,
                                           const Layer& layer,
                                           PredicateTable* table) const {
  const geom::Point origin = geom::Centroid(ref.geometry());
  std::unordered_set<int> seen;
  for (const Feature& other : layer.features()) {
    const qsr::CardinalDirection dir =
        qsr::DirectionBetween(origin, geom::Centroid(other.geometry()));
    if (dir == qsr::CardinalDirection::kSame) continue;
    if (!seen.insert(static_cast<int>(dir)).second) continue;
    const Status st = table->SetSpatial(row, qsr::CardinalDirectionName(dir),
                                        layer.feature_type());
    (void)st;
  }
}

}  // namespace feature
}  // namespace sfpm
